//! Property-based tests over the whole strategy registry.

use dpi_attacks::{registry, Mechanic};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every strategy, applied to any generated connection with any RNG
    /// stream: never panics, ground-truth indices valid and sorted,
    /// original packet order preserved.
    #[test]
    fn strategies_are_total_and_sound(seed in 0u64..200, rng_seed in 0u64..50, strat_idx in 0usize..73) {
        let conns = traffic_gen::dataset(seed, 1);
        let conn = &conns[0];
        let strategy = &registry()[strat_idx];
        let mut rng = StdRng::seed_from_u64(rng_seed);
        if let Some(result) = strategy.apply(conn, &mut rng) {
            // Indices valid and strictly increasing.
            for w in result.adversarial_indices.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for &i in &result.adversarial_indices {
                prop_assert!(i < result.connection.len());
            }
            // Original benign packets appear in order (for non-in-place
            // strategies the subsequence is exact).
            if !matches!(strategy.mechanic, Mechanic::ModifySyn { .. }) {
                let mut iter = result.connection.packets.iter();
                for orig in &conn.packets {
                    prop_assert!(
                        iter.any(|p| p == orig),
                        "{}: benign packet lost or reordered",
                        strategy.id
                    );
                }
            }
            // Key is unchanged: attacks never alter the 4-tuple.
            prop_assert_eq!(result.connection.key, conn.key);
            // Capture timestamps stay monotone.
            for w in result.connection.packets.windows(2) {
                prop_assert!(w[1].timestamp >= w[0].timestamp - 1e-9);
            }
        }
    }

    /// Adversarial packets always differ from a well-formed baseline in at
    /// least one of the ways CLAP can observe: structural rejection,
    /// out-of-window placement, exotic options, or anomalous flags.
    #[test]
    fn adversarial_packets_are_observable(seed in 0u64..100, strat_idx in 0usize..73) {
        use net_packet::TcpFlags;
        let conns = traffic_gen::dataset(seed, 1);
        let strategy = &registry()[strat_idx];
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        if let Some(result) = strategy.apply(&conns[0], &mut rng) {
            let mut tracker = tcp_state::TcpTracker::new();
            let labels: Vec<_> = result
                .connection
                .packets
                .iter()
                .enumerate()
                .map(|(i, p)| tracker.process(p, result.connection.direction(i)))
                .collect();
            for &i in &result.adversarial_indices {
                let p = &result.connection.packets[i];
                let observable = !labels[i].in_window
                    || !tcp_state::TcpTracker::segment_acceptable(p)
                    || p.tcp.has_md5()
                    || p.tcp.user_timeout().is_some()
                    || p.tcp.urgent != 0
                    || p.tcp.flags.contains(TcpFlags::RST)
                    || p.tcp.flags.contains(TcpFlags::FIN)
                    || p.tcp.flags.contains(TcpFlags::SYN)
                    || p.tcp.window_scale().map_or(false, |w| w > 14);
                prop_assert!(
                    observable,
                    "{}: adversarial packet {} indistinguishable from benign",
                    strategy.id,
                    i
                );
            }
        }
    }
}
