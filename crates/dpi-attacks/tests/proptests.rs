//! Property-based tests over the whole strategy registry.

use dpi_attacks::{registry, Mechanic};
use net_packet::Connection;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// True when packet `i` carries data that starts strictly inside sequence
/// space already covered by an earlier same-direction segment, without
/// exactly repeating one (benign overlaps — retransmissions and old
/// duplicates — repeat a prior `(seq, len)` pair verbatim).
fn overlaps_no_prior_segment(conn: &Connection, i: usize) -> bool {
    let p = &conn.packets[i];
    if p.payload.is_empty() {
        return false;
    }
    let dir = conn.direction(i);
    let (seq, end) = (p.tcp().seq, p.tcp().seq.wrapping_add(p.seq_len()));
    let mut regressed = false;
    for (j, q) in conn.packets.iter().enumerate().take(i) {
        if conn.direction(j) != dir {
            continue;
        }
        let (qseq, qend) = (q.tcp().seq, q.tcp().seq.wrapping_add(q.seq_len()));
        if qseq == seq && qend == end {
            return false; // exact retransmission — benign-shaped
        }
        if qend != qseq && (seq.wrapping_sub(qend) as i32) < 0 {
            regressed = true;
        }
    }
    regressed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every strategy, applied to any generated connection with any RNG
    /// stream: never panics, ground-truth indices valid and sorted,
    /// original packet order preserved.
    #[test]
    fn strategies_are_total_and_sound(seed in 0u64..200, rng_seed in 0u64..50, strat_idx in 0usize..76) {
        let conns = traffic_gen::dataset(seed, 1);
        let conn = &conns[0];
        let strategy = &registry()[strat_idx];
        let mut rng = StdRng::seed_from_u64(rng_seed);
        if let Some(result) = strategy.apply(conn, &mut rng) {
            // Indices valid and strictly increasing.
            for w in result.adversarial_indices.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for &i in &result.adversarial_indices {
                prop_assert!(i < result.connection.len());
            }
            // Original benign packets appear in order (for non-in-place
            // strategies the subsequence is exact; ModifySyn and FragOverlap
            // replace one packet in place).
            if !matches!(
                strategy.mechanic,
                Mechanic::ModifySyn { .. } | Mechanic::FragOverlap
            ) {
                let mut iter = result.connection.packets.iter();
                for orig in &conn.packets {
                    prop_assert!(
                        iter.any(|p| p == orig),
                        "{}: benign packet lost or reordered",
                        strategy.id
                    );
                }
            }
            // Key is unchanged: attacks never alter the 4-tuple.
            prop_assert_eq!(result.connection.key, conn.key);
            // Capture timestamps stay monotone.
            for w in result.connection.packets.windows(2) {
                prop_assert!(w[1].timestamp >= w[0].timestamp - 1e-9);
            }
        }
    }

    /// Adversarial packets always differ from a well-formed baseline in at
    /// least one of the ways CLAP can observe: structural rejection,
    /// out-of-window placement, exotic options, or anomalous flags.
    #[test]
    fn adversarial_packets_are_observable(seed in 0u64..100, strat_idx in 0usize..76) {
        use net_packet::TcpFlags;
        let conns = traffic_gen::dataset(seed, 1);
        let strategy = &registry()[strat_idx];
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        if let Some(result) = strategy.apply(&conns[0], &mut rng) {
            let mut tracker = tcp_state::TcpTracker::new();
            let labels: Vec<_> = result
                .connection
                .packets
                .iter()
                .enumerate()
                .map(|(i, p)| tracker.process(p, result.connection.direction(i)))
                .collect();
            for &i in &result.adversarial_indices {
                let p = &result.connection.packets[i];
                let observable = !labels[i].in_window
                    || !tcp_state::TcpTracker::segment_acceptable(p)
                    // Conflicting fragment reassembly (frag-overlap family)
                    // is recorded in the packet metadata and breaks the
                    // semantic-equivalence feature (#51).
                    || p.reassembly.as_ref().is_some_and(|r| r.conflicting)
                    || p.tcp().has_md5()
                    || p.tcp().user_timeout().is_some()
                    || p.tcp().urgent != 0
                    || p.tcp().flags.contains(TcpFlags::RST)
                    || p.tcp().flags.contains(TcpFlags::FIN)
                    || p.tcp().flags.contains(TcpFlags::SYN)
                    || p.tcp().window_scale().is_some_and(|w| w > 14)
                    // TTL-decrement evasion: benign TTLs are base − hops
                    // (≥ 39 for every generator profile), so a hop-limited
                    // shadow packet trips the out-of-range amplification
                    // feature on the raw TTL slot (Table 7 #47).
                    || p.ipv4().ttl <= 4
                    // A data-bearing segment without ACK: benign traffic
                    // only omits ACK on the initial SYN, which is empty, so
                    // the ACK bit of the flag one-hot (#9) exposes this.
                    || (!p.tcp().flags.contains(TcpFlags::ACK) && !p.payload.is_empty())
                    // Overlapping injection: new data starting inside
                    // already-consumed sequence space without repeating a
                    // genuine segment (benign overlaps are exact
                    // retransmissions) — a relative-SEQ (#2) regression the
                    // RNN context observes.
                    || overlaps_no_prior_segment(&result.connection, i);
                prop_assert!(
                    observable,
                    "{}: adversarial packet {} indistinguishable from benign",
                    strategy.id,
                    i
                );
            }
        }
    }
}
