//! Strategy mechanics: where and how adversarial packets enter a trace.

use crate::corruption::{Corruption, SeqContext};
use net_packet::{Connection, Direction, Packet, TcpFlags, TcpHeader};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which research effort a strategy was published in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackSource {
    /// SymTCP (Wang et al., NDSS '20) — symbolic-execution-discovered
    /// discrepancies against Zeek, Snort and the GFW; paper reference [23].
    SymTcp,
    /// Liberate (Li et al., IMC '17) — evasion of traffic classifiers;
    /// paper reference [10], with `(Min)`/`(Max)` matching-packet variants.
    Liberate,
    /// Geneva (Bock et al., CCS '19) — genetically evolved strategies with
    /// up to two stacked modifications; paper reference [4].
    Geneva,
    /// Protocol-diversity families added by this reproduction, beyond the
    /// paper's IPv4/TCP catalogue: IPv6 extension-header corruption, UDP
    /// length/checksum games and overlapping-fragment evasion.
    Extended,
}

impl AttackSource {
    pub fn name(self) -> &'static str {
        match self {
            AttackSource::SymTcp => "SymTCP [23]",
            AttackSource::Liberate => "Liberate [10]",
            AttackSource::Geneva => "Geneva [4]",
            AttackSource::Extended => "Extended (this work)",
        }
    }

    /// True for the three sources catalogued by the paper (the 73-strategy
    /// Table 8 set); `Extended` strategies are excluded from paper-pinned
    /// counts.
    pub fn in_paper(self) -> bool {
        !matches!(self, AttackSource::Extended)
    }
}

/// Which packet context a strategy primarily violates (paper Table 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContextCategory {
    InterPacket,
    IntraPacket,
}

/// Where an injected segment is placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectionPoint {
    /// Right after the three-way handshake completes (most SymTCP
    /// injections; the paper's Bad-Checksum-RST example).
    AfterHandshake,
    /// Between the SYN-ACK and the client's final ACK — the `SYN_RECV`
    /// window the RST-with-bad-timestamp strategies target (§4.3).
    DuringSynRecv,
    /// Immediately before the first data packet.
    BeforeFirstData,
}

/// How many shadow packets a shadow-insertion strategy produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShadowCount {
    /// Liberate `(Min)`: a single matching packet needs cloaking.
    One,
    /// Liberate `(Max)`: five matching packets (the paper's upper case).
    Five,
    /// Geneva: every data packet is shadowed.
    All,
}

impl ShadowCount {
    fn limit(self) -> usize {
        match self {
            ShadowCount::One => 1,
            ShadowCount::Five => 5,
            ShadowCount::All => usize::MAX,
        }
    }
}

/// The placement policy + crafted-segment shape of a strategy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mechanic {
    /// Inject one crafted TCP segment from the client side.
    Inject {
        point: InjectionPoint,
        flags: TcpFlags,
        /// Payload bytes carried by the injected segment.
        payload: usize,
        corruptions: Vec<Corruption>,
    },
    /// Modify the original SYN in place (SymTCP's SYN-with-payload family).
    ModifySyn {
        payload: usize,
        corruptions: Vec<Corruption>,
    },
    /// Insert corrupted *shadow copies* in front of data packets
    /// (Liberate/Geneva insertion strategies; §4.3 "shadow packets").
    ShadowData {
        count: ShadowCount,
        corruptions: Vec<Corruption>,
    },
    /// Insert a crafted RST in front of data packets (Liberate's
    /// RST-with-low-TTL family). `with_ack` distinguishes the #1/#2
    /// variants.
    ShadowRst {
        count: ShadowCount,
        with_ack: bool,
        corruptions: Vec<Corruption>,
    },
    /// IPv6-only: shadow data packets with copies whose extension-header
    /// chain is malformed (misplaced Hop-by-Hop or a lying `hdr_ext_len`).
    /// A conformant endhost drops the shadow; a DPI that skips the chain
    /// check desynchronizes.
    ShadowExtHeader { count: ShadowCount },
    /// UDP-only: shadow datagrams with copies playing a header game — a
    /// lying `udp.length` or a garbled checksum (chosen per shadow) — that
    /// endhosts discard but length-blind DPI consumes.
    ShadowUdpGame { count: ShadowCount },
    /// IPv4/TCP-only: deliver a data packet as overlapping fragments whose
    /// shared bytes disagree. The endhost reassembly policy (first-received
    /// wins here) yields the genuine payload, but the conflict itself is
    /// recorded in [`net_packet::ReassemblyInfo`] — a DPI reassembling with
    /// the opposite policy reads attacker-chosen bytes.
    FragOverlap,
}

/// Output of applying a strategy: the attacked trace and ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackResult {
    pub connection: Connection,
    /// Packet indices (into `connection.packets`) that are adversarial.
    pub adversarial_indices: Vec<usize>,
    /// Strategy id that produced this trace.
    pub strategy_id: &'static str,
}

/// Extracts the IPv4 address of a guarded-v4 flow endpoint.
pub(crate) fn v4(addr: std::net::IpAddr) -> std::net::Ipv4Addr {
    match addr {
        std::net::IpAddr::V4(a) => a,
        std::net::IpAddr::V6(a) => unreachable!("v4-guarded strategy saw v6 address {a}"),
    }
}

/// Sequence-space snapshot just before packet index `at`.
pub(crate) fn seq_context_at(conn: &Connection, at: usize) -> SeqContext {
    let mut isn: Option<u32> = None;
    let mut snd_nxt: u32 = 0;
    let mut last_tsval: Option<u32> = None;
    for (i, p) in conn.packets.iter().take(at).enumerate() {
        if conn.direction(i) != Direction::ClientToServer {
            continue;
        }
        if isn.is_none() {
            isn = Some(p.tcp().seq);
            snd_nxt = p.tcp().seq;
        }
        let end = p.tcp().seq.wrapping_add(p.seq_len());
        if (end.wrapping_sub(snd_nxt) as i32) > 0 {
            snd_nxt = end;
        }
        if let Some((tsval, _)) = p.tcp().timestamps() {
            last_tsval = Some(tsval);
        }
    }
    SeqContext {
        isn: isn.unwrap_or(0),
        snd_nxt,
        last_tsval,
    }
}

/// Latest server-side sequence state before index `at` (for plausible ACK
/// numbers on injected client packets), plus the server's latest timestamp
/// value (for a plausible TSecr echo).
fn server_next_seq(conn: &Connection, at: usize) -> u32 {
    server_state(conn, at).0
}

fn server_state(conn: &Connection, at: usize) -> (u32, u32) {
    let mut next: u32 = 0;
    let mut seen = false;
    let mut tsval: u32 = 0;
    for (i, p) in conn.packets.iter().take(at).enumerate() {
        if conn.direction(i) != Direction::ServerToClient {
            continue;
        }
        let end = p.tcp().seq.wrapping_add(p.seq_len());
        if !seen || (end.wrapping_sub(next) as i32) > 0 {
            next = end;
            seen = true;
        }
        if let Some((v, _)) = p.tcp().timestamps() {
            tsval = v;
        }
    }
    (next, tsval)
}

/// Crafts a baseline, fully-consistent client-side segment for insertion at
/// index `at`: plausible seq/ack, TTL copied from real client packets, and
/// a timestamp option if the connection negotiated one.
pub(crate) fn craft_client_segment(
    conn: &Connection,
    at: usize,
    flags: TcpFlags,
    payload_len: usize,
) -> Packet {
    let key = conn.key;
    let template_ttl = conn
        .packets
        .iter()
        .enumerate()
        .find(|(i, _)| conn.direction(*i) == Direction::ClientToServer)
        .map(|(_, p)| p.ipv4().ttl)
        .unwrap_or(64);
    let ctx = seq_context_at(conn, at);
    let ack = server_next_seq(conn, at);

    let ts = timestamp_between(conn, at);
    let mut ip =
        net_packet::Ipv4Header::new(v4(key.client.addr), v4(key.server.addr), template_ttl);
    ip.identification = 0x7e57;
    let mut tcp = TcpHeader::new(key.client.port, key.server.port, ctx.snd_nxt, 0);
    tcp.flags = flags;
    if flags.contains(TcpFlags::ACK) {
        tcp.ack = ack;
    }
    if let Some(tsval) = ctx.last_tsval {
        let (_, server_tsval) = server_state(conn, at);
        tcp.options.push(net_packet::TcpOption::Timestamps {
            tsval: tsval.wrapping_add(1),
            tsecr: server_tsval,
        });
    }
    let payload = vec![0x45u8; payload_len];
    Packet::new(ts, ip, tcp, payload)
}

/// Capture timestamp halfway between the packets around insertion point.
fn timestamp_between(conn: &Connection, at: usize) -> f64 {
    let prev = at.checked_sub(1).map(|i| conn.packets[i].timestamp);
    let next = conn.packets.get(at).map(|p| p.timestamp);
    match (prev, next) {
        (Some(a), Some(b)) => (a + b) / 2.0,
        (Some(a), None) => a + 0.0005,
        (None, Some(b)) => (b - 0.0005).max(0.0),
        (None, None) => 0.0,
    }
}

/// Data-packet indices a shadow strategy targets: the first `count`
/// client-to-server data packets, falling back to any-direction data
/// packets for pure-download flows.
fn shadow_targets(conn: &Connection, count: ShadowCount) -> Vec<usize> {
    let targets: Vec<usize> = conn
        .data_packet_indices()
        .into_iter()
        .filter(|&i| conn.direction(i) == Direction::ClientToServer)
        .take(count.limit())
        .collect();
    if targets.is_empty() {
        conn.data_packet_indices()
            .into_iter()
            .take(count.limit())
            .collect()
    } else {
        targets
    }
}

/// Resolves an [`InjectionPoint`] to a packet index, or `None` when the
/// trace lacks the required state.
fn resolve_point(conn: &Connection, point: InjectionPoint) -> Option<usize> {
    match point {
        InjectionPoint::AfterHandshake => conn.first_index_after_handshake(),
        InjectionPoint::DuringSynRecv => {
            // After the SYN-ACK, before the client's completing ACK.
            conn.packets.iter().enumerate().find_map(|(i, p)| {
                (p.tcp().flags.contains(TcpFlags::SYN) && p.tcp().flags.contains(TcpFlags::ACK))
                    .then_some(i + 1)
            })
        }
        InjectionPoint::BeforeFirstData => conn.data_packet_indices().first().copied(),
    }
}

impl Mechanic {
    /// Applies the mechanic; `None` when the connection lacks the
    /// structure the strategy requires.
    pub fn apply(
        &self,
        conn: &Connection,
        strategy_id: &'static str,
        rng: &mut StdRng,
    ) -> Option<AttackResult> {
        // The legacy (paper-catalogued) mechanics craft IPv4 TCP segments;
        // they do not apply to v6 or UDP flows.
        if matches!(
            self,
            Mechanic::Inject { .. }
                | Mechanic::ModifySyn { .. }
                | Mechanic::ShadowData { .. }
                | Mechanic::ShadowRst { .. }
        ) && (conn.key.proto != net_packet::ipv4::PROTO_TCP
            || !conn.key.client.addr.is_ipv4()
            || !conn.key.server.addr.is_ipv4())
        {
            return None;
        }
        match self {
            Mechanic::Inject {
                point,
                flags,
                payload,
                corruptions,
            } => {
                let at = resolve_point(conn, *point)?;
                let mut out = conn.clone();
                let mut pkt = craft_client_segment(conn, at, *flags, *payload);
                let ctx = seq_context_at(conn, at);
                Corruption::apply_all(corruptions, &mut pkt, &ctx, rng);
                out.packets.insert(at.min(out.packets.len()), pkt);
                Some(AttackResult {
                    connection: out,
                    adversarial_indices: vec![at.min(conn.len())],
                    strategy_id,
                })
            }
            Mechanic::ModifySyn {
                payload,
                corruptions,
            } => {
                // Locate the client SYN.
                let idx = conn.packets.iter().enumerate().find_map(|(i, p)| {
                    (p.tcp().flags.contains(TcpFlags::SYN)
                        && !p.tcp().flags.contains(TcpFlags::ACK)
                        && conn.direction(i) == Direction::ClientToServer)
                        .then_some(i)
                })?;
                let mut out = conn.clone();
                let orig = &conn.packets[idx];
                let mut pkt = Packet::new(
                    orig.timestamp,
                    orig.ipv4().clone(),
                    orig.tcp().clone(),
                    vec![0x45u8; *payload],
                );
                let ctx = seq_context_at(conn, idx + 1);
                Corruption::apply_all(corruptions, &mut pkt, &ctx, rng);
                out.packets[idx] = pkt;
                Some(AttackResult {
                    connection: out,
                    adversarial_indices: vec![idx],
                    strategy_id,
                })
            }
            Mechanic::ShadowData { count, corruptions } => {
                self.shadow(conn, strategy_id, rng, *count, corruptions, None)
            }
            Mechanic::ShadowRst {
                count,
                with_ack,
                corruptions,
            } => {
                let flags = if *with_ack {
                    TcpFlags::RST | TcpFlags::ACK
                } else {
                    TcpFlags::RST
                };
                self.shadow(conn, strategy_id, rng, *count, corruptions, Some(flags))
            }
            Mechanic::ShadowExtHeader { count } => {
                if conn.key.proto != net_packet::ipv4::PROTO_TCP || !conn.key.client.addr.is_ipv6()
                {
                    return None;
                }
                Self::shadow_with(conn, strategy_id, *count, rng, |p, i, rng| {
                    let mut ip = p.ip.v6()?.clone();
                    if rng.gen_bool(0.5) {
                        // A single Destination Options header whose length
                        // octet claims 48 bytes while 8 are stored.
                        let mut ext = net_packet::Ipv6ExtHeader::well_formed(0, 0, Vec::new());
                        ext.hdr_ext_len = 5;
                        ip.next_header = net_packet::ipv6::EXT_DEST_OPTS;
                        ip.ext = vec![ext];
                    } else {
                        // Hop-by-Hop in second position — RFC 8200 requires
                        // it first.
                        ip.next_header = net_packet::ipv6::EXT_DEST_OPTS;
                        ip.ext = vec![
                            net_packet::Ipv6ExtHeader::well_formed(
                                net_packet::ipv6::EXT_HOP_BY_HOP,
                                0,
                                Vec::new(),
                            ),
                            net_packet::Ipv6ExtHeader::well_formed(0, 0, Vec::new()),
                        ];
                    }
                    Some(Packet::new_v6(i, ip, p.tcp().clone(), p.payload.clone()))
                })
            }
            Mechanic::ShadowUdpGame { count } => {
                if conn.key.proto != net_packet::ipv4::PROTO_UDP {
                    return None;
                }
                Self::shadow_with(conn, strategy_id, *count, rng, |p, i, rng| {
                    let mut s = p.clone();
                    s.timestamp = i;
                    if rng.gen_bool(0.5) {
                        // Lying length: claim fewer bytes than the datagram
                        // actually carries (clamped above the 8-byte header).
                        let real = s.udp().length;
                        s.udp_mut().length = real.saturating_sub(rng.gen_range(1..=8)).max(8);
                    } else {
                        // Garbled checksum; avoid 0, which means "disabled"
                        // (and validates) over IPv4.
                        let stored = s.udp().checksum;
                        let garbled = stored ^ 0x1400;
                        s.udp_mut().checksum = if garbled == 0 { 0x0a00 } else { garbled };
                    }
                    Some(s)
                })
            }
            Mechanic::FragOverlap => {
                if conn.key.proto != net_packet::ipv4::PROTO_TCP || !conn.key.client.addr.is_ipv4()
                {
                    return None;
                }
                let idx = conn
                    .data_packet_indices()
                    .into_iter()
                    .find(|&i| conn.packets[i].ip.is_v4() && conn.packets[i].payload.len() >= 16)?;
                let orig = &conn.packets[idx];
                let bytes = orig.to_bytes();
                // Split the transport area roughly in half, 8-byte aligned.
                let area = bytes.len() - orig.ip.header_len_bytes();
                let chunk = (area / 2).div_ceil(8) * 8;
                let frags = net_packet::fragment_datagram(&bytes, chunk.max(8));
                if frags.len() < 2 {
                    return None;
                }
                // The evil duplicate of the first fragment: same range, its
                // bytes disagree. Arriving second, it loses to the genuine
                // fragment under first-received-wins — but the conflict is
                // recorded.
                let mut evil = frags[0].clone();
                let hdr = ((evil[0] & 0x0f) as usize * 4).clamp(20, evil.len());
                for b in &mut evil[hdr..] {
                    *b ^= 0x5a;
                }
                let mut reasm = net_packet::Reassembler::new();
                let order = std::iter::once(&frags[0])
                    .chain(std::iter::once(&evil))
                    .chain(frags[1..].iter());
                let mut done = None;
                for (k, f) in order.enumerate() {
                    if let Some(p) = reasm.push(orig.timestamp + k as f64 * 1e-7, f) {
                        done = Some(p);
                    }
                }
                let mut done = done?;
                done.timestamp = orig.timestamp;
                if !done.reassembly.as_ref().is_some_and(|r| r.conflicting) {
                    return None;
                }
                let mut out = conn.clone();
                out.packets[idx] = done;
                Some(AttackResult {
                    connection: out,
                    adversarial_indices: vec![idx],
                    strategy_id,
                })
            }
        }
    }

    /// Shadow-insertion skeleton for the Extended families: before each of
    /// the first `count` data packets, insert the shadow produced by
    /// `craft(packet, timestamp, rng)`.
    fn shadow_with(
        conn: &Connection,
        strategy_id: &'static str,
        count: ShadowCount,
        rng: &mut StdRng,
        mut craft: impl FnMut(&Packet, f64, &mut StdRng) -> Option<Packet>,
    ) -> Option<AttackResult> {
        let targets = shadow_targets(conn, count);
        if targets.is_empty() {
            return None;
        }
        let mut out = Connection::new(conn.key);
        let mut adversarial = Vec::new();
        for (i, p) in conn.packets.iter().enumerate() {
            if targets.contains(&i) {
                if let Some(shadow) = craft(p, timestamp_between(conn, i), rng) {
                    adversarial.push(out.packets.len());
                    out.packets.push(shadow);
                }
            }
            out.packets.push(p.clone());
        }
        if adversarial.is_empty() {
            return None;
        }
        Some(AttackResult {
            connection: out,
            adversarial_indices: adversarial,
            strategy_id,
        })
    }

    /// Shared shadow-insertion logic: before each of the first `count`
    /// data packets, insert either a corrupted copy of that data packet
    /// (`rst_flags = None`) or a crafted RST (`Some(flags)`).
    fn shadow(
        &self,
        conn: &Connection,
        strategy_id: &'static str,
        rng: &mut StdRng,
        count: ShadowCount,
        corruptions: &[Corruption],
        rst_flags: Option<TcpFlags>,
    ) -> Option<AttackResult> {
        let targets = shadow_targets(conn, count);
        if targets.is_empty() {
            return None;
        }

        let mut out = Connection::new(conn.key);
        let mut adversarial = Vec::new();
        for (i, p) in conn.packets.iter().enumerate() {
            if targets.contains(&i) {
                let mut shadow = match rst_flags {
                    Some(flags) => craft_client_segment(conn, i, flags, 0),
                    None => {
                        let mut s = p.clone();
                        s.timestamp = timestamp_between(conn, i);
                        s
                    }
                };
                let ctx = seq_context_at(conn, i);
                Corruption::apply_all(corruptions, &mut shadow, &ctx, rng);
                adversarial.push(out.packets.len());
                out.packets.push(shadow);
            }
            out.packets.push(p.clone());
        }
        Some(AttackResult {
            connection: out,
            adversarial_indices: adversarial,
            strategy_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn benign() -> Vec<Connection> {
        traffic_gen::dataset(41, 12)
    }

    #[test]
    fn inject_after_handshake_positions_correctly() {
        let conns = benign();
        let mech = Mechanic::Inject {
            point: InjectionPoint::AfterHandshake,
            flags: TcpFlags::RST,
            payload: 0,
            corruptions: vec![Corruption::BadTcpChecksum],
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut applied = 0;
        for conn in &conns {
            if let Some(r) = mech.apply(conn, "test", &mut rng) {
                applied += 1;
                assert_eq!(r.connection.len(), conn.len() + 1);
                let idx = r.adversarial_indices[0];
                let injected = &r.connection.packets[idx];
                assert!(injected.tcp().flags.contains(TcpFlags::RST));
                assert!(!injected.tcp_checksum_valid());
                // Comes after the handshake-completing ACK.
                assert!(idx >= 3);
            }
        }
        assert!(applied >= conns.len() / 2);
    }

    #[test]
    fn injected_segment_has_plausible_seq() {
        let conns = benign();
        let mech = Mechanic::Inject {
            point: InjectionPoint::AfterHandshake,
            flags: TcpFlags::RST | TcpFlags::ACK,
            payload: 0,
            corruptions: vec![],
        };
        let mut rng = StdRng::seed_from_u64(2);
        for conn in &conns {
            if let Some(r) = mech.apply(conn, "t", &mut rng) {
                let idx = r.adversarial_indices[0];
                let ctx = seq_context_at(conn, idx);
                assert_eq!(r.connection.packets[idx].tcp().seq, ctx.snd_nxt);
            }
        }
    }

    #[test]
    fn modify_syn_keeps_length_and_index() {
        let conns = benign();
        let mech = Mechanic::ModifySyn {
            payload: 32,
            corruptions: vec![],
        };
        let mut rng = StdRng::seed_from_u64(3);
        for conn in &conns {
            let r = mech.apply(conn, "t", &mut rng).unwrap();
            assert_eq!(r.connection.len(), conn.len());
            let idx = r.adversarial_indices[0];
            let p = &r.connection.packets[idx];
            assert!(p.tcp().flags.contains(TcpFlags::SYN));
            assert_eq!(p.payload.len(), 32);
            assert!(p.tcp_checksum_valid());
        }
    }

    #[test]
    fn shadow_counts_respected() {
        let conns = benign();
        let mut rng = StdRng::seed_from_u64(4);
        for count in [ShadowCount::One, ShadowCount::Five, ShadowCount::All] {
            let mech = Mechanic::ShadowData {
                count,
                corruptions: vec![Corruption::LowTtl],
            };
            for conn in &conns {
                if let Some(r) = mech.apply(conn, "t", &mut rng) {
                    let n = r.adversarial_indices.len();
                    match count {
                        ShadowCount::One => assert_eq!(n, 1),
                        ShadowCount::Five => assert!((1..=5).contains(&n)),
                        ShadowCount::All => assert!(n >= 1),
                    }
                    assert_eq!(r.connection.len(), conn.len() + n);
                    for &i in &r.adversarial_indices {
                        assert!((1..=4).contains(&r.connection.packets[i].ipv4().ttl));
                    }
                }
            }
        }
    }

    #[test]
    fn shadow_rst_uses_rst_flags() {
        let conns = benign();
        let mut rng = StdRng::seed_from_u64(5);
        let mech = Mechanic::ShadowRst {
            count: ShadowCount::One,
            with_ack: true,
            corruptions: vec![Corruption::LowTtl],
        };
        for conn in &conns {
            if let Some(r) = mech.apply(conn, "t", &mut rng) {
                let p = &r.connection.packets[r.adversarial_indices[0]];
                assert!(p.tcp().flags.contains(TcpFlags::RST));
                assert!(p.tcp().flags.contains(TcpFlags::ACK));
            }
        }
    }

    #[test]
    fn timestamps_remain_monotone_after_attack() {
        let conns = benign();
        let mut rng = StdRng::seed_from_u64(6);
        let mech = Mechanic::ShadowData {
            count: ShadowCount::All,
            corruptions: vec![Corruption::BadTcpChecksum],
        };
        for conn in &conns {
            if let Some(r) = mech.apply(conn, "t", &mut rng) {
                for w in r.connection.packets.windows(2) {
                    assert!(w[1].timestamp >= w[0].timestamp - 1e-9);
                }
            }
        }
    }
}
