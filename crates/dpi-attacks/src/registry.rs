//! The catalogue of all 73 evaluated strategies (paper Table 8, Figures
//! 7–9), named after the paper's figure titles, plus the three Extended
//! protocol-diversity families this reproduction adds (IPv6 extension-header
//! corruption, UDP length/checksum games, overlapping-fragment evasion).

use crate::corruption::Corruption::{self, *};
use crate::strategy::{
    AttackResult, AttackSource, ContextCategory, InjectionPoint, Mechanic, ShadowCount,
};
use net_packet::{Connection, TcpFlags};
use rand::rngs::StdRng;
use std::sync::OnceLock;

/// One catalogued evasion strategy.
#[derive(Debug, Clone)]
pub struct Strategy {
    /// Stable machine-readable identifier.
    pub id: &'static str,
    /// Human-readable name following the paper's figure titles.
    pub name: &'static str,
    pub source: AttackSource,
    pub category: ContextCategory,
    pub mechanic: Mechanic,
}

impl Strategy {
    /// Applies the strategy to one benign connection.
    pub fn apply(&self, conn: &Connection, rng: &mut StdRng) -> Option<AttackResult> {
        self.mechanic.apply(conn, self.id, rng)
    }
}

/// All strategies: the paper's 73 (30 SymTCP + 23 Liberate + 20 Geneva,
/// 24 inter-packet + 49 intra-packet per Table 2) at indices `0..73`,
/// followed by the 3 Extended protocol-diversity families.
pub fn registry() -> &'static [Strategy] {
    static REGISTRY: OnceLock<Vec<Strategy>> = OnceLock::new();
    REGISTRY.get_or_init(build_registry)
}

/// Strategies from one source paper, in registry order.
pub fn strategies_from(source: AttackSource) -> Vec<&'static Strategy> {
    registry().iter().filter(|s| s.source == source).collect()
}

/// Looks up a strategy by id.
pub fn strategy_by_id(id: &str) -> Option<&'static Strategy> {
    registry().iter().find(|s| s.id == id)
}

fn inject(
    point: InjectionPoint,
    flags: TcpFlags,
    payload: usize,
    corruptions: &[Corruption],
) -> Mechanic {
    Mechanic::Inject {
        point,
        flags,
        payload,
        corruptions: corruptions.to_vec(),
    }
}

fn shadow(count: ShadowCount, corruptions: &[Corruption]) -> Mechanic {
    Mechanic::ShadowData {
        count,
        corruptions: corruptions.to_vec(),
    }
}

fn shadow_rst(count: ShadowCount, with_ack: bool, corruptions: &[Corruption]) -> Mechanic {
    Mechanic::ShadowRst {
        count,
        with_ack,
        corruptions: corruptions.to_vec(),
    }
}

fn build_registry() -> Vec<Strategy> {
    use AttackSource::{Geneva, Liberate, SymTcp};
    use ContextCategory::{InterPacket, IntraPacket};
    use InjectionPoint::{AfterHandshake, BeforeFirstData, DuringSynRecv};
    use ShadowCount::{All, Five, One};

    const ACK: TcpFlags = TcpFlags::ACK;
    let data = TcpFlags::ACK | TcpFlags::PSH;
    let finack = TcpFlags::FIN | TcpFlags::ACK;
    let rstack = TcpFlags::RST | TcpFlags::ACK;
    let synack = TcpFlags::SYN | TcpFlags::ACK;
    let _ = ACK;

    let s = |id, name, source, category, mechanic| Strategy {
        id,
        name,
        source,
        category,
        mechanic,
    };

    vec![
        // ============== SymTCP [23] — 30 strategies =====================
        // --- inter-packet (12) -----------------------------------------
        s(
            "symtcp-zeek-data-bad-seq",
            "Zeek: Data Packet (ACK) Bad SEQ",
            SymTcp,
            InterPacket,
            inject(AfterHandshake, data, 64, &[BadSeq]),
        ),
        s(
            "symtcp-gfw-data-bad-chksum-md5",
            "GFW: Data Packet (ACK) Bad TCP-Checksum/MD5-Option",
            SymTcp,
            InterPacket,
            inject(AfterHandshake, data, 64, &[Md5Option, BadTcpChecksum]),
        ),
        s(
            "symtcp-gfw-data-no-ack",
            "GFW: Data Packet (ACK) wo/ ACK Flag",
            SymTcp,
            InterPacket,
            inject(AfterHandshake, data, 64, &[NoAckFlag]),
        ),
        s(
            "symtcp-zeek-data-no-ack",
            "Zeek: Data Packet (ACK) wo/ ACK Flag",
            SymTcp,
            InterPacket,
            inject(BeforeFirstData, data, 64, &[NoAckFlag]),
        ),
        s(
            "symtcp-zeek-data-bad-ack",
            "Zeek: Data Packet (ACK) Bad ACK Num",
            SymTcp,
            InterPacket,
            inject(AfterHandshake, data, 64, &[BadAck]),
        ),
        s(
            "symtcp-zeek-data-overlapping",
            "Zeek: Data Packet (ACK) Overlapping",
            SymTcp,
            InterPacket,
            inject(BeforeFirstData, data, 64, &[OverlappingSeq]),
        ),
        s(
            "symtcp-gfw-finack-bad-ack",
            "GFW: Injected FIN-ACK Bad ACK Num",
            SymTcp,
            InterPacket,
            inject(AfterHandshake, finack, 0, &[BadAck]),
        ),
        s(
            "symtcp-snort-finack-bad-ack",
            "Snort: Injected FIN-ACK Bad ACK Num",
            SymTcp,
            InterPacket,
            inject(BeforeFirstData, finack, 0, &[BadAck]),
        ),
        s(
            "symtcp-gfw-rst-bad-timestamp",
            "GFW: Injected RST Bad Timestamp",
            SymTcp,
            InterPacket,
            inject(DuringSynRecv, TcpFlags::RST, 0, &[BadTimestamp]),
        ),
        s(
            "symtcp-snort-rst-bad-timestamp",
            "Snort: Injected RST Bad Timestamp",
            SymTcp,
            InterPacket,
            inject(DuringSynRecv, TcpFlags::RST, 0, &[BadTimestamp]),
        ),
        s(
            "symtcp-gfw-rstack-bad-ack",
            "GFW: Injected RST-ACK Bad ACK Num",
            SymTcp,
            InterPacket,
            inject(AfterHandshake, rstack, 0, &[BadAck]),
        ),
        s(
            "symtcp-snort-rstack-bad-ack",
            "Snort: Injected RST-ACK Bad ACK Num",
            SymTcp,
            InterPacket,
            inject(BeforeFirstData, rstack, 0, &[BadAck]),
        ),
        // --- intra-packet (18) -----------------------------------------
        s(
            "symtcp-gfw-finack-bad-chksum-md5",
            "GFW: Injected FIN-ACK Bad TCP-Checksum/MD5-Option",
            SymTcp,
            IntraPacket,
            inject(AfterHandshake, finack, 0, &[Md5Option, BadTcpChecksum]),
        ),
        s(
            "symtcp-snort-finack-bad-md5",
            "Snort: Injected FIN-ACK Bad TCP MD5-Option",
            SymTcp,
            IntraPacket,
            inject(AfterHandshake, finack, 0, &[Md5Option]),
        ),
        s(
            "symtcp-gfw-rst-bad-chksum-md5",
            "GFW: Injected RST Bad TCP-Checksum/MD5-Option",
            SymTcp,
            IntraPacket,
            inject(
                AfterHandshake,
                TcpFlags::RST,
                0,
                &[Md5Option, BadTcpChecksum],
            ),
        ),
        s(
            "symtcp-snort-rst-pure",
            "Snort: Injected RST Pure",
            SymTcp,
            IntraPacket,
            inject(AfterHandshake, TcpFlags::RST, 0, &[]),
        ),
        s(
            "symtcp-snort-rst-partial-inwindow",
            "Snort: Injected RST Partial In-Window",
            SymTcp,
            IntraPacket,
            inject(AfterHandshake, TcpFlags::RST, 0, &[PartialInWindowSeq]),
        ),
        s(
            "symtcp-snort-rst-bad-md5",
            "Snort: Injected RST Bad TCP MD5-Option",
            SymTcp,
            IntraPacket,
            inject(AfterHandshake, TcpFlags::RST, 0, &[Md5Option]),
        ),
        s(
            "symtcp-gfw-fin-payload",
            "GFW: Injected FIN w/ Payload",
            SymTcp,
            IntraPacket,
            inject(AfterHandshake, TcpFlags::FIN, 32, &[]),
        ),
        s(
            "symtcp-snort-fin-pure",
            "Snort: Injected FIN Pure",
            SymTcp,
            IntraPacket,
            inject(AfterHandshake, TcpFlags::FIN, 0, &[]),
        ),
        s(
            "symtcp-zeek-fin-pure",
            "Zeek: Injected FIN Pure",
            SymTcp,
            IntraPacket,
            inject(BeforeFirstData, TcpFlags::FIN, 0, &[]),
        ),
        s(
            "symtcp-zeek-syn-payload",
            "Zeek: SYN w/ Payload",
            SymTcp,
            IntraPacket,
            Mechanic::ModifySyn {
                payload: 64,
                corruptions: vec![],
            },
        ),
        s(
            "symtcp-gfw1-syn-payload-bad-seq",
            "GFW #1: SYN w/ Payload & Bad SEQ",
            SymTcp,
            IntraPacket,
            inject(AfterHandshake, TcpFlags::SYN, 64, &[BadSeq]),
        ),
        s(
            "symtcp-gfw2-syn-payload-bad-seq",
            "GFW #2: SYN w/ Payload & Bad SEQ",
            SymTcp,
            IntraPacket,
            inject(BeforeFirstData, TcpFlags::SYN, 64, &[UnderflowSeq]),
        ),
        s(
            "symtcp-snort-syn-multiple",
            "Snort: SYN Multiple (SYN)",
            SymTcp,
            IntraPacket,
            inject(AfterHandshake, TcpFlags::SYN, 0, &[]),
        ),
        s(
            "symtcp-zeek-syn-multiple",
            "Zeek: SYN Multiple (SYN)",
            SymTcp,
            IntraPacket,
            inject(BeforeFirstData, TcpFlags::SYN, 0, &[]),
        ),
        s(
            "symtcp-zeek-rstfinack-bad-seq",
            "Zeek: Injected RST/FIN-ACK Bad SEQ",
            SymTcp,
            IntraPacket,
            inject(AfterHandshake, rstack, 0, &[BadSeq]),
        ),
        s(
            "symtcp-gfw-data-underflow-seq",
            "GFW: Data Packet (ACK) Underflow SEQ",
            SymTcp,
            IntraPacket,
            inject(AfterHandshake, data, 64, &[UnderflowSeq]),
        ),
        s(
            "symtcp-zeek-data-underflow-seq",
            "Zeek: Data Packet (ACK) Underflow SEQ",
            SymTcp,
            IntraPacket,
            inject(BeforeFirstData, data, 64, &[UnderflowSeq]),
        ),
        s(
            "symtcp-snort-data-urgent",
            "Snort: Data Packet (ACK) w/ Urgent Pointer",
            SymTcp,
            IntraPacket,
            inject(AfterHandshake, data, 64, &[UrgentPointer]),
        ),
        // ============== Liberate [10] — 23 strategies ===================
        // --- inter-packet (8) -------------------------------------------
        s(
            "liberate-low-ttl-max",
            "Low TTL (Max)",
            Liberate,
            InterPacket,
            shadow(Five, &[LowTtl]),
        ),
        s(
            "liberate-low-ttl-min",
            "Low TTL (Min)",
            Liberate,
            InterPacket,
            shadow(One, &[LowTtl]),
        ),
        s(
            "liberate-rst-low-ttl-1-max",
            "RST w/ Low TTL #1 (Max)",
            Liberate,
            InterPacket,
            shadow_rst(Five, false, &[LowTtl]),
        ),
        s(
            "liberate-rst-low-ttl-1-min",
            "RST w/ Low TTL #1 (Min)",
            Liberate,
            InterPacket,
            shadow_rst(One, false, &[LowTtl]),
        ),
        s(
            "liberate-rst-low-ttl-2-max",
            "RST w/ Low TTL #2 (Max)",
            Liberate,
            InterPacket,
            shadow_rst(Five, true, &[LowTtl]),
        ),
        s(
            "liberate-rst-low-ttl-2-min",
            "RST w/ Low TTL #2 (Min)",
            Liberate,
            InterPacket,
            shadow_rst(One, true, &[LowTtl]),
        ),
        s(
            "liberate-bad-ip-len-long-min",
            "Bad IP Length (Too Long) (Min)",
            Liberate,
            InterPacket,
            shadow(One, &[BadIpLenLong]),
        ),
        s(
            "liberate-bad-ip-len-short-min",
            "Bad IP Length (Too Short) (Min)",
            Liberate,
            InterPacket,
            shadow(One, &[BadIpLenShort]),
        ),
        // --- intra-packet (15) -------------------------------------------
        s(
            "liberate-invalid-ihl-max",
            "Invalid IP Header Length (Max)",
            Liberate,
            IntraPacket,
            shadow(Five, &[IhlTooLarge]),
        ),
        s(
            "liberate-invalid-ihl-min",
            "Invalid IP Header Length (Min)",
            Liberate,
            IntraPacket,
            shadow(One, &[IhlTooSmall]),
        ),
        s(
            "liberate-invalid-ip-version-min",
            "Invalid IP Version (Min)",
            Liberate,
            IntraPacket,
            shadow(One, &[InvalidIpVersion]),
        ),
        s(
            "liberate-bad-ip-len-long-max",
            "Bad IP Length (Too Long) (Max)",
            Liberate,
            IntraPacket,
            shadow(Five, &[BadIpLenLong]),
        ),
        s(
            "liberate-bad-ip-len-short-max",
            "Bad IP Length (Too Short) (Max)",
            Liberate,
            IntraPacket,
            shadow(Five, &[BadIpLenShort]),
        ),
        s(
            "liberate-data-no-ack-max",
            "Data Packet wo/ ACK Flag (Max)",
            Liberate,
            IntraPacket,
            shadow(Five, &[NoAckFlag]),
        ),
        s(
            "liberate-data-no-ack-min",
            "Data Packet wo/ ACK Flag (Min)",
            Liberate,
            IntraPacket,
            shadow(One, &[NoAckFlag]),
        ),
        s(
            "liberate-invalid-data-offset-max",
            "Invalid Data-Offset (Max)",
            Liberate,
            IntraPacket,
            shadow(Five, &[DataOffsetTooLarge]),
        ),
        s(
            "liberate-invalid-data-offset-min",
            "Invalid Data-Offset (Min)",
            Liberate,
            IntraPacket,
            shadow(One, &[DataOffsetTooSmall]),
        ),
        s(
            "liberate-invalid-flags-max",
            "Invalid Flags (Max)",
            Liberate,
            IntraPacket,
            shadow(Five, &[InvalidFlagsSynFin]),
        ),
        s(
            "liberate-invalid-flags-min",
            "Invalid Flags (Min)",
            Liberate,
            IntraPacket,
            shadow(One, &[InvalidFlagsNull]),
        ),
        s(
            "liberate-bad-tcp-checksum-max",
            "Bad TCP Checksum (Max)",
            Liberate,
            IntraPacket,
            shadow(Five, &[BadTcpChecksum]),
        ),
        s(
            "liberate-bad-tcp-checksum-min",
            "Bad TCP Checksum (Min)",
            Liberate,
            IntraPacket,
            shadow(One, &[BadTcpChecksum]),
        ),
        s(
            "liberate-bad-seq-max",
            "Bad SEQ (Max)",
            Liberate,
            IntraPacket,
            shadow(Five, &[BadSeq]),
        ),
        s(
            "liberate-bad-seq-min",
            "Bad SEQ (Min)",
            Liberate,
            IntraPacket,
            shadow(One, &[BadSeq]),
        ),
        // ============== Geneva [4] — 20 strategies ======================
        // --- inter-packet (4) -------------------------------------------
        s(
            "geneva-rst-low-ttl",
            "Injected RST / Low TTL",
            Geneva,
            InterPacket,
            inject(AfterHandshake, TcpFlags::RST, 0, &[LowTtl]),
        ),
        s(
            "geneva-rstack-bad-chksum",
            "Injected RST-ACK / Bad TCP Checksum",
            Geneva,
            InterPacket,
            inject(AfterHandshake, rstack, 0, &[BadTcpChecksum]),
        ),
        s(
            "geneva-rstack-low-ttl",
            "Injected RST-ACK / Low TTL",
            Geneva,
            InterPacket,
            inject(AfterHandshake, rstack, 0, &[LowTtl]),
        ),
        s(
            "geneva-synack-bad-md5",
            "Injected SYN-ACK / Bad TCP MD5-Option",
            Geneva,
            InterPacket,
            inject(AfterHandshake, synack, 0, &[Md5Option]),
        ),
        // --- intra-packet (16) -------------------------------------------
        s(
            "geneva-dataoffset-bad-chksum",
            "Invalid Data-Offset / Bad TCP Checksum",
            Geneva,
            IntraPacket,
            shadow(All, &[DataOffsetTooLarge, BadTcpChecksum]),
        ),
        s(
            "geneva-dataoffset-low-ttl",
            "Invalid Data-Offset / Low TTL",
            Geneva,
            IntraPacket,
            shadow(All, &[DataOffsetTooLarge, LowTtl]),
        ),
        s(
            "geneva-dataoffset-bad-ack",
            "Invalid Data-Offset / Bad ACK Num",
            Geneva,
            IntraPacket,
            shadow(All, &[DataOffsetTooLarge, BadAck]),
        ),
        s(
            "geneva-rst-bad-ip-len",
            "Injected RST / Bad IP Length",
            Geneva,
            IntraPacket,
            inject(AfterHandshake, TcpFlags::RST, 0, &[BadIpLenLong]),
        ),
        s(
            "geneva-rst-bad-chksum",
            "Injected RST / Bad TCP Checksum",
            Geneva,
            IntraPacket,
            inject(AfterHandshake, TcpFlags::RST, 0, &[BadTcpChecksum]),
        ),
        s(
            "geneva-md5-rst",
            "Bad TCP MD5-Option / Injected RST",
            Geneva,
            IntraPacket,
            inject(AfterHandshake, TcpFlags::RST, 0, &[Md5Option]),
        ),
        s(
            "geneva-flags1-bad-chksum",
            "Invalid Flags #1 / Bad TCP Checksum",
            Geneva,
            IntraPacket,
            shadow(All, &[InvalidFlagsSynFin, BadTcpChecksum]),
        ),
        s(
            "geneva-flags2-low-ttl",
            "Invalid Flags #2 / Low TTL",
            Geneva,
            IntraPacket,
            shadow(All, &[InvalidFlagsXmas, LowTtl]),
        ),
        s(
            "geneva-flags2-bad-md5",
            "Invalid Flags #2 / Bad TCP MD5-Option",
            Geneva,
            IntraPacket,
            shadow(All, &[InvalidFlagsXmas, Md5Option]),
        ),
        s(
            "geneva-uto-bad-md5",
            "Bad TCP UTO-Option / Bad TCP MD5-Option",
            Geneva,
            IntraPacket,
            shadow(All, &[UtoOption, Md5Option]),
        ),
        s(
            "geneva-wscale-dataoffset",
            "Invalid TCP WScale-Option / Invalid Data-Offset",
            Geneva,
            IntraPacket,
            shadow(All, &[InvalidWScale, DataOffsetTooLarge]),
        ),
        s(
            "geneva-badpayloadlen-bad-chksum",
            "Bad Payload Length / Bad TCP Checksum",
            Geneva,
            IntraPacket,
            shadow(All, &[BadPayloadLength, BadTcpChecksum]),
        ),
        s(
            "geneva-badpayloadlen-low-ttl",
            "Bad Payload Length / Low TTL",
            Geneva,
            IntraPacket,
            shadow(All, &[BadPayloadLength, LowTtl]),
        ),
        s(
            "geneva-badpayloadlen-bad-ack",
            "Bad Payload Length / Bad ACK Num",
            Geneva,
            IntraPacket,
            shadow(All, &[BadPayloadLength, BadAck]),
        ),
        s(
            "geneva-badpayloadlen",
            "Bad Payload Length",
            Geneva,
            IntraPacket,
            shadow(All, &[BadPayloadLength]),
        ),
        s(
            "geneva-bad-ip-len",
            "Bad IP Length",
            Geneva,
            IntraPacket,
            shadow(All, &[BadIpLenLong]),
        ),
        // ============== Extended (this work) — 3 families ===============
        // Protocol-diversity strategies beyond the paper's IPv4/TCP
        // catalogue; appended last so the paper-pinned 73 keep their
        // registry indices.
        s(
            "ext6-hopbyhop-malformed",
            "IPv6: Malformed Extension Chain Shadow",
            AttackSource::Extended,
            IntraPacket,
            Mechanic::ShadowExtHeader { count: All },
        ),
        s(
            "udp-length-lie",
            "UDP: Lying Length / Garbled Checksum Shadow",
            AttackSource::Extended,
            IntraPacket,
            Mechanic::ShadowUdpGame { count: All },
        ),
        s(
            "frag-overlap-conflict",
            "IPv4: Overlapping Fragments w/ Conflicting Bytes",
            AttackSource::Extended,
            InterPacket,
            Mechanic::FragOverlap,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_id() {
        assert!(strategy_by_id("geneva-rst-bad-chksum").is_some());
        assert!(strategy_by_id("nonexistent").is_none());
    }

    #[test]
    fn sources_partition_registry() {
        let total = strategies_from(AttackSource::SymTcp).len()
            + strategies_from(AttackSource::Liberate).len()
            + strategies_from(AttackSource::Geneva).len()
            + strategies_from(AttackSource::Extended).len();
        assert_eq!(total, registry().len());
    }

    #[test]
    fn protocol_extended_families_appended_after_paper_set() {
        // Paper-pinned strategies keep indices 0..73; the Extended families
        // come after, so index-based samplers stay stable.
        assert!(registry()[..73].iter().all(|s| s.source.in_paper()));
        let ext: Vec<_> = registry()[73..].iter().map(|s| s.id).collect();
        assert_eq!(
            ext,
            [
                "ext6-hopbyhop-malformed",
                "udp-length-lie",
                "frag-overlap-conflict"
            ]
        );
    }

    #[test]
    fn names_follow_paper_conventions() {
        for s in strategies_from(AttackSource::Liberate) {
            assert!(
                s.name.ends_with("(Max)") || s.name.ends_with("(Min)"),
                "Liberate strategies carry (Min)/(Max): {}",
                s.name
            );
        }
        for s in strategies_from(AttackSource::SymTcp) {
            assert!(
                s.name.starts_with("Zeek:")
                    || s.name.starts_with("Snort:")
                    || s.name.starts_with("GFW"),
                "SymTCP strategies name their target DPI: {}",
                s.name
            );
        }
    }
}
