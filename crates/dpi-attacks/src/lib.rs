//! PCAP-level simulator for the 73 DPI-evasion strategies evaluated in the
//! CLAP paper (§4.1): 30 from SymTCP [Wang et al., NDSS '20], 23 from
//! Liberate [Li et al., IMC '17] and 20 from Geneva [Bock et al., CCS '19].
//!
//! The paper itself evaluates these attacks by *simulating them at the PCAP
//! level* — injecting or modifying packets inside benign MAWI connections —
//! because the released attack tools do not replay traces. This crate is
//! that simulator. Each [`Strategy`] is a deterministic transformation of a
//! benign [`Connection`] built from two ingredients:
//!
//! * a **placement policy** ([`Mechanic`]): inject a crafted TCP segment at
//!   a state-dependent position (SymTCP), insert *shadow packets* in front
//!   of the matching data packets — 1 for the `(Min)` variants, 5 for
//!   `(Max)` (Liberate, §4.2) — or shadow every data packet (Geneva);
//! * one or two **corruption primitives** ([`Corruption`]): the header
//!   manipulation that makes a rigorous endhost drop the packet while a
//!   lenient DPI accepts it (bad checksum, out-of-window SEQ, low TTL,
//!   invalid data offset, MD5 option, …).
//!
//! Applying a strategy returns the modified connection *plus the ground
//! truth*: the indices of the adversarial packets, which the evaluation
//! harness uses for localization accuracy (paper Figures 10–12).
//!
//! The inter-/intra-packet context categorization follows the paper's
//! Table 8 / Table 2 (24 inter, 49 intra); where the published table is
//! ambiguous we apply the paper's own rule of thumb (§4.3): strategies
//! whose detection requires connection-state context are inter-packet.
//!
//! Beyond the paper's IPv4/TCP catalogue, the registry appends three
//! [`AttackSource::Extended`] protocol-diversity families: IPv6
//! extension-header corruption, UDP length/checksum games, and
//! overlapping-fragment evasion with conflicting bytes. Each is guarded to
//! the flows it applies to (v6 TCP, UDP, v4 TCP respectively) and returns
//! `None` elsewhere.

pub mod corruption;
pub mod registry;
pub mod strategy;

pub use corruption::Corruption;
pub use registry::{registry, strategies_from, strategy_by_id, Strategy};
pub use strategy::{
    AttackResult, AttackSource, ContextCategory, InjectionPoint, Mechanic, ShadowCount,
};

use net_packet::Connection;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Applies `strategy` to clones of `benign` connections, skipping those it
/// does not apply to (e.g. traces without a completed handshake). Each
/// produced connection carries its ground-truth adversarial indices.
pub fn build_adversarial_set(
    strategy: &Strategy,
    benign: &[Connection],
    seed: u64,
) -> Vec<AttackResult> {
    let mut rng = StdRng::seed_from_u64(seed ^ fxhash(strategy.id));
    benign
        .iter()
        .filter_map(|c| strategy.apply(c, &mut rng))
        .collect()
}

/// Tiny deterministic string hash (FNV-1a) so per-strategy RNG streams
/// differ even under the same seed.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_state::TcpTracker;

    /// Strategies from the paper's catalogue (all of the registry except
    /// the Extended families).
    fn paper_strategies() -> impl Iterator<Item = &'static Strategy> {
        registry().iter().filter(|s| s.source.in_paper())
    }

    #[test]
    fn registry_has_exactly_73_paper_strategies() {
        let sym = strategies_from(AttackSource::SymTcp).len();
        let lib = strategies_from(AttackSource::Liberate).len();
        let gen = strategies_from(AttackSource::Geneva).len();
        assert_eq!((sym, lib, gen), (30, 23, 20));
        assert_eq!(paper_strategies().count(), 73);
        assert_eq!(strategies_from(AttackSource::Extended).len(), 3);
        assert_eq!(registry().len(), 76);
    }

    #[test]
    fn categorization_matches_table_2() {
        let inter = paper_strategies()
            .filter(|s| s.category == ContextCategory::InterPacket)
            .count();
        assert_eq!(inter, 24, "Table 2: 24 inter-packet strategies");
        assert_eq!(73 - inter, 49, "Table 2: 49 intra-packet");
    }

    #[test]
    fn strategy_ids_are_unique() {
        let mut ids: Vec<&str> = registry().iter().map(|s| s.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate strategy ids");
    }

    #[test]
    fn every_strategy_applies_to_most_benign_connections() {
        // Paper strategies only: the benign dataset is all-v4 TCP, which
        // the v6/UDP-guarded Extended families correctly skip.
        let benign = traffic_gen::dataset(31, 20);
        for strat in paper_strategies() {
            let set = build_adversarial_set(strat, &benign, 7);
            assert!(
                set.len() >= benign.len() / 2,
                "{} applied to only {}/{} connections",
                strat.id,
                set.len(),
                benign.len()
            );
            for r in &set {
                assert!(
                    !r.adversarial_indices.is_empty(),
                    "{}: no ground truth",
                    strat.id
                );
                for &i in &r.adversarial_indices {
                    assert!(i < r.connection.len(), "{}: index out of range", strat.id);
                }
            }
        }
    }

    #[test]
    fn adversarial_sets_are_deterministic() {
        let benign = traffic_gen::dataset(32, 8);
        let strat = &registry()[0];
        let a = build_adversarial_set(strat, &benign, 9);
        let b = build_adversarial_set(strat, &benign, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.connection, y.connection);
            assert_eq!(x.adversarial_indices, y.adversarial_indices);
        }
    }

    #[test]
    fn non_adversarial_packets_are_preserved() {
        // Paper strategies only: they apply to every all-v4-TCP benign
        // connection here, keeping the benign/attacked zip aligned.
        let benign = traffic_gen::dataset(33, 10);
        for strat in paper_strategies() {
            let set = build_adversarial_set(strat, &benign, 5);
            for (orig, r) in benign.iter().zip(set.iter()) {
                // Every original packet appears in the attacked trace
                // unmodified except possibly those recorded as adversarial
                // (in-place modification strategies).
                let kept = r
                    .connection
                    .packets
                    .iter()
                    .filter(|p| orig.packets.contains(p))
                    .count();
                assert!(
                    kept + r.adversarial_indices.len() >= orig.len(),
                    "{}: lost benign packets ({kept} kept of {})",
                    strat.id,
                    orig.len()
                );
            }
        }
    }

    /// The central premise: adversarial packets must be dropped (or at
    /// least not advance state) at a rigorous endhost. We verify that the
    /// reference tracker never reaches a *better* final state on the
    /// attacked trace and that injected packets are overwhelmingly flagged
    /// structurally-dropped or out-of-window.
    #[test]
    fn adversarial_packets_violate_reference_semantics() {
        let benign = traffic_gen::dataset(34, 15);
        let mut total = 0usize;
        let mut flagged = 0usize;
        for strat in paper_strategies() {
            let set = build_adversarial_set(strat, &benign, 3);
            for r in &set {
                let mut tracker = TcpTracker::new();
                let labels: Vec<_> = r
                    .connection
                    .packets
                    .iter()
                    .enumerate()
                    .map(|(i, p)| tracker.process(p, r.connection.direction(i)))
                    .collect();
                for &i in &r.adversarial_indices {
                    total += 1;
                    flagged += usize::from(!labels[i].in_window);
                }
            }
        }
        let frac = flagged as f32 / total as f32;
        assert!(
            frac > 0.55,
            "only {frac:.2} of adversarial packets flagged by the reference tracker"
        );
    }

    #[test]
    fn protocol_extended_families_apply_to_mixed_traffic() {
        let benign = traffic_gen::mixed_dataset(71, 60);
        for strat in strategies_from(AttackSource::Extended) {
            let set = build_adversarial_set(strat, &benign, 7);
            assert!(
                set.len() >= 5,
                "{} applied to only {}/{} mixed connections",
                strat.id,
                set.len(),
                benign.len()
            );
            for r in &set {
                assert!(
                    !r.adversarial_indices.is_empty(),
                    "{}: no ground truth",
                    strat.id
                );
                for &i in &r.adversarial_indices {
                    assert!(i < r.connection.len(), "{}: index out of range", strat.id);
                }
                for w in r.connection.packets.windows(2) {
                    assert!(w[1].timestamp >= w[0].timestamp - 1e-9);
                }
            }
        }
    }

    /// Every Extended adversarial packet is observable at a rigorous
    /// endhost: structurally dropped (malformed v6 extension chain, lying
    /// UDP length, garbled checksum) or carrying a recorded conflicting
    /// fragment reassembly.
    #[test]
    fn protocol_extended_packets_are_endhost_observable() {
        let benign = traffic_gen::mixed_dataset(72, 60);
        for strat in strategies_from(AttackSource::Extended) {
            let set = build_adversarial_set(strat, &benign, 3);
            for r in &set {
                for &i in &r.adversarial_indices {
                    let p = &r.connection.packets[i];
                    let observable = !TcpTracker::segment_acceptable(p)
                        || p.reassembly.as_ref().is_some_and(|x| x.conflicting);
                    assert!(observable, "{}: packet {} looks benign", strat.id, i);
                }
            }
        }
    }

    /// Each Extended family is guarded to the flow shape it targets.
    #[test]
    fn protocol_extended_families_respect_guards() {
        let benign = traffic_gen::mixed_dataset(73, 80);
        let mut rng = StdRng::seed_from_u64(11);
        for strat in strategies_from(AttackSource::Extended) {
            for conn in &benign {
                if let Some(r) = strat.apply(conn, &mut rng) {
                    let v6 = conn.key.client.addr.is_ipv6();
                    let udp = conn.key.proto == net_packet::ipv4::PROTO_UDP;
                    match strat.id {
                        "ext6-hopbyhop-malformed" => assert!(v6 && !udp),
                        "udp-length-lie" => assert!(udp),
                        "frag-overlap-conflict" => assert!(!v6 && !udp),
                        other => panic!("unexpected Extended id {other}"),
                    }
                    assert_eq!(r.connection.key, conn.key);
                }
            }
        }
    }
}
