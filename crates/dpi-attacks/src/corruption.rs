//! Header-corruption primitives shared by all 73 strategies.
//!
//! Each primitive reproduces one of the header manipulations catalogued in
//! the source papers: a change that causes a rigorous endhost to drop (or
//! ignore) the packet while a simplified DPI implementation accepts it.
//! Primitives are applied *after* the crafted packet is made fully
//! consistent, so exactly one aspect is broken per primitive (except for
//! the checksum-corrupting ones, which are applied last by construction).

use net_packet::{Packet, TcpFlags, TcpOption};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Context the corruptions may need: the expected sequence space at the
/// injection point.
#[derive(Debug, Clone, Copy)]
pub struct SeqContext {
    /// ISN of the sending (client) direction.
    pub isn: u32,
    /// Next expected sequence from the sender.
    pub snd_nxt: u32,
    /// Timestamp value the sender last used, if timestamps are on.
    pub last_tsval: Option<u32>,
}

/// One header manipulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Corruption {
    /// Garble the TCP checksum (paper's motivating Bad-Checksum-RST).
    BadTcpChecksum,
    /// Random far-out-of-window sequence number.
    BadSeq,
    /// Sequence far *below* the ISN (wraps the sequence space).
    UnderflowSeq,
    /// Sequence inside the receive window but not exactly `rcv_nxt`
    /// (Snort accepts, RFC 5961 endhosts challenge).
    PartialInWindowSeq,
    /// Sequence overlapping already-received data.
    OverlappingSeq,
    /// Random invalid acknowledgment number.
    BadAck,
    /// Strip the ACK flag from a data segment.
    NoAckFlag,
    /// Set a non-zero urgent pointer without URG semantics.
    UrgentPointer,
    /// Attach a TCP MD5 signature option with a garbage digest.
    Md5Option,
    /// Timestamp far older than the last one seen (fails PAWS).
    BadTimestamp,
    /// Attach an unusual User-Timeout option.
    UtoOption,
    /// Window-scale option with an illegal shift (> 14).
    InvalidWScale,
    /// TTL too small to reach the server (but enough to pass the DPI).
    LowTtl,
    /// Data offset pointing past the segment end.
    DataOffsetTooLarge,
    /// Data offset below the 5-word minimum.
    DataOffsetTooSmall,
    /// Illegal flag combination #1: SYN|FIN.
    InvalidFlagsSynFin,
    /// Illegal flag combination #2: no flags at all (null).
    InvalidFlagsNull,
    /// Illegal flag combination #3: FIN without ACK plus URG|PSH (xmas-ish).
    InvalidFlagsXmas,
    /// IP total length longer than the actual packet.
    BadIpLenLong,
    /// IP total length shorter than the actual headers.
    BadIpLenShort,
    /// IP header length (IHL) larger than the real header.
    IhlTooLarge,
    /// IP header length below the 5-word minimum.
    IhlTooSmall,
    /// IP version that does not exist (5).
    InvalidIpVersion,
    /// Payload-length equivalence broken via the total-length field
    /// (`tcp_payload ≠ ip_len − ihl − data_offset`).
    BadPayloadLength,
}

impl Corruption {
    /// True when the primitive garbles a checksum and therefore must be
    /// applied after [`Packet::fill_checksums`].
    pub fn breaks_checksum(self) -> bool {
        matches!(self, Corruption::BadTcpChecksum)
    }

    /// Applies the manipulation to `p`.
    pub fn apply(self, p: &mut Packet, ctx: &SeqContext, rng: &mut StdRng) {
        match self {
            Corruption::BadTcpChecksum => {
                p.tcp_mut().checksum ^= rng.gen_range(1u16..=u16::MAX);
            }
            Corruption::BadSeq => {
                p.tcp_mut().seq = ctx
                    .snd_nxt
                    .wrapping_add(rng.gen_range(0x1000_0000u32..0x7000_0000));
            }
            Corruption::UnderflowSeq => {
                p.tcp_mut().seq = ctx.isn.wrapping_sub(rng.gen_range(100_000u32..50_000_000));
            }
            Corruption::PartialInWindowSeq => {
                p.tcp_mut().seq = ctx.snd_nxt.wrapping_add(rng.gen_range(64u32..8_192));
            }
            Corruption::OverlappingSeq => {
                let back = rng
                    .gen_range(1u32..64)
                    .min(ctx.snd_nxt.wrapping_sub(ctx.isn).max(1));
                p.tcp_mut().seq = ctx.snd_nxt.wrapping_sub(back);
            }
            Corruption::BadAck => {
                p.tcp_mut().flags |= TcpFlags::ACK;
                p.tcp_mut().ack = rng.gen::<u32>() | 0x4000_0000;
            }
            Corruption::NoAckFlag => {
                p.tcp_mut().flags = p.tcp_mut().flags & !TcpFlags::ACK;
                p.tcp_mut().ack = 0;
            }
            Corruption::UrgentPointer => {
                p.tcp_mut().urgent = rng.gen_range(1u16..=2048);
            }
            Corruption::Md5Option => {
                let mut digest = [0u8; 16];
                rng.fill(&mut digest);
                p.tcp_mut().options.push(TcpOption::Md5(digest));
                p.tcp_mut().normalize_data_offset();
            }
            Corruption::BadTimestamp => {
                let base = ctx.last_tsval.unwrap_or(1_000_000);
                let old = base.wrapping_sub(rng.gen_range(0x0100_0000u32..0x4000_0000));
                p.tcp_mut()
                    .options
                    .retain(|o| !matches!(o, TcpOption::Timestamps { .. }));
                p.tcp_mut().options.push(TcpOption::Timestamps {
                    tsval: old,
                    tsecr: 0,
                });
                p.tcp_mut().normalize_data_offset();
            }
            Corruption::UtoOption => {
                p.tcp_mut()
                    .options
                    .push(TcpOption::UserTimeout(rng.gen_range(1u16..=0x7fff)));
                p.tcp_mut().normalize_data_offset();
            }
            Corruption::InvalidWScale => {
                p.tcp_mut()
                    .options
                    .retain(|o| !matches!(o, TcpOption::WindowScale(_)));
                p.tcp_mut()
                    .options
                    .push(TcpOption::WindowScale(rng.gen_range(15u8..=200)));
                p.tcp_mut().normalize_data_offset();
            }
            Corruption::LowTtl => {
                p.ipv4_mut().ttl = rng.gen_range(1u8..=4);
            }
            Corruption::DataOffsetTooLarge => {
                let real = (p.tcp_mut().header_len_bytes() / 4) as u8;
                p.tcp_mut().data_offset = rng
                    .gen_range((real + 1).min(15)..=15)
                    .max(real.saturating_add(1).min(15));
            }
            Corruption::DataOffsetTooSmall => {
                p.tcp_mut().data_offset = rng.gen_range(0u8..5);
            }
            Corruption::InvalidFlagsSynFin => {
                p.tcp_mut().flags =
                    TcpFlags::SYN | TcpFlags::FIN | (p.tcp_mut().flags & TcpFlags::ACK);
            }
            Corruption::InvalidFlagsNull => {
                p.tcp_mut().flags = TcpFlags::empty();
                p.tcp_mut().ack = 0;
            }
            Corruption::InvalidFlagsXmas => {
                p.tcp_mut().flags = TcpFlags::FIN | TcpFlags::URG | TcpFlags::PSH;
                p.tcp_mut().ack = 0;
            }
            Corruption::BadIpLenLong => {
                let lied = (p.wire_len() as u16).saturating_add(rng.gen_range(8u16..=1200));
                p.ipv4_mut().total_length = lied;
            }
            Corruption::BadIpLenShort => {
                let hdrs =
                    (p.ipv4_mut().header_len_bytes() + p.tcp_mut().header_len_bytes()) as u16;
                p.ipv4_mut().total_length = hdrs.saturating_sub(rng.gen_range(1u16..=12));
            }
            Corruption::IhlTooLarge => {
                p.ipv4_mut().ihl = rng.gen_range(11u8..=15);
            }
            Corruption::IhlTooSmall => {
                p.ipv4_mut().ihl = rng.gen_range(0u8..5);
            }
            Corruption::InvalidIpVersion => {
                p.ipv4_mut().version = *[0u8, 5, 6, 7, 15].get(rng.gen_range(0..5)).unwrap();
            }
            Corruption::BadPayloadLength => {
                // Lie by a small amount so only the equivalence (#51) and
                // length plausibility break.
                let delta = rng.gen_range(1i32..=64);
                let sign: i32 = if rng.gen_bool(0.5) { 1 } else { -1 };
                let v = p.ipv4_mut().total_length as i32 + sign * delta;
                p.ipv4_mut().total_length = v.clamp(20, 65_535) as u16;
            }
        }
    }

    /// Applies a list of corruptions in the canonical order: structural
    /// manipulations first, fresh checksums, then checksum garbling.
    pub fn apply_all(
        corruptions: &[Corruption],
        p: &mut Packet,
        ctx: &SeqContext,
        rng: &mut StdRng,
    ) {
        for c in corruptions.iter().filter(|c| !c.breaks_checksum()) {
            c.apply(p, ctx, rng);
        }
        p.fill_checksums();
        for c in corruptions.iter().filter(|c| c.breaks_checksum()) {
            c.apply(p, ctx, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_packet::{Ipv4Header, TcpHeader};
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn ctx() -> SeqContext {
        SeqContext {
            isn: 10_000,
            snd_nxt: 15_000,
            last_tsval: Some(500_000),
        }
    }

    fn packet() -> Packet {
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 57);
        let mut tcp = TcpHeader::new(40000, 80, 15_000, 20_000);
        tcp.flags = TcpFlags::ACK | TcpFlags::PSH;
        Packet::new(1.0, ip, tcp, b"payload".to_vec())
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn bad_checksum_invalidates_only_checksum() {
        let mut p = packet();
        Corruption::apply_all(&[Corruption::BadTcpChecksum], &mut p, &ctx(), &mut rng());
        assert!(!p.tcp_checksum_valid());
        assert!(p.ip_checksum_valid());
        assert!(p.tcp().data_offset_consistent());
    }

    #[test]
    fn seq_corruptions_land_in_expected_regions() {
        let c = ctx();
        let mut r = rng();
        for _ in 0..20 {
            let mut p = packet();
            Corruption::BadSeq.apply(&mut p, &c, &mut r);
            assert!(p.tcp().seq.wrapping_sub(c.snd_nxt) >= 0x1000_0000);

            let mut p = packet();
            Corruption::UnderflowSeq.apply(&mut p, &c, &mut r);
            assert!((p.tcp().seq.wrapping_sub(c.isn) as i32) < 0);

            let mut p = packet();
            Corruption::PartialInWindowSeq.apply(&mut p, &c, &mut r);
            let d = p.tcp().seq.wrapping_sub(c.snd_nxt);
            assert!((64..=8192).contains(&d));

            let mut p = packet();
            Corruption::OverlappingSeq.apply(&mut p, &c, &mut r);
            assert!((p.tcp().seq.wrapping_sub(c.snd_nxt) as i32) < 0);
        }
    }

    #[test]
    fn option_corruptions_keep_offsets_consistent() {
        for c in [
            Corruption::Md5Option,
            Corruption::BadTimestamp,
            Corruption::UtoOption,
            Corruption::InvalidWScale,
        ] {
            let mut p = packet();
            Corruption::apply_all(&[c], &mut p, &ctx(), &mut rng());
            assert!(p.tcp().data_offset_consistent(), "{c:?} broke data offset");
            assert!(p.tcp_checksum_valid(), "{c:?} should keep checksum valid");
        }
    }

    #[test]
    fn structural_corruptions_break_acceptability() {
        use tcp_state::TcpTracker;
        for c in [
            Corruption::DataOffsetTooLarge,
            Corruption::DataOffsetTooSmall,
            Corruption::BadIpLenLong,
            Corruption::BadIpLenShort,
            Corruption::IhlTooLarge,
            Corruption::IhlTooSmall,
            Corruption::InvalidIpVersion,
            Corruption::InvalidFlagsSynFin,
            Corruption::InvalidFlagsNull,
            Corruption::BadTcpChecksum,
            Corruption::BadPayloadLength,
        ] {
            let mut p = packet();
            Corruption::apply_all(&[c], &mut p, &ctx(), &mut rng());
            assert!(
                !TcpTracker::segment_acceptable(&p),
                "{c:?} should be endhost-dropped"
            );
        }
    }

    #[test]
    fn bad_timestamp_is_older_than_context() {
        let mut p = packet();
        Corruption::apply_all(&[Corruption::BadTimestamp], &mut p, &ctx(), &mut rng());
        let (tsval, _) = p.tcp().timestamps().unwrap();
        assert!((tsval.wrapping_sub(500_000) as i32) < 0);
    }

    #[test]
    fn low_ttl_in_expected_band() {
        let mut p = packet();
        Corruption::apply_all(&[Corruption::LowTtl], &mut p, &ctx(), &mut rng());
        assert!((1..=4).contains(&p.ipv4().ttl));
        assert!(
            p.ip_checksum_valid(),
            "TTL rewrite must refresh the IP checksum"
        );
    }

    #[test]
    fn combined_corruptions_apply_in_order() {
        let mut p = packet();
        Corruption::apply_all(
            &[Corruption::BadTcpChecksum, Corruption::LowTtl],
            &mut p,
            &ctx(),
            &mut rng(),
        );
        assert!((1..=4).contains(&p.ipv4().ttl));
        assert!(!p.tcp_checksum_valid());
        assert!(p.ip_checksum_valid());
    }
}
