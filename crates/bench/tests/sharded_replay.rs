//! Deterministic sharded pcap-replay regression tests.
//!
//! `tests/data/shard_tiny.pcap` is a tiny synthesized capture (benign
//! generated traffic plus one adversarial strategy, round-tripped through
//! the real pcap writer) checked into the repository so this suite pins
//! the full deployment path: file bytes → pcap reader → RSS-sharded
//! multi-queue scoring → rendered verdict table. The table must be
//! **byte-identical** across repeated runs (thread scheduling must not
//! leak into output) and across shard counts (the sharded engine must
//! equal the single-threaded one, not merely approximate it).
//!
//! Regenerate the capture with
//! `cargo test -p bench --test sharded_replay -- --ignored regenerate`
//! after an intentional traffic-generator change, and commit the result.

use clap_core::{Clap, ClapConfig, Fault, FaultPlan, OverloadPolicy, ShardConfig, StreamConfig};
use net_packet::pcap::{read_pcap, write_pcap, write_pcap_raw};
use net_packet::Packet;
use std::sync::OnceLock;

fn pcap_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join("shard_tiny.pcap")
}

fn mixed_pcap_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join("mixed_tiny.pcap")
}

/// One trained model shared across tests (training dominates runtime).
fn model() -> &'static Clap {
    static MODEL: OnceLock<Clap> = OnceLock::new();
    MODEL.get_or_init(|| {
        let benign = traffic_gen::dataset(87, 20);
        let mut cfg = ClapConfig::ci();
        cfg.ae.epochs = 8;
        Clap::train(&benign, &cfg).0
    })
}

fn load_capture() -> Vec<Packet> {
    let bytes = std::fs::read(pcap_path()).expect(
        "tests/data/shard_tiny.pcap missing — regenerate with \
         `cargo test -p bench --test sharded_replay -- --ignored regenerate`",
    );
    read_pcap(&bytes[..]).expect("checked-in capture parses")
}

/// The full `--shards N` replay path of `exp_stream_pcap`: sharded
/// scoring with default stream policy, rendered through the shared
/// deterministic verdict table.
fn sharded_table(clap: &Clap, packets: &[Packet], shards: usize) -> String {
    let run = clap
        .sharded_scorer_with(ShardConfig {
            shards,
            queue_capacity: 1024,
            stream: StreamConfig::default(),
            ..ShardConfig::default()
        })
        .score_stream(packets.iter());
    let closed: Vec<_> = run.verdicts.into_iter().map(|v| v.flow).collect();
    bench::verdict_table(&closed, usize::MAX)
}

/// `exp_stream_pcap --shards 4` emits byte-identical verdict tables
/// across two runs (scheduling independence) and against `--shards 1`
/// and the plain single-threaded engine (shard-count independence).
#[test]
fn sharded_pcap_replay_is_byte_identical() {
    let clap = model();
    let packets = load_capture();
    assert!(!packets.is_empty());

    let four_a = sharded_table(clap, &packets, 4);
    let four_b = sharded_table(clap, &packets, 4);
    assert_eq!(
        four_a, four_b,
        "two --shards 4 replays must render identical bytes"
    );

    let one = sharded_table(clap, &packets, 1);
    assert_eq!(four_a, one, "--shards 4 must equal --shards 1");

    // The unsharded engine (the exp_stream_pcap --shards 1 default path).
    let mut plain = clap.stream_scorer();
    for p in &packets {
        plain.push(p);
    }
    let mut closed = plain.drain_closed();
    closed.extend(plain.finish());
    let unsharded = bench::verdict_table(&closed, usize::MAX);
    assert_eq!(four_a, unsharded, "sharded must equal the plain engine");
}

/// Cross-flow micro-batching must be invisible in the rendered output:
/// over the checked-in capture, the verdict table is **byte-identical**
/// with batching on vs off — through both the plain engine and the
/// sharded front end, at f32 and at int8 — for several flush budgets.
#[test]
fn microbatched_pcap_replay_is_byte_identical() {
    let clap = model();
    let packets = load_capture();
    assert!(!packets.is_empty());

    let table = |quant: clap_core::QuantMode, microbatch: usize, shards: usize| {
        let stream = StreamConfig {
            quant,
            microbatch,
            ..StreamConfig::default()
        };
        let closed = if shards == 0 {
            let mut s = clap.stream_scorer_with(stream);
            for p in &packets {
                s.push(p);
            }
            let mut closed = s.drain_closed();
            closed.extend(s.finish());
            closed
        } else {
            clap.sharded_scorer_with(ShardConfig {
                shards,
                queue_capacity: 1024,
                stream,
                ..ShardConfig::default()
            })
            .score_stream(packets.iter())
            .verdicts
            .into_iter()
            .map(|v| v.flow)
            .collect()
        };
        bench::verdict_table(&closed, usize::MAX)
    };

    for quant in [clap_core::QuantMode::Off, clap_core::QuantMode::Int8] {
        let per_packet = table(quant, 0, 0);
        for cap in [2usize, 16, 64] {
            assert_eq!(
                per_packet,
                table(quant, cap, 0),
                "plain engine diverged at {quant:?} with microbatch {cap}"
            );
        }
        for shards in [1usize, 4] {
            assert_eq!(
                table(quant, 0, shards),
                table(quant, 16, shards),
                "sharded engine diverged at {quant:?} with {shards} shards"
            );
        }
        assert_eq!(
            per_packet,
            table(quant, 16, 4),
            "micro-batched sharded run diverged from the plain per-packet engine at {quant:?}"
        );
    }
}

/// The `--fault-plan` replay path of `exp_stream_pcap` is as
/// deterministic as the fault-free one: the same seed-derived schedule
/// (plus a supervised panic and forced burst under `degrade`) replayed
/// twice over the checked-in capture renders byte-identical verdict
/// tables and identical per-shard stats and quarantine logs.
#[test]
fn fault_plan_replay_is_byte_identical() {
    clap_core::shard::fault::silence_injected_panics();
    let clap = model();
    let packets = load_capture();
    let mid = (packets.len() / 2) as u64;
    let plan = FaultPlan::randomized(0x5eed_ca97, packets.len() as u64)
        .with(Fault::PanicAt { arrival: mid })
        .with(Fault::FullBurst {
            from: mid + 1,
            until: (mid + 9).min(packets.len() as u64),
        });
    let replay = || {
        let run = clap
            .sharded_scorer_with(ShardConfig {
                shards: 4,
                queue_capacity: packets.len().max(1),
                overload: OverloadPolicy::Degrade { keep_one_in: 2 },
                faults: plan.clone(),
                ..ShardConfig::default()
            })
            .try_score_stream(packets.iter())
            .expect("recoverable faults must not fail the run");
        clap_core::ShardHealth::check_accounting(&run.stats).expect("accounting invariant");
        let closed: Vec<_> = run.verdicts.iter().map(|v| v.flow.clone()).collect();
        (bench::verdict_table(&closed, usize::MAX), run)
    };
    let (table_a, run_a) = replay();
    let (table_b, run_b) = replay();
    assert_eq!(
        table_a, table_b,
        "same fault plan must render identical bytes across runs"
    );
    assert_eq!(run_a.stats, run_b.stats, "per-shard stats diverged");
    assert_eq!(
        run_a.quarantined, run_b.quarantined,
        "quarantine logs diverged"
    );
    assert!(
        run_a.quarantined.iter().any(|q| q.arrival == mid),
        "the injected panic must be quarantined"
    );
}

/// The capture itself is pinned: if the traffic generator or pcap writer
/// drift, this fails loudly instead of silently re-baselining the
/// determinism test above.
#[test]
fn shard_tiny_capture_is_stable() {
    let packets = load_capture();
    assert_eq!(packets.len(), synthesize_capture().len());
    let mut buf = Vec::new();
    write_pcap(&mut buf, &synthesize_capture()).expect("serialize");
    let on_disk = std::fs::read(pcap_path()).expect("read checked-in capture");
    assert_eq!(
        buf, on_disk,
        "regenerated capture differs from tests/data/shard_tiny.pcap — \
         if the generator change is intentional, re-run the ignored \
         `regenerate` test and commit the new file"
    );
}

/// Builds the tiny capture deterministically: four benign connections
/// plus one adversarial strategy over one more, interleaved by timestamp.
fn synthesize_capture() -> Vec<Packet> {
    let mut conns = traffic_gen::dataset(0x5eed_ca97, 4);
    let strategy = &dpi_attacks::registry()[0];
    let base = traffic_gen::dataset(0x5eed_ca98, 1);
    let adv = dpi_attacks::build_adversarial_set(strategy, &base, 7);
    conns.extend(adv.into_iter().map(|r| r.connection));
    let mut stream: Vec<Packet> = conns
        .iter()
        .flat_map(|c| c.packets.iter().cloned())
        .collect();
    stream.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
    stream
}

/// Builds the mixed-protocol capture deterministically: eight mixed
/// v4/v6, TCP/UDP connections plus one connection attacked with each
/// Extended protocol-diversity family, serialized to raw wire records
/// with IPv4 datagrams over 600 bytes split into fragments. The pcap
/// reader reassembles those fragments inline on load, so this capture
/// exercises the full v4/v6/UDP/fragment dispatch of the parser in
/// front of the sharded engine.
fn synthesize_mixed_capture() -> Vec<(f64, Vec<u8>)> {
    let mut conns = traffic_gen::mixed_dataset(0x9ca9_5eed, 8);
    let base = traffic_gen::mixed_dataset(0x9ca9_5eee, 6);
    for strat in dpi_attacks::strategies_from(dpi_attacks::AttackSource::Extended) {
        let adv = dpi_attacks::build_adversarial_set(strat, &base, 7);
        conns.extend(adv.into_iter().take(1).map(|r| r.connection));
    }
    traffic_gen::capture_records(&conns, Some(600))
}

fn load_mixed_capture() -> Vec<Packet> {
    let bytes = std::fs::read(mixed_pcap_path()).expect(
        "tests/data/mixed_tiny.pcap missing — regenerate with \
         `cargo test -p bench --test sharded_replay -- --ignored regenerate`",
    );
    read_pcap(&bytes[..]).expect("checked-in mixed capture parses")
}

/// The mixed v4/v6/UDP (and fragmented) capture replays byte-identically
/// across shard counts and against the plain single-threaded engine —
/// the widened `FlowKey` must hash and route every protocol shape
/// deterministically, exactly like the all-v4 capture above.
#[test]
fn protocol_mixed_pcap_replay_is_byte_identical() {
    let clap = model();
    let packets = load_mixed_capture();
    assert!(!packets.is_empty());
    assert!(
        packets.iter().any(|p| p.ip.version_field() == 6),
        "mixed capture must contain IPv6 packets"
    );
    assert!(
        packets.iter().any(|p| p.is_udp()),
        "mixed capture must contain UDP packets"
    );
    assert!(
        packets.iter().any(|p| p.reassembly.is_some()),
        "mixed capture must contain reassembled fragments"
    );

    let four_a = sharded_table(clap, &packets, 4);
    let four_b = sharded_table(clap, &packets, 4);
    assert_eq!(
        four_a, four_b,
        "two --shards 4 mixed replays must render identical bytes"
    );
    let one = sharded_table(clap, &packets, 1);
    assert_eq!(four_a, one, "--shards 4 must equal --shards 1");

    let mut plain = clap.stream_scorer();
    for p in &packets {
        plain.push(p);
    }
    let mut closed = plain.drain_closed();
    closed.extend(plain.finish());
    let unsharded = bench::verdict_table(&closed, usize::MAX);
    assert_eq!(four_a, unsharded, "sharded must equal the plain engine");
}

/// The mixed capture is pinned like the all-v4 one: generator or
/// fragmenter drift fails loudly instead of re-baselining silently.
#[test]
fn protocol_mixed_capture_is_stable() {
    let mut buf = Vec::new();
    write_pcap_raw(&mut buf, &synthesize_mixed_capture()).expect("serialize");
    let on_disk = std::fs::read(mixed_pcap_path()).expect("read checked-in mixed capture");
    assert_eq!(
        buf, on_disk,
        "regenerated capture differs from tests/data/mixed_tiny.pcap — \
         if the generator change is intentional, re-run the ignored \
         `regenerate` test and commit the new file"
    );
}

/// Writes `tests/data/shard_tiny.pcap` and `tests/data/mixed_tiny.pcap`.
/// Ignored: run explicitly (and commit the result) only when a capture
/// must change.
#[test]
#[ignore = "writes the checked-in captures; run explicitly to regenerate"]
fn regenerate_mixed_tiny_pcap() {
    let records = synthesize_mixed_capture();
    let mut buf = Vec::new();
    write_pcap_raw(&mut buf, &records).expect("serialize mixed capture");
    std::fs::create_dir_all(mixed_pcap_path().parent().unwrap()).expect("create tests/data");
    std::fs::write(mixed_pcap_path(), &buf).expect("write mixed capture");
    eprintln!(
        "wrote {} ({} records, {} bytes)",
        mixed_pcap_path().display(),
        records.len(),
        buf.len()
    );
}

/// Writes `tests/data/shard_tiny.pcap`. Ignored: run explicitly (and
/// commit the result) only when the capture must change.
#[test]
#[ignore = "writes the checked-in capture; run explicitly to regenerate"]
fn regenerate_shard_tiny_pcap() {
    let stream = synthesize_capture();
    let mut buf = Vec::new();
    write_pcap(&mut buf, &stream).expect("serialize capture");
    std::fs::create_dir_all(pcap_path().parent().unwrap()).expect("create tests/data");
    std::fs::write(pcap_path(), &buf).expect("write capture");
    eprintln!(
        "wrote {} ({} packets, {} bytes)",
        pcap_path().display(),
        stream.len(),
        buf.len()
    );
}
