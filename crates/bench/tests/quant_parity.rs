//! Int8-vs-f32 accuracy parity on the checked-in capture.
//!
//! The quantization proptests bound score drift statistically; this suite
//! pins the deployment-facing claim on a fixed artifact: replaying
//! `tests/data/shard_tiny.pcap` (four benign connections plus one
//! adversarial strategy) through the streaming engine at both precisions
//! must produce **identical verdict tables at the default threshold** —
//! a verdict-flip rate of exactly zero — and int8 scores within the
//! calibrated drift bound of f32. Everything here is deterministic (fixed
//! model seed, fixed capture, exact int8 kernels), so a failure means the
//! quantization scheme changed behavior, not that a die rolled badly.

use clap_core::{Clap, ClapConfig, ClosedFlow, QuantMode, StreamConfig};
use net_packet::pcap::read_pcap;
use net_packet::Packet;
use std::sync::OnceLock;

/// Maximum relative int8-vs-f32 score drift tolerated on the capture.
/// Deliberately tighter than the 0.05 proptest bound in
/// `clap-core/tests/proptests.rs`: that one must absorb randomized
/// corrupted traffic across CI kernel-ISA legs, while this fixed capture
/// measures deterministically — worst flow drift is 0.59% since the
/// outlier-aware activation clip landed, so 2% pins the calibration with
/// real margin.
const INT8_REL_DRIFT: f32 = 0.02;

fn pcap_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join("shard_tiny.pcap")
}

/// One trained model shared across tests (training dominates runtime).
/// Same seeds as the sharded_replay suite, so the two pin one artifact.
fn model() -> &'static Clap {
    static MODEL: OnceLock<Clap> = OnceLock::new();
    MODEL.get_or_init(|| {
        let benign = traffic_gen::dataset(87, 20);
        let mut cfg = ClapConfig::ci();
        cfg.ae.epochs = 8;
        Clap::train(&benign, &cfg).0
    })
}

fn load_capture() -> Vec<Packet> {
    let bytes = std::fs::read(pcap_path()).expect(
        "tests/data/shard_tiny.pcap missing — regenerate with \
         `cargo test -p bench --test sharded_replay -- --ignored regenerate`",
    );
    read_pcap(&bytes[..]).expect("checked-in capture parses")
}

/// The deployment threshold recipe — exactly `Clap::threshold_from_benign`,
/// pinned to the f32 engine — on held-out benign traffic. Quantile 0.90:
/// this test's deliberately tiny ci-preset model separates the capture's
/// adversarial flow only marginally, and at 0.95 the threshold lands
/// within float-noise of that flow's score — a boundary where *any* two
/// engines (even two f32 ISAs) can disagree. The flip-rate claim is about
/// thresholds with real margin, which 0.90 provides here.
fn default_threshold(clap: &Clap) -> f32 {
    let benign = traffic_gen::dataset(0x7e57_ca97, 24);
    clap.threshold_from_benign_with(&benign, 0.90, QuantMode::Off)
}

/// Streams the capture at the given precision and returns the finalized
/// flows (default teardown policy — the `exp_stream_pcap` replay path).
fn replay(clap: &Clap, packets: &[Packet], quant: QuantMode) -> Vec<ClosedFlow> {
    let mut scorer = clap.stream_scorer_with(StreamConfig {
        quant,
        ..StreamConfig::default()
    });
    for p in packets {
        scorer.push(p);
    }
    let mut closed = scorer.drain_closed();
    closed.extend(scorer.finish());
    closed
}

/// Renders the boolean verdict table at a threshold: one row per flow
/// (sorted by identity so the rendering is order-insensitive), with the
/// flagged/clear verdict but NOT the raw score — scores legitimately
/// differ between precisions; verdicts must not.
fn verdict_flag_table(closed: &[ClosedFlow], threshold: f32) -> String {
    let mut rows: Vec<String> = closed
        .iter()
        .map(|c| {
            format!(
                "{} -> {} [{} pkts] {}",
                c.key.client,
                c.key.server,
                c.packets,
                if c.scored.score > threshold {
                    "FLAGGED"
                } else {
                    "clear"
                }
            )
        })
        .collect();
    rows.sort();
    rows.join("\n")
}

/// The headline parity claim: zero verdict flips at the default threshold
/// on the checked-in capture, and per-flow score drift within the bound.
#[test]
fn int8_verdict_table_matches_f32_on_checked_in_pcap() {
    let clap = model();
    let packets = load_capture();
    assert!(!packets.is_empty());
    let threshold = default_threshold(clap);

    let f32_flows = replay(clap, &packets, QuantMode::Off);
    let int8_flows = replay(clap, &packets, QuantMode::Int8);
    assert_eq!(f32_flows.len(), int8_flows.len(), "same flow set");

    let f32_table = verdict_flag_table(&f32_flows, threshold);
    let int8_table = verdict_flag_table(&int8_flows, threshold);
    assert_eq!(
        f32_table, int8_table,
        "int8 verdicts flipped at the default threshold"
    );
    // The table must have teeth: the capture contains one adversarial
    // connection, so at least one flow is flagged and at least one clear.
    assert!(
        f32_table.contains("FLAGGED"),
        "no flow flagged:\n{f32_table}"
    );
    assert!(
        f32_table.contains("clear"),
        "every flow flagged:\n{f32_table}"
    );

    // Pair flows by identity+size and bound the per-flow score drift.
    for f in &f32_flows {
        let q = int8_flows
            .iter()
            .find(|c| c.key == f.key && c.packets == f.packets)
            .expect("int8 replay produced the same flows");
        let rel = (q.scored.score - f.scored.score).abs() / f.scored.score.abs().max(1e-3);
        assert!(
            rel <= INT8_REL_DRIFT,
            "flow {} drifted {:.2}%: f32 {} vs int8 {}",
            f.key,
            rel * 100.0,
            f.scored.score,
            q.scored.score
        );
    }
}

/// Int8 replay output is deterministic: two runs render byte-identical
/// full verdict tables (scores included), precision drift or not.
#[test]
fn int8_pcap_replay_is_deterministic() {
    let clap = model();
    let packets = load_capture();
    let a = bench::verdict_table(&replay(clap, &packets, QuantMode::Int8), usize::MAX);
    let b = bench::verdict_table(&replay(clap, &packets, QuantMode::Int8), usize::MAX);
    assert_eq!(a, b, "two int8 replays must render identical bytes");
}
