//! Micro-benchmarks of the hot kernels: feature extraction, reference
//! tracker labeling, GRU stepping and autoencoder forward passes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use neural::{Autoencoder, GruClassifier, GruClassifierConfig, Matrix};

fn bench_feature_extraction(c: &mut Criterion) {
    let conns = traffic_gen::dataset(0xfea7, 50);
    let packets: usize = conns.iter().map(net_packet::Connection::len).sum();
    let mut group = c.benchmark_group("substrate");
    group.throughput(Throughput::Elements(packets as u64));
    group.sample_size(20);
    group.bench_function("feature_extraction", |b| {
        b.iter(|| {
            conns
                .iter()
                .map(clap_core::extract_connection)
                .map(|f| f.len())
                .sum::<usize>()
        })
    });
    group.bench_function("tcp_state_labeling", |b| {
        b.iter(|| {
            conns
                .iter()
                .map(|c| tcp_state::label_connection(c).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let cfg = GruClassifierConfig {
        input: 32,
        hidden: 32,
        classes: 22,
        epochs: 1,
        batch_size: 8,
        learning_rate: 1e-3,
        seed: 1,
    };
    let rnn = GruClassifier::new(&cfg);
    let seq: Vec<Vec<f32>> = (0..16).map(|t| vec![0.1 * t as f32; 32]).collect();

    let ae = Autoencoder::new(&[345, 192, 96, 40, 96, 192, 345], 2);
    let batch = Matrix::from_fn(32, 345, |r, c| ((r * 31 + c) % 17) as f32 / 17.0);

    let mut group = c.benchmark_group("models");
    group.sample_size(30);
    group.bench_function("gru_forward_16pkt", |b| b.iter(|| rnn.trace(&seq).len()));
    group.bench_function("ae_forward_batch32", |b| {
        b.iter(|| ae.reconstruction_errors(&batch).len())
    });
    group.finish();
}

criterion_group!(benches, bench_feature_extraction, bench_models);
criterion_main!(benches);
