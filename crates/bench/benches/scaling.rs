//! Thread-scaling benchmark behind the paper's "linear scalability" claim
//! (contribution 4): scoring throughput with 1, 2 and 4 rayon threads.
//! On single-core machines the higher thread counts degenerate to the
//! 1-thread case, which is itself informative.

use clap_core::{Clap, ClapConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_scaling(c: &mut Criterion) {
    let mut cfg = ClapConfig::ci();
    cfg.ae.epochs = 4;
    cfg.rnn.epochs = 2;
    let train = traffic_gen::dataset(0x5ca1e, 40);
    let (clap, _) = Clap::train(&train, &cfg);
    let corpus = traffic_gen::dataset(0xfeed, 24);
    let packets: usize = corpus.iter().map(net_packet::Connection::len).sum();

    let mut group = c.benchmark_group("thread_scaling");
    group.throughput(Throughput::Elements(packets as u64));
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| pool.install(|| clap.score_connections(&corpus).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
