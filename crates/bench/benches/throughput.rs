//! Criterion micro-benchmarks behind Table 3: end-to-end scoring
//! throughput of CLAP vs the baselines on a fixed connection corpus.

use baselines::{Baseline1, Baseline1Config, KitsuneConfig, KitsuneLite};
use clap_core::{Clap, ClapConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn bench_scoring(c: &mut Criterion) {
    // Small but non-trivial models; benches measure inference, not training.
    let mut cfg = ClapConfig::ci();
    cfg.ae.epochs = 4;
    cfg.rnn.epochs = 2;
    let train = traffic_gen::dataset(0xbe9c, 40);
    let (clap, _) = Clap::train(&train, &cfg);
    let mut b1_cfg = Baseline1Config::quick();
    b1_cfg.ae.epochs = 10;
    let b1 = Baseline1::train(&train, &b1_cfg);
    let k_cfg = KitsuneConfig {
        epochs: 1,
        ..KitsuneConfig::default()
    };
    let kitsune = KitsuneLite::train(&train, &k_cfg);

    let corpus = traffic_gen::dataset(0xc0de, 20);
    let packets: usize = corpus.iter().map(net_packet::Connection::len).sum();

    let mut group = c.benchmark_group("scoring_throughput");
    group.throughput(Throughput::Elements(packets as u64));
    group.sample_size(10);
    group.bench_function("clap", |b| {
        b.iter_batched(
            || corpus.clone(),
            |conns| clap.score_connections(&conns),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("clap_unfused", |b| {
        b.iter_batched(
            || corpus.clone(),
            |conns| clap.score_connections_unfused(&conns),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("baseline1", |b| {
        b.iter_batched(
            || corpus.clone(),
            |conns| b1.score_connections(&conns),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("kitsune_lite", |b| {
        b.iter_batched(
            || corpus.clone(),
            |conns| kitsune.score_connections(&conns),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
