//! Shared experiment harness for regenerating every table and figure of
//! the CLAP paper. Each `exp_*` binary in `src/bin/` prints the rows of
//! one artifact; this library holds the common machinery: presets,
//! model training, per-strategy evaluation and table formatting.
//!
//! See `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured results.

use baselines::{Baseline1, Baseline1Config, KitsuneConfig, KitsuneLite};
use clap_core::{auc_roc, equal_error_rate, top_n_hit, Clap, ClapConfig};
use dpi_attacks::{build_adversarial_set, AttackResult, Strategy};
use net_packet::Connection;
use serde::{Deserialize, Serialize};

/// Scale preset for an experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Preset {
    pub name: String,
    /// Benign connections used for training.
    pub train_conns: usize,
    /// Held-out benign connections for the negative score distribution.
    pub test_benign: usize,
    /// Benign connections each strategy is applied to (positives).
    pub test_adv_per_strategy: usize,
    pub clap: ClapConfig,
    pub baseline1: Baseline1Config,
    pub kitsune: KitsuneConfig,
    /// Seed for dataset generation.
    pub seed: u64,
}

impl Preset {
    /// Minutes-scale single-core preset; the default for every binary.
    pub fn quick() -> Self {
        let mut clap = ClapConfig::quick();
        clap.rnn.epochs = 20;
        clap.ae.epochs = 110;
        clap.ae.learning_rate = 3e-3;
        let mut baseline1 = Baseline1Config::quick();
        baseline1.ae.epochs = 40;
        Preset {
            name: "quick".into(),
            train_conns: 250,
            test_benign: 80,
            test_adv_per_strategy: 40,
            clap,
            baseline1,
            kitsune: KitsuneConfig::default(),
            seed: 0xc1a9,
        }
    }

    /// CI-scale: seconds, for integration tests of the harness itself.
    pub fn ci() -> Self {
        let mut p = Self::quick();
        p.name = "ci".into();
        p.train_conns = 60;
        p.test_benign = 24;
        p.test_adv_per_strategy = 12;
        p.clap = ClapConfig::ci();
        p.baseline1.ae.epochs = 12;
        p
    }

    /// Paper-scale (Table 4/Table 6 sizes). Hours of CPU time.
    pub fn paper() -> Self {
        let mut p = Self::quick();
        p.name = "paper".into();
        p.train_conns = 31_198;
        p.test_benign = 1_000;
        p.test_adv_per_strategy = 75; // ≈ 6,424 test conns over 73 strategies
        p.clap = ClapConfig::paper();
        p.baseline1 = Baseline1Config::paper();
        p
    }

    /// Flow-table-scale preset: CI-sized models (training cost is not the
    /// point), but `exp_throughput` additionally runs the elephant/mice
    /// churn phase against a million-flow table and records `flows_peak`,
    /// `scale_pps` and `bytes_per_flow`.
    pub fn scale() -> Self {
        let mut p = Self::ci();
        p.name = "scale".into();
        p
    }

    /// Parses `--preset <name>` from CLI args; defaults to quick.
    pub fn from_args(args: &[String]) -> Preset {
        match arg_value(args, "--preset").as_deref() {
            Some("paper") => Preset::paper(),
            Some("ci") => Preset::ci(),
            Some("scale") => Preset::scale(),
            _ => Preset::quick(),
        }
    }
}

/// The subset of a `BENCH_throughput.json` record the CI regression gate
/// reads. Extra fields in the file are ignored, so references recorded by
/// older report formats keep working as the report grows fields.
#[derive(Debug, Clone)]
pub struct ThroughputReference {
    /// Packets/second of the fused CLAP engine when the reference was
    /// recorded.
    pub clap_fused_pps: f64,
    /// Fused ÷ unfused packets/second when the reference was recorded.
    /// Unlike absolute pps this ratio is machine-independent (both
    /// engines run on the same hardware), so gating on it catches kernel
    /// regressions that a faster CI runner would otherwise mask. `None`
    /// for references recorded before the field existed — those gate on
    /// pps alone.
    pub fusion_speedup: Option<f64>,
    /// Packets/second of the RSS-sharded multi-queue streaming engine
    /// when the reference was recorded. `None` for references recorded
    /// before sharding existed — those skip the sharded gate.
    pub clap_sharded_pps: Option<f64>,
    /// Int8 ÷ f32 fused packets/second when the reference was recorded
    /// (`exp_throughput --quant int8`). Machine-independent like
    /// `fusion_speedup` (both engines share the hardware), so gating on
    /// it catches an int8 kernel regression — or quantization silently
    /// falling back to f32 — regardless of runner speed. `None` for
    /// references recorded before quantization existed.
    pub quant_speedup: Option<f64>,
    /// Packets/second of the million-flow churn phase (`--preset scale`)
    /// when the reference was recorded. `None` for references recorded
    /// before the scale phase existed — those skip the scale gate.
    pub scale_pps: Option<f64>,
    /// Heap bytes per peak live flow measured by the churn phase when the
    /// reference was recorded. Machine-independent (pure data-structure
    /// layout), so its growth budget can be tight. `None` for references
    /// recorded before the scale phase existed.
    pub bytes_per_flow: Option<f64>,
    /// Micro-batched ÷ per-packet streaming packets/second when the
    /// reference was recorded (`exp_throughput --microbatch N`). Both
    /// runs share the corpus, precision and hardware, so the ratio is
    /// machine-independent like `quant_speedup`; a drop past the budget
    /// means cross-flow batching stopped paying for itself (a flush
    /// policy regression, a gather/scatter cost creep, or the batched
    /// kernels silently degrading to per-row calls). `None` for
    /// references recorded before micro-batching existed.
    pub microbatch_speedup: Option<f64>,
}

/// Deserialization targets for the reference generations (the vendored
/// serde derive has no `#[serde(default)]`, so optional fields are each
/// parsed through their own single-field struct, engaged only when the
/// record mentions the key).
#[derive(Deserialize)]
struct ReferencePpsOnly {
    clap_fused_pps: f64,
}

#[derive(Deserialize)]
struct ReferenceSpeedupField {
    fusion_speedup: f64,
}

#[derive(Deserialize)]
struct ReferenceShardedField {
    clap_sharded_pps: f64,
}

#[derive(Deserialize)]
struct ReferenceQuantField {
    quant_speedup: f64,
}

#[derive(Deserialize)]
struct ReferenceScalePpsField {
    scale_pps: f64,
}

#[derive(Deserialize)]
struct ReferenceBytesPerFlowField {
    bytes_per_flow: f64,
}

#[derive(Deserialize)]
struct ReferenceMicrobatchField {
    microbatch_speedup: f64,
}

/// Parses an optional reference field: absent key → `None`, present but
/// unparseable or non-finite → hard error. Silently downgrading a broken
/// field to "absent" would disable its gate exactly when the file is
/// broken, so that path does not exist.
fn optional_metric<T: Deserialize>(
    json: &str,
    key: &str,
    value: impl Fn(T) -> f64,
) -> Result<Option<f64>, String> {
    if !json.contains(&format!("\"{key}\"")) {
        return Ok(None);
    }
    let parsed = serde_json::from_str::<T>(json)
        .map_err(|e| format!("cannot parse reference {key}: {e:?}"))?;
    let v = value(parsed);
    // The vendored JSON parser maps type mismatches to NaN rather than
    // failing; treat that as the parse error it is.
    if !v.is_finite() {
        return Err(format!("reference {key} is not a finite number ({v})"));
    }
    Ok(Some(v))
}

impl ThroughputReference {
    /// Parses a reference record, accepting every recorded generation:
    /// pps-only (PR 2), pps + `fusion_speedup` (PR 3), pps + speedup +
    /// `clap_sharded_pps` (PR 4), + `quant_speedup` (PR 5), and +
    /// `microbatch_speedup` (PR 8). A record
    /// that *mentions* an optional field but fails to parse it is a hard
    /// error — silently downgrading would disable that gate exactly when
    /// the file is broken.
    pub fn from_json(json: &str) -> Result<ThroughputReference, String> {
        let base = serde_json::from_str::<ReferencePpsOnly>(json)
            .map_err(|e| format!("cannot parse reference: {e:?}"))?;
        Ok(ThroughputReference {
            clap_fused_pps: base.clap_fused_pps,
            fusion_speedup: optional_metric(json, "fusion_speedup", |r: ReferenceSpeedupField| {
                r.fusion_speedup
            })?,
            clap_sharded_pps: optional_metric(
                json,
                "clap_sharded_pps",
                |r: ReferenceShardedField| r.clap_sharded_pps,
            )?,
            quant_speedup: optional_metric(json, "quant_speedup", |r: ReferenceQuantField| {
                r.quant_speedup
            })?,
            scale_pps: optional_metric(json, "scale_pps", |r: ReferenceScalePpsField| r.scale_pps)?,
            bytes_per_flow: optional_metric(
                json,
                "bytes_per_flow",
                |r: ReferenceBytesPerFlowField| r.bytes_per_flow,
            )?,
            microbatch_speedup: optional_metric(
                json,
                "microbatch_speedup",
                |r: ReferenceMicrobatchField| r.microbatch_speedup,
            )?,
        })
    }

    /// Loads a reference record from a JSON file (e.g. the checked-in
    /// `BENCH_reference.json`).
    pub fn load(path: &str) -> Result<ThroughputReference, String> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read reference {path}: {e}"))?;
        Self::from_json(&json).map_err(|e| format!("{e} ({path})"))
    }
}

/// Generic relative-regression gate: fails when `current` has lost more
/// than `max_regress` (a fraction, e.g. `0.20` = 20%) of `reference`.
/// Returns the relative change (`+0.05` = 5% better, `-0.25` = 25% worse)
/// on success so callers can report the margin. `metric` names the
/// quantity in error messages.
///
/// Non-finite or non-positive measurements and references are rejected
/// outright — a NaN must fail the gate, not sail through a comparison.
pub fn check_metric_regression(
    metric: &str,
    current: f64,
    reference: f64,
    max_regress: f64,
) -> Result<f64, String> {
    if !reference.is_finite() || reference <= 0.0 {
        return Err(format!(
            "reference {metric} {reference} is not a positive number"
        ));
    }
    if !current.is_finite() || current <= 0.0 {
        return Err(format!(
            "measured {metric} {current} is not a positive number"
        ));
    }
    let change = current / reference - 1.0;
    let floor = reference * (1.0 - max_regress);
    if current < floor {
        return Err(format!(
            "{metric} regressed {:.1}% (measured {current:.2} vs reference {reference:.2}, \
             budget {:.0}%)",
            -change * 100.0,
            max_regress * 100.0,
        ));
    }
    Ok(change)
}

/// The CI throughput-regression gate on absolute fused packets/second.
/// Machine-relative: a slower or faster CI runner shifts both sides, so
/// pair it with [`check_speedup_regression`].
pub fn check_throughput_regression(
    current_pps: f64,
    reference_pps: f64,
    max_regress: f64,
) -> Result<f64, String> {
    check_metric_regression("fused throughput", current_pps, reference_pps, max_regress)
}

/// The machine-independent second line of defense: gates the fused ÷
/// unfused `fusion_speedup` ratio. Runner speed drift cancels out of the
/// ratio, so a kernel regression cannot hide behind a faster machine.
pub fn check_speedup_regression(
    current_speedup: f64,
    reference_speedup: f64,
    max_regress: f64,
) -> Result<f64, String> {
    check_metric_regression(
        "fusion speedup",
        current_speedup,
        reference_speedup,
        max_regress,
    )
}

/// The sharded-streaming throughput gate. Machine-relative like the
/// fused-pps gate (core count *and* clock shift it), so the checked-in
/// reference is recorded on the smallest supported machine and the budget
/// is sized generously; what this gate reliably catches is the sharded
/// path collapsing — a serialization bug, a livelocked queue, a
/// mis-hashed partition doing duplicate work.
pub fn check_sharded_regression(
    current_pps: f64,
    reference_pps: f64,
    max_regress: f64,
) -> Result<f64, String> {
    check_metric_regression(
        "sharded throughput",
        current_pps,
        reference_pps,
        max_regress,
    )
}

/// The int8 quantization gate: int8 ÷ f32 fused packets/second. Machine
/// speed cancels out of the ratio (both engines run back to back on the
/// same corpus and hardware), so a drop past the budget means the int8
/// kernels regressed or the dispatcher stopped picking them up — a faster
/// runner cannot mask it. Note the *relative* budget, applied to an
/// AVX2-recorded reference (~1.11×), leaves a floor below 1.0; pair with
/// [`check_quant_floor`] to assert "int8 is never slower than f32"
/// absolutely.
pub fn check_quant_regression(
    current_speedup: f64,
    reference_speedup: f64,
    max_regress: f64,
) -> Result<f64, String> {
    check_metric_regression(
        "quant speedup",
        current_speedup,
        reference_speedup,
        max_regress,
    )
}

/// Absolute floor on the int8 ÷ f32 fused ratio (`exp_throughput
/// --min-quant-speedup`). Independent of any reference record: with the
/// floor at `1.0` it asserts the quantized engine is never slower than
/// f32 on the measuring runner — the case the relative gate cannot catch
/// when its reference was recorded on a weaker-int8 ISA.
pub fn check_quant_floor(speedup: f64, floor: f64) -> Result<(), String> {
    if !speedup.is_finite() || speedup <= 0.0 {
        return Err(format!(
            "measured quant_speedup {speedup} is not a positive number"
        ));
    }
    if speedup < floor {
        return Err(format!(
            "quant speedup {speedup:.2}x is below the required floor {floor:.2}x \
             (the int8 engine is not paying for itself)"
        ));
    }
    Ok(())
}

/// Absolute floor on the sharded ÷ single-thread streaming scaling factor
/// (`exp_throughput --min-shard-scaling`). This is the only gate that can
/// catch "sharding silently adds nothing" (e.g. an accidental global
/// lock): the relative pps gates pass a fully serialized sharded path
/// whenever the runner is faster than the reference machine. The floor is
/// core-count-dependent — ~0.9 is the ceiling on a single-core box, while
/// a 4-core runner should clear 2.5 — so it ships disabled by default and
/// is meant to be enabled in CI alongside a multi-core-recorded
/// `BENCH_reference.json`.
pub fn check_shard_scaling_floor(scaling: f64, floor: f64) -> Result<(), String> {
    if !scaling.is_finite() || scaling <= 0.0 {
        return Err(format!(
            "measured shard_scaling {scaling} is not a positive number"
        ));
    }
    if scaling < floor {
        return Err(format!(
            "shard scaling {scaling:.2}x is below the required floor {floor:.2}x \
             (the sharded path is not using its cores)"
        ));
    }
    Ok(())
}

/// The cross-flow micro-batching gate: micro-batched ÷ per-packet
/// streaming packets/second (`exp_throughput --microbatch N`). Machine
/// speed cancels out of the ratio (both streaming runs share corpus,
/// precision and hardware back to back), so a drop past the budget means
/// the batching layer itself regressed — a faster runner cannot mask it.
pub fn check_microbatch_regression(
    current_speedup: f64,
    reference_speedup: f64,
    max_regress: f64,
) -> Result<f64, String> {
    check_metric_regression(
        "microbatch speedup",
        current_speedup,
        reference_speedup,
        max_regress,
    )
}

/// The churn-phase throughput gate (`--preset scale`): packets/second
/// sustained against a million-flow table. Machine-relative like the
/// fused-pps gate, so the budget is sized generously; what it reliably
/// catches is the flow-table substrate collapsing — a scan creeping back
/// into the hot path, an O(n) eviction, a map rebuild storm.
pub fn check_scale_regression(
    current_pps: f64,
    reference_pps: f64,
    max_regress: f64,
) -> Result<f64, String> {
    check_metric_regression("scale throughput", current_pps, reference_pps, max_regress)
}

/// The per-flow memory gate, relative form: fails when the churn phase's
/// measured bytes/flow has *grown* more than `max_growth` (a fraction)
/// over the reference record. Unlike the throughput gates this one is
/// machine-independent — bytes/flow is pure data-structure layout — so
/// the budget can be tight. Returns the relative change (`+0.10` = 10%
/// fatter) on success.
pub fn check_memory_regression(
    current: f64,
    reference: f64,
    max_growth: f64,
) -> Result<f64, String> {
    if !reference.is_finite() || reference <= 0.0 {
        return Err(format!(
            "reference bytes_per_flow {reference} is not a positive number"
        ));
    }
    if !current.is_finite() || current <= 0.0 {
        return Err(format!(
            "measured bytes_per_flow {current} is not a positive number"
        ));
    }
    let change = current / reference - 1.0;
    let ceiling = reference * (1.0 + max_growth);
    if current > ceiling {
        return Err(format!(
            "bytes_per_flow grew {:.1}% (measured {current:.0} vs reference {reference:.0}, \
             budget +{:.0}%)",
            change * 100.0,
            max_growth * 100.0,
        ));
    }
    Ok(change)
}

/// Absolute ceiling on the churn phase's bytes/flow (`exp_throughput
/// --max-bytes-per-flow`). Independent of any reference record: the
/// per-flow budget is a design property of the slab + resident-int8
/// layout (see `clap_core::stream` docs), so CI pins the absolute number
/// rather than only its drift.
pub fn check_bytes_per_flow(bytes_per_flow: f64, ceiling: f64) -> Result<(), String> {
    if !bytes_per_flow.is_finite() || bytes_per_flow <= 0.0 {
        return Err(format!(
            "measured bytes_per_flow {bytes_per_flow} is not a positive number"
        ));
    }
    if bytes_per_flow > ceiling {
        return Err(format!(
            "bytes_per_flow {bytes_per_flow:.0} exceeds the ceiling {ceiling:.0} \
             (the flow table no longer fits its per-flow budget)"
        ));
    }
    Ok(())
}

/// Absolute ceiling on the telemetry tax (`exp_throughput
/// --max-telemetry-overhead`): the fractional single-stream pps cost of
/// running with live counters + stage clocks attached versus detached,
/// measured back to back in one process (machine speed cancels out).
/// Negative overhead (telemetry-on measuring faster, i.e. noise) passes;
/// a non-finite measurement or a cost past the budget fails.
pub fn check_telemetry_overhead(overhead: f64, budget: f64) -> Result<(), String> {
    if !overhead.is_finite() {
        return Err(format!(
            "measured telemetry_overhead {overhead} is not a number"
        ));
    }
    if overhead > budget {
        return Err(format!(
            "telemetry overhead {:.2}% exceeds the {:.2}% budget \
             (the observability plane is taxing the hot path)",
            overhead * 100.0,
            budget * 100.0,
        ));
    }
    Ok(())
}

/// Renders the deterministic per-flow verdict table of a streaming replay:
/// one row per finalized flow, sorted by score (desc) with a total
/// tie-break on flow identity. Shared by `exp_stream_pcap` and the sharded
/// determinism regression tests, which assert the rendered bytes are
/// identical across runs and shard counts — so this function must stay a
/// pure function of the verdict *set* (never of arrival or thread order).
pub fn verdict_table(closed: &[clap_core::ClosedFlow], top_n: usize) -> String {
    // Identity strings are formatted once per flow, not per comparison.
    let mut flows: Vec<(String, &clap_core::ClosedFlow)> =
        closed.iter().map(|c| (format!("{}", c.key), c)).collect();
    flows.sort_by(|(ka, a), (kb, b)| {
        b.scored
            .score
            .total_cmp(&a.scored.score)
            .then_with(|| ka.cmp(kb))
            .then(a.packets.cmp(&b.packets))
    });
    let rows: Vec<Vec<String>> = flows
        .iter()
        .map(|(_, c)| c)
        .take(top_n)
        .map(|c| {
            vec![
                format!("{}", c.key.client),
                format!("{}", c.key.server),
                c.packets.to_string(),
                format!("{:?}", c.reason),
                format!("{:.6}", c.scored.score),
                c.scored.peak_packet.to_string(),
            ]
        })
        .collect();
    render_table(
        &["Client", "Server", "Pkts", "Closed by", "Score", "Peak pkt"],
        &rows,
    )
}

/// Renders the per-shard supervision counters of a sharded run: one row
/// per shard plus a totals row — the operator-facing health view of
/// `exp_stream_pcap` and `exp_throughput`.
pub fn shard_stats_table(stats: &[clap_core::ShardStats]) -> String {
    let row = |label: String, s: &clap_core::ShardStats| {
        vec![
            label,
            s.pushed.to_string(),
            s.packets.to_string(),
            s.flows_closed.to_string(),
            s.full_waits.to_string(),
            s.dropped.to_string(),
            s.quarantined.to_string(),
            s.restarts.to_string(),
            s.degraded_windows.to_string(),
        ]
    };
    let mut rows: Vec<Vec<String>> = stats.iter().map(|s| row(s.shard.to_string(), s)).collect();
    let health = clap_core::ShardHealth::of(stats);
    rows.push(vec![
        "total".to_string(),
        health.pushed.to_string(),
        health.scored.to_string(),
        stats
            .iter()
            .map(|s| s.flows_closed)
            .sum::<u64>()
            .to_string(),
        health.full_waits.to_string(),
        health.dropped.to_string(),
        health.quarantined.to_string(),
        health.restarts.to_string(),
        health.degraded_windows.to_string(),
    ]);
    render_table(
        &[
            "Shard", "Pushed", "Scored", "Flows", "Waits", "Dropped", "Quar", "Restarts",
            "Degraded",
        ],
        &rows,
    )
}

/// Returns the value following a `--flag` argument.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// True when `--flag` is present.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// All three trained models plus the data splits they share.
pub struct TrainedModels {
    pub clap: Clap,
    pub baseline1: Baseline1,
    pub kitsune: KitsuneLite,
    pub train: Vec<Connection>,
    pub test_benign: Vec<Connection>,
    pub summary: clap_core::TrainSummary,
}

/// Generates the benign splits and trains CLAP + both baselines.
pub fn train_all(preset: &Preset) -> TrainedModels {
    eprintln!(
        "[{}] generating {} train / {} test connections…",
        preset.name, preset.train_conns, preset.test_benign
    );
    let train = traffic_gen::dataset(preset.seed, preset.train_conns);
    let test_benign = traffic_gen::dataset(preset.seed ^ 0x7e57, preset.test_benign);

    eprintln!("[{}] training CLAP…", preset.name);
    let (clap, summary) = Clap::train(&train, &preset.clap);
    eprintln!(
        "[{}] CLAP: rnn accuracy {:.3}, {} profiles, final AE loss {:.5}",
        preset.name,
        summary.rnn_accuracy,
        summary.profiles,
        summary.ae_losses.last().copied().unwrap_or(f32::NAN)
    );
    eprintln!("[{}] training Baseline #1…", preset.name);
    let baseline1 = Baseline1::train(&train, &preset.baseline1);
    eprintln!("[{}] training Baseline #2 (Kitsune-lite)…", preset.name);
    let kitsune = KitsuneLite::train(&train, &preset.kitsune);

    TrainedModels {
        clap,
        baseline1,
        kitsune,
        train,
        test_benign,
        summary,
    }
}

/// Detection numbers for one (strategy, model) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionRow {
    pub strategy_id: String,
    pub strategy_name: String,
    pub source: String,
    pub category: String,
    pub auc: [f32; 3],
    pub eer: [f32; 3],
}

/// Localization numbers for one strategy (CLAP only, as in the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalizationRow {
    pub strategy_id: String,
    pub strategy_name: String,
    pub source: String,
    pub top1: f32,
    pub top3: f32,
    pub top5: f32,
}

/// Builds the adversarial test set for a strategy from held-out benign
/// connections.
pub fn adversarial_set(strategy: &Strategy, preset: &Preset) -> Vec<AttackResult> {
    let base = traffic_gen::dataset(
        preset.seed ^ 0xadb0 ^ dpi_attacks_hash(strategy.id),
        preset.test_adv_per_strategy,
    );
    build_adversarial_set(strategy, &base, preset.seed)
}

fn dpi_attacks_hash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Evaluates detection for one strategy across all three models.
pub fn evaluate_strategy(
    models: &TrainedModels,
    strategy: &Strategy,
    preset: &Preset,
    benign_scores: &BenignScores,
) -> DetectionRow {
    let adv = adversarial_set(strategy, preset);
    let adv_conns: Vec<Connection> = adv.iter().map(|r| r.connection.clone()).collect();
    let clap_scores: Vec<f32> = models
        .clap
        .score_connections(&adv_conns)
        .iter()
        .map(|s| s.score)
        .collect();
    let b1_scores: Vec<f32> = models
        .baseline1
        .score_connections(&adv_conns)
        .iter()
        .map(|s| s.score)
        .collect();
    let b2_scores: Vec<f32> = models
        .kitsune
        .score_connections(&adv_conns)
        .iter()
        .map(|s| s.score)
        .collect();

    DetectionRow {
        strategy_id: strategy.id.to_string(),
        strategy_name: strategy.name.to_string(),
        source: format!("{:?}", strategy.source),
        category: format!("{:?}", strategy.category),
        auc: [
            auc_roc(&benign_scores.clap, &clap_scores),
            auc_roc(&benign_scores.baseline1, &b1_scores),
            auc_roc(&benign_scores.kitsune, &b2_scores),
        ],
        eer: [
            equal_error_rate(&benign_scores.clap, &clap_scores),
            equal_error_rate(&benign_scores.baseline1, &b1_scores),
            equal_error_rate(&benign_scores.kitsune, &b2_scores),
        ],
    }
}

/// Benign score distributions per model (computed once, reused across
/// strategies).
pub struct BenignScores {
    pub clap: Vec<f32>,
    pub baseline1: Vec<f32>,
    pub kitsune: Vec<f32>,
}

pub fn benign_scores(models: &TrainedModels) -> BenignScores {
    BenignScores {
        clap: models
            .clap
            .score_connections(&models.test_benign)
            .iter()
            .map(|s| s.score)
            .collect(),
        baseline1: models
            .baseline1
            .score_connections(&models.test_benign)
            .iter()
            .map(|s| s.score)
            .collect(),
        kitsune: models
            .kitsune
            .score_connections(&models.test_benign)
            .iter()
            .map(|s| s.score)
            .collect(),
    }
}

/// Detection summary for one Extended protocol-diversity family (IPv6
/// extension-header corruption, UDP length/checksum games,
/// overlapping-fragment evasion), measured against a *mixed*
/// v4/v6/TCP/UDP benign distribution — the paper's 73 strategies are
/// evaluated in `exp_detection` over the all-v4 corpus; these families
/// only exist on protocol-diverse traffic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtendedFamilyRow {
    pub strategy_id: String,
    pub strategy_name: String,
    /// Adversarial connections the family applied to.
    pub connections: usize,
    /// CLAP AUC against the mixed benign score distribution.
    pub auc: f32,
    /// Fraction of adversarial connections scoring above the
    /// 95th-percentile mixed-benign score (≈5% FPR operating point).
    pub detection_rate: f32,
}

/// Score at the `q`-quantile (0..=1) of `scores`, by sorted rank.
fn quantile(scores: &[f32], q: f32) -> f32 {
    let mut sorted = scores.to_vec();
    sorted.sort_by(f32::total_cmp);
    if sorted.is_empty() {
        return f32::NAN;
    }
    let idx = ((sorted.len() - 1) as f32 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Evaluates CLAP detection for the three Extended protocol-diversity
/// families over mixed v4/v6/TCP/UDP traffic. CLAP-only: the families are
/// defined by protocol structure the baselines' feature sets do not model.
pub fn evaluate_extended_families(
    models: &TrainedModels,
    preset: &Preset,
) -> Vec<ExtendedFamilyRow> {
    let benign = traffic_gen::mixed_dataset(preset.seed ^ 0x6e1, preset.test_benign.max(32));
    let benign_scores: Vec<f32> = models
        .clap
        .score_connections(&benign)
        .iter()
        .map(|s| s.score)
        .collect();
    let threshold = quantile(&benign_scores, 0.95);
    dpi_attacks::strategies_from(dpi_attacks::AttackSource::Extended)
        .into_iter()
        .map(|strat| {
            let base = traffic_gen::mixed_dataset(
                preset.seed ^ 0xadb0 ^ dpi_attacks_hash(strat.id),
                preset.test_adv_per_strategy.max(16),
            );
            let adv = build_adversarial_set(strat, &base, preset.seed);
            let conns: Vec<Connection> = adv.iter().map(|r| r.connection.clone()).collect();
            let scores: Vec<f32> = models
                .clap
                .score_connections(&conns)
                .iter()
                .map(|s| s.score)
                .collect();
            let detected = scores.iter().filter(|&&s| s > threshold).count();
            ExtendedFamilyRow {
                strategy_id: strat.id.to_string(),
                strategy_name: strat.name.to_string(),
                connections: conns.len(),
                auc: auc_roc(&benign_scores, &scores),
                detection_rate: detected as f32 / scores.len().max(1) as f32,
            }
        })
        .collect()
}

/// Evaluates CLAP's Top-1/3/5 localization for one strategy
/// (paper Figures 10–12).
pub fn evaluate_localization(
    models: &TrainedModels,
    strategy: &Strategy,
    preset: &Preset,
) -> LocalizationRow {
    let adv = adversarial_set(strategy, preset);
    let mut hits = [0usize; 3];
    for r in &adv {
        let scored = models.clap.score_connection(&r.connection);
        let identified = scored.peak_packet;
        for (slot, n) in [(0, 1usize), (1, 3), (2, 5)] {
            hits[slot] += usize::from(top_n_hit(identified, &r.adversarial_indices, n));
        }
    }
    let total = adv.len().max(1) as f32;
    LocalizationRow {
        strategy_id: strategy.id.to_string(),
        strategy_name: strategy.name.to_string(),
        source: format!("{:?}", strategy.source),
        top1: hits[0] as f32 / total,
        top3: hits[1] as f32 / total,
        top5: hits[2] as f32 / total,
    }
}

/// Mean of a slice (NaN-free).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Renders an ASCII table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let sep = |c: char| {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&std::iter::repeat_n(c, w + 2).collect::<String>());
            s.push('+');
        }
        s
    };
    let fmt_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            s.push_str(&format!(" {cell:<w$} |"));
        }
        s
    };
    let mut out = String::new();
    out.push_str(&sep('-'));
    out.push('\n');
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep('='));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str(&sep('-'));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_scale() {
        let ci = Preset::ci();
        let quick = Preset::quick();
        let paper = Preset::paper();
        assert!(ci.train_conns < quick.train_conns);
        assert!(quick.train_conns < paper.train_conns);
        assert_eq!(paper.train_conns, 31_198, "Table 4 training connections");
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--preset", "ci", "--table1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--preset").as_deref(), Some("ci"));
        assert!(has_flag(&args, "--table1"));
        assert!(!has_flag(&args, "--table2"));
        assert_eq!(Preset::from_args(&args).name, "ci");
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["a", "bbbb"],
            &[
                vec!["x".into(), "y".into()],
                vec!["long".into(), "z".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn mean_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn regression_gate_passes_within_budget() {
        // Faster than reference: positive change.
        let change = check_throughput_regression(1200.0, 1000.0, 0.20).unwrap();
        assert!((change - 0.2).abs() < 1e-9);
        // 10% slower is inside a 20% budget.
        let change = check_throughput_regression(900.0, 1000.0, 0.20).unwrap();
        assert!((change + 0.1).abs() < 1e-9);
        // Exactly on the floor passes (the gate fires strictly below it).
        assert!(check_throughput_regression(800.0, 1000.0, 0.20).is_ok());
    }

    #[test]
    fn regression_gate_fails_past_budget() {
        let err = check_throughput_regression(799.0, 1000.0, 0.20).unwrap_err();
        assert!(err.contains("regressed"), "unexpected message: {err}");
        assert!(check_throughput_regression(500.0, 1000.0, 0.20).is_err());
    }

    #[test]
    fn regression_gate_rejects_garbage_inputs() {
        assert!(check_throughput_regression(f64::NAN, 1000.0, 0.20).is_err());
        assert!(check_throughput_regression(1000.0, f64::NAN, 0.20).is_err());
        assert!(check_throughput_regression(1000.0, 0.0, 0.20).is_err());
        assert!(check_throughput_regression(-5.0, 1000.0, 0.20).is_err());
        assert!(check_throughput_regression(1000.0, f64::INFINITY, 0.20).is_err());
    }

    #[test]
    fn reference_parsing_ignores_extra_fields() {
        // A full report record (with fields the gate does not read) must
        // parse as a reference.
        let json = r#"{
            "preset": "ci",
            "threads": 1,
            "clap_fused_pps": 27767.36,
            "clap_unfused_pps": 8982.54,
            "fusion_speedup": 3.09
        }"#;
        let reference = ThroughputReference::from_json(json).unwrap();
        assert!((reference.clap_fused_pps - 27767.36).abs() < 1e-9);
        assert!((reference.fusion_speedup.unwrap() - 3.09).abs() < 1e-9);
    }

    #[test]
    fn reference_without_speedup_field_still_parses() {
        // Pre-ratio-gate references carry only pps; the speedup gate must
        // be skippable, not a parse failure.
        let json = r#"{ "clap_fused_pps": 1000.0 }"#;
        let reference = ThroughputReference::from_json(json).unwrap();
        assert_eq!(reference.fusion_speedup, None);
        assert!(ThroughputReference::from_json("{}").is_err());
    }

    #[test]
    fn malformed_speedup_field_is_a_hard_error() {
        // A present-but-broken fusion_speedup must NOT silently downgrade
        // to a pps-only reference (that would disable the ratio gate).
        for bad in [
            r#"{ "clap_fused_pps": 1000.0, "fusion_speedup": "3.1" }"#,
            r#"{ "clap_fused_pps": 1000.0, "fusion_speedup": null }"#,
        ] {
            let err = ThroughputReference::from_json(bad).unwrap_err();
            assert!(err.contains("fusion_speedup"), "unexpected message: {err}");
        }
    }

    #[test]
    fn speedup_gate_is_machine_independent_defense() {
        // Within budget: a small ratio dip passes.
        let change = check_speedup_regression(2.9, 3.0, 0.20).unwrap();
        assert!(change < 0.0 && change > -0.20);
        // A halved speedup — e.g. SIMD dispatch silently falling back to
        // scalar — fails even if absolute pps grew on a faster runner.
        let err = check_speedup_regression(1.5, 3.1, 0.20).unwrap_err();
        assert!(
            err.contains("fusion speedup regressed"),
            "unexpected message: {err}"
        );
        // Garbage ratios are rejected like garbage throughputs.
        assert!(check_speedup_regression(f64::NAN, 3.0, 0.20).is_err());
        assert!(check_speedup_regression(3.0, 0.0, 0.20).is_err());
    }

    #[test]
    fn reference_with_sharded_pps_parses() {
        let json = r#"{
            "preset": "ci",
            "clap_fused_pps": 27767.36,
            "fusion_speedup": 3.09,
            "clap_sharded_pps": 91234.5
        }"#;
        let reference = ThroughputReference::from_json(json).unwrap();
        assert!((reference.clap_sharded_pps.unwrap() - 91234.5).abs() < 1e-9);
        assert!((reference.fusion_speedup.unwrap() - 3.09).abs() < 1e-9);
    }

    #[test]
    fn reference_without_sharded_pps_skips_that_gate() {
        let json = r#"{ "clap_fused_pps": 1000.0, "fusion_speedup": 3.0 }"#;
        let reference = ThroughputReference::from_json(json).unwrap();
        assert_eq!(reference.clap_sharded_pps, None);
    }

    #[test]
    fn malformed_sharded_pps_is_a_hard_error() {
        for bad in [
            r#"{ "clap_fused_pps": 1000.0, "clap_sharded_pps": "fast" }"#,
            r#"{ "clap_fused_pps": 1000.0, "clap_sharded_pps": null }"#,
        ] {
            let err = ThroughputReference::from_json(bad).unwrap_err();
            assert!(
                err.contains("clap_sharded_pps"),
                "unexpected message: {err}"
            );
        }
    }

    #[test]
    fn sharded_gate_behaves_like_the_others() {
        assert!(check_sharded_regression(100_000.0, 90_000.0, 0.35).is_ok());
        let err = check_sharded_regression(40_000.0, 90_000.0, 0.35).unwrap_err();
        assert!(
            err.contains("sharded throughput regressed"),
            "unexpected message: {err}"
        );
        assert!(check_sharded_regression(f64::NAN, 90_000.0, 0.35).is_err());
    }

    #[test]
    fn reference_with_quant_speedup_parses() {
        let json = r#"{
            "clap_fused_pps": 27767.36,
            "fusion_speedup": 3.09,
            "clap_sharded_pps": 91234.5,
            "quant_speedup": 1.8
        }"#;
        let reference = ThroughputReference::from_json(json).unwrap();
        assert!((reference.quant_speedup.unwrap() - 1.8).abs() < 1e-9);
    }

    #[test]
    fn reference_without_quant_speedup_skips_that_gate() {
        let json = r#"{ "clap_fused_pps": 1000.0 }"#;
        let reference = ThroughputReference::from_json(json).unwrap();
        assert_eq!(reference.quant_speedup, None);
    }

    #[test]
    fn malformed_quant_speedup_is_a_hard_error() {
        for bad in [
            r#"{ "clap_fused_pps": 1000.0, "quant_speedup": "2x" }"#,
            r#"{ "clap_fused_pps": 1000.0, "quant_speedup": null }"#,
        ] {
            let err = ThroughputReference::from_json(bad).unwrap_err();
            assert!(err.contains("quant_speedup"), "unexpected message: {err}");
        }
    }

    #[test]
    fn quant_gate_behaves_like_the_others() {
        assert!(check_quant_regression(1.7, 1.8, 0.30).is_ok());
        // Int8 degrading to f32 speed (ratio ~1.0) fails against a VNNI
        // reference outright…
        let err = check_quant_regression(1.0, 1.8, 0.30).unwrap_err();
        assert!(
            err.contains("quant speedup regressed"),
            "unexpected message: {err}"
        );
        // …but slips through the relative budget against the AVX2
        // reference (1.11 × 0.70 < 1.0) — which is exactly what the
        // absolute floor exists to catch.
        assert!(check_quant_regression(1.0, 1.11, 0.30).is_ok());
        assert!(check_quant_floor(1.0, 1.0).is_ok());
        let err = check_quant_floor(0.93, 1.0).unwrap_err();
        assert!(
            err.contains("below the required floor"),
            "unexpected message: {err}"
        );
        assert!(check_quant_floor(f64::NAN, 1.0).is_err());
        assert!(check_quant_floor(-1.0, 1.0).is_err());
        assert!(check_quant_regression(f64::NAN, 1.8, 0.30).is_err());
        assert!(check_quant_regression(1.8, 0.0, 0.30).is_err());
    }

    #[test]
    fn reference_with_microbatch_speedup_parses() {
        let json = r#"{
            "clap_fused_pps": 27767.36,
            "quant_speedup": 1.8,
            "microbatch_speedup": 1.45
        }"#;
        let reference = ThroughputReference::from_json(json).unwrap();
        assert!((reference.microbatch_speedup.unwrap() - 1.45).abs() < 1e-9);
    }

    #[test]
    fn reference_without_microbatch_speedup_skips_that_gate() {
        let json = r#"{ "clap_fused_pps": 1000.0 }"#;
        let reference = ThroughputReference::from_json(json).unwrap();
        assert_eq!(reference.microbatch_speedup, None);
    }

    #[test]
    fn malformed_microbatch_speedup_is_a_hard_error() {
        for bad in [
            r#"{ "clap_fused_pps": 1000.0, "microbatch_speedup": "2x" }"#,
            r#"{ "clap_fused_pps": 1000.0, "microbatch_speedup": null }"#,
        ] {
            let err = ThroughputReference::from_json(bad).unwrap_err();
            assert!(
                err.contains("microbatch_speedup"),
                "unexpected message: {err}"
            );
        }
    }

    #[test]
    fn microbatch_gate_behaves_like_the_others() {
        assert!(check_microbatch_regression(1.4, 1.5, 0.30).is_ok());
        let err = check_microbatch_regression(0.9, 1.5, 0.30).unwrap_err();
        assert!(
            err.contains("microbatch speedup regressed"),
            "unexpected message: {err}"
        );
        assert!(check_microbatch_regression(f64::NAN, 1.5, 0.30).is_err());
        assert!(check_microbatch_regression(1.5, 0.0, 0.30).is_err());
    }

    #[test]
    fn reference_with_scale_fields_parses() {
        let json = r#"{
            "clap_fused_pps": 27767.36,
            "scale_pps": 48000.5,
            "bytes_per_flow": 540.0
        }"#;
        let reference = ThroughputReference::from_json(json).unwrap();
        assert!((reference.scale_pps.unwrap() - 48000.5).abs() < 1e-9);
        assert!((reference.bytes_per_flow.unwrap() - 540.0).abs() < 1e-9);
    }

    #[test]
    fn reference_without_scale_fields_skips_those_gates() {
        let json = r#"{ "clap_fused_pps": 1000.0 }"#;
        let reference = ThroughputReference::from_json(json).unwrap();
        assert_eq!(reference.scale_pps, None);
        assert_eq!(reference.bytes_per_flow, None);
    }

    #[test]
    fn malformed_scale_fields_are_hard_errors() {
        for (bad, key) in [
            (
                r#"{ "clap_fused_pps": 1000.0, "scale_pps": "fast" }"#,
                "scale_pps",
            ),
            (
                r#"{ "clap_fused_pps": 1000.0, "bytes_per_flow": null }"#,
                "bytes_per_flow",
            ),
        ] {
            let err = ThroughputReference::from_json(bad).unwrap_err();
            assert!(err.contains(key), "unexpected message: {err}");
        }
    }

    #[test]
    fn scale_gate_behaves_like_the_others() {
        assert!(check_scale_regression(45_000.0, 48_000.0, 0.35).is_ok());
        let err = check_scale_regression(20_000.0, 48_000.0, 0.35).unwrap_err();
        assert!(
            err.contains("scale throughput regressed"),
            "unexpected message: {err}"
        );
        assert!(check_scale_regression(f64::NAN, 48_000.0, 0.35).is_err());
    }

    #[test]
    fn memory_gate_fails_on_growth_not_shrinkage() {
        // Memory regressions point the other way: shrinking is always
        // fine, growing past the budget fails.
        let change = check_memory_regression(500.0, 540.0, 0.10).unwrap();
        assert!(change < 0.0);
        assert!(check_memory_regression(590.0, 540.0, 0.10).is_ok());
        let err = check_memory_regression(700.0, 540.0, 0.10).unwrap_err();
        assert!(err.contains("bytes_per_flow grew"), "unexpected: {err}");
        assert!(check_memory_regression(f64::NAN, 540.0, 0.10).is_err());
        assert!(check_memory_regression(540.0, 0.0, 0.10).is_err());
    }

    #[test]
    fn bytes_per_flow_ceiling_gate() {
        assert!(check_bytes_per_flow(540.0, 700.0).is_ok());
        assert!(check_bytes_per_flow(700.0, 700.0).is_ok());
        let err = check_bytes_per_flow(701.0, 700.0).unwrap_err();
        assert!(err.contains("exceeds the ceiling"), "unexpected: {err}");
        assert!(check_bytes_per_flow(f64::NAN, 700.0).is_err());
        assert!(check_bytes_per_flow(-5.0, 700.0).is_err());
    }

    #[test]
    fn telemetry_overhead_gate() {
        assert!(check_telemetry_overhead(0.01, 0.02).is_ok());
        assert!(check_telemetry_overhead(0.02, 0.02).is_ok());
        // Noise can make the telemetry-on run the faster one; a negative
        // overhead is a pass, never an error.
        assert!(check_telemetry_overhead(-0.05, 0.02).is_ok());
        let err = check_telemetry_overhead(0.08, 0.02).unwrap_err();
        assert!(err.contains("exceeds the"), "unexpected message: {err}");
        assert!(check_telemetry_overhead(f64::NAN, 0.02).is_err());
        assert!(check_telemetry_overhead(f64::INFINITY, 0.02).is_err());
    }

    #[test]
    fn scale_preset_rides_on_ci_models() {
        let s = Preset::scale();
        let ci = Preset::ci();
        assert_eq!(s.name, "scale");
        assert_eq!(s.train_conns, ci.train_conns);
        let args: Vec<String> = ["--preset", "scale"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(Preset::from_args(&args).name, "scale");
    }

    #[test]
    fn shard_scaling_floor_gate() {
        assert!(check_shard_scaling_floor(2.8, 2.5).is_ok());
        let err = check_shard_scaling_floor(1.02, 2.5).unwrap_err();
        assert!(
            err.contains("below the required floor"),
            "unexpected message: {err}"
        );
        assert!(check_shard_scaling_floor(f64::NAN, 2.5).is_err());
        assert!(check_shard_scaling_floor(-1.0, 2.5).is_err());
    }

    #[test]
    fn verdict_table_is_order_insensitive() {
        use clap_core::{CloseReason, ClosedFlow, ScoredConnection};
        use net_packet::{Endpoint, FlowKey};
        use std::net::Ipv4Addr;
        let flow = |a: u8, score: f32| ClosedFlow {
            key: FlowKey::new(
                Endpoint::new(Ipv4Addr::new(10, 0, 0, a), 1000 + u16::from(a)),
                Endpoint::new(Ipv4Addr::new(10, 0, 1, 1), 80),
            ),
            packets: usize::from(a) + 3,
            reason: CloseReason::Drained,
            arrival: u64::from(a),
            scored: ScoredConnection {
                peak_packet: 1,
                peak_window: 0,
                window_errors: vec![score],
                score,
            },
        };
        // Two flows with identical scores exercise the identity tie-break.
        let mut closed = vec![flow(1, 0.5), flow(2, 0.75), flow(3, 0.5)];
        let table = verdict_table(&closed, 10);
        closed.reverse();
        assert_eq!(
            verdict_table(&closed, 10),
            table,
            "rendered verdicts must not depend on completion order"
        );
        let top = verdict_table(&closed, 1);
        assert!(top.contains("0.750000"), "top-1 keeps the highest score");
        assert!(!top.contains("0.500000"));
    }

    #[test]
    fn reference_load_reports_missing_file() {
        let err = ThroughputReference::load("/nonexistent/BENCH_reference.json").unwrap_err();
        assert!(err.contains("cannot read"), "unexpected message: {err}");
    }
}
