//! Detection-accuracy experiments: Table 1, Table 2 and the per-strategy
//! bar data of Figures 7, 8 and 9.
//!
//! ```text
//! cargo run -p bench --release --bin exp_detection -- [--preset quick|ci|paper]
//!     [--table1] [--table2] [--figure7] [--figure8] [--figure9] [--json out.json]
//! ```
//!
//! With no artifact flag, everything is printed.

use bench::{
    benign_scores, evaluate_strategy, has_flag, mean, render_table, train_all, DetectionRow, Preset,
};
use dpi_attacks::{registry, AttackSource, ContextCategory};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = Preset::from_args(&args);
    let all = !(has_flag(&args, "--table1")
        || has_flag(&args, "--table2")
        || has_flag(&args, "--figure7")
        || has_flag(&args, "--figure8")
        || has_flag(&args, "--figure9"));

    let models = train_all(&preset);
    let benign = benign_scores(&models);

    eprintln!("[{}] evaluating all 73 strategies…", preset.name);
    let rows: Vec<DetectionRow> = registry()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            eprint!(
                "\r[{}] strategy {}/{} {:<44}",
                preset.name,
                i + 1,
                registry().len(),
                s.id
            );
            evaluate_strategy(&models, s, &preset, &benign)
        })
        .collect();
    eprintln!();

    if all || has_flag(&args, "--table1") {
        print_table1(&rows);
    }
    if all || has_flag(&args, "--table2") {
        print_table2(&rows);
    }
    for (flag, source, figure) in [
        ("--figure7", AttackSource::SymTcp, "Figure 7"),
        ("--figure8", AttackSource::Liberate, "Figure 8"),
        ("--figure9", AttackSource::Geneva, "Figure 9"),
    ] {
        if all || has_flag(&args, flag) {
            print_figure(&rows, source, figure);
        }
    }

    if let Some(path) = bench::arg_value(&args, "--json") {
        std::fs::write(&path, serde_json::to_string_pretty(&rows).unwrap()).unwrap();
        eprintln!("wrote {path}");
    }
}

fn source_rows(rows: &[DetectionRow], source: AttackSource) -> Vec<&DetectionRow> {
    let tag = format!("{source:?}");
    rows.iter().filter(|r| r.source == tag).collect()
}

fn print_table1(rows: &[DetectionRow]) {
    println!("\n== Table 1: mean detection performance per attack source ==");
    println!("   (paper: CLAP 0.953/0.072 [23], 0.952/0.082 [10], 0.988/0.024 [4];");
    println!("    Baseline #1 ≈ 0.8–0.9 AUC, Baseline #2 ≈ 0.5 AUC)");
    let mut table = Vec::new();
    for (source, label) in [
        (AttackSource::SymTcp, "SymTCP [23]"),
        (AttackSource::Liberate, "Liberate [10]"),
        (AttackSource::Geneva, "Geneva [4]"),
    ] {
        let rs = source_rows(rows, source);
        let col =
            |f: &dyn Fn(&DetectionRow) -> f32| mean(&rs.iter().map(|r| f(r)).collect::<Vec<_>>());
        table.push(vec![
            label.to_string(),
            format!("{:.3}", col(&|r| r.auc[0])),
            format!("{:.3}", col(&|r| r.eer[0])),
            format!("{:.3}", col(&|r| r.auc[1])),
            format!("{:.3}", col(&|r| r.eer[1])),
            format!("{:.3}", col(&|r| r.auc[2])),
            format!("{:.3}", col(&|r| r.eer[2])),
        ]);
    }
    let overall = |m: usize, metric: usize| {
        mean(
            &rows
                .iter()
                .map(|r| if metric == 0 { r.auc[m] } else { r.eer[m] })
                .collect::<Vec<_>>(),
        )
    };
    table.push(vec![
        "ALL (73)".into(),
        format!("{:.3}", overall(0, 0)),
        format!("{:.3}", overall(0, 1)),
        format!("{:.3}", overall(1, 0)),
        format!("{:.3}", overall(1, 1)),
        format!("{:.3}", overall(2, 0)),
        format!("{:.3}", overall(2, 1)),
    ]);
    println!(
        "{}",
        render_table(
            &["Source", "CLAP AUC", "CLAP EER", "B1 AUC", "B1 EER", "B2 AUC", "B2 EER"],
            &table
        )
    );
}

fn print_table2(rows: &[DetectionRow]) {
    println!("\n== Table 2: inter- vs intra-packet context violations (CLAP vs B1) ==");
    println!(
        "   (paper: inter 0.925/0.109 vs B1 0.672/0.364; intra 0.980/0.039 vs B1 0.923/0.123)"
    );
    let mut table = Vec::new();
    for (cat, label) in [
        (ContextCategory::InterPacket, "Inter-packet (24)"),
        (ContextCategory::IntraPacket, "Intra-packet (49)"),
    ] {
        let tag = format!("{cat:?}");
        let rs: Vec<&DetectionRow> = rows.iter().filter(|r| r.category == tag).collect();
        table.push(vec![
            label.to_string(),
            format!("{}", rs.len()),
            format!(
                "{:.3}",
                mean(&rs.iter().map(|r| r.auc[0]).collect::<Vec<_>>())
            ),
            format!(
                "{:.3}",
                mean(&rs.iter().map(|r| r.eer[0]).collect::<Vec<_>>())
            ),
            format!(
                "{:.3}",
                mean(&rs.iter().map(|r| r.auc[1]).collect::<Vec<_>>())
            ),
            format!(
                "{:.3}",
                mean(&rs.iter().map(|r| r.eer[1]).collect::<Vec<_>>())
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Category", "N", "CLAP AUC", "CLAP EER", "B1 AUC", "B1 EER"],
            &table
        )
    );
}

fn print_figure(rows: &[DetectionRow], source: AttackSource, figure: &str) {
    println!(
        "\n== {figure}: per-strategy detection AUC-ROC ({}) ==",
        source.name()
    );
    let rs = source_rows(rows, source);
    let table: Vec<Vec<String>> = rs
        .iter()
        .map(|r| {
            vec![
                r.strategy_name.clone(),
                format!("{:.3}", r.auc[0]),
                format!("{:.3}", r.auc[1]),
                format!("{:.3}", r.auc[2]),
                format!("{:.3}", r.eer[0]),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Strategy", "CLAP AUC", "B1 AUC", "B2 AUC", "CLAP EER"],
            &table
        )
    );
}
