//! Table 3: model processing throughput (packets/s and connections/s) of
//! CLAP vs Baseline #2 (Kitsune), single-threaded as in the paper's
//! one-logical-core setup (§4.4) — plus the fused-vs-unfused inference
//! engine comparison for this reproduction.
//!
//! ```text
//! cargo run -p bench --release --bin exp_throughput -- [--preset quick|ci|paper|scale]
//!     [--threads N] [--shards N] [--quant int8] [--microbatch N] [--json PATH]
//!     [--check-against REFERENCE.json] [--max-regress 0.20]
//!     [--max-regress-speedup 0.30] [--max-regress-sharded 0.35]
//!     [--max-regress-quant 0.30] [--min-quant-speedup X]
//!     [--max-regress-microbatch 0.30] [--min-shard-scaling X]
//!     [--churn-flows N] [--churn-packets N] [--resident f32|int8]
//!     [--max-regress-scale 0.35] [--max-grow-bytes-per-flow 0.25]
//!     [--max-bytes-per-flow BYTES] [--max-telemetry-overhead X]
//!     [--overload-policy block|drop-newest|degrade[:K]] [--fault-plan SPEC]
//!     [--require-no-shed]
//! ```
//!
//! The run also measures the **telemetry tax**: the per-packet streaming
//! engine with live counter cells and stage histograms attached versus
//! detached (the median over many alternating attached/detached pairs),
//! recorded as `telemetry_overhead` = 1 − attached ÷ detached pps.
//! Counters are always compiled in; building with
//! `--features telemetry` additionally pays the 1-in-32 sampled stage
//! clocks, and that build is the one CI gates with
//! `--max-telemetry-overhead` (absolute budget, no reference record
//! needed — both numbers come from one process so machine speed cancels
//! out). The measured sharded run's per-shard counter deltas and stage
//! latency summaries land in the JSON as `shard_telemetry`.
//!
//! `--preset scale` (or an explicit `--churn-flows N`) additionally runs
//! the **churn phase**: `traffic_gen::churn`'s elephant/mice workload —
//! heavy-tailed flow sizes, high arrival rate, a plateau of `--churn-flows`
//! (default 1M) concurrent flows — streamed through one `StreamScorer`
//! whose per-flow state is held in the int8 resident form (`--resident`
//! overrides). The phase records `flows_peak`, sustained `scale_pps`,
//! measured heap `bytes_per_flow` and the eviction counters in the JSON
//! report. Gates: `scale_pps` is machine-relative and gated like the other
//! throughput numbers (`--max-regress-scale` vs the reference record);
//! `bytes_per_flow` is pure data-structure layout, gated both relative to
//! the reference (`--max-grow-bytes-per-flow`) and against the absolute
//! design-budget ceiling (`--max-bytes-per-flow`).
//!
//! `--quant int8` additionally measures the int8 quantized fused engine
//! (`neural::quant`: per-row int8 weights, on-the-fly 7-bit activation
//! quantization, i32-accumulating maddubs/vpdpbusd kernels) on the same
//! corpus and records `clap_quant_pps` / `quant_speedup` (int8 ÷ f32
//! fused pps — machine-independent, like `fusion_speedup`). When the
//! reference records a `quant_speedup`, the gate enforces it under
//! `--max-regress-quant` (and requires `--quant int8` on the measuring
//! run — a reference with a quant record can't be "passed" by simply not
//! measuring).
//!
//! `--microbatch N` (N ≥ 2) additionally measures **cross-flow
//! micro-batched streaming**: the same timestamp-ordered stream pushed
//! through one `StreamScorer` whose pending GRU steps and AE windows are
//! flushed as N-row batches through the GEMM kernels, at the run's
//! precision (int8 under `--quant int8`, f32 otherwise) — against a
//! freshly measured per-packet streaming baseline *at that same
//! precision*. The two runs must produce **byte-identical** rendered
//! verdict tables (micro-batching is a pure scheduling change); the run
//! records `microbatch_pps`, `microbatch_speedup` (batched ÷ per-packet
//! — machine-independent, like `quant_speedup`) and the flush-occupancy
//! histogram. When the reference records a `microbatch_speedup` *and*
//! this run passed `--microbatch`, the gate enforces it under
//! `--max-regress-microbatch`; a run without `--microbatch` skips the
//! gate with a notice (like the churn-phase gates — the reference file
//! is shared with jobs that measure other phases).
//!
//! `--min-shard-scaling X` additionally fails the run when the sharded ÷
//! single-thread streaming factor falls below `X` — the only check that
//! catches "sharding silently serialized". It is core-count-dependent
//! (≤ ~1 on one core, ≥ 2.5 expected with 4 shards on 4+ cores), so it is
//! off by default; enable it in CI together with a multi-core-recorded
//! reference.
//!
//! The sharded measurement runs the supervised engine: `--overload-policy`
//! selects the ring-full behaviour (default `block`), `--fault-plan`
//! injects a deterministic fault schedule (see `exp_stream_pcap`), and the
//! per-shard supervision counters (dropped / quarantined / restarts /
//! degraded windows) land in the JSON report. `--require-no-shed` turns
//! those counters into a CI gate: the run exits non-zero when the sharded
//! measurement dropped or quarantined any packet — under the default
//! `block` policy on a healthy engine this must be zero.
//!
//! Writes a machine-readable `BENCH_throughput.json` (override with
//! `--json`) so the performance trajectory is tracked across PRs. Also
//! measures the **streaming** per-flow engine (`exp_stream_throughput`
//! mode): the whole corpus is flattened into one timestamp-ordered packet
//! stream and pushed through a single `StreamScorer` flow table, the
//! arrival order a line-rate tap would see.
//!
//! With `--check-against`, the run doubles as the CI throughput-regression
//! gate: it exits non-zero when fused packets/second — or, when the
//! reference records one, the machine-independent `fusion_speedup` ratio —
//! drop more than `--max-regress` (default 0.20 = 20%) below the
//! reference record. The ratio gate is the second line of defense: CI
//! runner speed drift cancels out of fused ÷ unfused, so a kernel
//! regression cannot hide behind a faster machine. Both gates are still
//! ISA-sensitive (an AVX2-only runner fuses less than an AVX-512 one), so
//! the checked-in `BENCH_reference.json` is recorded with
//! `NEURAL_KERNELS=avx2` — the lowest-common CI ISA — and the ratio gets
//! its own budget (`--max-regress-speedup`, default 0.30) sized so an
//! AVX2 runner passes comfortably while a silent fall-back to the scalar
//! kernels (ratio ≈ 3.1 vs the ≈ 5.3 AVX2 reference) still fails.

use bench::{
    arg_value, check_bytes_per_flow, check_memory_regression, check_microbatch_regression,
    check_quant_floor, check_quant_regression, check_scale_regression, check_shard_scaling_floor,
    check_sharded_regression, check_speedup_regression, check_telemetry_overhead,
    check_throughput_regression, evaluate_extended_families, render_table, train_all,
    ExtendedFamilyRow, Preset, ThroughputReference,
};
use clap_core::{
    FaultPlan, OverloadPolicy, QuantMode, ResidentMode, ShardConfig, ShardHealth, Stage,
    StageHists, StreamCells, StreamConfig,
};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};
use traffic_gen::ChurnConfig;

/// Machine-readable throughput record, one per run.
#[derive(Debug, Serialize)]
struct ThroughputReport {
    preset: String,
    threads: usize,
    connections: usize,
    packets: usize,
    /// Packets/second of the fused allocation-free CLAP engine.
    clap_fused_pps: f64,
    /// Packets/second of the unfused reference CLAP path.
    clap_unfused_pps: f64,
    /// Fused ÷ unfused.
    fusion_speedup: f64,
    /// Packets/second of the streaming per-flow engine (one flow table,
    /// interleaved timestamp-ordered stream).
    clap_stream_pps: f64,
    /// Streaming ÷ fused batch (the price of online per-packet delivery).
    stream_over_batch: f64,
    /// Worker shards of the RSS-sharded streaming measurement.
    shards: usize,
    /// Packets/second of the RSS-sharded multi-queue streaming engine
    /// (`shards` worker threads plus the dispatch thread — deliberately
    /// *not* pinned by `--threads`, which models the paper's single-core
    /// batch setup; sharding exists to use the other cores).
    clap_sharded_pps: f64,
    /// Sharded ÷ single-threaded streaming (the multi-core scaling
    /// factor; bounded by the machine's core count).
    shard_scaling: f64,
    /// Pending-set capacity of the micro-batched streaming measurement
    /// (`--microbatch N`); `0` when the run did not measure it.
    microbatch: usize,
    /// Packets/second of the micro-batched streaming engine at the run's
    /// precision; `0.0` when not measured.
    microbatch_pps: f64,
    /// Micro-batched ÷ per-packet streaming packets/second at the same
    /// precision; `0.0` when not measured. Machine-independent like
    /// `quant_speedup` (back-to-back runs on one machine), and gated the
    /// same way: a reference that records it demands a measuring run.
    microbatch_speedup: f64,
    /// Flush-occupancy histogram of the micro-batched run: entry `i`
    /// counts flushes that carried `i + 1` rows. Empty when not measured.
    microbatch_occupancy: Vec<u64>,
    /// Packets/second of the int8 quantized fused engine (`--quant
    /// int8`); `0.0` when the run did not measure it.
    clap_quant_pps: f64,
    /// Int8 ÷ f32 fused packets/second; `0.0` when not measured. (A
    /// record without a real measurement is rejected as a reference —
    /// the gate hard-errors on non-positive values — so an unmeasured
    /// report can never silently weaken the gate.)
    quant_speedup: f64,
    /// Packets shed by the sharded run's overload policy (0 under the
    /// default `block` on a healthy engine; `--require-no-shed` pins it).
    sharded_dropped: u64,
    /// Packets quarantined by shard supervision (panic isolation).
    sharded_quarantined: u64,
    /// Shard restarts performed by the supervisor.
    sharded_restarts: u64,
    /// Saturation windows entered under `degrade` overload handling.
    sharded_degraded_windows: u64,
    /// 1 − (telemetry-attached ÷ detached) single-stream pps: the
    /// measured fractional hot-path cost of the live telemetry plane.
    /// Slightly negative under run-to-run noise. Gated by
    /// `--max-telemetry-overhead`.
    telemetry_overhead: f64,
    /// Per-shard counter deltas and stage latency summaries of the
    /// measured sharded run, straight from the telemetry hub.
    shard_telemetry: Vec<ShardTelemetryRow>,
    baseline1_pps: f64,
    kitsune_pps: f64,
    /// Peak concurrently tracked flows of the churn phase; `0` when the
    /// run did not measure it (same convention as `clap_quant_pps`).
    flows_peak: u64,
    /// Packets/second sustained by the churn phase; `0.0` when not
    /// measured.
    scale_pps: f64,
    /// Measured flow-table heap bytes per peak live flow; `0.0` when not
    /// measured. (Non-positive values are rejected as references, so an
    /// unmeasured report can never weaken the memory gate.)
    bytes_per_flow: f64,
    /// Churn-phase packets pushed.
    scale_packets: u64,
    /// Flows reclaimed by idle (timer-wheel) expiry during the churn
    /// phase.
    scale_evicted_idle: u64,
    /// Flows evicted at the `max_flows` capacity wall during the churn
    /// phase.
    scale_evicted_capacity: u64,
    /// Flows finalized by observed TCP teardown during the churn phase.
    scale_closed_tcp: u64,
    /// Flows still live at the end of the churn phase (drained).
    scale_drained: u64,
    /// Measured detection for the three Extended protocol-diversity attack
    /// families (IPv6 ext-header corruption, UDP length/checksum games,
    /// overlapping-fragment evasion) over mixed v4/v6/TCP/UDP traffic.
    extended_detection: Vec<ExtendedFamilyRow>,
}

/// One shard's slice of the measured sharded run: counter deltas across
/// the timed pass only (the hub is lifetime-cumulative and the warm-up
/// would otherwise double every number), plus per-stage latency
/// summaries. The histograms cannot be delta'd — percentiles aren't
/// subtractive — but warm-up and measured pass are the identical
/// workload, so the cumulative distribution is the measured one. Stage
/// rows carry zero samples unless built with `--features telemetry`.
#[derive(Debug, Serialize)]
struct ShardTelemetryRow {
    shard: usize,
    pushed: u64,
    scored: u64,
    dropped: u64,
    quarantined: u64,
    full_waits: u64,
    stages: Vec<StageLatencyRow>,
}

/// One pipeline stage's latency summary (log2-bucket lower bounds).
#[derive(Debug, Serialize)]
struct StageLatencyRow {
    stage: &'static str,
    samples: u64,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
}

/// Corpus replays per timed run of the telemetry-overhead pair.
const TELEM_PASSES: usize = 1;
/// Attached/detached pairs measured for the telemetry-overhead median.
/// Many short pairs interleave the two sides at a finer grain than few
/// long ones, so machine-wide throughput drift cancels inside each pair.
const TELEM_PAIRS: usize = 21;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = Preset::from_args(&args);
    let threads: usize = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let shards: usize = arg_value(&args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(1);
    let measure_quant = match arg_value(&args, "--quant").as_deref() {
        None => false,
        Some("int8") => true,
        Some(other) => {
            eprintln!("invalid --quant value `{other}` (expected `int8`)");
            std::process::exit(1);
        }
    };
    let microbatch: usize = match arg_value(&args, "--microbatch") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 2 => n,
            _ => {
                eprintln!("invalid --microbatch value `{v}` (expected an integer ≥ 2)");
                std::process::exit(1);
            }
        },
        None => 0,
    };
    let json_path =
        arg_value(&args, "--json").unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let policy = match arg_value(&args, "--overload-policy") {
        Some(spec) => OverloadPolicy::parse(&spec).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        None => OverloadPolicy::Block,
    };
    let require_no_shed = args.iter().any(|a| a == "--require-no-shed");

    // The paper constrains both pipelines to one logical core; a local
    // rayon pool pins our parallelism the same way.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");

    let models = train_all(&preset);

    // Detection for the Extended protocol-diversity families rides along
    // with the throughput run (the paper's 73 are exp_detection's job):
    // each family only applies to mixed v4/v6/TCP/UDP traffic, scored here
    // against a mixed benign distribution.
    let extended_detection = evaluate_extended_families(&models, &preset);
    println!("\n== Extended families: detection over mixed v4/v6/TCP/UDP traffic ==");
    println!(
        "{}",
        render_table(
            &["Family", "Conns", "AUC", "Detect@5%FPR"],
            &extended_detection
                .iter()
                .map(|r| vec![
                    r.strategy_name.clone(),
                    r.connections.to_string(),
                    format!("{:.3}", r.auc),
                    format!("{:.1}%", r.detection_rate * 100.0),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // Adversarial corpus mirroring §4.4: a mixed bag across strategies.
    let mut corpus = Vec::new();
    for strat in dpi_attacks::registry() {
        let set = bench::adversarial_set(strat, &preset);
        corpus.extend(set.into_iter().map(|r| r.connection));
    }
    let packets: usize = corpus.iter().map(net_packet::Connection::len).sum();
    eprintln!(
        "[{}] corpus: {} connections / {} packets, {} thread(s)",
        preset.name,
        corpus.len(),
        packets,
        threads
    );

    // The streaming engine sees what a tap would: one packet stream,
    // interleaved across all flows, in timestamp order.
    let mut stream: Vec<&net_packet::Packet> =
        corpus.iter().flat_map(|c| c.packets.iter()).collect();
    stream.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));

    let plan = match arg_value(&args, "--fault-plan") {
        Some(spec) => FaultPlan::parse(&spec, stream.len() as u64).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        None => FaultPlan::none(),
    };
    if !plan.is_empty() {
        clap_core::shard::fault::silence_injected_panics();
        eprintln!(
            "[{}] injecting faults into the sharded run: {:?}",
            preset.name,
            plan.faults()
        );
    }
    // Only a fault-free Block run guarantees the sharded measurement
    // scores every packet; otherwise the accounting invariant replaces
    // the exact count assert.
    let lossless = plan.is_empty() && policy == OverloadPolicy::Block;

    let (fused, quant, unfused, streaming, micro, telem, b1, kitsune) = pool.install(|| {
        // Warm-up pass so one-time costs (page faults, lazy init) don't
        // skew the first measurement. Engine precisions are pinned
        // explicitly so a NEURAL_QUANT override in the environment can't
        // silently turn the f32 baseline into a second int8 run.
        let warm = models.clap.score_connections_with(&corpus, QuantMode::Off);

        let t = Instant::now();
        let s_fused = models.clap.score_connections_with(&corpus, QuantMode::Off);
        let fused = t.elapsed();

        // The int8 quantized fused engine, same corpus, same sharding.
        let quant = measure_quant.then(|| {
            let warm_q = models.clap.score_connections_with(&corpus, QuantMode::Int8);
            let t = Instant::now();
            let s_quant = models.clap.score_connections_with(&corpus, QuantMode::Int8);
            let quant = t.elapsed();
            assert_eq!(s_quant.len(), s_fused.len());
            assert_eq!(warm_q.len(), s_quant.len());
            // Wiring sanity only — int8 must be the same detector, not a
            // different function. The bound is deliberately loose: on
            // adversarial corpora a corrupted field can put an outlier in
            // a profile row, coarsening that row's activation grid and
            // drifting the (far-above-threshold) score by >10%. The
            // calibrated drift and verdict-flip bounds live in the parity
            // test suites, on controlled inputs.
            for (q, f) in s_quant.iter().zip(&s_fused) {
                let rel = (q.score - f.score).abs() / f.score.abs().max(1e-3);
                assert!(
                    rel < 0.25,
                    "int8/f32 divergence: {} vs {} ({:.1}%)",
                    q.score,
                    f.score,
                    rel * 100.0
                );
            }
            // A genuinely quantized engine never reproduces f32 bitwise
            // over a whole corpus; identical scores mean the int8 path
            // silently degraded to f32 — which the relative-ratio gate
            // below could never catch (ratio ≈ 1.0 is inside any sane
            // noise budget).
            assert!(
                s_quant
                    .iter()
                    .zip(&s_fused)
                    .any(|(q, f)| q.score != f.score),
                "int8 scores are bitwise identical to f32 — quantization is disabled"
            );
            quant
        });

        let t = Instant::now();
        let s_unfused = models.clap.score_connections_unfused(&corpus);
        let unfused = t.elapsed();

        let t = Instant::now();
        let mut scorer = models.clap.stream_scorer_with(StreamConfig {
            quant: QuantMode::Off,
            // Pinned off so a CLAP_MICROBATCH override in the environment
            // can't silently batch the per-packet baseline.
            microbatch: 0,
            ..StreamConfig::default()
        });
        for p in &stream {
            scorer.push(p);
        }
        let closed = scorer.finish();
        let streaming = t.elapsed();
        let streamed_packets: usize = closed.iter().map(|c| c.packets).sum();
        assert_eq!(
            streamed_packets, packets,
            "streaming must account for every packet"
        );

        // The telemetry tax, measured rather than assumed: the same
        // per-packet streaming run with live counter cells + stage
        // histograms attached vs detached, interleaved as TELEM_PAIRS
        // attached/detached pairs whose per-pair ratios feed a median.
        // (Counters are always compiled; the `telemetry` feature adds
        // the 1-in-32 sampled clock reads to the attached run.)
        //
        // Each timed run replays the corpus TELEM_PASSES times
        // (timestamps shifted to keep the stream clock monotone).
        let telem_stream: Vec<net_packet::Packet> = {
            let span = stream.last().map_or(0.0, |p| p.timestamp) + 1.0;
            (0..TELEM_PASSES)
                .flat_map(|pass| {
                    stream.iter().map(move |p| {
                        let mut q = (*p).clone();
                        q.timestamp += span * pass as f64;
                        q
                    })
                })
                .collect()
        };
        let run_telemetry = |attach: bool| {
            let mut scorer = models.clap.stream_scorer_with(StreamConfig {
                quant: QuantMode::Off,
                microbatch: 0,
                ..StreamConfig::default()
            });
            if attach {
                scorer.attach_telemetry(Arc::new(StreamCells::default()));
                scorer.attach_stages(Arc::new(StageHists::default()));
            }
            let t = Instant::now();
            for p in &telem_stream {
                scorer.push(p);
            }
            let closed = scorer.finish();
            let elapsed = t.elapsed();
            let n: usize = closed.iter().map(|c| c.packets).sum();
            assert_eq!(
                n,
                telem_stream.len(),
                "telemetry run must account for every packet"
            );
            elapsed
        };
        // warm-up
        let _ = run_telemetry(true);
        // The estimator is the median of per-pair ratios, not a ratio
        // of per-side minima: the two runs of a pair are adjacent in
        // time, so frequency/thermal drift cancels inside each pair,
        // and the median discards pairs hit by interference — whereas
        // per-side floors can come from different machine states and
        // make the ratio a comparison across them. Which side runs
        // first alternates per pair so cache/scheduler position bias
        // cancels across the median too. Many short pairs beat few long
        // ones for the same total budget: the shorter the pair window,
        // the less machine-wide drift fits inside it.
        let mut telem_off = Duration::MAX;
        let mut telem_on = Duration::MAX;
        let mut overheads = Vec::new();
        for pair in 0..TELEM_PAIRS {
            let (off, on) = if pair % 2 == 0 {
                let off = run_telemetry(false);
                (off, run_telemetry(true))
            } else {
                let on = run_telemetry(true);
                (run_telemetry(false), on)
            };
            overheads.push(1.0 - off.as_secs_f64() / on.as_secs_f64());
            telem_off = telem_off.min(off);
            telem_on = telem_on.min(on);
        }
        overheads.sort_by(f64::total_cmp);
        let telem = (telem_off, telem_on, overheads[overheads.len() / 2]);

        // Cross-flow micro-batched streaming vs a per-packet baseline at
        // the same precision (int8 under --quant int8). Byte-identical
        // rendered verdict tables are asserted, not assumed: batching is
        // a scheduling change, never a numeric one.
        let micro = (microbatch >= 2).then(|| {
            let mode = if measure_quant {
                QuantMode::Int8
            } else {
                QuantMode::Off
            };
            let run_stream = |cap: usize| {
                let mut scorer = models.clap.stream_scorer_with(StreamConfig {
                    quant: mode,
                    microbatch: cap,
                    ..StreamConfig::default()
                });
                let t = Instant::now();
                for p in &stream {
                    scorer.push(p);
                }
                let mut closed = scorer.drain_closed();
                closed.extend(scorer.finish());
                let elapsed = t.elapsed();
                let occupancy = scorer.batch_occupancy().to_vec();
                (
                    elapsed,
                    bench::verdict_table(&closed, usize::MAX),
                    occupancy,
                )
            };
            let _ = run_stream(0); // warm-up
            let _ = run_stream(microbatch); // warm-up

            // The speedup is a ratio of two one-second-scale wall-clock
            // measurements, and a loaded box's run-to-run variance swamps
            // a single pair. Alternate the two modes and keep the best of
            // each: min-of-N discards interference spikes, and
            // alternation keeps slow frequency/thermal drift from
            // biasing one side.
            let mut base_elapsed = Duration::MAX;
            let mut mb_elapsed = Duration::MAX;
            let mut occupancy = Vec::new();
            for rep in 0..5 {
                let (base, base_table, _) = run_stream(0);
                let (mb, mb_table, occ) = run_stream(microbatch);
                base_elapsed = base_elapsed.min(base);
                mb_elapsed = mb_elapsed.min(mb);
                if rep == 0 {
                    assert_eq!(
                        base_table, mb_table,
                        "micro-batched streaming must render a byte-identical verdict table"
                    );
                    occupancy = occ;
                }
            }
            (base_elapsed, mb_elapsed, occupancy)
        });

        let t = Instant::now();
        let s_b1 = models.baseline1.score_connections(&corpus);
        let b1 = t.elapsed();

        let t = Instant::now();
        let s_k = models.kitsune.score_connections(&corpus);
        let kitsune = t.elapsed();

        assert_eq!(warm.len(), s_fused.len());
        assert_eq!(s_fused.len(), s_unfused.len());
        assert_eq!(s_b1.len(), s_k.len());
        // The two engines must agree, not just run: scoring is only "fast"
        // if it is still computing the same thing.
        for (a, b) in s_fused.iter().zip(&s_unfused) {
            assert!(
                (a.score - b.score).abs() < 1e-5,
                "fused/unfused divergence: {} vs {}",
                a.score,
                b.score
            );
        }
        (fused, quant, unfused, streaming, micro, telem, b1, kitsune)
    });

    // The RSS-sharded streaming engine runs outside the pinned pool: its
    // whole point is to use `shards` worker cores plus the dispatcher.
    // Teardown mirrors the single-stream measurement (flows scored to
    // stream end), so sharded and unsharded do identical per-flow work.
    let sharded_scorer = models.clap.sharded_scorer_with(ShardConfig {
        shards,
        queue_capacity: 1024,
        stream: StreamConfig {
            quant: QuantMode::Off,
            microbatch: 0,
            ..StreamConfig::default()
        },
        overload: policy,
        faults: plan.clone(),
        ..ShardConfig::default()
    });
    let supervised_run = || match sharded_scorer.try_score_stream(stream.iter().copied()) {
        Ok(run) => run,
        Err(e) => {
            // Dead or stuck shards degrade the measurement; the partial
            // run still carries the survivors' verdicts and exact stats.
            eprintln!("[{}] DEGRADED SHARDED RUN: {e}", preset.name);
            e.partial
        }
    };
    // Warm-up: first run pays thread spawn + page faults.
    let warm = supervised_run();
    // The hub is lifetime-cumulative; snapshotting around the timed run
    // confines the reported counters to the measured pass.
    let hub = sharded_scorer.telemetry();
    let tel_base = hub.snapshot();
    let t = Instant::now();
    let run = supervised_run();
    let sharded = t.elapsed();
    let tel_end = hub.snapshot();
    ShardHealth::check_accounting(&run.stats).expect("per-shard accounting invariant");
    let health = ShardHealth::of(&run.stats);
    if lossless {
        let sharded_packets: usize = run.verdicts.iter().map(|v| v.flow.packets).sum();
        assert_eq!(
            sharded_packets, packets,
            "sharded streaming must account for every packet"
        );
        assert_eq!(warm.verdicts.len(), run.verdicts.len());
    }
    let stalls: u64 = run.stats.iter().map(|s| s.full_waits).sum();
    eprintln!(
        "[{}] sharded run: {} shards ({} policy), {} flows, {} backpressure stalls",
        preset.name,
        shards,
        policy,
        run.verdicts.len(),
        stalls
    );
    eprintln!("{}", bench::shard_stats_table(&run.stats));
    let shard_telemetry: Vec<ShardTelemetryRow> = tel_end
        .shards
        .iter()
        .zip(&tel_base.shards)
        .enumerate()
        .map(|(i, (e, b))| ShardTelemetryRow {
            shard: i,
            pushed: e.pushed - b.pushed,
            scored: e.scored - b.scored,
            dropped: e.dropped - b.dropped,
            quarantined: e.quarantined - b.quarantined,
            full_waits: e.full_waits - b.full_waits,
            stages: Stage::ALL
                .iter()
                .map(|s| {
                    let sum = e.stages[s.index()];
                    StageLatencyRow {
                        stage: s.name(),
                        samples: sum.count,
                        p50_ns: sum.p50_ns,
                        p99_ns: sum.p99_ns,
                        max_ns: sum.max_ns,
                    }
                })
                .collect(),
        })
        .collect();
    // Stage histograms carry samples only under `--features telemetry`;
    // the table appears exactly when there is something to show.
    if shard_telemetry
        .iter()
        .any(|r| r.stages.iter().any(|s| s.samples > 0))
    {
        let rows: Vec<Vec<String>> = shard_telemetry
            .iter()
            .flat_map(|r| {
                r.stages.iter().filter(|s| s.samples > 0).map(|s| {
                    vec![
                        r.shard.to_string(),
                        s.stage.to_string(),
                        s.samples.to_string(),
                        s.p50_ns.to_string(),
                        s.p99_ns.to_string(),
                        s.max_ns.to_string(),
                    ]
                })
            })
            .collect();
        println!("\n== Per-stage latency (sampled log2 histograms, bucket floors) ==");
        println!(
            "{}",
            render_table(
                &["Shard", "Stage", "Samples", "p50 (ns)", "p99 (ns)", "max (ns)"],
                &rows
            )
        );
    }
    if require_no_shed && health.shed() > 0 {
        eprintln!(
            "SHED GATE FAILED: sharded run dropped {} and quarantined {} packet(s) \
             (policy {policy}); --require-no-shed demands zero",
            health.dropped, health.quarantined
        );
        std::process::exit(1);
    }
    if require_no_shed {
        eprintln!(
            "shed gate OK: 0 dropped / 0 quarantined across {} pushed packets",
            health.pushed
        );
    }

    // The churn phase: a high-arrival-rate elephant/mice workload against
    // a million-flow table, measuring sustained pps and per-flow memory.
    // Runs for `--preset scale` (1M flows unless overridden) or whenever
    // `--churn-flows` is passed explicitly.
    let churn_flows: usize = match arg_value(&args, "--churn-flows") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid --churn-flows value `{v}`");
            std::process::exit(2);
        }),
        None if preset.name == "scale" => 1_000_000,
        None => 0,
    };
    let scale = (churn_flows > 0).then(|| {
        let churn_packets: usize = match arg_value(&args, "--churn-packets") {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid --churn-packets value `{v}`");
                std::process::exit(2);
            }),
            // Ramp (one SYN per packet) plus enough steady-state churn to
            // cycle the mice several times over.
            None => churn_flows.saturating_mul(6),
        };
        let resident = match arg_value(&args, "--resident").as_deref() {
            None | Some("int8") => ResidentMode::Int8,
            Some("f32") => ResidentMode::F32,
            Some(other) => {
                eprintln!("invalid --resident value `{other}` (expected `f32` or `int8`)");
                std::process::exit(2);
            }
        };
        let churn_cfg = ChurnConfig {
            // High arrival rate: at the plateau, live flows see a mean
            // inter-packet gap of concurrent/pps seconds — well inside
            // the idle timeout, so eviction pressure comes from TCP
            // teardown churn, not spurious idle expiry.
            pps: 2_000_000.0,
            ..ChurnConfig::new(preset.seed ^ 0x5ca1e, churn_flows, churn_packets)
        };
        let mut scorer = models.clap.stream_scorer_with(StreamConfig {
            quant: if measure_quant {
                QuantMode::Int8
            } else {
                QuantMode::Off
            },
            resident,
            idle_timeout: 30.0,
            // ~3% headroom above the plateau for abandoned (FIN-less)
            // flows awaiting idle expiry; sized so the slab's capacity
            // clamp stays tight around the measured peak.
            max_flows: churn_flows + churn_flows / 32,
            ..StreamConfig::default()
        });
        eprintln!(
            "[{}] churn phase: {} packets toward a {}-flow plateau ({:?} resident, {:?} weights)…",
            preset.name,
            churn_packets,
            churn_flows,
            resident,
            scorer.quant_mode()
        );
        let mut gen = traffic_gen::churn(&churn_cfg);
        let mut closed_packets: usize = 0;
        let mut pushed: usize = 0;
        let t = Instant::now();
        for p in &mut gen {
            scorer.push(&p);
            pushed += 1;
            // Periodic verdict drain, as a long-running tap would do —
            // otherwise the closed-flow queue, not the flow table, would
            // dominate the memory measurement.
            if pushed.is_multiple_of(65_536) {
                closed_packets += scorer
                    .drain_closed()
                    .iter()
                    .map(|c| c.packets)
                    .sum::<usize>();
            }
        }
        let elapsed = t.elapsed();
        // Memory is sampled at full plateau, before the final flush.
        let mem = scorer.mem_bytes();
        let live = scorer.live_flows();
        closed_packets += scorer.finish().iter().map(|c| c.packets).sum::<usize>();
        let stats = scorer.stats();
        assert_eq!(
            closed_packets, pushed,
            "churn phase must account for every packet"
        );
        assert!(
            stats.flows_peak >= churn_flows,
            "churn phase never reached the {churn_flows}-flow plateau (peak {})",
            stats.flows_peak
        );
        let scale_pps = pushed as f64 / elapsed.as_secs_f64();
        let bytes_per_flow = mem as f64 / stats.flows_peak as f64;
        println!("\n== Flow-table scale: {churn_flows}-flow churn phase ==");
        println!(
            "{}",
            render_table(
                &["Metric", "Value"],
                &[
                    vec!["packets".into(), pushed.to_string()],
                    vec!["sustained pkt/s".into(), format!("{scale_pps:.1}")],
                    vec!["flows_peak".into(), stats.flows_peak.to_string()],
                    vec!["live at end".into(), live.to_string()],
                    vec!["table heap (MB)".into(), format!("{:.1}", mem as f64 / 1e6)],
                    vec!["bytes/flow".into(), format!("{bytes_per_flow:.0}")],
                    vec![
                        "closed by TCP teardown".into(),
                        stats.closed_tcp.to_string()
                    ],
                    vec!["evicted idle".into(), stats.evicted_idle.to_string()],
                    vec![
                        "evicted at capacity".into(),
                        stats.evicted_capacity.to_string(),
                    ],
                    vec!["drained at end".into(), stats.drained.to_string()],
                ],
            )
        );
        (scale_pps, bytes_per_flow, stats, pushed)
    });

    let pps = |elapsed: std::time::Duration| packets as f64 / elapsed.as_secs_f64();
    let cps = |elapsed: std::time::Duration| corpus.len() as f64 / elapsed.as_secs_f64();

    println!("\n== Table 3: model processing throughput ({threads} thread(s)) ==");
    println!("   (paper, 1 core: CLAP 2,162.2 pkt/s / 97.0 conn/s; Kitsune 1,444.5 / 64.8 —");
    println!("    absolute numbers differ by implementation; the shape is CLAP > Kitsune)");
    let mut table = vec![
        vec![
            "CLAP (fused engine)".to_string(),
            format!("{:.1}", pps(fused)),
            format!("{:.1}", cps(fused)),
        ],
        vec![
            "CLAP (unfused reference)".to_string(),
            format!("{:.1}", pps(unfused)),
            format!("{:.1}", cps(unfused)),
        ],
        vec![
            "CLAP (streaming per-flow)".to_string(),
            format!("{:.1}", pps(streaming)),
            format!("{:.1}", cps(streaming)),
        ],
        vec![
            format!("CLAP (sharded streaming, {shards} shards)"),
            format!("{:.1}", pps(sharded)),
            format!("{:.1}", cps(sharded)),
        ],
        vec![
            "Baseline #1".to_string(),
            format!("{:.1}", pps(b1)),
            format!("{:.1}", cps(b1)),
        ],
        vec![
            "Kitsune-lite [17]".to_string(),
            format!("{:.1}", pps(kitsune)),
            format!("{:.1}", cps(kitsune)),
        ],
    ];
    if let Some(q) = quant {
        table.insert(
            1,
            vec![
                "CLAP (fused, int8 quantized)".to_string(),
                format!("{:.1}", pps(q)),
                format!("{:.1}", cps(q)),
            ],
        );
    }
    if let Some((base, batched, _)) = &micro {
        let precision = if measure_quant { "int8" } else { "f32" };
        table.push(vec![
            format!("CLAP (streaming per-packet, {precision})"),
            format!("{:.1}", pps(*base)),
            format!("{:.1}", cps(*base)),
        ]);
        table.push(vec![
            format!("CLAP (streaming micro-batched ≤{microbatch}, {precision})"),
            format!("{:.1}", pps(*batched)),
            format!("{:.1}", cps(*batched)),
        ]);
    }
    println!(
        "{}",
        render_table(&["Model", "Packets/Second", "Connections/Second"], &table)
    );
    println!(
        "fusion speedup: {:.2}x (fused {:.1} pkt/s vs unfused {:.1} pkt/s)",
        pps(fused) / pps(unfused),
        pps(fused),
        pps(unfused)
    );
    println!(
        "streaming vs batch: {:.2}x (streaming {:.1} pkt/s vs fused batch {:.1} pkt/s)",
        pps(streaming) / pps(fused),
        pps(streaming),
        pps(fused)
    );
    println!(
        "shard scaling: {:.2}x over 1-thread streaming ({} shards: {:.1} pkt/s vs {:.1} pkt/s)",
        pps(sharded) / pps(streaming),
        shards,
        pps(sharded),
        pps(streaming)
    );
    if let Some(q) = quant {
        println!(
            "quant speedup: {:.2}x (int8 {:.1} pkt/s vs f32 fused {:.1} pkt/s)",
            pps(q) / pps(fused),
            pps(q),
            pps(fused)
        );
    }
    if let Some((base, batched, occupancy)) = &micro {
        println!(
            "microbatch speedup: {:.2}x (≤{}-row batches {:.1} pkt/s vs per-packet {:.1} pkt/s, {})",
            pps(*batched) / pps(*base),
            microbatch,
            pps(*batched),
            pps(*base),
            if measure_quant { "int8" } else { "f32" }
        );
        let flushes: u64 = occupancy.iter().sum();
        let rows: u64 = occupancy
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as u64 + 1) * n)
            .sum();
        if flushes > 0 {
            println!(
                "microbatch occupancy: {:.1} rows/flush mean over {} flushes \
                 (full-batch share {:.0}%)",
                rows as f64 / flushes as f64,
                flushes,
                *occupancy.last().unwrap_or(&0) as f64 / flushes as f64 * 100.0
            );
        }
    }

    // overhead = 1 − pps_on/pps_off = 1 − elapsed_off/elapsed_on per
    // pair; the reported number is the median pair (computed above).
    let telemetry_overhead = telem.2;
    let telem_pps = |d: Duration| (packets * TELEM_PASSES) as f64 / d.as_secs_f64();
    println!(
        "telemetry overhead: {:+.2}% (median of {} pairs; best attached {:.1} pkt/s, \
         best detached {:.1} pkt/s)",
        telemetry_overhead * 100.0,
        TELEM_PAIRS,
        telem_pps(telem.1),
        telem_pps(telem.0)
    );

    let report = ThroughputReport {
        preset: preset.name.clone(),
        threads,
        connections: corpus.len(),
        packets,
        clap_fused_pps: pps(fused),
        clap_unfused_pps: pps(unfused),
        fusion_speedup: pps(fused) / pps(unfused),
        clap_stream_pps: pps(streaming),
        stream_over_batch: pps(streaming) / pps(fused),
        shards,
        clap_sharded_pps: pps(sharded),
        shard_scaling: pps(sharded) / pps(streaming),
        microbatch: if micro.is_some() { microbatch } else { 0 },
        microbatch_pps: micro.as_ref().map_or(0.0, |(_, b, _)| pps(*b)),
        microbatch_speedup: micro
            .as_ref()
            .map_or(0.0, |(base, b, _)| pps(*b) / pps(*base)),
        microbatch_occupancy: micro.as_ref().map_or_else(Vec::new, |(_, _, o)| o.clone()),
        clap_quant_pps: quant.map_or(0.0, pps),
        quant_speedup: quant.map_or(0.0, |q| pps(q) / pps(fused)),
        sharded_dropped: health.dropped,
        sharded_quarantined: health.quarantined,
        sharded_restarts: health.restarts,
        sharded_degraded_windows: health.degraded_windows,
        telemetry_overhead,
        shard_telemetry,
        baseline1_pps: pps(b1),
        kitsune_pps: pps(kitsune),
        flows_peak: scale.as_ref().map_or(0, |(_, _, s, _)| s.flows_peak as u64),
        scale_pps: scale.as_ref().map_or(0.0, |(p, _, _, _)| *p),
        bytes_per_flow: scale.as_ref().map_or(0.0, |(_, b, _, _)| *b),
        scale_packets: scale.as_ref().map_or(0, |(_, _, _, n)| *n as u64),
        scale_evicted_idle: scale.as_ref().map_or(0, |(_, _, s, _)| s.evicted_idle),
        scale_evicted_capacity: scale.as_ref().map_or(0, |(_, _, s, _)| s.evicted_capacity),
        scale_closed_tcp: scale.as_ref().map_or(0, |(_, _, s, _)| s.closed_tcp),
        scale_drained: scale.as_ref().map_or(0, |(_, _, s, _)| s.drained),
        extended_detection,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&json_path, json).expect("write throughput json");
    eprintln!("wrote {json_path}");

    // CI regression gate: compare fused pps against a checked-in
    // reference record and fail the run past the budget.
    if let Some(ref_path) = arg_value(&args, "--check-against") {
        // An unparseable budget must fail the gate, not silently fall
        // back to the default and enforce the wrong threshold.
        let max_regress: f64 = match arg_value(&args, "--max-regress") {
            Some(v) => match v.parse() {
                Ok(m) => m,
                Err(_) => {
                    eprintln!("regression gate error: invalid --max-regress value `{v}`");
                    std::process::exit(1);
                }
            },
            None => 0.20,
        };
        let reference = match ThroughputReference::load(&ref_path) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("regression gate error: {msg}");
                std::process::exit(1);
            }
        };
        match check_throughput_regression(
            report.clap_fused_pps,
            reference.clap_fused_pps,
            max_regress,
        ) {
            Ok(change) => eprintln!(
                "regression gate OK: fused {:.1} pkt/s vs reference {:.1} pkt/s \
                 ({:+.1}% change, budget -{:.0}%)",
                report.clap_fused_pps,
                reference.clap_fused_pps,
                change * 100.0,
                max_regress * 100.0
            ),
            Err(msg) => {
                eprintln!("THROUGHPUT REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
        // Second, machine-independent gate: the fused ÷ unfused ratio.
        // Runner speed drift shifts both engines equally, so only a
        // kernel regression — or a narrower dispatched ISA — can move
        // this ratio down; the wider default budget absorbs the latter.
        let max_regress_speedup: f64 = match arg_value(&args, "--max-regress-speedup") {
            Some(v) => match v.parse() {
                Ok(m) => m,
                Err(_) => {
                    eprintln!("regression gate error: invalid --max-regress-speedup value `{v}`");
                    std::process::exit(1);
                }
            },
            None => 0.30,
        };
        if let Some(ref_speedup) = reference.fusion_speedup {
            match check_speedup_regression(report.fusion_speedup, ref_speedup, max_regress_speedup)
            {
                Ok(change) => eprintln!(
                    "speedup gate OK: fusion {:.2}x vs reference {:.2}x \
                     ({:+.1}% change, budget -{:.0}%)",
                    report.fusion_speedup,
                    ref_speedup,
                    change * 100.0,
                    max_regress_speedup * 100.0
                ),
                Err(msg) => {
                    eprintln!("THROUGHPUT REGRESSION: {msg}");
                    std::process::exit(1);
                }
            }
        } else {
            eprintln!("speedup gate skipped: reference records no fusion_speedup");
        }
        // Third gate: the RSS-sharded streaming path. Core count and
        // clock both shift this metric, so the checked-in reference is
        // recorded on the smallest supported machine and the budget is
        // wide; what it reliably catches is the sharded path collapsing
        // (serialization, livelock, duplicated work).
        let max_regress_sharded: f64 = match arg_value(&args, "--max-regress-sharded") {
            Some(v) => match v.parse() {
                Ok(m) => m,
                Err(_) => {
                    eprintln!("regression gate error: invalid --max-regress-sharded value `{v}`");
                    std::process::exit(1);
                }
            },
            None => 0.35,
        };
        if let Some(ref_sharded) = reference.clap_sharded_pps {
            match check_sharded_regression(
                report.clap_sharded_pps,
                ref_sharded,
                max_regress_sharded,
            ) {
                Ok(change) => eprintln!(
                    "sharded gate OK: {:.1} pkt/s vs reference {:.1} pkt/s \
                     ({:+.1}% change, budget -{:.0}%)",
                    report.clap_sharded_pps,
                    ref_sharded,
                    change * 100.0,
                    max_regress_sharded * 100.0
                ),
                Err(msg) => {
                    eprintln!("THROUGHPUT REGRESSION: {msg}");
                    std::process::exit(1);
                }
            }
        } else {
            eprintln!("sharded gate skipped: reference records no clap_sharded_pps");
        }
        // Fourth gate: the int8 quantized engine, on the machine-neutral
        // int8 ÷ f32 ratio. A reference that records quantization numbers
        // demands a measuring run — skipping `--quant int8` must fail the
        // gate, not quietly bypass it.
        let max_regress_quant: f64 = match arg_value(&args, "--max-regress-quant") {
            Some(v) => match v.parse() {
                Ok(m) => m,
                Err(_) => {
                    eprintln!("regression gate error: invalid --max-regress-quant value `{v}`");
                    std::process::exit(1);
                }
            },
            None => 0.30,
        };
        if let Some(ref_quant) = reference.quant_speedup {
            if !measure_quant {
                eprintln!(
                    "regression gate error: reference records quant_speedup {ref_quant:.2} \
                     but this run did not pass --quant int8"
                );
                std::process::exit(1);
            }
            match check_quant_regression(report.quant_speedup, ref_quant, max_regress_quant) {
                Ok(change) => eprintln!(
                    "quant gate OK: int8 {:.2}x vs reference {:.2}x \
                     ({:+.1}% change, budget -{:.0}%)",
                    report.quant_speedup,
                    ref_quant,
                    change * 100.0,
                    max_regress_quant * 100.0
                ),
                Err(msg) => {
                    eprintln!("THROUGHPUT REGRESSION: {msg}");
                    std::process::exit(1);
                }
            }
        } else {
            eprintln!("quant gate skipped: reference records no quant_speedup");
        }
        // Fifth gate: cross-flow micro-batching, on the machine-neutral
        // batched ÷ per-packet streaming ratio. Same contract as the
        // churn-phase gates, not quant: the gate engages only when this
        // run measured micro-batching (`--microbatch`), because the
        // reference file is shared with jobs that never do (the
        // memory-scale job measures the churn phase instead). The
        // throughput CI job always passes `--microbatch`, so the gate
        // cannot silently lapse where it matters.
        let max_regress_microbatch: f64 = match arg_value(&args, "--max-regress-microbatch") {
            Some(v) => match v.parse() {
                Ok(m) => m,
                Err(_) => {
                    eprintln!(
                        "regression gate error: invalid --max-regress-microbatch value `{v}`"
                    );
                    std::process::exit(1);
                }
            },
            None => 0.30,
        };
        if let (Some(ref_microbatch), true) = (reference.microbatch_speedup, micro.is_some()) {
            match check_microbatch_regression(
                report.microbatch_speedup,
                ref_microbatch,
                max_regress_microbatch,
            ) {
                Ok(change) => eprintln!(
                    "microbatch gate OK: {:.2}x vs reference {:.2}x \
                     ({:+.1}% change, budget -{:.0}%)",
                    report.microbatch_speedup,
                    ref_microbatch,
                    change * 100.0,
                    max_regress_microbatch * 100.0
                ),
                Err(msg) => {
                    eprintln!("THROUGHPUT REGRESSION: {msg}");
                    std::process::exit(1);
                }
            }
        } else if micro.is_none() && reference.microbatch_speedup.is_some() {
            eprintln!(
                "microbatch gate skipped: reference records a microbatch_speedup \
                 but this run did not pass --microbatch"
            );
        } else {
            eprintln!("microbatch gate skipped: reference records no microbatch_speedup");
        }
        // Sixth gate pair: the churn phase. Engaged only when this run
        // measured it — unlike quant, a reference with scale numbers must
        // not fail the plain `ci` throughput job, which shares the
        // reference file but never runs the (minutes-long) churn phase.
        if let Some((scale_pps, bytes_per_flow, _, _)) = scale {
            let max_regress_scale: f64 = match arg_value(&args, "--max-regress-scale") {
                Some(v) => match v.parse() {
                    Ok(m) => m,
                    Err(_) => {
                        eprintln!("regression gate error: invalid --max-regress-scale value `{v}`");
                        std::process::exit(1);
                    }
                },
                None => 0.35,
            };
            if let Some(ref_scale) = reference.scale_pps {
                match check_scale_regression(scale_pps, ref_scale, max_regress_scale) {
                    Ok(change) => eprintln!(
                        "scale gate OK: {:.1} pkt/s vs reference {:.1} pkt/s \
                         ({:+.1}% change, budget -{:.0}%)",
                        scale_pps,
                        ref_scale,
                        change * 100.0,
                        max_regress_scale * 100.0
                    ),
                    Err(msg) => {
                        eprintln!("THROUGHPUT REGRESSION: {msg}");
                        std::process::exit(1);
                    }
                }
            } else {
                eprintln!("scale gate skipped: reference records no scale_pps");
            }
            let max_grow: f64 = match arg_value(&args, "--max-grow-bytes-per-flow") {
                Some(v) => match v.parse() {
                    Ok(m) => m,
                    Err(_) => {
                        eprintln!(
                            "regression gate error: invalid --max-grow-bytes-per-flow value `{v}`"
                        );
                        std::process::exit(1);
                    }
                },
                None => 0.25,
            };
            if let Some(ref_bpf) = reference.bytes_per_flow {
                match check_memory_regression(bytes_per_flow, ref_bpf, max_grow) {
                    Ok(change) => eprintln!(
                        "memory gate OK: {:.0} bytes/flow vs reference {:.0} \
                         ({:+.1}% change, budget +{:.0}%)",
                        bytes_per_flow,
                        ref_bpf,
                        change * 100.0,
                        max_grow * 100.0
                    ),
                    Err(msg) => {
                        eprintln!("THROUGHPUT REGRESSION: {msg}");
                        std::process::exit(1);
                    }
                }
            } else {
                eprintln!("memory gate skipped: reference records no bytes_per_flow");
            }
        } else if reference.scale_pps.is_some() || reference.bytes_per_flow.is_some() {
            eprintln!(
                "scale gates skipped: reference records scale numbers but this run \
                 did not measure the churn phase (use --preset scale or --churn-flows)"
            );
        }
    }

    // Optional absolute quant floor — independent of any reference
    // record. The relative quant gate runs against the AVX2-recorded
    // reference (~1.11x), whose 30% budget bottoms out below 1.0, so
    // "int8 slower than f32" needs this absolute check; CI passes 1.0.
    if let Some(v) = arg_value(&args, "--min-quant-speedup") {
        let floor: f64 = match v.parse() {
            Ok(f) => f,
            Err(_) => {
                eprintln!("regression gate error: invalid --min-quant-speedup value `{v}`");
                std::process::exit(1);
            }
        };
        if !measure_quant {
            eprintln!("regression gate error: --min-quant-speedup requires --quant int8");
            std::process::exit(1);
        }
        match check_quant_floor(report.quant_speedup, floor) {
            Ok(()) => eprintln!(
                "quant floor gate OK: {:.2}x over f32 fused (floor {:.2}x)",
                report.quant_speedup, floor
            ),
            Err(msg) => {
                eprintln!("THROUGHPUT REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
    }

    // Optional absolute telemetry-tax ceiling — independent of any
    // reference record: attached and detached runs come from one process
    // back to back, so machine speed cancels out of the ratio and an
    // absolute budget is meaningful everywhere.
    if let Some(v) = arg_value(&args, "--max-telemetry-overhead") {
        let budget: f64 = match v.parse() {
            Ok(b) => b,
            Err(_) => {
                eprintln!("regression gate error: invalid --max-telemetry-overhead value `{v}`");
                std::process::exit(1);
            }
        };
        match check_telemetry_overhead(report.telemetry_overhead, budget) {
            Ok(()) => eprintln!(
                "telemetry overhead gate OK: {:+.2}% within the {:.0}% budget",
                report.telemetry_overhead * 100.0,
                budget * 100.0
            ),
            Err(msg) => {
                eprintln!("THROUGHPUT REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
    }

    // Optional absolute per-flow memory ceiling — independent of any
    // reference record: the per-flow byte budget is a design property of
    // the slab + resident-int8 layout, so CI pins the absolute number.
    if let Some(v) = arg_value(&args, "--max-bytes-per-flow") {
        let ceiling: f64 = match v.parse() {
            Ok(c) => c,
            Err(_) => {
                eprintln!("regression gate error: invalid --max-bytes-per-flow value `{v}`");
                std::process::exit(1);
            }
        };
        let Some((_, bytes_per_flow, _, _)) = scale else {
            eprintln!(
                "regression gate error: --max-bytes-per-flow requires the churn phase \
                 (use --preset scale or --churn-flows)"
            );
            std::process::exit(1);
        };
        match check_bytes_per_flow(bytes_per_flow, ceiling) {
            Ok(()) => eprintln!(
                "bytes/flow gate OK: {bytes_per_flow:.0} within the {ceiling:.0}-byte ceiling"
            ),
            Err(msg) => {
                eprintln!("THROUGHPUT REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
    }

    // Optional absolute scaling floor — independent of any reference
    // record, and the only check that catches a silently serialized
    // sharded path (see the module docs for why it ships disabled).
    if let Some(v) = arg_value(&args, "--min-shard-scaling") {
        let floor: f64 = match v.parse() {
            Ok(f) => f,
            Err(_) => {
                eprintln!("regression gate error: invalid --min-shard-scaling value `{v}`");
                std::process::exit(1);
            }
        };
        match check_shard_scaling_floor(report.shard_scaling, floor) {
            Ok(()) => eprintln!(
                "shard scaling gate OK: {:.2}x over 1-thread streaming (floor {:.2}x)",
                report.shard_scaling, floor
            ),
            Err(msg) => {
                eprintln!("THROUGHPUT REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
    }
}
