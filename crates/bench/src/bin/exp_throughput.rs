//! Table 3: model processing throughput (packets/s and connections/s) of
//! CLAP vs Baseline #2 (Kitsune), single-threaded as in the paper's
//! one-logical-core setup (§4.4).
//!
//! ```text
//! cargo run -p bench --release --bin exp_throughput -- [--preset quick|ci|paper]
//!     [--threads N]
//! ```

use bench::{arg_value, render_table, train_all, Preset};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = Preset::from_args(&args);
    let threads: usize = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    // The paper constrains both pipelines to one logical core; a local
    // rayon pool pins our parallelism the same way.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");

    let models = train_all(&preset);
    // Adversarial corpus mirroring §4.4: a mixed bag across strategies.
    let mut corpus = Vec::new();
    for strat in dpi_attacks::registry() {
        let set = bench::adversarial_set(strat, &preset);
        corpus.extend(set.into_iter().map(|r| r.connection));
    }
    let packets: usize = corpus.iter().map(net_packet::Connection::len).sum();
    eprintln!(
        "[{}] corpus: {} connections / {} packets, {} thread(s)",
        preset.name,
        corpus.len(),
        packets,
        threads
    );

    let (clap_elapsed, kitsune_elapsed) = pool.install(|| {
        let t0 = Instant::now();
        let s1 = models.clap.score_connections(&corpus);
        let clap_elapsed = t0.elapsed();
        let t1 = Instant::now();
        let s2 = models.kitsune.score_connections(&corpus);
        let kitsune_elapsed = t1.elapsed();
        assert_eq!(s1.len(), s2.len());
        (clap_elapsed, kitsune_elapsed)
    });

    let rate = |elapsed: std::time::Duration, n: usize| n as f64 / elapsed.as_secs_f64();
    println!("\n== Table 3: model processing throughput ({threads} thread(s)) ==");
    println!("   (paper, 1 core: CLAP 2,162.2 pkt/s / 97.0 conn/s; Kitsune 1,444.5 / 64.8 —");
    println!("    absolute numbers differ by implementation; the shape is CLAP > Kitsune)");
    let table = vec![
        vec![
            "CLAP".to_string(),
            format!("{:.1}", rate(clap_elapsed, packets)),
            format!("{:.1}", rate(clap_elapsed, corpus.len())),
        ],
        vec![
            "Kitsune-lite [17]".to_string(),
            format!("{:.1}", rate(kitsune_elapsed, packets)),
            format!("{:.1}", rate(kitsune_elapsed, corpus.len())),
        ],
    ];
    println!("{}", render_table(&["Model", "Packets/Second", "Connections/Second"], &table));
}
