//! Table 4: statistics of the (synthetic MAWI-substitute) dataset.
//!
//! ```text
//! cargo run -p bench --release --bin exp_dataset_stats -- [--preset quick|ci|paper]
//! ```

use bench::{render_table, Preset};
use traffic_gen::TrafficStats;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = Preset::from_args(&args);

    let train = traffic_gen::dataset(preset.seed, preset.train_conns);
    let test = traffic_gen::dataset(preset.seed ^ 0x7e57, preset.test_benign);
    let train_stats = TrafficStats::of(&train);
    let test_stats = TrafficStats::of(&test);

    println!(
        "\n== Table 4: dataset statistics (preset `{}`) ==",
        preset.name
    );
    println!("   (paper: 448,091 training / 92,262 testing TCP/IPv4 packets,");
    println!("    31,198 / 6,424 connections ⇒ ≈14.4 packets/connection)");
    let table = vec![
        vec![
            "Training".to_string(),
            format!("{}", train_stats.connections),
            format!("{}", train_stats.packets),
            format!("{:.1}", train_stats.mean_packets_per_connection),
            format!("{}", train_stats.payload_bytes),
        ],
        vec![
            "Testing (benign)".to_string(),
            format!("{}", test_stats.connections),
            format!("{}", test_stats.packets),
            format!("{:.1}", test_stats.mean_packets_per_connection),
            format!("{}", test_stats.payload_bytes),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "Split",
                "Connections",
                "Packets",
                "Pkts/Conn",
                "Payload bytes"
            ],
            &table
        )
    );
}
