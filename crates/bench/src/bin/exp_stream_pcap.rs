//! Streaming per-flow scoring of a pcap capture: `net_packet::pcap` →
//! [`StreamScorer`] — the deployment shape of CLAP's online mode, where a
//! capture file (or a tap writing one) drives the flow table directly.
//!
//! ```text
//! cargo run -p bench --release --bin exp_stream_pcap -- [--preset quick|ci|paper]
//!     [--pcap CAPTURE.pcap] [--write-pcap PATH] [--top N]
//! ```
//!
//! With `--pcap`, scores the given `LINKTYPE_RAW` capture. Without it, the
//! binary synthesizes a capture from generated traffic (benign plus a
//! slice of adversarial connections), round-trips it through the pcap
//! writer/reader — so the exercised path is byte-identical to ingesting a
//! real file — and scores that. `--write-pcap` additionally keeps the
//! synthetic capture on disk for reuse with tcpdump/Wireshark or later
//! runs.
//!
//! Packets are replayed in capture order through one [`StreamScorer`]
//! flow table; every flow's verdict is emitted on TCP teardown, idle
//! timeout or the end-of-capture flush, exactly as in a live deployment.
//!
//! [`StreamScorer`]: clap_core::stream::StreamScorer

use bench::{arg_value, render_table, Preset};
use clap_core::stream::CloseReason;
use clap_core::Clap;
use net_packet::pcap::{read_pcap, write_pcap};
use net_packet::Packet;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = Preset::from_args(&args);
    let top_n: usize = arg_value(&args, "--top")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);

    // Train CLAP only — the baselines have no streaming mode.
    eprintln!("[{}] training CLAP…", preset.name);
    let benign = traffic_gen::dataset(preset.seed, preset.train_conns);
    let (clap, _) = Clap::train(&benign, &preset.clap);

    let packets = match arg_value(&args, "--pcap") {
        Some(path) => {
            let file = std::fs::File::open(&path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            });
            let packets = read_pcap(std::io::BufReader::new(file)).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "[{}] loaded {} TCP packets from {path}",
                preset.name,
                packets.len()
            );
            packets
        }
        None => synthetic_capture(&preset, arg_value(&args, "--write-pcap").as_deref()),
    };
    if packets.is_empty() {
        eprintln!("capture contains no scorable TCP packets");
        std::process::exit(1);
    }

    // Replay in capture order through one flow table, the arrival order a
    // line-rate tap would deliver.
    let t = Instant::now();
    let mut scorer = clap.stream_scorer();
    for p in &packets {
        scorer.push(p);
    }
    let mut closed = scorer.drain_closed();
    let inline_closes = closed.len();
    closed.extend(scorer.finish());
    let elapsed = t.elapsed();

    let streamed: usize = closed.iter().map(|c| c.packets).sum();
    assert_eq!(
        streamed,
        packets.len(),
        "every packet must be accounted for"
    );

    let mut by_reason = [0usize; 5];
    for c in &closed {
        let slot = match c.reason {
            CloseReason::TcpClose => 0,
            CloseReason::IdleTimeout => 1,
            CloseReason::CapacityEvicted => 2,
            CloseReason::LengthCapped => 3,
            CloseReason::Drained => 4,
        };
        by_reason[slot] += 1;
    }

    println!("\n== Streaming pcap replay ({} preset) ==", preset.name);
    println!(
        "{} packets / {} flows in {:.3}s — {:.1} pkt/s ({} finalized inline, {} at flush)",
        packets.len(),
        closed.len(),
        elapsed.as_secs_f64(),
        packets.len() as f64 / elapsed.as_secs_f64(),
        inline_closes,
        closed.len() - inline_closes,
    );
    println!(
        "close reasons: {} tcp-close, {} idle, {} capacity, {} length-cap, {} drained",
        by_reason[0], by_reason[1], by_reason[2], by_reason[3], by_reason[4]
    );

    // Highest-scoring flows: where an analyst would look first.
    closed.sort_by(|a, b| b.scored.score.total_cmp(&a.scored.score));
    let rows: Vec<Vec<String>> = closed
        .iter()
        .take(top_n)
        .map(|c| {
            vec![
                format!("{}:{}", c.key.client.addr, c.key.client.port),
                format!("{}:{}", c.key.server.addr, c.key.server.port),
                c.packets.to_string(),
                format!("{:?}", c.reason),
                format!("{:.5}", c.scored.score),
                c.scored.peak_packet.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Client", "Server", "Pkts", "Closed by", "Score", "Peak pkt"],
            &rows
        )
    );
}

/// Builds a mixed benign + adversarial capture, writes it as a pcap and
/// reads it back, so scoring consumes exactly what a real capture file
/// would deliver (including the microsecond timestamp quantization).
fn synthetic_capture(preset: &Preset, keep_path: Option<&str>) -> Vec<Packet> {
    let mut conns = traffic_gen::dataset(preset.seed ^ 0x9ca9, preset.test_benign.max(8));
    // A few adversarial connections so the top-of-table scores mean
    // something: one strategy is plenty for a replay demo.
    if let Some(strategy) = dpi_attacks::registry().first() {
        let adv = bench::adversarial_set(strategy, preset);
        conns.extend(adv.into_iter().map(|r| r.connection));
    }
    let mut stream: Vec<Packet> = conns
        .iter()
        .flat_map(|c| c.packets.iter().cloned())
        .collect();
    stream.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));

    let mut buf = Vec::new();
    write_pcap(&mut buf, &stream).expect("serialize capture");
    if let Some(path) = keep_path {
        std::fs::write(path, &buf).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[{}] wrote synthetic capture to {path}", preset.name);
    }
    let packets = read_pcap(&buf[..]).expect("round-trip capture");
    eprintln!(
        "[{}] synthetic capture: {} connections / {} packets (pcap round-trip)",
        preset.name,
        conns.len(),
        packets.len()
    );
    packets
}
