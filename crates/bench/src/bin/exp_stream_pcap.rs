//! Streaming per-flow scoring of a pcap capture: `net_packet::pcap` →
//! [`StreamScorer`] — the deployment shape of CLAP's online mode, where a
//! capture file (or a tap writing one) drives the flow table directly.
//!
//! ```text
//! cargo run -p bench --release --bin exp_stream_pcap -- [--preset quick|ci|paper]
//!     [--pcap CAPTURE.pcap] [--write-pcap PATH] [--top N] [--shards N]
//!     [--overload-policy block|drop-newest|degrade[:K]] [--fault-plan SPEC]
//! ```
//!
//! With `--pcap`, scores the given `LINKTYPE_RAW` capture. Without it, the
//! binary synthesizes a capture from generated traffic (benign plus a
//! slice of adversarial connections), round-trips it through the pcap
//! writer/reader — so the exercised path is byte-identical to ingesting a
//! real file — and scores that. `--write-pcap` additionally keeps the
//! synthetic capture on disk for reuse with tcpdump/Wireshark or later
//! runs.
//!
//! Packets are replayed in capture order through one [`StreamScorer`]
//! flow table (`--shards 1`, the default) or through the RSS-sharded
//! multi-queue front end (`--shards N`); every flow's verdict is emitted
//! on TCP teardown, idle timeout or the end-of-capture flush, exactly as
//! in a live deployment. The printed verdict table is deterministic: a
//! pure function of (capture, shard count), byte-identical across runs —
//! and byte-identical across shard counts too whenever no idle-timeout
//! eviction fires (any capture shorter than the 300 s default
//! `idle_timeout`; per-shard clocks may split longer-quiet flows
//! differently). The sharded regression tests pin this.
//!
//! The sharded path runs the *supervised* engine: `--overload-policy`
//! selects what happens on ring-full (default `block`), `--fault-plan`
//! injects a deterministic fault schedule (`panic@N`, `kill@N`,
//! `stall@N[:MS]`, `burst@A..B`, `malform@N`, `random@SEED` —
//! comma-separated) so the failure paths can be exercised from the CLI.
//! The per-shard supervision counters and any quarantined packets are
//! printed after the verdict table.
//!
//! [`StreamScorer`]: clap_core::stream::StreamScorer

use bench::{arg_value, shard_stats_table, verdict_table, Preset};
use clap_core::stream::CloseReason;
use clap_core::{Clap, ClosedFlow, FaultPlan, OverloadPolicy, ShardConfig};
use net_packet::pcap::{read_pcap, write_pcap};
use net_packet::Packet;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = Preset::from_args(&args);
    let top_n: usize = arg_value(&args, "--top")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let shards: usize = arg_value(&args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);

    // Train CLAP only — the baselines have no streaming mode.
    eprintln!("[{}] training CLAP…", preset.name);
    let benign = traffic_gen::dataset(preset.seed, preset.train_conns);
    let (clap, _) = Clap::train(&benign, &preset.clap);

    let packets = match arg_value(&args, "--pcap") {
        Some(path) => {
            let file = std::fs::File::open(&path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            });
            let packets = read_pcap(std::io::BufReader::new(file)).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "[{}] loaded {} TCP packets from {path}",
                preset.name,
                packets.len()
            );
            packets
        }
        None => synthetic_capture(&preset, arg_value(&args, "--write-pcap").as_deref()),
    };
    if packets.is_empty() {
        eprintln!("capture contains no scorable TCP packets");
        std::process::exit(1);
    }

    let policy = match arg_value(&args, "--overload-policy") {
        Some(spec) => OverloadPolicy::parse(&spec).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        None => OverloadPolicy::Block,
    };
    let plan = match arg_value(&args, "--fault-plan") {
        Some(spec) => FaultPlan::parse(&spec, packets.len() as u64).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        None => FaultPlan::none(),
    };
    if !plan.is_empty() {
        clap_core::shard::fault::silence_injected_panics();
        eprintln!("[{}] injecting faults: {:?}", preset.name, plan.faults());
    }
    // Only a fault-free Block run guarantees zero loss; under shed
    // policies or injected faults the accounting invariant (checked
    // below) replaces the exact packet-count assert.
    let mut lossless = plan.is_empty() && policy == OverloadPolicy::Block;

    // Replay in capture order — through one flow table, or hash-sharded
    // across N worker queues; either way the arrival order per flow is
    // what a line-rate tap would deliver.
    let t = Instant::now();
    let mut shard_report = String::new();
    let (closed, inline_closes): (Vec<ClosedFlow>, usize) = if shards > 1 {
        let run = match clap
            .sharded_scorer_with(ShardConfig {
                shards,
                overload: policy,
                faults: plan.clone(),
                ..ShardConfig::default()
            })
            .try_score_stream(packets.iter())
        {
            Ok(run) => run,
            Err(e) => {
                // A dead or stuck shard degrades the run; the survivors'
                // verdicts below are still exact for their flows.
                eprintln!("[{}] DEGRADED RUN: {e}", preset.name);
                lossless = false;
                e.partial
            }
        };
        clap_core::ShardHealth::check_accounting(&run.stats)
            .expect("per-shard accounting invariant");
        let inline = run
            .verdicts
            .iter()
            .filter(|v| v.flow.reason != CloseReason::Drained)
            .count();
        let stalls: u64 = run.stats.iter().map(|s| s.full_waits).sum();
        eprintln!(
            "[{}] {} shards ({} policy), {} backpressure stalls",
            preset.name, shards, policy, stalls
        );
        shard_report = shard_stats_table(&run.stats);
        for q in &run.quarantined {
            shard_report.push_str(&format!("quarantined: {q}\n"));
        }
        (run.verdicts.into_iter().map(|v| v.flow).collect(), inline)
    } else {
        let mut scorer = clap.stream_scorer();
        for p in &packets {
            scorer.push(p);
        }
        let mut closed = scorer.drain_closed();
        let inline = closed.len();
        closed.extend(scorer.finish());
        (closed, inline)
    };
    let elapsed = t.elapsed();

    let streamed: usize = closed.iter().map(|c| c.packets).sum();
    if lossless {
        assert_eq!(
            streamed,
            packets.len(),
            "every packet must be accounted for"
        );
    }

    let mut by_reason = [0usize; 5];
    for c in &closed {
        let slot = match c.reason {
            CloseReason::TcpClose => 0,
            CloseReason::IdleTimeout => 1,
            CloseReason::CapacityEvicted => 2,
            CloseReason::LengthCapped => 3,
            CloseReason::Drained => 4,
        };
        by_reason[slot] += 1;
    }

    println!("\n== Streaming pcap replay ({} preset) ==", preset.name);
    println!(
        "{} packets / {} flows in {:.3}s — {:.1} pkt/s ({} finalized inline, {} at flush)",
        packets.len(),
        closed.len(),
        elapsed.as_secs_f64(),
        packets.len() as f64 / elapsed.as_secs_f64(),
        inline_closes,
        closed.len() - inline_closes,
    );
    println!(
        "close reasons: {} tcp-close, {} idle, {} capacity, {} length-cap, {} drained",
        by_reason[0], by_reason[1], by_reason[2], by_reason[3], by_reason[4]
    );

    // Highest-scoring flows: where an analyst would look first. The table
    // renderer sorts internally and is deterministic across shard counts.
    println!("{}", verdict_table(&closed, top_n));

    // Per-shard supervision counters (sharded runs only): the operator's
    // view of backpressure, shedding, quarantines and restarts.
    if !shard_report.is_empty() {
        println!("{shard_report}");
    }
}

/// Builds a mixed benign + adversarial capture, writes it as a pcap and
/// reads it back, so scoring consumes exactly what a real capture file
/// would deliver (including the microsecond timestamp quantization).
fn synthetic_capture(preset: &Preset, keep_path: Option<&str>) -> Vec<Packet> {
    let mut conns = traffic_gen::dataset(preset.seed ^ 0x9ca9, preset.test_benign.max(8));
    // A few adversarial connections so the top-of-table scores mean
    // something: one strategy is plenty for a replay demo.
    if let Some(strategy) = dpi_attacks::registry().first() {
        let adv = bench::adversarial_set(strategy, preset);
        conns.extend(adv.into_iter().map(|r| r.connection));
    }
    let mut stream: Vec<Packet> = conns
        .iter()
        .flat_map(|c| c.packets.iter().cloned())
        .collect();
    stream.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));

    let mut buf = Vec::new();
    write_pcap(&mut buf, &stream).expect("serialize capture");
    if let Some(path) = keep_path {
        std::fs::write(path, &buf).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[{}] wrote synthetic capture to {path}", preset.name);
    }
    let packets = read_pcap(&buf[..]).expect("round-trip capture");
    eprintln!(
        "[{}] synthetic capture: {} connections / {} packets (pcap round-trip)",
        preset.name,
        conns.len(),
        packets.len()
    );
    packets
}
