//! Streaming per-flow scoring of a pcap capture: `net_packet::pcap` →
//! [`StreamScorer`] — the deployment shape of CLAP's online mode, where a
//! capture file (or a tap writing one) drives the flow table directly.
//!
//! ```text
//! cargo run -p bench --release --bin exp_stream_pcap -- [--preset quick|ci|paper]
//!     [--pcap CAPTURE.pcap] [--write-pcap PATH] [--top N] [--shards N]
//!     [--overload-policy block|drop-newest|degrade[:K]] [--fault-plan SPEC]
//!     [--telemetry-out PATH] [--dump-flows] [--render head-tail]
//!     [--render-frames N]
//! ```
//!
//! With `--pcap`, scores the given `LINKTYPE_RAW` capture. Without it, the
//! binary synthesizes a capture from generated traffic (benign plus a
//! slice of adversarial connections), round-trips it through the pcap
//! writer/reader — so the exercised path is byte-identical to ingesting a
//! real file — and scores that. `--write-pcap` additionally keeps the
//! synthetic capture on disk for reuse with tcpdump/Wireshark or later
//! runs.
//!
//! Packets are replayed in capture order through one [`StreamScorer`]
//! flow table (`--shards 1`, the default) or through the RSS-sharded
//! multi-queue front end (`--shards N`); every flow's verdict is emitted
//! on TCP teardown, idle timeout or the end-of-capture flush, exactly as
//! in a live deployment. The printed verdict table is deterministic: a
//! pure function of (capture, shard count), byte-identical across runs —
//! and byte-identical across shard counts too whenever no idle-timeout
//! eviction fires (any capture shorter than the 300 s default
//! `idle_timeout`; per-shard clocks may split longer-quiet flows
//! differently). The sharded regression tests pin this.
//!
//! The sharded path runs the *supervised* engine: `--overload-policy`
//! selects what happens on ring-full (default `block`), `--fault-plan`
//! injects a deterministic fault schedule (`panic@N`, `kill@N`,
//! `stall@N[:MS]`, `burst@A..B`, `malform@N`, `random@SEED` —
//! comma-separated) so the failure paths can be exercised from the CLI.
//! The per-shard supervision counters and any quarantined packets are
//! printed after the verdict table.
//!
//! # Telemetry and introspection
//!
//! Either path feeds the live telemetry plane (a [`TelemetryHub`]; the
//! single-table path gets a one-shard hub wired to the same counter
//! cells), and the replay harness times the wire→packet **parse** stage
//! from a 1-in-32 sample of the raw capture records — the scorer never
//! sees wire bytes, so that stage belongs to the harness.
//!
//! - `--dump-flows` prints the rendered telemetry snapshot plus a
//!   conntrack-style table of every flow still live at end of stream
//!   (state, age, idle, packets, bytes, current score), before the final
//!   drain closes them.
//! - `--telemetry-out PATH` exports the run over the binary introspection
//!   wire format (`clap-telemetry::wire`): one snapshot frame, one
//!   verdict frame per finalized flow, one flow frame per live
//!   end-of-stream entry. The written bytes are parsed back before the
//!   file is kept — a run never leaves behind an export it cannot read.
//! - `--render head-tail` hexdumps the first and last `--render-frames`
//!   (default 4) records of the capture with their true file offsets and
//!   a parse annotation per frame — the quickest "is this capture what I
//!   think it is" check.
//!
//! [`StreamScorer`]: clap_core::stream::StreamScorer
//! [`TelemetryHub`]: clap_core::TelemetryHub

use bench::{arg_value, render_table, shard_stats_table, verdict_table, Preset};
use clap_core::stream::CloseReason;
use clap_core::{
    Clap, ClosedFlow, FaultPlan, FlowEntry, OverloadPolicy, ShardConfig, Stage, StageHists,
    TelemetryHub, TelemetrySnapshot,
};
use clap_telemetry::render::{hexdump, render_snapshot};
use clap_telemetry::wire;
use net_packet::pcap::{read_pcap, read_pcap_raw, write_pcap};
use net_packet::Packet;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = Preset::from_args(&args);
    let top_n: usize = arg_value(&args, "--top")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let shards: usize = arg_value(&args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let telemetry_out = arg_value(&args, "--telemetry-out");
    let dump_flows = args.iter().any(|a| a == "--dump-flows");
    let render_head_tail = match arg_value(&args, "--render").as_deref() {
        None => false,
        Some("head-tail") => true,
        Some(other) => {
            eprintln!("invalid --render value `{other}` (expected `head-tail`)");
            std::process::exit(2);
        }
    };
    let render_frames: usize = arg_value(&args, "--render-frames")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(1);
    // The flow dump is collected for the export too: a telemetry stream
    // without the conntrack frames would be a partial picture.
    let want_flows = dump_flows || telemetry_out.is_some();

    // Train CLAP only — the baselines have no streaming mode.
    eprintln!("[{}] training CLAP…", preset.name);
    let benign = traffic_gen::dataset(preset.seed, preset.train_conns);
    let (clap, _) = Clap::train(&benign, &preset.clap);

    // The raw capture bytes are kept alongside the parsed packets: the
    // head/tail view and the parse-stage timing both consume what is on
    // disk, not the post-parse form.
    let (packets, raw_capture) = match arg_value(&args, "--pcap") {
        Some(path) => {
            let bytes = std::fs::read(&path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            });
            let packets = read_pcap(&bytes[..]).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "[{}] loaded {} TCP packets from {path}",
                preset.name,
                packets.len()
            );
            (packets, bytes)
        }
        None => synthetic_capture(&preset, arg_value(&args, "--write-pcap").as_deref()),
    };
    if packets.is_empty() {
        eprintln!("capture contains no scorable TCP packets");
        std::process::exit(1);
    }

    if render_head_tail {
        show_head_tail(&raw_capture, render_frames);
    }

    let policy = match arg_value(&args, "--overload-policy") {
        Some(spec) => OverloadPolicy::parse(&spec).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        None => OverloadPolicy::Block,
    };
    let plan = match arg_value(&args, "--fault-plan") {
        Some(spec) => FaultPlan::parse(&spec, packets.len() as u64).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        None => FaultPlan::none(),
    };
    if !plan.is_empty() {
        clap_core::shard::fault::silence_injected_panics();
        eprintln!("[{}] injecting faults: {:?}", preset.name, plan.faults());
    }
    // Only a fault-free Block run guarantees zero loss; under shed
    // policies or injected faults the accounting invariant (checked
    // below) replaces the exact packet-count assert.
    let mut lossless = plan.is_empty() && policy == OverloadPolicy::Block;

    // Replay in capture order — through one flow table, or hash-sharded
    // across N worker queues; either way the arrival order per flow is
    // what a line-rate tap would deliver.
    let t = Instant::now();
    let mut shard_report = String::new();
    let (closed, verdict_shards, live_flows, hub, inline_closes): (
        Vec<ClosedFlow>,
        Vec<u16>,
        Vec<FlowEntry>,
        Arc<TelemetryHub>,
        usize,
    ) = if shards > 1 {
        let scorer = clap.sharded_scorer_with(ShardConfig {
            shards,
            overload: policy,
            faults: plan.clone(),
            dump_flows: want_flows,
            ..ShardConfig::default()
        });
        let hub = scorer.telemetry();
        let run = match scorer.try_score_stream(packets.iter()) {
            Ok(run) => run,
            Err(e) => {
                // A dead or stuck shard degrades the run; the survivors'
                // verdicts below are still exact for their flows.
                eprintln!("[{}] DEGRADED RUN: {e}", preset.name);
                lossless = false;
                e.partial
            }
        };
        clap_core::ShardHealth::check_accounting(&run.stats)
            .expect("per-shard accounting invariant");
        let inline = run
            .verdicts
            .iter()
            .filter(|v| v.flow.reason != CloseReason::Drained)
            .count();
        let stalls: u64 = run.stats.iter().map(|s| s.full_waits).sum();
        eprintln!(
            "[{}] {} shards ({} policy), {} backpressure stalls",
            preset.name, shards, policy, stalls
        );
        shard_report = shard_stats_table(&run.stats);
        for q in &run.quarantined {
            shard_report.push_str(&format!("quarantined: {q}\n"));
        }
        let verdict_shards = run.verdicts.iter().map(|v| v.shard as u16).collect();
        let closed: Vec<ClosedFlow> = run.verdicts.into_iter().map(|v| v.flow).collect();
        (closed, verdict_shards, run.flows, hub, inline)
    } else {
        // The single flow table gets a one-shard hub: the scorer's
        // stream counters re-home onto the hub's cells, and the replay
        // loop plays both dispatcher and worker for the packet ledger.
        let hub = Arc::new(TelemetryHub::new(1));
        let cells = hub.shard(0);
        let mut scorer = clap.stream_scorer();
        scorer.attach_telemetry(Arc::clone(&cells.stream));
        scorer.attach_stages(Arc::clone(&cells.stages));
        for p in &packets {
            cells.dispatch.dispatched_inc();
            scorer.push(p);
            cells.worker.scored();
        }
        let mut closed = scorer.drain_closed();
        let inline = closed.len();
        // The conntrack view is cut *before* the final drain: these are
        // the flows a live tap would still be tracking right now.
        let live = if want_flows {
            scorer.flow_entries()
        } else {
            Vec::new()
        };
        closed.extend(scorer.finish());
        for _ in &closed {
            cells.worker.flow_closed();
        }
        let n = closed.len();
        (closed, vec![0u16; n], live, hub, inline)
    };
    let elapsed = t.elapsed();

    // Parse-stage latency, sampled from the raw capture bytes outside
    // the timed replay — the histograms are cumulative, so recording
    // after the fact lands in the same snapshot.
    time_parse_stage(&hub.shard(0).stages, &raw_capture);
    let snapshot = hub.snapshot();
    snapshot
        .check_invariants()
        .expect("telemetry snapshot invariant");

    let streamed: usize = closed.iter().map(|c| c.packets).sum();
    if lossless {
        assert_eq!(
            streamed,
            packets.len(),
            "every packet must be accounted for"
        );
    }

    let mut by_reason = [0usize; 5];
    for c in &closed {
        let slot = match c.reason {
            CloseReason::TcpClose => 0,
            CloseReason::IdleTimeout => 1,
            CloseReason::CapacityEvicted => 2,
            CloseReason::LengthCapped => 3,
            CloseReason::Drained => 4,
        };
        by_reason[slot] += 1;
    }

    println!("\n== Streaming pcap replay ({} preset) ==", preset.name);
    println!(
        "{} packets / {} flows in {:.3}s — {:.1} pkt/s ({} finalized inline, {} at flush)",
        packets.len(),
        closed.len(),
        elapsed.as_secs_f64(),
        packets.len() as f64 / elapsed.as_secs_f64(),
        inline_closes,
        closed.len() - inline_closes,
    );
    println!(
        "close reasons: {} tcp-close, {} idle, {} capacity, {} length-cap, {} drained",
        by_reason[0], by_reason[1], by_reason[2], by_reason[3], by_reason[4]
    );

    // Highest-scoring flows: where an analyst would look first. The table
    // renderer sorts internally and is deterministic across shard counts.
    println!("{}", verdict_table(&closed, top_n));

    // Per-shard supervision counters (sharded runs only): the operator's
    // view of backpressure, shedding, quarantines and restarts.
    if !shard_report.is_empty() {
        println!("{shard_report}");
    }

    if dump_flows {
        println!("== Telemetry snapshot ==");
        print!("{}", render_snapshot(&snapshot));
        println!(
            "\n== Flow table at end of stream ({} live flows) ==",
            live_flows.len()
        );
        println!("{}", flow_table(&live_flows));
    }

    if let Some(path) = telemetry_out {
        export_telemetry(&path, &snapshot, &closed, &verdict_shards, &live_flows);
    }
}

/// Builds a mixed benign + adversarial capture, writes it as a pcap and
/// reads it back, so scoring consumes exactly what a real capture file
/// would deliver (including the microsecond timestamp quantization).
/// Returns the parsed packets together with the capture bytes.
fn synthetic_capture(preset: &Preset, keep_path: Option<&str>) -> (Vec<Packet>, Vec<u8>) {
    let mut conns = traffic_gen::dataset(preset.seed ^ 0x9ca9, preset.test_benign.max(8));
    // A few adversarial connections so the top-of-table scores mean
    // something: one strategy is plenty for a replay demo.
    if let Some(strategy) = dpi_attacks::registry().first() {
        let adv = bench::adversarial_set(strategy, preset);
        conns.extend(adv.into_iter().map(|r| r.connection));
    }
    let mut stream: Vec<Packet> = conns
        .iter()
        .flat_map(|c| c.packets.iter().cloned())
        .collect();
    stream.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));

    let mut buf = Vec::new();
    write_pcap(&mut buf, &stream).expect("serialize capture");
    if let Some(path) = keep_path {
        std::fs::write(path, &buf).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[{}] wrote synthetic capture to {path}", preset.name);
    }
    let packets = read_pcap(&buf[..]).expect("round-trip capture");
    eprintln!(
        "[{}] synthetic capture: {} connections / {} packets (pcap round-trip)",
        preset.name,
        conns.len(),
        packets.len()
    );
    (packets, buf)
}

/// Times the wire→[`Packet`] parse over a 1-in-32 sample of the raw
/// capture records, under [`Stage::Parse`]. The scorer never touches
/// wire bytes — parsing belongs to the replay harness — so this stage is
/// timed here, with a plain [`Instant`], not by the scorer's sampled
/// clocks.
fn time_parse_stage(stages: &StageHists, raw_capture: &[u8]) {
    let Ok(records) = read_pcap_raw(raw_capture) else {
        return;
    };
    for (ts, bytes) in records.iter().step_by(32) {
        let t = Instant::now();
        let _ = Packet::from_bytes(*ts, bytes);
        stages.record(Stage::Parse, t.elapsed().as_nanos() as u64);
    }
}

/// Hexdumps the first and last `n` records of the capture with their
/// true file offsets (24-byte global header, 16-byte record headers) and
/// a one-line parse annotation per frame.
fn show_head_tail(raw_capture: &[u8], n: usize) {
    let records = match read_pcap_raw(raw_capture) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot re-read capture for --render: {e}");
            return;
        }
    };
    let mut offsets = Vec::with_capacity(records.len());
    let mut off = 24usize;
    for (_, bytes) in &records {
        offsets.push(off + 16); // frame data starts past the record header
        off += 16 + bytes.len();
    }
    let show = |i: usize| {
        let (ts, bytes) = &records[i];
        let note = match Packet::from_bytes(*ts, bytes) {
            Ok(p) => format!(
                "{}:{} -> {}:{}, {} payload bytes",
                p.src_addr(),
                p.src_port(),
                p.dst_addr(),
                p.dst_port(),
                p.payload.len()
            ),
            Err(e) => format!("unparsed ({e:?})"),
        };
        println!("frame {i} @ {ts:.6}s, {} bytes — {note}", bytes.len());
        print!("{}", hexdump(bytes, offsets[i]));
    };
    println!(
        "\n== Capture head/tail ({} records, showing {} each end) ==",
        records.len(),
        n.min(records.len())
    );
    for i in 0..records.len().min(n) {
        show(i);
    }
    let tail_start = records.len().saturating_sub(n).max(records.len().min(n));
    if tail_start > n {
        println!("… {} records elided …", tail_start - n);
    }
    for i in tail_start..records.len() {
        show(i);
    }
}

/// Renders the conntrack-style flow table: one row per flow still live
/// at end of stream. A trailing `*` on the state marks a TIME_WAIT
/// linger.
fn flow_table(flows: &[FlowEntry]) -> String {
    render_table(
        &[
            "Proto", "Client", "Server", "State", "Age (s)", "Idle (s)", "Pkts", "Bytes", "Score",
        ],
        &flows
            .iter()
            .map(|f| {
                vec![
                    match f.key.proto {
                        6 => "tcp".to_string(),
                        17 => "udp".to_string(),
                        p => p.to_string(),
                    },
                    f.key.client.to_string(),
                    f.key.server.to_string(),
                    match f.state {
                        Some(s) if f.lingering => format!("{s:?}*"),
                        Some(s) => format!("{s:?}"),
                        None => "-".to_string(),
                    },
                    format!("{:.3}", f.age),
                    format!("{:.3}", f.idle),
                    f.packets.to_string(),
                    f.bytes.to_string(),
                    format!("{:.4}", f.score),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Splits a [`net_packet::FlowKey`] into the wire format's raw identity
/// block: v6 flag, zero-padded 16-byte address blocks, ports.
fn wire_identity(key: &net_packet::FlowKey) -> (bool, [u8; 16], u16, [u8; 16], u16) {
    fn addr_block(addr: std::net::IpAddr) -> (bool, [u8; 16]) {
        let mut block = [0u8; 16];
        match addr {
            std::net::IpAddr::V4(a) => {
                block[..4].copy_from_slice(&a.octets());
                (false, block)
            }
            std::net::IpAddr::V6(a) => {
                block.copy_from_slice(&a.octets());
                (true, block)
            }
        }
    }
    let (v6, client) = addr_block(key.client.addr);
    let (_, server) = addr_block(key.server.addr);
    (v6, client, key.client.port, server, key.server.port)
}

/// Writes the run over the introspection wire format — one snapshot
/// frame, a verdict frame per finalized flow, a flow frame per live
/// end-of-stream entry — and parses the bytes back before keeping the
/// file, so an unreadable export can never be produced.
fn export_telemetry(
    path: &str,
    snapshot: &TelemetrySnapshot,
    closed: &[ClosedFlow],
    verdict_shards: &[u16],
    live_flows: &[FlowEntry],
) {
    let mut out = Vec::new();
    wire::write_snapshot(&mut out, snapshot).expect("in-memory write");
    for (c, &shard) in closed.iter().zip(verdict_shards) {
        let (v6, client_addr, client_port, server_addr, server_port) = wire_identity(&c.key);
        wire::write_verdict(
            &mut out,
            &wire::VerdictRecord {
                v6,
                proto: c.key.proto,
                client_addr,
                client_port,
                server_addr,
                server_port,
                arrival: c.arrival,
                packets: c.packets as u32,
                reason: c.reason as u8,
                shard,
                score: c.scored.score,
                peak_packet: c.scored.peak_packet as u32,
            },
        )
        .expect("in-memory write");
    }
    for f in live_flows {
        let (v6, client_addr, client_port, server_addr, server_port) = wire_identity(&f.key);
        wire::write_flow(
            &mut out,
            &wire::FlowRecord {
                v6,
                proto: f.key.proto,
                client_addr,
                client_port,
                server_addr,
                server_port,
                state: f.state.map(|s| s as u8).unwrap_or(255),
                lingering: f.lingering,
                age: f.age,
                idle: f.idle,
                packets: f.packets,
                bytes: f.bytes,
                score: f.score,
                arrival: f.arrival,
            },
        )
        .expect("in-memory write");
    }
    let frames = wire::read_frames(&out).expect("self-written telemetry must parse back");
    std::fs::write(path, &out).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "wrote {} telemetry frames ({} bytes) to {path}",
        frames.len(),
        out.len()
    );
}
