//! Table 5: per-label accuracy of the state-prediction RNN on held-out
//! benign traffic.
//!
//! ```text
//! cargo run -p bench --release --bin exp_rnn_accuracy -- [--preset quick|ci|paper]
//! ```

use bench::{render_table, Preset};
use clap_core::Clap;
use tcp_state::{StateLabel, TcpState};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = Preset::from_args(&args);

    let train = traffic_gen::dataset(preset.seed, preset.train_conns);
    let test = traffic_gen::dataset(preset.seed ^ 0x7e57, preset.test_benign.max(100));
    eprintln!("[{}] training CLAP RNN…", preset.name);
    let (clap, summary) = Clap::train(&train, &preset.clap);

    let counts = clap.rnn_confusion(&test);
    println!("\n== Table 5: per-label RNN state-prediction accuracy (held-out) ==");
    println!(
        "   (paper: overall 0.995; in-window cells ≥ 0.987, sparse out-of-window cells lower)"
    );
    let mut rows = Vec::new();
    let mut correct_total = (0usize, 0usize);
    for (idx, &(correct, total)) in counts.iter().enumerate() {
        if total == 0 {
            continue;
        }
        let label = StateLabel::from_class_index(idx);
        rows.push(vec![
            label.state.name().to_string(),
            if label.in_window {
                "In-Window".into()
            } else {
                "Out-of-Window".into()
            },
            format!("{total}"),
            format!("{:.4}", correct as f64 / total as f64),
        ]);
        correct_total.0 += correct;
        correct_total.1 += total;
    }
    println!(
        "{}",
        render_table(
            &["TCP state", "Window verdict", "Packets", "Accuracy"],
            &rows
        )
    );
    println!(
        "overall accuracy: {:.4} (training-set accuracy {:.4})",
        correct_total.0 as f64 / correct_total.1.max(1) as f64,
        summary.rnn_accuracy
    );

    // Which states were exercised? For reference against TcpState::ALL.
    let seen: Vec<&str> = TcpState::ALL
        .iter()
        .filter(|s| counts[**s as usize * 2].1 + counts[**s as usize * 2 + 1].1 > 0)
        .map(|s| s.name())
        .collect();
    println!("states present in test traffic: {}", seen.join(", "));
}
