//! Localization-accuracy experiments: Figures 10, 11 and 12 (Top-1/3/5
//! hit rates per strategy) plus the §4.2 takeaway averages.
//!
//! ```text
//! cargo run -p bench --release --bin exp_localization -- [--preset quick|ci|paper]
//!     [--figure10] [--figure11] [--figure12] [--json out.json]
//! ```

use bench::{
    evaluate_localization, has_flag, mean, render_table, train_all, LocalizationRow, Preset,
};
use dpi_attacks::{registry, AttackSource};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = Preset::from_args(&args);
    let all = !(has_flag(&args, "--figure10")
        || has_flag(&args, "--figure11")
        || has_flag(&args, "--figure12"));

    let models = train_all(&preset);
    eprintln!(
        "[{}] evaluating localization on all 73 strategies…",
        preset.name
    );
    let rows: Vec<LocalizationRow> = registry()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            eprint!(
                "\r[{}] strategy {}/{} {:<44}",
                preset.name,
                i + 1,
                registry().len(),
                s.id
            );
            evaluate_localization(&models, s, &preset)
        })
        .collect();
    eprintln!();

    for (flag, source, figure) in [
        ("--figure10", AttackSource::SymTcp, "Figure 10"),
        ("--figure11", AttackSource::Liberate, "Figure 11"),
        ("--figure12", AttackSource::Geneva, "Figure 12"),
    ] {
        if all || has_flag(&args, flag) {
            print_figure(&rows, source, figure);
        }
    }

    let t1 = mean(&rows.iter().map(|r| r.top1).collect::<Vec<_>>());
    let t3 = mean(&rows.iter().map(|r| r.top3).collect::<Vec<_>>());
    let t5 = mean(&rows.iter().map(|r| r.top5).collect::<Vec<_>>());
    println!("\n== Localization takeaway (§4.2) ==");
    println!("paper:    Top-1 76.8%   Top-3 91.0%   Top-5 94.6%");
    println!(
        "measured: Top-1 {:.1}%   Top-3 {:.1}%   Top-5 {:.1}%",
        t1 * 100.0,
        t3 * 100.0,
        t5 * 100.0
    );

    if let Some(path) = bench::arg_value(&args, "--json") {
        std::fs::write(&path, serde_json::to_string_pretty(&rows).unwrap()).unwrap();
        eprintln!("wrote {path}");
    }
}

fn print_figure(rows: &[LocalizationRow], source: AttackSource, figure: &str) {
    println!(
        "\n== {figure}: per-strategy Top-N localization ({}) ==",
        source.name()
    );
    let tag = format!("{source:?}");
    let table: Vec<Vec<String>> = rows
        .iter()
        .filter(|r| r.source == tag)
        .map(|r| {
            vec![
                r.strategy_name.clone(),
                format!("{:.2}", r.top5),
                format!("{:.2}", r.top3),
                format!("{:.2}", r.top1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Strategy", "Top-5", "Top-3", "Top-1"], &table)
    );
}
