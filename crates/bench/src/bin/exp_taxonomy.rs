//! Table 8: the per-context categorization of all 73 evasion strategies.
//!
//! ```text
//! cargo run -p bench --release --bin exp_taxonomy
//! ```

use bench::render_table;
use dpi_attacks::{registry, ContextCategory};

fn main() {
    println!("\n== Table 8: per-context categorization of evasion strategies ==");
    for (cat, label) in [
        (
            ContextCategory::InterPacket,
            "Inter-packet Context Violation",
        ),
        (
            ContextCategory::IntraPacket,
            "Intra-packet Context Violation",
        ),
    ] {
        let rows: Vec<Vec<String>> = registry()
            .iter()
            .filter(|s| s.category == cat)
            .map(|s| {
                vec![
                    s.source.name().to_string(),
                    s.name.to_string(),
                    s.id.to_string(),
                ]
            })
            .collect();
        println!("\n-- {label} ({} strategies) --", rows.len());
        println!("{}", render_table(&["From", "Strategy Name", "id"], &rows));
    }
    println!(
        "total: {} strategies ({} inter / {} intra; paper Table 2: 24 / 49)",
        registry().len(),
        registry()
            .iter()
            .filter(|s| s.category == ContextCategory::InterPacket)
            .count(),
        registry()
            .iter()
            .filter(|s| s.category == ContextCategory::IntraPacket)
            .count(),
    );
}
