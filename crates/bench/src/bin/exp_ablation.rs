//! Ablation study of CLAP's design choices (DESIGN.md §4):
//!
//! * **no-stacking** — stacked window of 1 instead of 3 (how much does the
//!   explicit temporal neighbourhood add on top of the gate features?);
//! * **narrow score window** — adversarial-score window of 1 instead of 5
//!   (is the paper's localize-and-estimate averaging actually better than
//!   taking the raw maximum?).
//!
//! Baseline #1 (in `exp_detection`) is itself the paper's own ablation of
//! the gate-weight features. Evaluated on a representative strategy
//! subset covering both context categories.
//!
//! ```text
//! cargo run -p bench --release --bin exp_ablation -- [--preset quick|ci|paper]
//! ```

use bench::{adversarial_set, mean, render_table, Preset};
use clap_core::{auc_roc, Clap};
use net_packet::Connection;

const STRATEGIES: [&str; 8] = [
    "symtcp-snort-rst-pure",
    "symtcp-gfw-rst-bad-timestamp",
    "symtcp-zeek-data-bad-seq",
    "liberate-low-ttl-min",
    "liberate-bad-tcp-checksum-max",
    "geneva-rst-bad-chksum",
    "geneva-uto-bad-md5",
    "geneva-dataoffset-bad-chksum",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = Preset::from_args(&args);
    let train = traffic_gen::dataset(preset.seed, preset.train_conns);
    let test_benign = traffic_gen::dataset(preset.seed ^ 0x7e57, preset.test_benign);

    // Variant A: the full pipeline.
    let mut full_cfg = preset.clap.clone();
    // Variant B: no profile stacking.
    let mut nostack_cfg = preset.clap.clone();
    nostack_cfg.stack = 1;
    // Variant C: raw-max score instead of the 5-window mean.
    let mut rawmax_cfg = preset.clap.clone();
    rawmax_cfg.score_window = 1;
    full_cfg.ae.seed ^= 0;

    let variants: Vec<(&str, Clap)> = [
        ("full (stack 3, window 5)", &full_cfg),
        ("no stacking (stack 1)", &nostack_cfg),
        ("raw max (window 1)", &rawmax_cfg),
    ]
    .into_iter()
    .map(|(name, cfg)| {
        eprintln!("[{}] training variant: {name}", preset.name);
        let (clap, _) = Clap::train(&train, cfg);
        (name, clap)
    })
    .collect();

    let mut rows = Vec::new();
    for (name, clap) in &variants {
        let benign_scores: Vec<f32> = clap
            .score_connections(&test_benign)
            .iter()
            .map(|s| s.score)
            .collect();
        let mut aucs = Vec::new();
        for id in STRATEGIES {
            let strat = dpi_attacks::strategy_by_id(id).unwrap();
            let adv = adversarial_set(strat, &preset);
            let conns: Vec<Connection> = adv.iter().map(|r| r.connection.clone()).collect();
            let adv_scores: Vec<f32> = clap
                .score_connections(&conns)
                .iter()
                .map(|s| s.score)
                .collect();
            aucs.push(auc_roc(&benign_scores, &adv_scores));
        }
        let mut row = vec![name.to_string(), format!("{:.3}", mean(&aucs))];
        row.extend(aucs.iter().map(|a| format!("{a:.3}")));
        rows.push(row);
    }

    println!(
        "\n== Ablation: CLAP design choices (mean AUC over {} strategies) ==",
        STRATEGIES.len()
    );
    let mut headers: Vec<&str> = vec!["Variant", "Mean AUC"];
    headers.extend(STRATEGIES.iter().map(|s| &s[..s.len().min(18)]));
    println!("{}", render_table(&headers, &rows));
    println!("expected shape: full ≥ no-stacking and full ≥ raw-max on average;");
    println!("the stacking gap concentrates on inter-packet strategies.");
}
