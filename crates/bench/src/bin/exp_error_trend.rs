//! Figure 6: the reconstruction-error trend across an adversarial
//! connection — the spike around the injected packet that motivates the
//! localize-and-estimate adversarial score.
//!
//! Prints an ASCII sparkline of per-window errors for one benign and one
//! attacked copy of the same connection.
//!
//! ```text
//! cargo run -p bench --release --bin exp_error_trend -- [--preset quick|ci|paper]
//!     [--strategy <id>]
//! ```

use bench::{arg_value, train_all, Preset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = Preset::from_args(&args);
    let strategy_id =
        arg_value(&args, "--strategy").unwrap_or_else(|| "geneva-rst-bad-chksum".to_string());
    let strategy = dpi_attacks::strategy_by_id(&strategy_id)
        .unwrap_or_else(|| panic!("unknown strategy {strategy_id}"));

    let models = train_all(&preset);

    // Pick a held-out connection long enough to show a trend.
    let candidates = traffic_gen::dataset(preset.seed ^ 0xf16, 50);
    let mut rng = StdRng::seed_from_u64(6);
    let (conn, attacked) = candidates
        .iter()
        .filter(|c| c.len() >= 12)
        .find_map(|c| strategy.apply(c, &mut rng).map(|r| (c.clone(), r)))
        .expect("no applicable connection found");

    let benign_scored = models.clap.score_connection(&conn);
    let adv_scored = models.clap.score_connection(&attacked.connection);

    println!(
        "\n== Figure 6: reconstruction-error trend ({}) ==",
        strategy.name
    );
    println!(
        "injected adversarial packet index(es): {:?}",
        attacked.adversarial_indices
    );
    println!("\nbenign copy   (score {:.4}):", benign_scored.score);
    println!("{}", sparkline(&benign_scored.window_errors, &[]));
    println!(
        "attacked copy (score {:.4}, peak at window {}):",
        adv_scored.score, adv_scored.peak_window
    );
    println!(
        "{}",
        sparkline(&adv_scored.window_errors, &attacked.adversarial_indices)
    );
    println!(
        "\nspike ratio (attacked peak / benign peak): {:.2}",
        max(&adv_scored.window_errors) / max(&benign_scored.window_errors).max(1e-9)
    );
}

fn max(xs: &[f32]) -> f32 {
    xs.iter().copied().fold(0.0, f32::max)
}

/// Renders errors as a two-row ASCII bar chart with window indices.
fn sparkline(errors: &[f32], adversarial: &[usize]) -> String {
    const LEVELS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let hi = max(errors).max(1e-9);
    let bars: String = errors
        .iter()
        .map(|&e| LEVELS[((e / hi) * (LEVELS.len() - 1) as f32).round() as usize])
        .collect();
    let marks: String = (0..errors.len())
        .map(|w| {
            // A window starting at w covers packets w..w+2.
            if adversarial.iter().any(|&a| (w..w + 3).contains(&a)) {
                '^'
            } else {
                ' '
            }
        })
        .collect();
    let mut out = format!("  errors:  {bars}\n");
    if !adversarial.is_empty() {
        out.push_str(&format!("  adv win:  {marks}\n"));
    }
    for (i, e) in errors.iter().enumerate() {
        if *e == hi {
            out.push_str(&format!("  max = {e:.4} at window {i}"));
            break;
        }
    }
    out
}
