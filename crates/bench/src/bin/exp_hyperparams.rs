//! Table 6: hyper-parameters of every model, as configured in this
//! reproduction (paper values shown for comparison).
//!
//! ```text
//! cargo run -p bench --release --bin exp_hyperparams -- [--preset quick|ci|paper]
//! ```

use bench::{render_table, Preset};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = Preset::from_args(&args);

    println!(
        "\n== Table 6: model hyper-parameters (preset `{}`) ==",
        preset.name
    );
    let rnn = &preset.clap.rnn;
    let ae = &preset.clap.ae;
    let b1 = &preset.baseline1.ae;
    let k = &preset.kitsune;
    let rows = vec![
        vec![
            "RNN (GRU) in CLAP".into(),
            format!("layers 1, input {}, hidden/gate {}", rnn.input, rnn.hidden),
            format!("epochs {} (paper: 30)", rnn.epochs),
        ],
        vec![
            "Autoencoder in CLAP".into(),
            format!(
                "layers {} {:?}, stacking {}",
                ae.layer_sizes.len(),
                ae.layer_sizes,
                preset.clap.stack
            ),
            format!("epochs {} (paper: 1,000)", ae.epochs),
        ],
        vec![
            "Autoencoder in Baseline #1".into(),
            format!("layers {} {:?}", b1.layer_sizes.len(), b1.layer_sizes),
            format!("epochs {} (paper: 1,000)", b1.epochs),
        ],
        vec![
            "Ensemble in Baseline #2".into(),
            format!(
                "{} autoencoders, {} total inputs (avg {:.2}/AE)",
                k.ensemble,
                baselines::KITSUNE_FEATURES,
                baselines::KITSUNE_FEATURES as f32 / k.ensemble as f32
            ),
            format!("epochs {} (paper: 1)", k.epochs),
        ],
    ];
    println!(
        "{}",
        render_table(&["Model", "Architecture", "Training"], &rows)
    );
    println!(
        "score: stacked windows of {}, adversarial-score window {} (paper: 3 / 5)",
        preset.clap.stack, preset.clap.score_window
    );
}
