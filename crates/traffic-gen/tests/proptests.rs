//! Property-based tests for the benign traffic generator: the invariants
//! the rest of the system depends on must hold for *every* seed.

use net_packet::{Direction, TcpFlags};
use proptest::prelude::*;
use tcp_state::{label_connection, TcpState};
use traffic_gen::{generate, TrafficConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every generated connection starts with a client SYN and negotiates
    /// sanely: MSS present on SYNs, window scale on both or neither.
    #[test]
    fn handshake_invariants(seed in 0u64..10_000) {
        let conns = generate(&TrafficConfig::new(seed, 2));
        for conn in &conns {
            let first = &conn.packets[0];
            prop_assert!(first.tcp().flags.contains(TcpFlags::SYN));
            prop_assert!(!first.tcp().flags.contains(TcpFlags::ACK));
            prop_assert_eq!(conn.direction(0), Direction::ClientToServer);
            prop_assert!(first.tcp().mss().is_some(), "SYN must carry MSS");

            // Window scaling is negotiated symmetrically.
            let syn_ws = first.tcp().window_scale().is_some();
            if let Some(synack) = conn.packets.iter().find(|p| {
                p.tcp().flags.contains(TcpFlags::SYN) && p.tcp().flags.contains(TcpFlags::ACK)
            }) {
                prop_assert_eq!(syn_ws, synack.tcp().window_scale().is_some());
            }
        }
    }

    /// Payload segments never exceed the negotiated MSS.
    #[test]
    fn segments_respect_mss(seed in 0u64..10_000) {
        let conns = generate(&TrafficConfig::new(seed, 2));
        for conn in &conns {
            let mss = conn.packets[0].tcp().mss().unwrap() as usize;
            for p in &conn.packets {
                prop_assert!(p.payload.len() <= mss, "payload {} > mss {mss}", p.payload.len());
            }
        }
    }

    /// The reference tracker accepts the trace: handshake completes and
    /// no structural drops occur (benign packets are always well-formed).
    #[test]
    fn tracker_accepts_benign(seed in 0u64..10_000) {
        let conns = generate(&TrafficConfig::new(seed, 2));
        for conn in &conns {
            for p in &conn.packets {
                prop_assert!(tcp_state::TcpTracker::segment_acceptable(p));
            }
            let labels = label_connection(conn);
            prop_assert!(labels.iter().any(|l| l.state == TcpState::Established));
        }
    }

    /// Orderly teardowns end in TIME_WAIT, aborts in CLOSE, and half-open
    /// traces in a pre-close state — never in NONE.
    #[test]
    fn final_states_are_plausible(seed in 0u64..10_000) {
        let conns = generate(&TrafficConfig::new(seed, 3));
        for conn in &conns {
            let last = label_connection(conn).last().copied().unwrap();
            prop_assert!(last.state != TcpState::None, "trace untrackable");
        }
    }

    /// IP identification fields increment per endpoint (real stacks do),
    /// and TTLs are constant per direction within a connection.
    #[test]
    fn ip_header_discipline(seed in 0u64..10_000) {
        let conns = generate(&TrafficConfig::new(seed, 2));
        for conn in &conns {
            let mut ttl: [Option<u8>; 2] = [None, None];
            for (i, p) in conn.packets.iter().enumerate() {
                let d = conn.direction(i).index();
                match ttl[d] {
                    None => ttl[d] = Some(p.ipv4().ttl),
                    Some(t) => prop_assert_eq!(t, p.ipv4().ttl, "TTL changed mid-flow"),
                }
            }
        }
    }

    /// Distinct connections use distinct 4-tuples (no accidental flow
    /// collisions inside a dataset).
    #[test]
    fn flow_keys_are_unique(seed in 0u64..5_000) {
        let conns = generate(&TrafficConfig::new(seed, 20));
        let mut keys: Vec<_> = conns.iter().map(|c| c.key).collect();
        keys.sort_by_key(|k| (k.client.addr, k.client.port, k.server.addr, k.server.port));
        let n = keys.len();
        keys.dedup();
        prop_assert_eq!(keys.len(), n);
    }
}
