//! The connection simulator behind the public generator API.

use crate::TrafficConfig;
use net_packet::{
    ipv4, Connection, Direction, Endpoint, FlowKey, Ipv4Header, Ipv6Header, Packet, TcpFlags,
    TcpHeader, TcpOption, Transport, UdpHeader,
};
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Exp, LogNormal};
use serde::{Deserialize, Serialize};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// High-level shape of a generated flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowProfile {
    /// Request/response exchange (web-like), `rounds` request-response pairs.
    RequestResponse { rounds: u8 },
    /// One-directional bulk transfer; `download` = server→client.
    Bulk { download: bool },
}

/// How the connection ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Teardown {
    /// Orderly close initiated by the client.
    ClientFin,
    /// Orderly close initiated by the server.
    ServerFin,
    /// Both FINs in flight simultaneously.
    SimultaneousClose,
    /// Abortive reset.
    Rst { by_client: bool },
    /// Capture ends mid-connection (no teardown observed).
    HalfOpen,
}

/// The sampled plan for one connection; exposed for tests and examples that
/// want to reason about what the generator decided to do.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConnectionSketch {
    pub profile: FlowProfile,
    pub teardown: Teardown,
    pub mss: u16,
    pub window_scaling: bool,
    pub timestamps: bool,
    pub rtt: f64,
}

struct Peer {
    ep: Endpoint,
    /// Next sequence number this peer will send.
    seq: u32,
    /// Next sequence number this peer expects from the other side.
    rcv_nxt: u32,
    ttl: u8,
    window: u16,
    wscale: u8,
    ts_on: bool,
    tsval: u32,
    ts_recent: u32,
    ip_id: u16,
}

/// The in-flight simulation of a single connection.
struct Sim<'a> {
    rng: &'a mut StdRng,
    time: f64,
    rtt: f64,
    mss: usize,
    packets: Vec<Packet>,
    peers: [Peer; 2],
    /// Copies of emitted data segments, kept for retransmission events.
    sent_data: Vec<(Direction, u32, usize)>,
}

impl<'a> Sim<'a> {
    fn peer(&self, d: Direction) -> &Peer {
        &self.peers[d.index()]
    }

    fn advance(&mut self, secs: f64) {
        self.time += secs.max(0.0);
        // Timestamp clocks tick in milliseconds.
        let ms = (secs * 1000.0).max(0.0) as u32;
        for p in &mut self.peers {
            p.tsval = p.tsval.wrapping_add(ms.max(1));
        }
    }

    /// Emits one segment from `dir` with the given flags and payload length,
    /// advancing sequence state; `seq_override` suppresses the normal
    /// sequence bookkeeping (used for retransmissions and keepalives).
    fn emit(
        &mut self,
        dir: Direction,
        flags: TcpFlags,
        payload_len: usize,
        seq_override: Option<u32>,
        options: Vec<TcpOption>,
    ) {
        let (si, di) = (dir.index(), dir.flip().index());
        let seq = seq_override.unwrap_or(self.peers[si].seq);
        let ack = if flags.contains(TcpFlags::ACK) {
            self.peers[si].rcv_nxt
        } else {
            0
        };
        let src = self.peers[si].ep;
        let dst = self.peers[di].ep;
        let mut ip = Ipv4Header::new(v4(src.addr), v4(dst.addr), self.peers[si].ttl);
        ip.identification = self.peers[si].ip_id;
        self.peers[si].ip_id = self.peers[si].ip_id.wrapping_add(1);
        let mut tcp = TcpHeader::new(src.port, dst.port, seq, ack);
        tcp.flags = flags;
        tcp.window = self.peers[si].window;
        let mut opts = options;
        if self.peers[si].ts_on && self.peers[di].ts_on {
            opts.push(TcpOption::Timestamps {
                tsval: self.peers[si].tsval,
                tsecr: self.peers[si].ts_recent,
            });
        }
        tcp.options = opts;
        let payload = vec![0x61u8; payload_len];
        let pkt = Packet::new(self.time, ip, tcp, payload);

        // Sequence bookkeeping for "really sent" segments only.
        if seq_override.is_none() {
            let consumed = pkt.seq_len();
            self.peers[si].seq = self.peers[si].seq.wrapping_add(consumed);
            self.peers[di].rcv_nxt = self.peers[si].seq;
            if payload_len > 0 {
                self.sent_data.push((dir, seq, payload_len));
            }
        }
        // The receiver's timestamp echo tracks the sender's clock.
        if self.peers[si].ts_on && self.peers[di].ts_on {
            self.peers[di].ts_recent = self.peers[si].tsval;
        }
        self.packets.push(pkt);
    }

    /// Sends `bytes` of data from `dir` as MSS-limited segments, with the
    /// receiver acking roughly every other segment (delayed ack).
    fn send_data(&mut self, dir: Direction, bytes: usize, cfg: &TrafficConfig) {
        let mut remaining = bytes.max(1);
        let mut unacked_segments = 0;
        while remaining > 0 {
            let chunk = remaining.min(self.mss);
            remaining -= chunk;
            let push = remaining == 0;
            let mut flags = TcpFlags::ACK;
            if push {
                flags |= TcpFlags::PSH;
            }
            let dt = self.rng.gen_range(0.0001..0.003);
            self.advance(dt);
            self.emit(dir, flags, chunk, None, vec![]);

            // Occasional immediate retransmission of the segment just sent.
            if self.rng.gen_bool(cfg.p_retransmit / 4.0) {
                let &(d, seq, len) = self.sent_data.last().unwrap();
                self.advance(self.rtt * 1.5);
                self.emit(d, TcpFlags::ACK | TcpFlags::PSH, len, Some(seq), vec![]);
            }

            unacked_segments += 1;
            if unacked_segments >= 2 || remaining == 0 {
                self.advance(self.rtt / 2.0);
                self.emit(dir.flip(), TcpFlags::ACK, 0, None, vec![]);
                unacked_segments = 0;
            }
        }
    }
}

/// IPv4 address of an endpoint known to be v4 (the generator's legacy
/// address pool is all-v4; v6 flows carry their own addresses).
fn v4(addr: std::net::IpAddr) -> Ipv4Addr {
    match addr {
        std::net::IpAddr::V4(a) => a,
        std::net::IpAddr::V6(a) => unreachable!("v4 flow with v6 address {a}"),
    }
}

fn random_endpoints(rng: &mut StdRng) -> (Endpoint, Endpoint) {
    const SERVER_PORTS: [u16; 10] = [80, 443, 22, 25, 110, 143, 993, 3306, 8080, 8443];
    let client = Endpoint::new(
        Ipv4Addr::new(10, rng.gen(), rng.gen(), rng.gen_range(1..255)),
        rng.gen_range(32768..61000),
    );
    let server = Endpoint::new(
        Ipv4Addr::new(
            rng.gen_range(1..=223),
            rng.gen(),
            rng.gen(),
            rng.gen_range(1..255),
        ),
        SERVER_PORTS[rng.gen_range(0..SERVER_PORTS.len())],
    );
    (client, server)
}

fn sample_sketch(cfg: &TrafficConfig, rng: &mut StdRng) -> ConnectionSketch {
    const MSS_CHOICES: [u16; 4] = [536, 1400, 1440, 1460];
    let profile = if rng.gen_bool(cfg.p_bulk) {
        FlowProfile::Bulk {
            download: rng.gen_bool(0.7),
        }
    } else {
        FlowProfile::RequestResponse {
            rounds: rng.gen_range(1..=4),
        }
    };
    let teardown = if rng.gen_bool(cfg.p_half_open) {
        Teardown::HalfOpen
    } else if rng.gen_bool(cfg.p_rst_teardown) {
        Teardown::Rst {
            by_client: rng.gen_bool(0.6),
        }
    } else if rng.gen_bool(cfg.p_simultaneous_close) {
        Teardown::SimultaneousClose
    } else if rng.gen_bool(0.55) {
        Teardown::ClientFin
    } else {
        Teardown::ServerFin
    };
    ConnectionSketch {
        profile,
        teardown,
        mss: MSS_CHOICES[rng.gen_range(0..MSS_CHOICES.len())],
        window_scaling: rng.gen_bool(0.85),
        timestamps: rng.gen_bool(0.7),
        rtt: LogNormal::new((-3.6f64).ln().max(-3.6), 0.8)
            .unwrap()
            .sample(rng)
            .clamp(0.002, 0.3),
    }
}

/// Generates one benign connection (public via [`crate::generate`]).
///
/// Protocol selection rolls the dice ONLY when the corresponding knob is
/// non-zero: with `p_udp == 0.0 && p_ipv6 == 0.0` (the defaults) the RNG
/// stream is untouched and existing seeds reproduce byte-identical
/// datasets.
pub(crate) fn generate_connection(cfg: &TrafficConfig, rng: &mut StdRng) -> Connection {
    let udp = cfg.p_udp > 0.0 && rng.gen_bool(cfg.p_udp);
    let v6 = cfg.p_ipv6 > 0.0 && rng.gen_bool(cfg.p_ipv6);
    let conn = if udp {
        generate_udp_connection(rng)
    } else {
        generate_with_sketch(cfg, rng).1
    };
    if v6 {
        map_connection_v6(conn)
    } else {
        conn
    }
}

/// NAT64-style well-known-prefix embedding (RFC 6052, `64:ff9b::/96`),
/// used to render a v4-generated flow over IPv6 deterministically.
fn nat64(a: Ipv4Addr) -> Ipv6Addr {
    let o = a.octets();
    Ipv6Addr::new(
        0x64,
        0xff9b,
        0,
        0,
        0,
        0,
        u16::from_be_bytes([o[0], o[1]]),
        u16::from_be_bytes([o[2], o[3]]),
    )
}

/// Re-renders every packet of a v4 connection over IPv6, preserving the
/// transport headers, payloads and timestamps (checksums are recomputed
/// against the v6 pseudo-header by the `Packet` constructors).
fn map_connection_v6(conn: Connection) -> Connection {
    let map_ep = |ep: Endpoint| match ep.addr {
        IpAddr::V4(a) => Endpoint::new(nat64(a), ep.port),
        IpAddr::V6(_) => ep,
    };
    let packets = conn
        .packets
        .iter()
        .map(|p| {
            let (s, d) = match (p.src_addr(), p.dst_addr()) {
                (IpAddr::V4(s), IpAddr::V4(d)) => (nat64(s), nat64(d)),
                (s, d) => unreachable!("v4 source flow carried {s}/{d}"),
            };
            let ip = Ipv6Header::new(s, d, p.ip.ttl());
            match &p.transport {
                Transport::Tcp(t) => Packet::new_v6(p.timestamp, ip, t.clone(), p.payload.clone()),
                Transport::Udp(u) => {
                    Packet::new_udp6(p.timestamp, ip, u.clone(), p.payload.clone())
                }
            }
        })
        .collect();
    Connection {
        key: FlowKey::new(map_ep(conn.key.client), map_ep(conn.key.server))
            .with_proto(conn.key.proto),
        packets,
    }
}

/// Generates one benign UDP exchange: a few request/response rounds
/// against a well-known UDP service port (DNS/NTP/QUIC-like), idle-only
/// lifecycle, no handshake or teardown.
fn generate_udp_connection(rng: &mut StdRng) -> Connection {
    const UDP_SERVER_PORTS: [u16; 5] = [53, 123, 443, 514, 1900];
    let (client, server_v4) = random_endpoints(rng);
    let server = Endpoint::new(
        server_v4.addr,
        UDP_SERVER_PORTS[rng.gen_range(0..UDP_SERVER_PORTS.len())],
    );
    let client_ttl: u8 = 64u8.saturating_sub(rng.gen_range(3..25));
    let server_ttl: u8 = 64u8.saturating_sub(rng.gen_range(3..25));
    let mut time = 0.0f64;
    let mut packets = Vec::new();
    let dgram = |time: f64, src: Endpoint, dst: Endpoint, ttl: u8, len: usize, id: u16| {
        let mut ip = Ipv4Header::new(v4(src.addr), v4(dst.addr), ttl);
        ip.identification = id;
        Packet::new_udp(
            time,
            ip,
            UdpHeader::new(src.port, dst.port),
            vec![0x62u8; len],
        )
    };
    let rounds = rng.gen_range(1..=6);
    for _ in 0..rounds {
        time += rng.gen_range(0.0005..0.05);
        let qlen = rng.gen_range(12..=220);
        let id = rng.gen();
        packets.push(dgram(time, client, server, client_ttl, qlen, id));
        if rng.gen_bool(0.85) {
            time += rng.gen_range(0.0005..0.03);
            let rlen = rng.gen_range(24..=1200);
            let id = rng.gen();
            packets.push(dgram(time, server, client, server_ttl, rlen, id));
        }
    }
    Connection {
        key: FlowKey::new(client, server).with_proto(ipv4::PROTO_UDP),
        packets,
    }
}

/// Generates one benign connection together with the plan that produced it.
pub fn generate_with_sketch(
    cfg: &TrafficConfig,
    rng: &mut StdRng,
) -> (ConnectionSketch, Connection) {
    let sketch = sample_sketch(cfg, rng);
    let (client_ep, server_ep) = random_endpoints(rng);

    let client_ttl_base: u8 = *[64u8, 128].get(rng.gen_range(0..2)).unwrap();
    let server_ttl_base: u8 = *[64u8, 64, 255].get(rng.gen_range(0..3)).unwrap();
    let hops_c: u8 = rng.gen_range(3..25);
    let hops_s: u8 = rng.gen_range(3..25);

    let make_peer = |ep: Endpoint, ttl: u8, rng: &mut StdRng, sketch: &ConnectionSketch| Peer {
        ep,
        seq: rng.gen(),
        rcv_nxt: 0,
        ttl,
        window: rng.gen_range(8192..=65535),
        wscale: if sketch.window_scaling {
            rng.gen_range(1..=10)
        } else {
            0
        },
        ts_on: sketch.timestamps,
        tsval: rng.gen_range(1_000..u32::MAX / 2),
        ts_recent: 0,
        ip_id: rng.gen(),
    };

    let client = make_peer(
        client_ep,
        client_ttl_base.saturating_sub(hops_c),
        rng,
        &sketch,
    );
    let server = make_peer(
        server_ep,
        server_ttl_base.saturating_sub(hops_s),
        rng,
        &sketch,
    );

    let mut sim = Sim {
        rng,
        time: 0.0,
        rtt: sketch.rtt,
        mss: sketch.mss as usize,
        packets: Vec::new(),
        peers: [client, server],
        sent_data: Vec::new(),
    };

    use Direction::{ClientToServer as C2S, ServerToClient as S2C};

    // --- Three-way handshake -------------------------------------------
    let syn_opts = |sim: &Sim, d: Direction| {
        let mut o = vec![TcpOption::Mss(sim.mss as u16)];
        if sim.peer(d).wscale > 0 {
            o.push(TcpOption::WindowScale(sim.peer(d).wscale));
        }
        o.push(TcpOption::SackPermitted);
        o
    };
    let opts = syn_opts(&sim, C2S);
    sim.emit(C2S, TcpFlags::SYN, 0, None, opts.clone());
    if sim.rng.gen_bool(cfg.p_syn_retransmit) {
        // SYN retransmission after an RTO; same ISN.
        let isn = sim.peers[0].seq.wrapping_sub(1);
        sim.advance(1.0);
        sim.emit(C2S, TcpFlags::SYN, 0, Some(isn), opts);
    }
    sim.advance(sim.rtt / 2.0);
    let opts = syn_opts(&sim, S2C);
    sim.emit(S2C, TcpFlags::SYN | TcpFlags::ACK, 0, None, opts);
    sim.advance(sim.rtt / 2.0);
    sim.emit(C2S, TcpFlags::ACK, 0, None, vec![]);

    // --- Data phase ------------------------------------------------------
    let req_dist = LogNormal::new(5.2f64, 0.6).unwrap(); // median ≈ 180 B
    let resp_dist = LogNormal::new(7.6f64, 1.1).unwrap(); // median ≈ 2 KB
    let bulk_dist = LogNormal::new(9.2f64, 1.0).unwrap(); // median ≈ 10 KB

    match sketch.profile {
        FlowProfile::RequestResponse { rounds } => {
            for _ in 0..rounds {
                let think = Exp::new(50.0).unwrap().sample(sim.rng);
                sim.advance(think);
                let req = req_dist.sample(sim.rng).clamp(16.0, 4096.0) as usize;
                sim.send_data(C2S, req, cfg);
                let dt = sim.rtt / 2.0 + sim.rng.gen_range(0.0005..0.02);
                sim.advance(dt);
                let resp = resp_dist.sample(sim.rng).clamp(64.0, 120_000.0) as usize;
                sim.send_data(S2C, resp, cfg);
            }
        }
        FlowProfile::Bulk { download } => {
            let dir = if download { S2C } else { C2S };
            let total = bulk_dist.sample(sim.rng).clamp(1024.0, 250_000.0) as usize;
            sim.send_data(dir, total, cfg);
        }
    }

    // Optional keepalive probe during an idle period: a pure ACK whose
    // sequence is one before the next expected — in-window by the standard
    // one-byte grace.
    if sim.rng.gen_bool(cfg.p_keepalive) {
        sim.advance(5.0);
        let seq = sim.peers[0].seq.wrapping_sub(1);
        sim.emit(C2S, TcpFlags::ACK, 0, Some(seq), vec![]);
        sim.advance(sim.rtt / 2.0);
        sim.emit(S2C, TcpFlags::ACK, 0, None, vec![]);
    }

    // Old-duplicate arrival: a stale copy of the first data segment shows up
    // long after its sequence range was consumed. The reference tracker
    // labels it out-of-window — benign traces do contain such packets.
    if sim.rng.gen_bool(cfg.p_old_duplicate) && sim.sent_data.len() >= 3 {
        let (d, seq, len) = sim.sent_data[0];
        let newer = sim.sent_data.iter().filter(|(dd, ..)| *dd == d).count();
        if newer >= 2 {
            {
                let dt = sim.rng.gen_range(0.001..0.05);
                sim.advance(dt);
            }
            sim.emit(d, TcpFlags::ACK, len, Some(seq), vec![]);
        }
    }

    // --- Teardown ----------------------------------------------------------
    match sketch.teardown {
        Teardown::ClientFin | Teardown::ServerFin => {
            let first = if sketch.teardown == Teardown::ClientFin {
                C2S
            } else {
                S2C
            };
            {
                let dt = sim.rng.gen_range(0.001..0.1);
                sim.advance(dt);
            }
            sim.emit(first, TcpFlags::FIN | TcpFlags::ACK, 0, None, vec![]);
            sim.advance(sim.rtt / 2.0);
            sim.emit(first.flip(), TcpFlags::ACK, 0, None, vec![]);
            {
                let dt = sim.rng.gen_range(0.0001..0.05);
                sim.advance(dt);
            }
            sim.emit(first.flip(), TcpFlags::FIN | TcpFlags::ACK, 0, None, vec![]);
            sim.advance(sim.rtt / 2.0);
            sim.emit(first, TcpFlags::ACK, 0, None, vec![]);
        }
        Teardown::SimultaneousClose => {
            {
                let dt = sim.rng.gen_range(0.001..0.1);
                sim.advance(dt);
            }
            sim.emit(C2S, TcpFlags::FIN | TcpFlags::ACK, 0, None, vec![]);
            // Server's FIN crosses the client's in flight: it has not seen
            // the client FIN, so it acks only the data so far.
            sim.advance(0.0001);
            sim.emit(S2C, TcpFlags::FIN | TcpFlags::ACK, 0, None, vec![]);
            sim.advance(sim.rtt / 2.0);
            sim.emit(C2S, TcpFlags::ACK, 0, None, vec![]);
            sim.emit(S2C, TcpFlags::ACK, 0, None, vec![]);
        }
        Teardown::Rst { by_client } => {
            let dir = if by_client { C2S } else { S2C };
            {
                let dt = sim.rng.gen_range(0.001..0.1);
                sim.advance(dt);
            }
            // Real traffic aborts with both RST-ACK and bare RST.
            let flags = if sim.rng.gen_bool(0.4) {
                TcpFlags::RST
            } else {
                TcpFlags::RST | TcpFlags::ACK
            };
            sim.emit(dir, flags, 0, None, vec![]);
        }
        Teardown::HalfOpen => {}
    }

    // Reordering event: swap two adjacent same-direction packets while
    // keeping capture timestamps monotone.
    let mut packets = sim.packets;
    if rng.gen_bool(cfg.p_reorder) && packets.len() >= 6 {
        let i = rng.gen_range(3..packets.len() - 1);
        let (ts_a, ts_b) = (packets[i].timestamp, packets[i + 1].timestamp);
        packets.swap(i, i + 1);
        packets[i].timestamp = ts_a;
        packets[i + 1].timestamp = ts_b;
        // Swapping changed TCP payload/hdr positions only, checksums remain
        // attached to their packets; recompute nothing.
    }

    let key = FlowKey::new(client_ep, server_ep);
    (sketch, Connection { key, packets })
}
