//! Synthetic benign TCP/IPv4 traffic, substituting the MAWI archive.
//!
//! The paper trains CLAP on payload-stripped backbone captures (MAWI, Table
//! 4). What the pipeline actually consumes from those captures is the joint
//! evolution of TCP/IP *headers* over benign connections: handshake
//! dynamics, sequence/ack progressions, window and option behaviour, flag
//! sequences and teardown patterns — payloads are stripped and the 4-tuple
//! is excluded from the feature set. This generator reproduces exactly that
//! distribution surface:
//!
//! * three-way handshakes with realistic option negotiation (MSS, window
//!   scale, SACK-permitted, timestamps) and OS-flavoured initial TTLs;
//! * request/response and bulk flow profiles with heavy-tailed
//!   (log-normal) transfer sizes, MSS-limited segmentation and delayed
//!   acks — mean flow length lands near MAWI's ≈14 packets/connection;
//! * benign anomalies that real traces contain: SYN retransmission,
//!   data retransmission, old-duplicate arrival (labelled out-of-window by
//!   the reference tracker, as in the paper's Table 5), keepalive probes,
//!   zero-window stalls, reordering;
//! * teardown mix: orderly FIN (either side first), simultaneous close,
//!   RST abort and half-open truncation.
//!
//! Everything is driven by a seeded RNG so datasets are reproducible.

mod churn;
mod generator;

pub use churn::{churn, ChurnConfig, ChurnStats, ChurnStream};
pub use generator::{ConnectionSketch, FlowProfile, Teardown};

use net_packet::Connection;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Tunable knobs for the generator. Probabilities are per-connection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// RNG seed; same seed ⇒ identical dataset.
    pub seed: u64,
    /// Number of connections to generate.
    pub connections: usize,
    /// Probability that the flow is bulk transfer rather than
    /// request/response.
    pub p_bulk: f64,
    /// Probability of a retransmission event somewhere in the flow.
    pub p_retransmit: f64,
    /// Probability of an old-duplicate (out-of-window) arrival.
    pub p_old_duplicate: f64,
    /// Probability of adjacent-packet reordering.
    pub p_reorder: f64,
    /// Probability that the SYN is retransmitted before the SYN-ACK.
    pub p_syn_retransmit: f64,
    /// Probability of a keepalive probe mid-flow.
    pub p_keepalive: f64,
    /// Probability the connection is truncated without teardown.
    pub p_half_open: f64,
    /// Probability of an RST teardown (client abort).
    pub p_rst_teardown: f64,
    /// Probability of simultaneous close.
    pub p_simultaneous_close: f64,
    /// Probability a connection is rendered over IPv6 (NAT64-style
    /// address mapping). **Default 0.0**: at zero the protocol dice are
    /// never rolled, so existing seeds produce byte-identical datasets.
    pub p_ipv6: f64,
    /// Probability a flow is a UDP exchange instead of a TCP connection.
    /// **Default 0.0**, with the same never-rolled guarantee.
    pub p_udp: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0x5eed,
            connections: 1000,
            p_bulk: 0.25,
            p_retransmit: 0.06,
            p_old_duplicate: 0.03,
            p_reorder: 0.04,
            p_syn_retransmit: 0.02,
            p_keepalive: 0.02,
            p_half_open: 0.04,
            p_rst_teardown: 0.10,
            p_simultaneous_close: 0.03,
            p_ipv6: 0.0,
            p_udp: 0.0,
        }
    }
}

impl TrafficConfig {
    /// Convenience constructor with the default probability mix.
    pub fn new(seed: u64, connections: usize) -> Self {
        TrafficConfig {
            seed,
            connections,
            ..TrafficConfig::default()
        }
    }
}

/// Aggregate statistics for a generated (or loaded) dataset — the quantities
/// reported in the paper's Table 4.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficStats {
    pub connections: usize,
    pub packets: usize,
    pub payload_bytes: usize,
    pub mean_packets_per_connection: f64,
}

impl TrafficStats {
    pub fn of(conns: &[Connection]) -> Self {
        let packets: usize = conns.iter().map(Connection::len).sum();
        let payload_bytes = conns.iter().map(Connection::total_payload).sum();
        TrafficStats {
            connections: conns.len(),
            packets,
            payload_bytes,
            mean_packets_per_connection: if conns.is_empty() {
                0.0
            } else {
                packets as f64 / conns.len() as f64
            },
        }
    }
}

/// Generates a full benign dataset from the configuration.
pub fn generate(config: &TrafficConfig) -> Vec<Connection> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.connections)
        .map(|_| generator::generate_connection(config, &mut rng))
        .collect()
}

/// Shorthand: `n` connections with the default mix and the given seed.
pub fn dataset(seed: u64, n: usize) -> Vec<Connection> {
    generate(&TrafficConfig::new(seed, n))
}

/// `n` connections with a mixed protocol blend — IPv4 and IPv6, TCP and
/// UDP — the protocol-diversity surface added in PR 9. Deterministic in
/// `seed`, like [`dataset`].
pub fn mixed_dataset(seed: u64, n: usize) -> Vec<Connection> {
    let mut cfg = TrafficConfig::new(seed, n);
    cfg.p_ipv6 = 0.35;
    cfg.p_udp = 0.3;
    generate(&cfg)
}

/// Serializes connections into raw capture records `(timestamp, wire
/// bytes)`, interleaved by timestamp — the shape [`net_packet::write_pcap_raw`]
/// consumes. When `fragment_over` is set, IPv4 datagrams larger than that
/// many wire bytes are split with [`net_packet::fragment_datagram`]; the
/// fragments keep the datagram's capture timestamp plus a sub-microsecond
/// skew so they stay ordered. IPv6 datagrams are never fragmented here
/// (routers cannot fragment v6 in flight).
pub fn capture_records(conns: &[Connection], fragment_over: Option<usize>) -> Vec<(f64, Vec<u8>)> {
    let mut pkts: Vec<&net_packet::Packet> = conns.iter().flat_map(|c| c.packets.iter()).collect();
    pkts.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
    let mut records = Vec::with_capacity(pkts.len());
    for p in pkts {
        let bytes = p.to_bytes();
        match fragment_over {
            Some(limit) if p.ip.is_v4() && bytes.len() > limit => {
                let chunk = limit.saturating_sub(p.ip.header_len_bytes()).max(8);
                for (i, f) in net_packet::fragment_datagram(&bytes, chunk)
                    .into_iter()
                    .enumerate()
                {
                    records.push((p.timestamp + i as f64 * 1e-7, f));
                }
            }
            _ => records.push((p.timestamp, bytes)),
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_state::{label_connection, TcpState};

    #[test]
    fn deterministic_for_same_seed() {
        let a = dataset(7, 20);
        let b = dataset(7, 20);
        assert_eq!(a, b);
        let c = dataset(8, 20);
        assert_ne!(a, c);
    }

    #[test]
    fn connections_have_reasonable_sizes() {
        let conns = dataset(1, 200);
        let stats = TrafficStats::of(&conns);
        assert_eq!(stats.connections, 200);
        assert!(
            stats.mean_packets_per_connection >= 6.0,
            "mean too small: {stats:?}"
        );
        assert!(
            stats.mean_packets_per_connection <= 40.0,
            "mean too large: {stats:?}"
        );
        for c in &conns {
            assert!(c.len() >= 3, "connection shorter than a handshake");
            assert!(c.len() <= 600);
        }
    }

    #[test]
    fn most_connections_reach_established() {
        let conns = dataset(2, 300);
        let established = conns
            .iter()
            .filter(|c| {
                label_connection(c)
                    .iter()
                    .any(|l| l.state == TcpState::Established)
            })
            .count();
        assert!(
            established >= 280,
            "only {established}/300 reached ESTABLISHED"
        );
    }

    #[test]
    fn benign_traffic_is_overwhelmingly_in_window() {
        let conns = dataset(3, 300);
        let mut total = 0usize;
        let mut in_win = 0usize;
        for c in &conns {
            for l in label_connection(c) {
                total += 1;
                in_win += usize::from(l.in_window);
            }
        }
        let frac = in_win as f64 / total as f64;
        assert!(frac > 0.97, "in-window fraction {frac:.3} too low");
        // Benign traces still contain *some* out-of-window packets (old
        // duplicates), mirroring Table 5 of the paper.
        assert!(frac < 1.0, "expected a few benign out-of-window packets");
    }

    #[test]
    fn timestamps_are_monotone_per_connection() {
        for c in dataset(4, 100) {
            for w in c.packets.windows(2) {
                assert!(w[1].timestamp >= w[0].timestamp);
            }
        }
    }

    #[test]
    fn packets_carry_valid_checksums() {
        for c in dataset(5, 50) {
            for p in &c.packets {
                assert!(p.ip_checksum_valid());
                assert!(p.tcp_checksum_valid());
            }
        }
    }

    /// Pin of the default (all-v4, all-TCP) RNG stream: the mixed-protocol
    /// knobs must not consume a single extra draw when they are zero, so
    /// pre-existing seeds keep producing byte-identical datasets. If this
    /// test breaks, a new knob rolled the dice unconditionally.
    #[test]
    fn protocol_default_stream_is_pinned() {
        let conns = dataset(42, 3);
        let packets: usize = conns.iter().map(Connection::len).sum();
        let payload: usize = conns
            .iter()
            .flat_map(|c| &c.packets)
            .map(|p| p.payload.len())
            .sum();
        assert_eq!(packets, 87);
        assert_eq!(conns[0].packets[0].tcp().seq, 0x36ba_2593);
        assert_eq!(payload, 32_239);
        let last_ts = conns[2].packets.last().unwrap().timestamp;
        assert!((last_ts - 0.634_679_031).abs() < 1e-9, "got {last_ts}");
    }

    #[test]
    fn protocol_mixed_dataset_covers_all_variants() {
        let conns = mixed_dataset(11, 200);
        let v6 = conns.iter().filter(|c| c.key.client.addr.is_ipv6()).count();
        let udp = conns
            .iter()
            .filter(|c| c.key.proto == net_packet::ipv4::PROTO_UDP)
            .count();
        let v6_udp = conns
            .iter()
            .filter(|c| c.key.client.addr.is_ipv6() && c.key.proto == net_packet::ipv4::PROTO_UDP)
            .count();
        assert!(v6 >= 30, "only {v6}/200 v6 flows");
        assert!(udp >= 30, "only {udp}/200 UDP flows");
        assert!(v6_udp >= 5, "only {v6_udp}/200 v6 UDP flows");
        assert!(v6 < 200 && udp < 200, "mix collapsed to one protocol");
        // Every flow is internally consistent regardless of protocol.
        for c in &conns {
            assert!(!c.packets.is_empty());
            for p in &c.packets {
                assert!(p.ip_checksum_valid());
                assert!(p.transport_checksum_valid());
                assert_eq!(p.is_udp(), c.key.proto == net_packet::ipv4::PROTO_UDP);
                assert_eq!(p.src_addr().is_ipv6(), c.key.client.addr.is_ipv6());
            }
        }
        // Determinism holds for the mixed blend too.
        assert_eq!(conns, mixed_dataset(11, 200));
    }

    #[test]
    fn protocol_mixed_wire_round_trip() {
        use net_packet::Packet;
        for c in mixed_dataset(12, 40) {
            for p in &c.packets {
                let q = Packet::from_bytes(p.timestamp, &p.to_bytes()).expect("parses back");
                assert_eq!(&q, p);
            }
        }
    }

    #[test]
    fn protocol_fragmented_capture_records_reassemble() {
        let conns = mixed_dataset(13, 30);
        let records = capture_records(&conns, Some(600));
        let plain = capture_records(&conns, None);
        assert!(records.len() > plain.len(), "nothing got fragmented");
        let mut buf = Vec::new();
        net_packet::pcap::write_pcap_raw(&mut buf, &records).unwrap();
        let back = net_packet::pcap::read_pcap(&buf[..]).unwrap();
        assert_eq!(
            back.len(),
            plain.len(),
            "every fragmented datagram must reassemble to one packet"
        );
        assert!(back.iter().any(|p| p.reassembly.is_some()));
        for p in back.iter().filter(|p| p.reassembly.is_some()) {
            assert!(p.transport_checksum_valid());
        }
    }
}
