//! Synthetic benign TCP/IPv4 traffic, substituting the MAWI archive.
//!
//! The paper trains CLAP on payload-stripped backbone captures (MAWI, Table
//! 4). What the pipeline actually consumes from those captures is the joint
//! evolution of TCP/IP *headers* over benign connections: handshake
//! dynamics, sequence/ack progressions, window and option behaviour, flag
//! sequences and teardown patterns — payloads are stripped and the 4-tuple
//! is excluded from the feature set. This generator reproduces exactly that
//! distribution surface:
//!
//! * three-way handshakes with realistic option negotiation (MSS, window
//!   scale, SACK-permitted, timestamps) and OS-flavoured initial TTLs;
//! * request/response and bulk flow profiles with heavy-tailed
//!   (log-normal) transfer sizes, MSS-limited segmentation and delayed
//!   acks — mean flow length lands near MAWI's ≈14 packets/connection;
//! * benign anomalies that real traces contain: SYN retransmission,
//!   data retransmission, old-duplicate arrival (labelled out-of-window by
//!   the reference tracker, as in the paper's Table 5), keepalive probes,
//!   zero-window stalls, reordering;
//! * teardown mix: orderly FIN (either side first), simultaneous close,
//!   RST abort and half-open truncation.
//!
//! Everything is driven by a seeded RNG so datasets are reproducible.

mod churn;
mod generator;

pub use churn::{churn, ChurnConfig, ChurnStats, ChurnStream};
pub use generator::{ConnectionSketch, FlowProfile, Teardown};

use net_packet::Connection;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Tunable knobs for the generator. Probabilities are per-connection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// RNG seed; same seed ⇒ identical dataset.
    pub seed: u64,
    /// Number of connections to generate.
    pub connections: usize,
    /// Probability that the flow is bulk transfer rather than
    /// request/response.
    pub p_bulk: f64,
    /// Probability of a retransmission event somewhere in the flow.
    pub p_retransmit: f64,
    /// Probability of an old-duplicate (out-of-window) arrival.
    pub p_old_duplicate: f64,
    /// Probability of adjacent-packet reordering.
    pub p_reorder: f64,
    /// Probability that the SYN is retransmitted before the SYN-ACK.
    pub p_syn_retransmit: f64,
    /// Probability of a keepalive probe mid-flow.
    pub p_keepalive: f64,
    /// Probability the connection is truncated without teardown.
    pub p_half_open: f64,
    /// Probability of an RST teardown (client abort).
    pub p_rst_teardown: f64,
    /// Probability of simultaneous close.
    pub p_simultaneous_close: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0x5eed,
            connections: 1000,
            p_bulk: 0.25,
            p_retransmit: 0.06,
            p_old_duplicate: 0.03,
            p_reorder: 0.04,
            p_syn_retransmit: 0.02,
            p_keepalive: 0.02,
            p_half_open: 0.04,
            p_rst_teardown: 0.10,
            p_simultaneous_close: 0.03,
        }
    }
}

impl TrafficConfig {
    /// Convenience constructor with the default probability mix.
    pub fn new(seed: u64, connections: usize) -> Self {
        TrafficConfig {
            seed,
            connections,
            ..TrafficConfig::default()
        }
    }
}

/// Aggregate statistics for a generated (or loaded) dataset — the quantities
/// reported in the paper's Table 4.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficStats {
    pub connections: usize,
    pub packets: usize,
    pub payload_bytes: usize,
    pub mean_packets_per_connection: f64,
}

impl TrafficStats {
    pub fn of(conns: &[Connection]) -> Self {
        let packets: usize = conns.iter().map(Connection::len).sum();
        let payload_bytes = conns.iter().map(Connection::total_payload).sum();
        TrafficStats {
            connections: conns.len(),
            packets,
            payload_bytes,
            mean_packets_per_connection: if conns.is_empty() {
                0.0
            } else {
                packets as f64 / conns.len() as f64
            },
        }
    }
}

/// Generates a full benign dataset from the configuration.
pub fn generate(config: &TrafficConfig) -> Vec<Connection> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.connections)
        .map(|_| generator::generate_connection(config, &mut rng))
        .collect()
}

/// Shorthand: `n` connections with the default mix and the given seed.
pub fn dataset(seed: u64, n: usize) -> Vec<Connection> {
    generate(&TrafficConfig::new(seed, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_state::{label_connection, TcpState};

    #[test]
    fn deterministic_for_same_seed() {
        let a = dataset(7, 20);
        let b = dataset(7, 20);
        assert_eq!(a, b);
        let c = dataset(8, 20);
        assert_ne!(a, c);
    }

    #[test]
    fn connections_have_reasonable_sizes() {
        let conns = dataset(1, 200);
        let stats = TrafficStats::of(&conns);
        assert_eq!(stats.connections, 200);
        assert!(
            stats.mean_packets_per_connection >= 6.0,
            "mean too small: {stats:?}"
        );
        assert!(
            stats.mean_packets_per_connection <= 40.0,
            "mean too large: {stats:?}"
        );
        for c in &conns {
            assert!(c.len() >= 3, "connection shorter than a handshake");
            assert!(c.len() <= 600);
        }
    }

    #[test]
    fn most_connections_reach_established() {
        let conns = dataset(2, 300);
        let established = conns
            .iter()
            .filter(|c| {
                label_connection(c)
                    .iter()
                    .any(|l| l.state == TcpState::Established)
            })
            .count();
        assert!(
            established >= 280,
            "only {established}/300 reached ESTABLISHED"
        );
    }

    #[test]
    fn benign_traffic_is_overwhelmingly_in_window() {
        let conns = dataset(3, 300);
        let mut total = 0usize;
        let mut in_win = 0usize;
        for c in &conns {
            for l in label_connection(c) {
                total += 1;
                in_win += usize::from(l.in_window);
            }
        }
        let frac = in_win as f64 / total as f64;
        assert!(frac > 0.97, "in-window fraction {frac:.3} too low");
        // Benign traces still contain *some* out-of-window packets (old
        // duplicates), mirroring Table 5 of the paper.
        assert!(frac < 1.0, "expected a few benign out-of-window packets");
    }

    #[test]
    fn timestamps_are_monotone_per_connection() {
        for c in dataset(4, 100) {
            for w in c.packets.windows(2) {
                assert!(w[1].timestamp >= w[0].timestamp);
            }
        }
    }

    #[test]
    fn packets_carry_valid_checksums() {
        for c in dataset(5, 50) {
            for p in &c.packets {
                assert!(p.ip_checksum_valid());
                assert!(p.tcp_checksum_valid());
            }
        }
    }
}
