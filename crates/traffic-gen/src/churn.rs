//! Streaming flow-churn workload: millions of short-lived flows with a
//! heavy-tailed elephant/mice size mix, produced as an iterator instead of
//! materialized connections.
//!
//! [`generate`](crate::generate) builds whole [`Connection`]s in memory —
//! fine for training sets of a few thousand connections, hopeless for
//! exercising a million-flow table. This module instead keeps one ~32-byte
//! sketch per *concurrently open* flow and synthesizes packets on demand:
//!
//! * **Concurrency plateau.** The stream ramps up to
//!   [`ChurnConfig::concurrent_flows`] live flows (one new SYN per emitted
//!   packet), then holds that level by replacing every completed flow with
//!   a fresh one on a new 4-tuple. Flow IDs map injectively to client
//!   addresses, so tuples never collide within a run.
//! * **Elephant/mice mix.** Flow sizes (in data segments) are drawn from
//!   two log-normal distributions: most flows are mice of a few segments,
//!   a small [`ChurnConfig::p_elephant`] fraction are elephants spanning
//!   thousands. This reproduces the heavy-tailed size distribution that
//!   makes real flow tables churn: the mice dominate arrival rate, the
//!   elephants dominate table residency.
//! * **Abandonment.** A [`ChurnConfig::p_abandon`] fraction of flows stop
//!   mid-transfer without a FIN. The generator forgets them immediately,
//!   but a downstream flow table only reclaims them via idle eviction —
//!   this is what exercises timer-wheel expiry at scale.
//! * **Interleaving.** Each emitted packet advances one uniformly random
//!   live flow, so packets of different flows interleave heavily and the
//!   per-flow inter-packet gap is `concurrent_flows / pps` seconds on
//!   average. Timestamps advance by exactly `1/pps` per packet.
//!
//! Everything is driven by a seeded [`StdRng`]: two iterators built from
//! the same config yield byte-identical packet sequences.

use std::net::Ipv4Addr;

use net_packet::{Ipv4Header, Packet, TcpFlags, TcpHeader, TcpOption};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};

/// Configuration for the churn workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// RNG seed; same seed + config = identical packet stream.
    pub seed: u64,
    /// Live-flow plateau the stream ramps up to and then holds.
    pub concurrent_flows: usize,
    /// Total packets to emit before the iterator ends.
    pub packets: usize,
    /// Fraction of flows drawn from the elephant size distribution.
    pub p_elephant: f64,
    /// Fraction of flows that stop mid-transfer without a FIN handshake.
    pub p_abandon: f64,
    /// Log-normal (mu of ln segments, sigma) for mouse flow sizes.
    pub mice_lognorm: (f64, f64),
    /// Log-normal (mu of ln segments, sigma) for elephant flow sizes.
    pub elephant_lognorm: (f64, f64),
    /// Hard cap on data segments per flow (keeps the tail finite).
    pub max_segments: u32,
    /// Aggregate packet rate; timestamps advance by `1/pps` per packet.
    pub pps: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            seed: 0xe1e9,
            concurrent_flows: 10_000,
            packets: 200_000,
            p_elephant: 0.05,
            // Mice: median 6 segments; elephants: median ~400 with a fat
            // tail into the tens of thousands.
            p_abandon: 0.02,
            mice_lognorm: (6.0f64.ln(), 0.8),
            elephant_lognorm: (400.0f64.ln(), 1.0),
            max_segments: 50_000,
            pps: 200_000.0,
        }
    }
}

impl ChurnConfig {
    /// A churn config with the three knobs that matter most.
    pub fn new(seed: u64, concurrent_flows: usize, packets: usize) -> Self {
        ChurnConfig {
            seed,
            concurrent_flows,
            packets,
            ..ChurnConfig::default()
        }
    }
}

/// Counters accumulated while the stream runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Flows whose SYN has been emitted.
    pub flows_started: u64,
    /// Flows that completed their FIN handshake.
    pub flows_completed: u64,
    /// Flows dropped mid-transfer without a FIN.
    pub flows_abandoned: u64,
}

/// Per-flow lifecycle position.
const PH_SYN: u8 = 0;
const PH_SYNACK: u8 = 1;
const PH_ACK: u8 = 2;
const PH_DATA: u8 = 3;
const PH_FIN_C: u8 = 4;
const PH_FIN_S: u8 = 5;
const PH_LAST_ACK: u8 = 6;

/// Compact per-flow sketch: 28 bytes of state, no heap.
#[derive(Debug, Clone, Copy)]
struct ChurnFlow {
    client_ip: u32,
    server_ip: u32,
    isn_c: u32,
    isn_s: u32,
    /// Payload bytes sent so far (client → server).
    sent: u32,
    /// Data segments still to send.
    remaining: u32,
    client_port: u16,
    server_port: u16,
    payload_len: u16,
    phase: u8,
    /// Abandon (no FIN) once `remaining` hits zero.
    abandon: bool,
}

const SERVER_PORTS: [u16; 6] = [80, 443, 22, 25, 8080, 8443];

/// Streaming packet iterator over the churn workload.
pub struct ChurnStream {
    cfg: ChurnConfig,
    rng: StdRng,
    mice: LogNormal,
    elephants: LogNormal,
    flows: Vec<ChurnFlow>,
    next_id: u64,
    emitted: usize,
    time: f64,
    dt: f64,
    stats: ChurnStats,
}

/// Builds the churn stream for a config.
pub fn churn(cfg: &ChurnConfig) -> ChurnStream {
    let (m_mu, m_sigma) = cfg.mice_lognorm;
    let (e_mu, e_sigma) = cfg.elephant_lognorm;
    ChurnStream {
        rng: StdRng::seed_from_u64(cfg.seed),
        mice: LogNormal::new(m_mu, m_sigma).expect("mice lognormal params"),
        elephants: LogNormal::new(e_mu, e_sigma).expect("elephant lognormal params"),
        flows: Vec::with_capacity(cfg.concurrent_flows),
        next_id: 0,
        emitted: 0,
        time: 0.0,
        dt: 1.0 / cfg.pps.max(1.0),
        stats: ChurnStats::default(),
        cfg: cfg.clone(),
    }
}

impl ChurnStream {
    /// Counters so far (final after the iterator returns `None`).
    pub fn stats(&self) -> ChurnStats {
        self.stats
    }

    /// Live flows currently tracked by the generator.
    pub fn live_flows(&self) -> usize {
        self.flows.len()
    }

    fn new_flow(&mut self) -> ChurnFlow {
        let id = self.next_id;
        self.next_id += 1;
        // Injective id → client address: unique /32 per flow for the first
        // 16M flows, then the port sweep keeps tuples distinct.
        let client_ip = 0x0A00_0000 | (id as u32 & 0x00FF_FFFF);
        let client_port = 32_768 + (id >> 24) as u16 % 28_000;
        let server_ip = 0xAC10_0000 | (id.wrapping_mul(7919) as u32 & 0xFF);
        let server_port = SERVER_PORTS[(id % SERVER_PORTS.len() as u64) as usize];
        let dist = if self.rng.gen_bool(self.cfg.p_elephant) {
            &self.elephants
        } else {
            &self.mice
        };
        let segments = dist
            .sample(&mut self.rng)
            .round()
            .clamp(1.0, self.cfg.max_segments as f64) as u32;
        ChurnFlow {
            client_ip,
            server_ip,
            isn_c: self.rng.gen(),
            isn_s: self.rng.gen(),
            sent: 0,
            remaining: segments,
            client_port,
            server_port,
            payload_len: if segments > 64 { 128 } else { 32 },
            phase: PH_SYN,
            abandon: self.rng.gen_bool(self.cfg.p_abandon),
        }
    }

    /// Emits flow `i`'s next packet and advances its lifecycle; replaces
    /// the flow with a fresh one when it finishes.
    fn step_flow(&mut self, i: usize) -> Packet {
        let ts = self.time;
        let f = &mut self.flows[i];
        let c = (Ipv4Addr::from(f.client_ip), f.client_port);
        let s = (Ipv4Addr::from(f.server_ip), f.server_port);
        let (pkt, done) = match f.phase {
            PH_SYN => {
                let mut tcp = TcpHeader::new(c.1, s.1, f.isn_c, 0);
                tcp.flags = TcpFlags::SYN;
                tcp.options.push(TcpOption::Mss(1460));
                f.phase = PH_SYNACK;
                (
                    Packet::new(ts, Ipv4Header::new(c.0, s.0, 64), tcp, Vec::new()),
                    false,
                )
            }
            PH_SYNACK => {
                let mut tcp = TcpHeader::new(s.1, c.1, f.isn_s, f.isn_c.wrapping_add(1));
                tcp.flags = TcpFlags::SYN | TcpFlags::ACK;
                tcp.options.push(TcpOption::Mss(1460));
                f.phase = PH_ACK;
                (
                    Packet::new(ts, Ipv4Header::new(s.0, c.0, 64), tcp, Vec::new()),
                    false,
                )
            }
            PH_ACK => {
                let mut tcp =
                    TcpHeader::new(c.1, s.1, f.isn_c.wrapping_add(1), f.isn_s.wrapping_add(1));
                tcp.flags = TcpFlags::ACK;
                f.phase = PH_DATA;
                (
                    Packet::new(ts, Ipv4Header::new(c.0, s.0, 64), tcp, Vec::new()),
                    false,
                )
            }
            PH_DATA => {
                let seq = f.isn_c.wrapping_add(1).wrapping_add(f.sent);
                let mut tcp = TcpHeader::new(c.1, s.1, seq, f.isn_s.wrapping_add(1));
                tcp.flags = TcpFlags::ACK | TcpFlags::PSH;
                let payload = vec![0x61u8; f.payload_len as usize];
                f.sent = f.sent.wrapping_add(f.payload_len as u32);
                f.remaining -= 1;
                let finished = f.remaining == 0;
                let abandon = f.abandon;
                if finished && !abandon {
                    f.phase = PH_FIN_C;
                }
                (
                    Packet::new(ts, Ipv4Header::new(c.0, s.0, 64), tcp, payload),
                    finished && abandon,
                )
            }
            PH_FIN_C => {
                let seq = f.isn_c.wrapping_add(1).wrapping_add(f.sent);
                let mut tcp = TcpHeader::new(c.1, s.1, seq, f.isn_s.wrapping_add(1));
                tcp.flags = TcpFlags::ACK | TcpFlags::FIN;
                f.phase = PH_FIN_S;
                (
                    Packet::new(ts, Ipv4Header::new(c.0, s.0, 64), tcp, Vec::new()),
                    false,
                )
            }
            PH_FIN_S => {
                // Server acks the client FIN and sends its own in one
                // segment; client data + client FIN = sent + 2 seq units.
                let ack = f.isn_c.wrapping_add(2).wrapping_add(f.sent);
                let mut tcp = TcpHeader::new(s.1, c.1, f.isn_s.wrapping_add(1), ack);
                tcp.flags = TcpFlags::ACK | TcpFlags::FIN;
                f.phase = PH_LAST_ACK;
                (
                    Packet::new(ts, Ipv4Header::new(s.0, c.0, 64), tcp, Vec::new()),
                    false,
                )
            }
            _ => {
                let seq = f.isn_c.wrapping_add(2).wrapping_add(f.sent);
                let mut tcp = TcpHeader::new(c.1, s.1, seq, f.isn_s.wrapping_add(2));
                tcp.flags = TcpFlags::ACK;
                (
                    Packet::new(ts, Ipv4Header::new(c.0, s.0, 64), tcp, Vec::new()),
                    true,
                )
            }
        };
        if done {
            if self.flows[i].abandon {
                self.stats.flows_abandoned += 1;
            } else {
                self.stats.flows_completed += 1;
            }
            let fresh = self.new_flow();
            self.flows[i] = fresh;
        }
        pkt
    }
}

impl Iterator for ChurnStream {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        if self.emitted >= self.cfg.packets {
            return None;
        }
        self.emitted += 1;
        self.time += self.dt;
        // Ramp phase: one brand-new SYN per packet until the plateau.
        let i = if self.flows.len() < self.cfg.concurrent_flows {
            let fresh = self.new_flow();
            self.flows.push(fresh);
            self.stats.flows_started += 1;
            self.flows.len() - 1
        } else {
            let i = self.rng.gen_range(0..self.flows.len());
            if self.flows[i].phase == PH_SYN {
                self.stats.flows_started += 1;
            }
            i
        };
        Some(self.step_flow(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn churn_is_deterministic() {
        let cfg = ChurnConfig::new(7, 50, 2_000);
        let a: Vec<Packet> = churn(&cfg).collect();
        let b: Vec<Packet> = churn(&cfg).collect();
        assert_eq!(a.len(), 2_000);
        assert_eq!(a, b);
    }

    #[test]
    fn churn_reaches_and_holds_the_plateau() {
        let cfg = ChurnConfig::new(11, 40, 5_000);
        let mut stream = churn(&cfg);
        for _ in 0..200 {
            stream.next().unwrap();
        }
        assert_eq!(stream.live_flows(), 40);
        for _ in 0..4_800 {
            stream.next().unwrap();
        }
        assert!(stream.next().is_none());
        assert_eq!(stream.live_flows(), 40);
        let stats = stream.stats();
        assert!(stats.flows_completed > 0, "{stats:?}");
        assert!(
            stats.flows_started >= stats.flows_completed + stats.flows_abandoned,
            "{stats:?}"
        );
    }

    #[test]
    fn churn_tuples_are_unique_and_sizes_heavy_tailed() {
        let cfg = ChurnConfig {
            p_abandon: 0.0,
            ..ChurnConfig::new(3, 30, 30_000)
        };
        let mut sizes: HashMap<(std::net::IpAddr, u16), u32> = HashMap::new();
        for p in churn(&cfg) {
            assert!(p.ip_checksum_valid() && p.tcp_checksum_valid());
            if !p.payload.is_empty() {
                let src = p.src_addr();
                *sizes.entry((src, p.src_port())).or_insert(0) += 1;
            }
        }
        // Heavy tail: the largest completed flow dwarfs the median mouse.
        let mut counts: Vec<u32> = sizes.values().copied().collect();
        counts.sort_unstable();
        let median = counts[counts.len() / 2];
        let max = *counts.last().unwrap();
        assert!(median <= 20, "median {median}");
        assert!(max > 10 * median, "max {max} median {median}");
    }

    #[test]
    fn churn_timestamps_advance_uniformly() {
        let cfg = ChurnConfig::new(5, 10, 100);
        let pkts: Vec<Packet> = churn(&cfg).collect();
        let dt = 1.0 / cfg.pps;
        for (k, p) in pkts.iter().enumerate() {
            assert!((p.timestamp - dt * (k + 1) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn churn_flows_form_valid_tcp_lifecycles() {
        // Every completed flow: SYN, SYN/ACK, handshake ACK, data, FIN in
        // both directions. Spot-check via flag accounting.
        let cfg = ChurnConfig {
            p_abandon: 0.0,
            ..ChurnConfig::new(9, 5, 3_000)
        };
        let mut stream = churn(&cfg);
        let mut syns = 0u64;
        let mut fins = 0u64;
        for p in &mut stream {
            if p.tcp().flags.contains(TcpFlags::SYN) && !p.tcp().flags.contains(TcpFlags::ACK) {
                syns += 1;
            }
            if p.tcp().flags.contains(TcpFlags::FIN) {
                fins += 1;
            }
        }
        let stats = stream.stats();
        assert_eq!(syns, stats.flows_started);
        assert_eq!(
            fins,
            2 * stats.flows_completed + countable_partial_fins(&stream)
        );
    }

    fn countable_partial_fins(stream: &ChurnStream) -> u64 {
        // Flows frozen mid-teardown when the packet budget ran out.
        stream
            .flows
            .iter()
            .map(|f| match f.phase {
                PH_FIN_S => 1,
                PH_LAST_ACK => 2,
                _ => 0,
            })
            .sum()
    }
}
