//! Context-profile construction — fusing intra- and inter-packet context.
//!
//! A packet's **context profile** (paper Eq. 2) is the concatenation of its
//! 51 packet features with the GRU's update- and reset-gate activations at
//! that timestep (32 + 32). Consecutive profiles are stacked into a sliding
//! window (length 3 in the paper, Table 6) so the autoencoder sees the
//! temporal neighbourhood explicitly — the chain-graph view of Figure 5.

use crate::features::{FeatureVector, RangeModel, NUM_PACKET};
use neural::{GruClassifier, GruEngine, GruWorkspace, Matrix};
use serde::{Deserialize, Serialize};

/// Per-worker scratch arena for fused profile construction: the RNN input
/// matrix, the GRU workspace and the single/stacked profile matrices are
/// all reused across connections, so steady-state profile building
/// allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct ProfileWorkspace {
    /// `T×NUM_BASE` RNN inputs, copied straight from feature vectors.
    x: Matrix,
    /// Gate trajectories from the packed GRU run.
    pub gru: GruWorkspace,
    /// `T_padded×PROFILE_LEN` single-packet profiles.
    singles: Matrix,
    /// `rows×stacked_len()` stacked windows — the autoencoder input.
    pub stacked: Matrix,
}

impl ProfileWorkspace {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Gate features appended per packet: update + reset gates, `hidden` each.
pub const GATE_FEATURES: usize = 64;
/// Single-packet context-profile width (Table 7: #1–#115).
pub const PROFILE_LEN: usize = NUM_PACKET + GATE_FEATURES;

/// Builds (stacked) context profiles for connections.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileBuilder {
    /// Number of consecutive single-packet profiles per stacked profile.
    pub stack: usize,
}

impl ProfileBuilder {
    pub fn new(stack: usize) -> Self {
        assert!(stack >= 1);
        ProfileBuilder { stack }
    }

    /// Width of one stacked profile (the autoencoder's input size).
    pub fn stacked_len(&self) -> usize {
        self.stack * PROFILE_LEN
    }

    /// Single-packet context profiles: packet features ‖ update gates ‖
    /// reset gates, one row per packet.
    pub fn single_profiles(
        &self,
        ranges: &RangeModel,
        rnn: &GruClassifier,
        fvs: &[FeatureVector],
    ) -> Vec<Vec<f32>> {
        let rnn_inputs: Vec<Vec<f32>> = fvs.iter().map(|fv| fv.base.clone()).collect();
        let trace = rnn.trace(&rnn_inputs);
        fvs.iter()
            .enumerate()
            .map(|(t, fv)| {
                let mut row = ranges.packet_features(fv);
                row.extend_from_slice(&trace.zs[t]);
                row.extend_from_slice(&trace.rs[t]);
                debug_assert_eq!(row.len(), PROFILE_LEN);
                row
            })
            .collect()
    }

    /// Stacked profiles in a sliding window (`n − stack + 1` rows for an
    /// n-packet connection; shorter connections are padded by repeating
    /// the final profile so every connection yields at least one row).
    pub fn stacked_profiles(
        &self,
        ranges: &RangeModel,
        rnn: &GruClassifier,
        fvs: &[FeatureVector],
    ) -> Matrix {
        let mut singles = self.single_profiles(ranges, rnn, fvs);
        if singles.is_empty() {
            return Matrix::zeros(0, self.stacked_len());
        }
        while singles.len() < self.stack {
            singles.push(singles.last().unwrap().clone());
        }
        let rows = singles.len() - self.stack + 1;
        let mut m = Matrix::zeros(rows, self.stacked_len());
        for r in 0..rows {
            let row = m.row_mut(r);
            for (j, single) in singles[r..r + self.stack].iter().enumerate() {
                row[j * PROFILE_LEN..(j + 1) * PROFILE_LEN].copy_from_slice(single);
            }
        }
        m
    }

    /// Seed-era profile construction on the frozen naive kernels: one
    /// `Vec` per profile row, per-packet feature vectors, unfused GRU.
    /// The pre-fusion baseline for equivalence tests and benchmarks.
    pub fn stacked_profiles_unfused(
        &self,
        ranges: &RangeModel,
        rnn: &GruClassifier,
        fvs: &[FeatureVector],
    ) -> Matrix {
        let rnn_inputs: Vec<&[f32]> = fvs.iter().map(|fv| fv.base.as_slice()).collect();
        let trace = rnn.trace_unfused(&rnn_inputs);
        let mut singles: Vec<Vec<f32>> = fvs
            .iter()
            .enumerate()
            .map(|(t, fv)| {
                let mut row = ranges.packet_features(fv);
                row.extend_from_slice(&trace.zs[t]);
                row.extend_from_slice(&trace.rs[t]);
                row
            })
            .collect();
        if singles.is_empty() {
            return Matrix::zeros(0, self.stacked_len());
        }
        while singles.len() < self.stack {
            singles.push(singles.last().unwrap().clone());
        }
        let rows = singles.len() - self.stack + 1;
        let mut m = Matrix::zeros(rows, self.stacked_len());
        for r in 0..rows {
            let row = m.row_mut(r);
            for (j, single) in singles[r..r + self.stack].iter().enumerate() {
                row[j * PROFILE_LEN..(j + 1) * PROFILE_LEN].copy_from_slice(single);
            }
        }
        m
    }

    /// Fused, allocation-free equivalent of
    /// [`stacked_profiles`](Self::stacked_profiles): runs the packed GRU
    /// engine — f32 or int8 ([`GruEngine`]) — over the whole sequence (one
    /// GEMM for the input side), writes features and gate activations
    /// straight into reused matrix rows, and leaves the stacked windows in
    /// `ws.stacked`.
    ///
    /// Equivalence with the naive path is pinned to 1e-6 by the test suite
    /// (for the f32 engine; the int8 engine is pinned by the quantization
    /// parity harness instead).
    pub fn stacked_profiles_into(
        &self,
        ranges: &RangeModel,
        gru: &GruEngine,
        fvs: &[FeatureVector],
        ws: &mut ProfileWorkspace,
    ) {
        let steps = fvs.len();
        if steps == 0 {
            ws.stacked.resize(0, self.stacked_len());
            return;
        }
        ws.x.resize(steps, gru.input_size());
        for (t, fv) in fvs.iter().enumerate() {
            ws.x.row_mut(t).copy_from_slice(&fv.base);
        }
        gru.run(&ws.x, &mut ws.gru);
        let hidden = gru.hidden_size();
        debug_assert_eq!(2 * hidden, GATE_FEATURES);

        // Single-packet profiles, padded by repeating the last row so every
        // connection yields at least one stacked window.
        let padded = steps.max(self.stack);
        ws.singles.resize(padded, PROFILE_LEN);
        for (t, fv) in fvs.iter().enumerate() {
            let row = ws.singles.row_mut(t);
            ranges.write_packet_features(fv, &mut row[..NUM_PACKET]);
            row[NUM_PACKET..NUM_PACKET + hidden].copy_from_slice(ws.gru.zs.row(t));
            row[NUM_PACKET + hidden..].copy_from_slice(ws.gru.rs.row(t));
        }
        for t in steps..padded {
            let (done, todo) = ws.singles.data.split_at_mut(t * PROFILE_LEN);
            todo[..PROFILE_LEN]
                .copy_from_slice(&done[(steps - 1) * PROFILE_LEN..steps * PROFILE_LEN]);
        }

        let rows = padded - self.stack + 1;
        ws.stacked.resize(rows, self.stacked_len());
        for r in 0..rows {
            let src = &ws.singles.data[r * PROFILE_LEN..(r + self.stack) * PROFILE_LEN];
            ws.stacked.row_mut(r).copy_from_slice(src);
        }
    }

    /// Maps a stacked-window index to the packet index CLAP reports when
    /// localizing: the window's center packet (clamped to the connection).
    pub fn window_center(&self, window_idx: usize, num_packets: usize) -> usize {
        (window_idx + self.stack / 2).min(num_packets.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract_connection;
    use neural::GruClassifierConfig;

    fn small_rnn() -> GruClassifier {
        let cfg = GruClassifierConfig {
            input: crate::features::NUM_BASE,
            hidden: 32,
            classes: 22,
            epochs: 1,
            batch_size: 4,
            learning_rate: 1e-3,
            seed: 4,
        };
        GruClassifier::new(&cfg)
    }

    #[test]
    fn profile_dimensions_match_paper() {
        assert_eq!(PROFILE_LEN, 115, "Table 7 lists 115 per-packet entries");
        assert_eq!(
            ProfileBuilder::new(3).stacked_len(),
            345,
            "Table 6 AE input"
        );
    }

    #[test]
    fn stacked_profile_counts() {
        let conns = traffic_gen::dataset(11, 3);
        let rnn = small_rnn();
        let builder = ProfileBuilder::new(3);
        for conn in &conns {
            let fvs = extract_connection(conn);
            let ranges = RangeModel::fit(&fvs);
            let singles = builder.single_profiles(&ranges, &rnn, &fvs);
            assert_eq!(singles.len(), conn.len());
            let stacked = builder.stacked_profiles(&ranges, &rnn, &fvs);
            assert_eq!(stacked.rows, conn.len().max(3) - 2);
            assert_eq!(stacked.cols, 345);
        }
    }

    #[test]
    fn short_connection_padded() {
        let conns = traffic_gen::dataset(12, 1);
        let conn = &conns[0];
        let fvs = extract_connection(conn);
        let short = &fvs[..2]; // simulate a 2-packet trace
        let ranges = RangeModel::fit(short);
        let rnn = small_rnn();
        let stacked = ProfileBuilder::new(3).stacked_profiles(&ranges, &rnn, short);
        assert_eq!(stacked.rows, 1);
    }

    #[test]
    fn gate_values_are_probabilities() {
        let conns = traffic_gen::dataset(13, 2);
        let rnn = small_rnn();
        let builder = ProfileBuilder::new(3);
        for conn in &conns {
            let fvs = extract_connection(conn);
            let ranges = RangeModel::fit(&fvs);
            for row in builder.single_profiles(&ranges, &rnn, &fvs) {
                for &g in &row[NUM_PACKET..] {
                    assert!((0.0..=1.0).contains(&g), "gate value {g} out of [0,1]");
                }
            }
        }
    }

    #[test]
    fn window_center_mapping() {
        let b = ProfileBuilder::new(3);
        assert_eq!(b.window_center(0, 10), 1);
        assert_eq!(b.window_center(7, 10), 8);
        assert_eq!(b.window_center(9, 10), 9); // clamped
        let b1 = ProfileBuilder::new(1);
        assert_eq!(b1.window_center(4, 10), 4);
    }
}
