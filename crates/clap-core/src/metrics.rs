//! Detection and localization metrics: ROC/AUC, EER, Top-N hit rate.

use serde::{Deserialize, Serialize};

/// One operating point on the ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    pub threshold: f32,
    pub tpr: f32,
    pub fpr: f32,
}

/// Full ROC curve from benign (negative) and adversarial (positive)
/// scores. Points are ordered from the most permissive threshold (all
/// positive) to the strictest (all negative).
pub fn roc_curve(benign: &[f32], adversarial: &[f32]) -> Vec<RocPoint> {
    let mut thresholds: Vec<f32> = benign.iter().chain(adversarial).copied().collect();
    thresholds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    thresholds.dedup();

    let mut curve = Vec::with_capacity(thresholds.len() + 2);
    curve.push(RocPoint {
        threshold: f32::NEG_INFINITY,
        tpr: 1.0,
        fpr: 1.0,
    });
    for &th in &thresholds {
        let tp = adversarial.iter().filter(|&&s| s > th).count() as f32;
        let fp = benign.iter().filter(|&&s| s > th).count() as f32;
        curve.push(RocPoint {
            threshold: th,
            tpr: if adversarial.is_empty() {
                0.0
            } else {
                tp / adversarial.len() as f32
            },
            fpr: if benign.is_empty() {
                0.0
            } else {
                fp / benign.len() as f32
            },
        });
    }
    curve
}

/// Area under the ROC curve via the Mann–Whitney U statistic:
/// `P(adv > benign) + ½ P(adv = benign)`. Ties and tiny sample sets are
/// handled exactly, unlike trapezoid integration over a coarse curve.
pub fn auc_roc(benign: &[f32], adversarial: &[f32]) -> f32 {
    if benign.is_empty() || adversarial.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0f64;
    for &a in adversarial {
        for &b in benign {
            if a > b {
                wins += 1.0;
            } else if a == b {
                wins += 0.5;
            }
        }
    }
    (wins / (benign.len() as f64 * adversarial.len() as f64)) as f32
}

/// Equal Error Rate: the error level where the false-positive rate equals
/// the false-negative rate, linearly interpolated along the ROC curve.
pub fn equal_error_rate(benign: &[f32], adversarial: &[f32]) -> f32 {
    let mut curve = roc_curve(benign, adversarial);
    // Walk from permissive to strict; find where FNR (=1-TPR) crosses FPR.
    curve.sort_by(|a, b| {
        b.fpr
            .partial_cmp(&a.fpr)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut prev: Option<&RocPoint> = None;
    for pt in &curve {
        let fnr = 1.0 - pt.tpr;
        if fnr >= pt.fpr {
            // Crossed between prev and pt: interpolate on the gap.
            if let Some(pr) = prev {
                let f0 = pr.fpr - (1.0 - pr.tpr);
                let f1 = pt.fpr - (1.0 - pt.tpr);
                if (f0 - f1).abs() > 1e-9 {
                    let t = f0 / (f0 - f1);
                    let eer = pr.fpr + t * (pt.fpr - pr.fpr);
                    return eer.clamp(0.0, 1.0);
                }
            }
            return ((pt.fpr + fnr) / 2.0).clamp(0.0, 1.0);
        }
        prev = Some(pt);
    }
    0.5
}

/// Top-N localization hit: does the identified packet fall within a window
/// of `n` packets centred on any true adversarial packet? (§4.2: Top-5 =
/// within five packets, Top-3 = within three, Top-1 = exact.)
pub fn top_n_hit(identified: usize, truth: &[usize], n: usize) -> bool {
    let radius = (n.max(1) - 1) / 2;
    truth.iter().any(|&t| identified.abs_diff(t) <= radius)
}

/// Whole-run health roll-up of the sharded engine's per-shard counters —
/// the shape the bench binaries serialize and the CI gates check. Totals
/// only; the per-shard breakdown stays on [`ShardStats`].
///
/// [`ShardStats`]: crate::ShardStats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardHealth {
    /// Packets dispatched across all shards.
    pub pushed: u64,
    /// Packets scored across all shards.
    pub scored: u64,
    /// Packets shed (overload policy, watchdog cut-off, or a dying
    /// worker's in-flight loss).
    pub dropped: u64,
    /// Packets quarantined after a supervised scoring panic.
    pub quarantined: u64,
    /// Flow-table rebuilds across all shards.
    pub restarts: u64,
    /// Saturation episodes under the `Degrade` policy.
    pub degraded_windows: u64,
    /// Stalled pushes (the backpressure signal).
    pub full_waits: u64,
}

impl ShardHealth {
    /// Sums one run's per-shard stats into the roll-up.
    pub fn of(stats: &[crate::ShardStats]) -> ShardHealth {
        let mut h = ShardHealth::default();
        for s in stats {
            h.pushed += s.pushed;
            h.scored += s.packets;
            h.dropped += s.dropped;
            h.quarantined += s.quarantined;
            h.restarts += s.restarts;
            h.degraded_windows += s.degraded_windows;
            h.full_waits += s.full_waits;
        }
        h
    }

    /// Packets that did not reach a scorer (shed + quarantined).
    pub fn shed(&self) -> u64 {
        self.dropped + self.quarantined
    }

    /// Fraction of dispatched packets that did not reach a scorer.
    pub fn shed_rate(&self) -> f64 {
        if self.pushed == 0 {
            0.0
        } else {
            self.shed() as f64 / self.pushed as f64
        }
    }

    /// Verifies the exact accounting invariant
    /// `pushed == scored + dropped + quarantined` on every shard,
    /// naming the first violating shard.
    pub fn check_accounting(stats: &[crate::ShardStats]) -> Result<(), String> {
        for s in stats {
            if s.pushed != s.packets + s.dropped + s.quarantined {
                return Err(format!(
                    "shard {} accounting broken: pushed {} != scored {} + dropped {} + quarantined {}",
                    s.shard, s.pushed, s.packets, s.dropped, s.quarantined
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_separation() {
        let benign = [0.1, 0.2, 0.3];
        let adv = [0.9, 0.8, 0.7];
        assert_eq!(auc_roc(&benign, &adv), 1.0);
        assert_eq!(auc_roc(&adv, &benign), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        let a = [0.5, 0.5, 0.5];
        assert_eq!(auc_roc(&a, &a), 0.5);
    }

    #[test]
    fn auc_partial_overlap() {
        let benign = [0.1, 0.4];
        let adv = [0.3, 0.6];
        // pairs: (0.3>0.1)=1, (0.3<0.4)=0, (0.6>0.1)=1, (0.6>0.4)=1 -> 3/4
        assert!((auc_roc(&benign, &adv) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn eer_extremes() {
        let benign = [0.0, 0.1, 0.2];
        let adv = [0.8, 0.9, 1.0];
        assert!(equal_error_rate(&benign, &adv) < 0.01);
        // Fully swapped: EER near 1... symmetric metric peaks at 0.5+.
        let eer_bad = equal_error_rate(&adv, &benign);
        assert!(eer_bad > 0.5);
    }

    #[test]
    fn eer_half_overlap() {
        // Half of each population on either side.
        let benign = [0.0, 0.0, 1.0, 1.0];
        let adv = [0.0, 0.0, 1.0, 1.0];
        let eer = equal_error_rate(&benign, &adv);
        assert!((eer - 0.5).abs() < 0.26, "eer = {eer}");
    }

    #[test]
    fn roc_is_monotone() {
        let benign = [0.1, 0.3, 0.2, 0.15];
        let adv = [0.25, 0.5, 0.45, 0.2];
        let curve = roc_curve(&benign, &adv);
        for w in curve.windows(2) {
            assert!(w[1].threshold >= w[0].threshold || w[0].threshold == f32::NEG_INFINITY);
            assert!(w[1].tpr <= w[0].tpr + 1e-6);
            assert!(w[1].fpr <= w[0].fpr + 1e-6);
        }
        assert_eq!(curve[0].tpr, 1.0);
        assert_eq!(curve[0].fpr, 1.0);
        let last = curve.last().unwrap();
        assert_eq!(last.tpr, 0.0);
        assert_eq!(last.fpr, 0.0);
    }

    #[test]
    fn empty_inputs_are_neutral() {
        assert_eq!(auc_roc(&[], &[1.0]), 0.5);
        assert_eq!(auc_roc(&[1.0], &[]), 0.5);
    }

    #[test]
    fn top_n_semantics() {
        // Top-1: exact only.
        assert!(top_n_hit(5, &[5], 1));
        assert!(!top_n_hit(5, &[6], 1));
        // Top-3: within one packet.
        assert!(top_n_hit(5, &[6], 3));
        assert!(top_n_hit(5, &[4], 3));
        assert!(!top_n_hit(5, &[7], 3));
        // Top-5: within two packets.
        assert!(top_n_hit(5, &[7], 5));
        assert!(!top_n_hit(5, &[8], 5));
        // Multiple ground-truth positions.
        assert!(top_n_hit(5, &[100, 6], 3));
        assert!(!top_n_hit(5, &[], 5));
    }

    fn stat(shard: usize, pushed: u64, scored: u64, dropped: u64, quar: u64) -> crate::ShardStats {
        crate::ShardStats {
            shard,
            pushed,
            packets: scored,
            flows_closed: 0,
            full_waits: 1,
            dropped,
            degraded_windows: if dropped > 0 { 1 } else { 0 },
            quarantined: quar,
            restarts: quar,
            stream: crate::StreamStats::default(),
        }
    }

    #[test]
    fn shard_health_rolls_up_and_checks_accounting() {
        let stats = [stat(0, 10, 8, 1, 1), stat(1, 5, 5, 0, 0)];
        let h = ShardHealth::of(&stats);
        assert_eq!(h.pushed, 15);
        assert_eq!(h.scored, 13);
        assert_eq!(h.dropped, 1);
        assert_eq!(h.quarantined, 1);
        assert_eq!(h.restarts, 1);
        assert_eq!(h.degraded_windows, 1);
        assert_eq!(h.full_waits, 2);
        assert_eq!(h.shed(), 2);
        assert!((h.shed_rate() - 2.0 / 15.0).abs() < 1e-12);
        assert!(ShardHealth::check_accounting(&stats).is_ok());
        let broken = [stat(0, 10, 8, 1, 0)];
        let err = ShardHealth::check_accounting(&broken).unwrap_err();
        assert!(err.contains("shard 0"), "{err}");
        assert_eq!(ShardHealth::default().shed_rate(), 0.0);
    }
}
