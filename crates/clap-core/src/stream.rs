//! Streaming per-flow scoring — the online counterpart of
//! [`Clap::score_connection`].
//!
//! The batch pipeline scores *complete* connections: capture, reassemble,
//! score. A line-rate DPI deployment cannot wait for completeness — it sees
//! one interleaved packet stream over millions of concurrent flows and must
//! emit verdicts as packets arrive. [`StreamScorer`] is that mode:
//!
//! * **Per-flow state, shared arenas.** Each live flow persists only what
//!   the model mathematically needs: the incremental feature-extraction
//!   anchors ([`FeatureExtractor`]), a [`FlowTracker`] for teardown
//!   detection, the GRU hidden state (`H` floats, advanced by
//!   [`PackedGru::step`]), the last `stack − 1` single-packet profiles,
//!   and the flow's window-error log. Everything else — GRU step scratch,
//!   the 1×345 window matrix, the autoencoder workspace, the current
//!   packet's profile row — is scorer-level and shared across all flows,
//!   so steady-state scoring performs **no per-packet heap allocation**
//!   (the only growth is each flow's error log, amortized).
//! * **Exact batch equivalence.** Feeding a connection's packets one at a
//!   time yields the same window errors and final score as the offline
//!   path: the resumable GRU step is bitwise identical to the batched run,
//!   feature extraction shares one code path, and a 1-row autoencoder pass
//!   computes the same dot products as a batched one. The property tests
//!   pin streaming-vs-batch to ≤1e-6.
//! * **Bounded memory.** Flows are evicted on TCP teardown (RST, or an
//!   orderly close reaching TIME_WAIT), on idle timeout (a hierarchical
//!   timing wheel, see below), on a per-flow packet cap, and —
//!   conntrack-`early_drop`-style — by probing a handful of slab entries
//!   and dropping the stalest when the table is full. Every eviction
//!   finalizes the flow and emits its [`ScoredConnection`].
//! * **Arrival tags.** Every packet carries an arrival tag — the scorer's
//!   own 0-based counter under [`StreamScorer::push`], or a
//!   caller-supplied index under [`StreamScorer::push_tagged`] — and each
//!   flow remembers its first packet's tag ([`ClosedFlow::arrival`]),
//!   surviving orient-buffer replays and same-push restarts. The
//!   RSS-sharded front end merges per-shard verdicts on exactly this tag,
//!   with no bookkeeping of its own.
//! * **Engine precision.** [`StreamConfig::quant`] selects the f32 or the
//!   int8 quantized inference engines (`neural::quant`); both advance
//!   flows through identical code, and within either precision streaming
//!   remains exactly equal to batch scoring at that precision.
//!
//! # Cross-flow micro-batching
//!
//! With [`StreamConfig::microbatch`] ≥ 2 the scorer stops scoring each
//! packet's GRU step / AE window immediately and instead *continuously
//! batches* ready work across concurrent flows — the same trick
//! inference servers use to fill GEMM lanes from many concurrent
//! requests. Per packet, only the cheap per-flow bookkeeping runs
//! inline (TCP tracking, feature extraction, timers — everything
//! teardown and eviction decisions depend on); the packet's neural work
//! is staged into a pending set keyed by slab handle: its GRU input
//! row and the feature part of its profile row. A bursty flow may
//! stage *several* consecutive packets — each item records its
//! position (`round`) in its flow's chain. A **flush** then scores
//! the whole set in chain rounds: round `r` gathers the hidden state
//! of every item that is the `r`-th staged packet of its flow
//! (dequantized from the resident arena under [`ResidentMode::Int8`]),
//! runs one [`neural::PackedGru::step_batch`] over them and scatters
//! the states back (requantized in int8 resident mode), so round
//! `r + 1` reads exactly the states round `r` produced — the
//! cross-packet GRU dependency runs *between* rounds, never inside a
//! GEMM. Ring stores happen per item as its round completes, window
//! rows accumulate across rounds, and one batched autoencoder pass
//! scores every completed window at the end.
//!
//! **Flush policy.** The pending set flushes when it reaches
//! [`StreamConfig::microbatch`] rows (batch full); when a pending
//! set has aged [`StreamConfig::microbatch_wait`] stream packets
//! (latency budget); always at the top of flow finalization (teardown,
//! length cap, idle/capacity eviction, linger expiry, [`finish`]) so
//! verdict timing and content never depend on batching; and on demand
//! via [`flush_pending`] (the sharded engine calls it when a shard
//! goes idle). Chaining means a same-flow *collision never forces a
//! flush*: back-to-back packets of one flow — over a third of the ci
//! corpus — used to drain the whole set as undersized batches; now
//! they queue behind each other and the set keeps filling to
//! capacity.
//!
//! **Ordering / finalization invariants.** Tracker state, packet
//! counts and `last_seen` advance at *enqueue* time, so teardown,
//! length-cap and eviction decisions — and therefore the order of the
//! closed-flow queue — are identical with batching on or off. Rounds
//! replay each flow's staged packets in arrival order, and a chained
//! item's window is assembled only after the previous round stored
//! its predecessor's ring row, so the ring is exactly "as of packet
//! `t − 1`" when packet `t`'s window forms and each flow's
//! window-error log fills in packet order. Every batched row runs
//! through the same per-row kernels as the per-packet path (1-row GEMM
//! == matvec; per-row activation quantization at int8; hidden states
//! round-trip through the resident arena between chained steps exactly
//! as they do between per-packet steps), making micro-batched
//! streaming **bitwise identical** to per-packet streaming at both
//! precisions — pinned by proptests and a pcap regression test. The
//! one observable difference: [`push`] returns `None` for a packet
//! whose window error is still pending (the error surfaces in the
//! flow's [`ClosedFlow`] log instead).
//!
//! **Measured reality check.** Because exactness pins every batched
//! row to the per-packet kernels, batching can only amortize per-call
//! overhead — and with CLAP-sized models resident in L2, that
//! overhead is already small: on a single core at the ci preset the
//! measured speedup is ≈1.07× (avx512vnni) and ≈1.0× (avx2) at 12.8
//! rows/flush mean occupancy. The win this layer is built for arrives
//! when model weights outgrow cache and each flush streams them once
//! per *batch* instead of once per *packet*; see ROADMAP for the full
//! numbers and the variants that measured slower.
//!
//! [`finish`]: StreamScorer::finish
//! [`flush_pending`]: StreamScorer::flush_pending
//! [`push`]: StreamScorer::push
//!
//! # Flow-table substrate
//!
//! The table is built for millions of concurrent flows: a dense slab with
//! handle-based addressing, a hierarchical timing wheel for expiry, and an
//! optionally int8-quantized *resident* form of the per-flow neural state.
//!
//! **Slab + handle map.** Flow state lives in a dense `Vec<Slot>` slab
//! addressed by a `u32` handle; the `CanonicalKey → handle` hash map holds
//! only 16-byte entries. Departed slots go on an intrusive free list
//! (reusing the wheel's `next` link) and are recycled in place — eviction
//! and admission never reallocate at steady state, slab iteration is
//! cache-linear, and `slab.len()` is exactly the peak concurrent flow
//! count. The slab grows by doubling, clamped to
//! [`StreamConfig::max_flows`] so capacity never overshoots the
//! configured table size by more than 2× below the cap and not at all at
//! it.
//!
//! **Timing wheel.** Idle eviction and TIME_WAIT linger expiry share one
//! hierarchical timing wheel: 4 levels × 64 slots, level `l` covering
//! `64^(l+1)` ticks, one tick = `max(idle_timeout, …)/512` seconds
//! (clamped to `[1 ms, 60 s]`). A flow's timer is an intrusive
//! doubly-linked node threaded through its own slab slot, so arming,
//! re-arming (every packet) and cancelling are O(1) pointer splices, and
//! re-arming into the unchanged wheel slot — the overwhelmingly common
//! case, since a deadline moves only `granularity`-fraction per packet —
//! is a no-op. Timers are *lazy*: a slot stores no deadline, it is
//! recomputed from `last_seen` at fire time, so a timer that fires early
//! (coarse high-level slots, stale same-slot re-arms) is simply re-armed
//! at its true remaining delta. The wheel only advances at sweep
//! boundaries (every [`StreamConfig::sweep_interval`] packets, on the
//! max-timestamp stream clock); each advance detaches every list the
//! per-level cursors passed — at most one full revolution per level, so a
//! multi-hour clock jump costs O(levels × 64), not O(elapsed) — plus the
//! current tick's level-0 slot, which is how deadlines landing *inside*
//! the current tick still get their exact `last_seen < clock − timeout`
//! recheck at every boundary. Leaving a tick drains that tick's level-0
//! slot as part of the advance: a timer re-armed *into* the current tick
//! (its deadline already inside it) lives in a slot the per-level pass
//! never revisits, and would otherwise sit out a full 64-tick revolution. That recheck is the same float expression
//! the full-scan [`EvictionMode::Sweep`] reference uses, which is what
//! makes wheel and sweep evict bitwise-identical flow sets (pinned by
//! proptest): both fire at the same boundaries, both apply the same
//! predicate, and a flow that outlives an early fire is re-armed, never
//! dropped. The old rotating key-copy sweep (`sweep_keys` clear+extend —
//! a multi-MB copy per sweep at 1M flows) is gone entirely.
//!
//! **Resident int8 state.** [`ResidentMode::Int8`] stores each flow's GRU
//! hidden vector and its profile ring in the 7-bit activation format of
//! `neural::quant` (`quantize_activations`): codes plus one
//! `(scale, min)` pair per row, dequantized into scorer scratch on step
//! and requantized on store — ~4× shrink of the dominant per-flow arrays.
//! Unlike [`StreamConfig::quant`] (which quantizes *weights* and keeps
//! activations exact per GEMM), resident quantization round-trips state
//! through the grid once per packet, so scores drift; the drift is
//! bounded and calibrated by the same proptest harness that pins the PR 5
//! activation path (grid step `(max−min)/127` of each stored row).
//! Whichever mode, only the *last `stack − 1`* profiles are resident —
//! the current packet's row is built in scorer scratch and enters the
//! window from there, so the ring holds strictly the rows future windows
//! will re-read.
//!
//! **TIME_WAIT linger.** With [`StreamConfig::time_wait`] > 0, a flow
//! reaching TIME_WAIT is *not* finalized inline: it keeps scoring (FIN
//! retransmits, stray ACKs stay attributed to it) and its wheel timer
//! switches to the linger timeout. It finalizes (reason
//! [`CloseReason::TcpClose`]) when the linger expires — or immediately,
//! old incarnation first, when a fresh pure SYN reuses the 4-tuple. The
//! default `0.0` keeps the historical finalize-at-TIME_WAIT behavior that
//! the batch-equivalence guarantees are stated against.
//!
//! Per-flow memory at Table-6 sizes (`H = 32`, `stack = 3`, 115-float
//! profiles): a 16-byte map entry, a ~176-byte slot (key, compact
//! extractor/tracker, error-log Vec header, links), and resident state —
//! f32: `32 + 2×115` floats ≈ 1048 B; int8: `32 + 2×115` codes + 3
//! quant pairs ≈ 286 B. [`StreamScorer::mem_bytes`] reports the live
//! estimate; `exp_throughput --preset scale` gates `bytes_per_flow` in CI.
//!
//! Orientation matches the offline reassembler for every realistic
//! capture: a flow whose first packet is a pure SYN is oriented
//! immediately (the SYN sender is the client); a flow that starts
//! mid-capture buffers up to [`StreamConfig::orient_buffer`] leading
//! packets *unprocessed*, so a pure SYN arriving among them can
//! retroactively re-orient the flow before any feature is extracted —
//! exactly what [`net_packet::assemble_connections`] does offline. Only a
//! pure SYN arriving *after* the buffer has flushed diverges (the offline
//! reassembler re-orients at any depth; a streaming scorer cannot rewrite
//! already-scored history). The remaining divergence by design: a
//! connection reusing its 4-tuple after teardown becomes a *new* flow
//! rather than one long connection.
//!
//! ```
//! use clap_core::{Clap, ClapConfig};
//!
//! let benign = traffic_gen::dataset(42, 40);
//! let (clap, _) = Clap::train(&benign, &ClapConfig::ci());
//!
//! let mut scorer = clap.stream_scorer();
//! for conn in &benign[..4] {
//!     for p in &conn.packets {
//!         // Window errors surface online, packet by packet.
//!         let _maybe_err: Option<f32> = scorer.push(p);
//!     }
//! }
//! // FIN-terminated flows were finalized inline; drain the rest.
//! let closed = scorer.finish();
//! assert!(!closed.is_empty());
//! assert!(closed.iter().all(|c| c.scored.score.is_finite()));
//! ```
//!
//! [`PackedGru::step`]: neural::PackedGru::step

use crate::features::{FeatureExtractor, FeatureVector, NUM_PACKET};
use crate::pipeline::Clap;
use crate::profile::{ProfileBuilder, PROFILE_LEN};
use crate::score::{score_errors, ScoredConnection};
use clap_telemetry::hist::Stage;
use clap_telemetry::{StageHists, StageRecorder, StreamCells};
use net_packet::{CanonicalKey, Direction, Endpoint, FlowKey, Packet, TcpFlags};
use neural::{
    dequantize_activations_into, quantize_activations, ActQuant, AeEngine, AeWorkspace,
    GruBatchScratch, GruEngine, GruStepScratch, Matrix, QuantMode,
};
use std::collections::HashMap;
use std::sync::OnceLock;
use tcp_state::{FlowTracker, TcpState};

/// How idle (and TIME_WAIT-linger) expiry walks the flow table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionMode {
    /// Hierarchical timing wheel: O(1) per-packet re-arm, each sweep
    /// boundary touches only the flows whose timers fired.
    #[default]
    Wheel,
    /// Full slab scan at every sweep boundary. O(live flows) per sweep —
    /// the reference implementation the wheel is proptest-pinned against,
    /// kept for that harness and for debugging, not for production use.
    Sweep,
}

/// In-table representation of each flow's GRU hidden vector and profile
/// ring (see the module docs' *Resident int8 state* note).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResidentMode {
    /// Exact f32 resident state — preserves every batch-equivalence
    /// guarantee bit for bit.
    #[default]
    F32,
    /// 7-bit quantized resident state (~4× smaller). Scores drift within
    /// the calibrated resident-quantization bound.
    Int8,
}

/// Flow-table policy for a [`StreamScorer`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Evict flows idle for longer than this many seconds. The clock is
    /// the maximum packet timestamp seen, so replayed captures age flows
    /// at capture speed, not wall-clock speed.
    pub idle_timeout: f64,
    /// Hard cap on concurrently tracked flows; at capacity the stalest of
    /// a small probe set is evicted to admit a new flow.
    pub max_flows: usize,
    /// Finalize a flow when its tracker reaches `CLOSE` (RST) or
    /// `TIME_WAIT` (orderly close). Disable to score past teardown — e.g.
    /// when comparing against batch scoring of captures that keep packets
    /// after a close.
    pub teardown_on_close: bool,
    /// Keep a flow that reached TIME_WAIT alive for this many seconds
    /// after its last packet instead of finalizing it inline (`0.0`, the
    /// default, finalizes at TIME_WAIT exactly as before). A lingering
    /// flow still scores late packets; a fresh pure SYN on the same
    /// 4-tuple closes it immediately and starts the new incarnation.
    /// Only meaningful with `teardown_on_close`.
    pub time_wait: f64,
    /// Finalize a flow after this many packets regardless of TCP state,
    /// bounding per-flow memory (the error log grows one `f32` per packet
    /// past the stack depth). Subsequent packets start a fresh flow.
    pub max_packets_per_flow: usize,
    /// Advance the expiry machinery every this many packets. With
    /// [`EvictionMode::Wheel`] each boundary costs O(timers fired); with
    /// [`EvictionMode::Sweep`] it costs O(live flows).
    pub sweep_interval: usize,
    /// A flow that does **not** begin with a pure SYN (a mid-capture
    /// start) buffers up to this many leading packets before anything is
    /// scored, so a late pure SYN among them re-orients the flow exactly
    /// like the offline reassembler. `0` restores first-packet pinning.
    pub orient_buffer: usize,
    /// Engine precision for this scorer's GRU and autoencoder
    /// ([`QuantMode::Int8`] runs the int8 quantized kernels). Defaults to
    /// the process-wide [`QuantMode::active`] selection.
    pub quant: QuantMode,
    /// Expiry mechanism — wheel by default, full-scan sweep as the
    /// equivalence-test reference.
    pub eviction: EvictionMode,
    /// Per-flow resident-state precision. Independent of [`quant`]
    /// (weights vs state); defaults to exact f32.
    ///
    /// [`quant`]: StreamConfig::quant
    pub resident: ResidentMode,
    /// Cross-flow micro-batch capacity (see the module docs' design
    /// note): collect up to this many ready per-packet work items
    /// across flows and flush them through one batched GEMM. `0` or
    /// `1` scores every packet immediately — the historical per-packet
    /// path. Defaults to the `CLAP_MICROBATCH` environment variable
    /// (unset or unparsable = off), read once per process.
    pub microbatch: usize,
    /// Latency budget: flush a non-empty micro-batch after this many
    /// subsequent stream packets even if it never fills. Ignored when
    /// [`microbatch`](StreamConfig::microbatch) is off.
    pub microbatch_wait: usize,
}

/// Process-wide `CLAP_MICROBATCH` default for
/// [`StreamConfig::microbatch`], parsed once.
fn microbatch_env_default() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("CLAP_MICROBATCH")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    })
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            idle_timeout: 300.0,
            max_flows: 1 << 20,
            teardown_on_close: true,
            time_wait: 0.0,
            max_packets_per_flow: 1 << 20,
            sweep_interval: 4096,
            orient_buffer: 3,
            quant: QuantMode::active(),
            eviction: EvictionMode::default(),
            resident: ResidentMode::default(),
            microbatch: microbatch_env_default(),
            microbatch_wait: 64,
        }
    }
}

/// Why a flow left the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// TCP teardown observed (RST, or orderly close reaching TIME_WAIT —
    /// after the [`StreamConfig::time_wait`] linger, if one is set).
    TcpClose,
    /// No packets for [`StreamConfig::idle_timeout`] seconds.
    IdleTimeout,
    /// Evicted to admit a new flow at [`StreamConfig::max_flows`].
    CapacityEvicted,
    /// Hit [`StreamConfig::max_packets_per_flow`].
    LengthCapped,
    /// Flushed by [`StreamScorer::finish`].
    Drained,
}

/// A finalized flow: its identity, size, why it closed, the arrival tag
/// of its first packet and the same [`ScoredConnection`] the batch path
/// would have produced.
#[derive(Debug, Clone)]
pub struct ClosedFlow {
    pub key: FlowKey,
    pub packets: usize,
    pub reason: CloseReason,
    /// Arrival tag of this flow incarnation's **first** packet: the
    /// caller-supplied value from [`StreamScorer::push_tagged`], or the
    /// scorer's own 0-based packet counter under plain
    /// [`StreamScorer::push`]. A flow that restarts (length cap, idle
    /// sweep, teardown) carries the tag of the packet that opened the new
    /// incarnation — a pure function of the input stream, which is what
    /// lets the sharded front end merge verdicts deterministically
    /// without any shadow bookkeeping.
    pub arrival: u64,
    pub scored: ScoredConnection,
}

/// Lifetime flow-table counters (they survive [`StreamScorer::reset`];
/// `flows_peak` is the high-water mark of concurrently live flows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Peak concurrently tracked flows (== slab size: slots are only
    /// allocated when the free list is empty).
    pub flows_peak: usize,
    /// Flows evicted by the idle timeout.
    pub evicted_idle: u64,
    /// Flows evicted to admit new ones at [`StreamConfig::max_flows`].
    pub evicted_capacity: u64,
    /// Flows finalized by TCP teardown (including expired TIME_WAIT
    /// lingers).
    pub closed_tcp: u64,
    /// Flows finalized at [`StreamConfig::max_packets_per_flow`].
    pub length_capped: u64,
    /// Flows flushed by [`StreamScorer::finish`].
    pub drained: u64,
    /// Subset of `closed_tcp` whose TIME_WAIT linger expired on the wheel.
    pub time_wait_expired: u64,
}

/// Point-in-time view of one live flow-table entry — the conntrack-style
/// introspection record behind [`StreamScorer::flow_entries`]. Everything
/// here is a *current* value; the flow keeps scoring after the dump.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEntry {
    /// The flow's oriented 5-tuple (client endpoint first).
    pub key: FlowKey,
    /// TCP connection state, `None` for non-TCP flows.
    pub state: Option<TcpState>,
    /// Whether the flow is in its TIME_WAIT linger window.
    pub lingering: bool,
    /// Packets scored so far (this incarnation).
    pub packets: u64,
    /// Wire bytes seen so far (this incarnation).
    pub bytes: u64,
    /// Seconds since the incarnation's first packet, on the stream clock.
    pub age: f64,
    /// Seconds since the flow's last packet, on the stream clock.
    pub idle: f64,
    /// Arrival tag of the incarnation's first packet.
    pub arrival: u64,
    /// The anomaly score the flow would close with right now.
    pub score: f32,
}

/// Null handle / list terminator for the slab's intrusive links.
const NIL: u32 = u32::MAX;
/// "Not armed" marker for [`Slot::wheel_pos`].
const NIL_POS: u16 = u16::MAX;

/// Slot flag: occupied by a live flow (clear = on the free list).
const FLAG_LIVE: u8 = 1;
/// Slot flag: flow reached TIME_WAIT and is lingering (timer runs on
/// [`StreamConfig::time_wait`] instead of the idle timeout).
const FLAG_LINGER: u8 = 1 << 1;
/// Slot flag: the flow has at least one packet staged in the pending
/// micro-batch. Consecutive packets chain (see [`PendItem::round`]);
/// the flag marks that the flow's resident state is stale until the
/// next flush.
const FLAG_PENDING: u8 = 1 << 2;

/// How many slab entries the capacity evictor probes before dropping the
/// stalest (conntrack's `early_drop` idea: O(1) bounded work instead of a
/// full LRU structure).
const EVICT_PROBES: usize = 8;

/// log2 of the wheel fan-out: 64 slots per level.
const WHEEL_BITS: u32 = 6;
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS;
/// 4 levels cover `64^4 ≈ 16.7M` ticks; later deadlines clamp into the
/// top level and cascade on (early) fire.
const WHEEL_LEVELS: usize = 4;

/// Per-flow slab slot. The neural resident state (hidden vector, profile
/// ring) lives in the parallel [`ResidentArena`], indexed by the same
/// handle; the wheel links double as the free-list link when the slot is
/// vacant.
#[derive(Debug, Clone)]
struct Slot {
    key: FlowKey,
    extractor: FeatureExtractor,
    tracker: FlowTracker,
    /// Reconstruction error per emitted stacked window, in order.
    window_errors: Vec<f32>,
    /// Leading packets held back (with their arrival tags) while the
    /// flow's orientation is still undecided (`Some` only for flows that
    /// did not start with a pure SYN, until
    /// [`StreamConfig::orient_buffer`] fills or a SYN lands). Boxed: the
    /// common case is `None` and the slab stays dense — the extra
    /// indirection trades a pointer-sized field here for 16 fewer bytes
    /// in every one of a million slots.
    #[allow(clippy::box_collection)]
    pending: Option<Box<Vec<(u64, Packet)>>>,
    /// Arrival tag of this incarnation's first packet.
    arrival: u64,
    /// Capture timestamp of this incarnation's first packet (flow age in
    /// the introspection dump is measured from here).
    first_seen: f64,
    last_seen: f64,
    packets: u32,
    /// Total wire bytes seen by this incarnation (conntrack-style
    /// accounting for the flow dump).
    bytes: u64,
    /// Intrusive wheel list forward link; the free-list link when vacant.
    wheel_next: u32,
    wheel_prev: u32,
    /// `level * 64 + slot` the timer is linked into, or [`NIL_POS`].
    wheel_pos: u16,
    flags: u8,
}

impl Slot {
    fn new(key: FlowKey, now: f64, arrival: u64) -> Slot {
        let tracker = FlowTracker::for_proto(key.proto);
        Slot {
            key,
            extractor: FeatureExtractor::new(),
            tracker,
            window_errors: Vec::new(),
            pending: None,
            arrival,
            first_seen: now,
            last_seen: now,
            packets: 0,
            bytes: 0,
            wheel_next: NIL,
            wheel_prev: NIL,
            wheel_pos: NIL_POS,
            flags: FLAG_LIVE,
        }
    }

    fn live(&self) -> bool {
        self.flags & FLAG_LIVE != 0
    }

    fn lingering(&self) -> bool {
        self.flags & FLAG_LINGER != 0
    }
}

/// Dense per-flow neural state, parallel to the slab: flow `h` owns
/// `hidden` elements of the hidden-state arena and `stack − 1` rows of
/// the profile-ring arena. One enum for the whole table (not per flow) so
/// the f32 path stays branch-free per row and the int8 path adds no
/// per-flow discriminant.
#[derive(Debug)]
enum ResidentArena {
    F32 {
        h: Vec<f32>,
        ring: Vec<f32>,
    },
    Int8 {
        h: Vec<u8>,
        hq: Vec<ActQuant>,
        ring: Vec<u8>,
        ringq: Vec<ActQuant>,
    },
}

/// Quant pair of an all-zero row (`scale` 0 dequantizes every code to
/// `min` = 0), the state of a fresh flow's hidden vector.
const ZERO_Q: ActQuant = ActQuant {
    scale: 0.0,
    min: 0.0,
};

impl ResidentArena {
    fn new(mode: ResidentMode) -> ResidentArena {
        match mode {
            ResidentMode::F32 => ResidentArena::F32 {
                h: Vec::new(),
                ring: Vec::new(),
            },
            ResidentMode::Int8 => ResidentArena::Int8 {
                h: Vec::new(),
                hq: Vec::new(),
                ring: Vec::new(),
                ringq: Vec::new(),
            },
        }
    }

    /// Appends one zeroed slot's worth of state.
    fn push_slot(&mut self, hidden: usize, ring_rows: usize) {
        match self {
            ResidentArena::F32 { h, ring } => {
                h.resize(h.len() + hidden, 0.0);
                ring.resize(ring.len() + ring_rows * PROFILE_LEN, 0.0);
            }
            ResidentArena::Int8 { h, hq, ring, ringq } => {
                h.resize(h.len() + hidden, 0);
                hq.push(ZERO_Q);
                ring.resize(ring.len() + ring_rows * PROFILE_LEN, 0);
                ringq.resize(ringq.len() + ring_rows, ZERO_Q);
            }
        }
    }

    /// Zeroes a recycled slot's hidden state. Ring rows need no clearing:
    /// row `j` of a flow is written before any window reads it, so stale
    /// rows of the previous occupant are unreachable (pinned by the slab
    /// recycling test).
    fn clear_slot(&mut self, hi: usize, hidden: usize) {
        match self {
            ResidentArena::F32 { h, .. } => h[hi * hidden..(hi + 1) * hidden].fill(0.0),
            ResidentArena::Int8 { h, hq, .. } => {
                h[hi * hidden..(hi + 1) * hidden].fill(0);
                hq[hi] = ZERO_Q;
            }
        }
    }

    /// Copies (f32) or dequantizes (int8) ring row `r` into `out`.
    fn read_ring_row(&self, r: usize, out: &mut [f32]) {
        match self {
            ResidentArena::F32 { ring, .. } => {
                out.copy_from_slice(&ring[r * PROFILE_LEN..(r + 1) * PROFILE_LEN]);
            }
            ResidentArena::Int8 { ring, ringq, .. } => {
                dequantize_activations_into(
                    &ring[r * PROFILE_LEN..(r + 1) * PROFILE_LEN],
                    ringq[r],
                    out,
                );
            }
        }
    }

    /// Stores `row` as ring row `r` (quantizing through `codes` scratch
    /// in int8 mode).
    fn store_ring_row(&mut self, r: usize, row: &[f32], codes: &mut Vec<u8>) {
        match self {
            ResidentArena::F32 { ring, .. } => {
                ring[r * PROFILE_LEN..(r + 1) * PROFILE_LEN].copy_from_slice(row);
            }
            ResidentArena::Int8 { ring, ringq, .. } => {
                let q = quantize_activations(row, codes);
                ring[r * PROFILE_LEN..(r + 1) * PROFILE_LEN].copy_from_slice(codes);
                ringq[r] = q;
            }
        }
    }

    /// Mirrors the slab's exact-growth policy so arena capacity tracks
    /// `target_slots`, not Vec doubling.
    fn reserve_slots(&mut self, target_slots: usize, hidden: usize, ring_rows: usize) {
        fn up_to<T>(v: &mut Vec<T>, target: usize) {
            if target > v.capacity() {
                v.reserve_exact(target - v.len());
            }
        }
        match self {
            ResidentArena::F32 { h, ring } => {
                up_to(h, target_slots * hidden);
                up_to(ring, target_slots * ring_rows * PROFILE_LEN);
            }
            ResidentArena::Int8 { h, hq, ring, ringq } => {
                up_to(h, target_slots * hidden);
                up_to(hq, target_slots);
                up_to(ring, target_slots * ring_rows * PROFILE_LEN);
                up_to(ringq, target_slots * ring_rows);
            }
        }
    }

    fn clear(&mut self) {
        match self {
            ResidentArena::F32 { h, ring } => {
                h.clear();
                ring.clear();
            }
            ResidentArena::Int8 { h, hq, ring, ringq } => {
                h.clear();
                hq.clear();
                ring.clear();
                ringq.clear();
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        match self {
            ResidentArena::F32 { h, ring } => (h.capacity() + ring.capacity()) * size_of::<f32>(),
            ResidentArena::Int8 { h, hq, ring, ringq } => {
                h.capacity()
                    + ring.capacity()
                    + (hq.capacity() + ringq.capacity()) * size_of::<ActQuant>()
            }
        }
    }
}

/// Hierarchical timing wheel over the slab (see the module docs' design
/// note). Owns only the slot heads and the cursor; the list links live in
/// the slab slots themselves.
#[derive(Debug)]
struct Wheel {
    /// Seconds per level-0 tick.
    granularity: f64,
    /// `WHEEL_LEVELS × WHEEL_SLOTS` list heads, flattened.
    heads: Vec<u32>,
    /// Current level-0 tick (`floor(clock / granularity)` as of the last
    /// advance).
    cur: u64,
    /// Number of armed timers, to short-circuit empty advances.
    armed: usize,
}

impl Wheel {
    fn new(granularity: f64) -> Wheel {
        Wheel {
            granularity,
            heads: vec![NIL; WHEEL_LEVELS * WHEEL_SLOTS],
            cur: 0,
            armed: 0,
        }
    }

    fn tick_of(&self, t: f64) -> u64 {
        (t.max(0.0) / self.granularity) as u64
    }

    /// `level * 64 + slot` where a timer due at `tick` belongs, given the
    /// current cursor: the level whose span covers the remaining delta,
    /// indexed by the deadline's digit at that level. Deadlines beyond
    /// the top level's span clamp into it (they fire early and cascade).
    fn pos_for(&self, tick: u64) -> u16 {
        let max_span = 1u64 << (WHEEL_BITS * WHEEL_LEVELS as u32);
        let delta = tick.saturating_sub(self.cur).min(max_span - 1);
        let eff = self.cur + delta;
        let mut level = 0;
        while level + 1 < WHEEL_LEVELS && delta >= (1u64 << (WHEEL_BITS * (level as u32 + 1))) {
            level += 1;
        }
        let idx = ((eff >> (WHEEL_BITS * level as u32)) & (WHEEL_SLOTS as u64 - 1)) as usize;
        (level * WHEEL_SLOTS + idx) as u16
    }

    /// Links `handle` at `pos` (front of the list). Caller guarantees it
    /// is not currently linked.
    fn link(&mut self, slab: &mut [Slot], handle: u32, pos: u16) {
        let head = self.heads[pos as usize];
        {
            let s = &mut slab[handle as usize];
            debug_assert_eq!(s.wheel_pos, NIL_POS);
            s.wheel_pos = pos;
            s.wheel_prev = NIL;
            s.wheel_next = head;
        }
        if head != NIL {
            slab[head as usize].wheel_prev = handle;
        }
        self.heads[pos as usize] = handle;
        self.armed += 1;
    }

    /// Splices `handle` out of its list; no-op if unarmed.
    fn unlink(&mut self, slab: &mut [Slot], handle: u32) {
        let (prev, next, pos) = {
            let s = &slab[handle as usize];
            (s.wheel_prev, s.wheel_next, s.wheel_pos)
        };
        if pos == NIL_POS {
            return;
        }
        if prev == NIL {
            self.heads[pos as usize] = next;
        } else {
            slab[prev as usize].wheel_next = next;
        }
        if next != NIL {
            slab[next as usize].wheel_prev = prev;
        }
        let s = &mut slab[handle as usize];
        s.wheel_pos = NIL_POS;
        s.wheel_next = NIL;
        s.wheel_prev = NIL;
        self.armed -= 1;
    }

    /// Detaches every timer in list `pos` into `out`.
    fn detach_list(&mut self, slab: &mut [Slot], pos: usize, out: &mut Vec<u32>) {
        let mut handle = self.heads[pos];
        self.heads[pos] = NIL;
        while handle != NIL {
            let s = &mut slab[handle as usize];
            let next = s.wheel_next;
            s.wheel_pos = NIL_POS;
            s.wheel_next = NIL;
            s.wheel_prev = NIL;
            self.armed -= 1;
            out.push(handle);
            handle = next;
        }
    }

    /// Moves the cursor to `to`, detaching into `out` every timer whose
    /// slot a per-level cursor passed (capped at one revolution per
    /// level) plus the destination tick's level-0 slot — the lazy
    /// recheck for deadlines inside the current tick. The caller
    /// exact-checks each detached timer and re-arms survivors.
    fn advance(&mut self, slab: &mut [Slot], to: u64, out: &mut Vec<u32>) {
        let to = to.max(self.cur);
        if self.armed > 0 {
            // Leaving the current tick: drain its level-0 slot first. It
            // can only hold deadlines at tick ≤ `cur` (a delta of 1..=63
            // indexes a different slot and 64+ a higher level), and the
            // per-level pass below starts at `cur + 1`, so anything parked
            // here by a within-tick re-arm would otherwise wait a full
            // revolution.
            if to > self.cur {
                self.detach_list(slab, (self.cur & (WHEEL_SLOTS as u64 - 1)) as usize, out);
            }
            for level in 0..WHEEL_LEVELS {
                let shift = WHEEL_BITS * level as u32;
                let from_pos = self.cur >> shift;
                let to_pos = to >> shift;
                if from_pos == to_pos {
                    break;
                }
                let steps = (to_pos - from_pos).min(WHEEL_SLOTS as u64);
                for s in 1..=steps {
                    let idx = ((from_pos + s) & (WHEEL_SLOTS as u64 - 1)) as usize;
                    self.detach_list(slab, level * WHEEL_SLOTS + idx, out);
                }
            }
            self.cur = to;
            self.detach_list(slab, (to & (WHEEL_SLOTS as u64 - 1)) as usize, out);
        } else {
            self.cur = to;
        }
    }

    /// Drops every armed timer (the slab is being cleared wholesale).
    /// The cursor survives, like the stream clock it follows.
    fn reset(&mut self) {
        self.heads.fill(NIL);
        self.armed = 0;
    }
}

/// One staged packet of one flow in the pending micro-batch.
#[derive(Debug, Clone, Copy)]
struct PendItem {
    /// Slab handle of the flow.
    handle: u32,
    /// The packet's 0-based index within its flow.
    t: u32,
    /// Position in its flow's pending chain: the `round`-th staged
    /// packet of this flow. Flushes process rounds in order, so packet
    /// `t`'s GRU step always consumes the state packet `t − 1`
    /// produced.
    round: u32,
    /// Whether this packet completes a stacked window (`t + 1 ≥ stack`).
    window: bool,
}

/// Cross-flow micro-batch staging (see the module docs' design note).
/// All matrices grow one row per enqueue and truncate at the next
/// cycle's first enqueue; steady-state batching allocates nothing.
#[derive(Debug)]
struct MicroBatcher {
    /// Flush threshold ([`StreamConfig::microbatch`]; < 2 disables).
    cap: usize,
    /// Latency budget ([`StreamConfig::microbatch_wait`]).
    wait: usize,
    /// Stream packets pushed since the pending set became non-empty.
    age: usize,
    items: Vec<PendItem>,
    /// Row `b`: item `b`'s GRU input (the packet's base features).
    xs: Matrix,
    /// Round-local GRU input gather: row `k` is the `k`-th item of the
    /// round being flushed (items of one round are rarely contiguous
    /// in `xs`, and the batched step wants a dense matrix).
    rxs: Matrix,
    /// Round-local hidden states, gathered from the resident arena at
    /// flush time (the previous round's scatter already landed there),
    /// updated in place by the batched step, scattered back.
    hs: Matrix,
    /// Update / reset gate outputs of the batched step, row per
    /// round-local item.
    zs: Matrix,
    rs: Matrix,
    /// Row `b`: item `b`'s profile row (features ‖ z ‖ r). The feature
    /// part is written at enqueue, the gate part at flush.
    rows: Matrix,
    /// The stacked windows completed by the flushing batch, one row per
    /// item with [`PendItem::window`] set, in round-major order.
    windows: Matrix,
    /// Slab handle owning each `windows` row, for distributing the
    /// batched reconstruction errors after the rounds run.
    win_flows: Vec<u32>,
    scratch: GruBatchScratch,
    /// Lifetime flush-size histogram: `occupancy[b − 1]` counts flushes
    /// of exactly `b` rows. Survives [`StreamScorer::reset`], like
    /// [`StreamStats`].
    occupancy: Vec<u64>,
}

impl MicroBatcher {
    fn new(cap: usize, wait: usize) -> MicroBatcher {
        MicroBatcher {
            cap,
            wait: wait.max(1),
            age: 0,
            items: Vec::new(),
            xs: Matrix::default(),
            rxs: Matrix::default(),
            hs: Matrix::default(),
            zs: Matrix::default(),
            rs: Matrix::default(),
            rows: Matrix::default(),
            windows: Matrix::default(),
            win_flows: Vec::new(),
            scratch: GruBatchScratch::new(),
            occupancy: vec![0; cap],
        }
    }

    fn enabled(&self) -> bool {
        self.cap >= 2
    }
}

/// Online per-flow scoring session over one interleaved packet stream.
/// Create via [`Clap::stream_scorer`] (or
/// [`Clap::stream_scorer_with`] for a custom [`StreamConfig`]); one
/// scorer per ingest thread.
pub struct StreamScorer<'a> {
    clap: &'a Clap,
    config: StreamConfig,
    builder: ProfileBuilder,
    gru: GruEngine,
    ae: AeEngine<'a>,
    /// `CanonicalKey → slab handle`.
    flows: HashMap<CanonicalKey, u32>,
    slab: Vec<Slot>,
    resident: ResidentArena,
    /// Head of the vacant-slot free list (threaded through `wheel_next`).
    free_head: u32,
    wheel: Wheel,
    /// Rotating slab cursor for capacity-eviction probes, so victim
    /// selection is unbiased across the table.
    probe_cursor: u32,
    /// Flows finalized since the last [`drain_closed`](Self::drain_closed).
    closed: Vec<ClosedFlow>,
    /// Flow-table counters, published through wait-free telemetry cells so
    /// any thread can snapshot them mid-run (see
    /// [`attach_telemetry`](Self::attach_telemetry)). A scorer built
    /// standalone owns a private set.
    cells: std::sync::Arc<StreamCells>,
    /// Per-stage latency clocks (inert unless a [`StageHists`] sink is
    /// attached *and* the `telemetry` feature is on).
    stages: StageRecorder,
    // --- shared scratch (flow-independent) ---
    gru_scratch: GruStepScratch,
    ae_ws: AeWorkspace,
    fv: FeatureVector,
    /// 1×stacked_len window staged for the autoencoder.
    window: Matrix,
    err_scratch: Vec<f32>,
    /// The current packet's profile row (features ‖ z ‖ r), built here
    /// and copied into the flow's ring after the window uses it.
    row: Vec<f32>,
    /// Dequantized hidden state staging for [`ResidentMode::Int8`].
    h_scratch: Vec<f32>,
    /// Activation-code staging for resident-int8 stores.
    code_scratch: Vec<u8>,
    /// Cross-flow micro-batch staging (inert when
    /// [`StreamConfig::microbatch`] < 2).
    mb: MicroBatcher,
    /// Handles detached by the last wheel advance.
    fired: Vec<u32>,
    /// Max packet timestamp seen (the stream clock).
    clock: f64,
    packets_since_sweep: usize,
    /// Arrival counter backing plain [`push`](Self::push); kept one past
    /// the largest tag seen so mixing `push` after `push_tagged` stays
    /// monotone.
    auto_seq: u64,
}

impl Clap {
    /// Builds a streaming per-flow scorer with default table policy (and
    /// the process-default engine precision, see [`QuantMode::active`]).
    pub fn stream_scorer(&self) -> StreamScorer<'_> {
        self.stream_scorer_with(StreamConfig::default())
    }

    /// Builds a streaming per-flow scorer with an explicit table policy.
    pub fn stream_scorer_with(&self, config: StreamConfig) -> StreamScorer<'_> {
        // One tick ≈ timeout/512 keeps the shortest timeout within the
        // bottom two wheel levels; the clamp guards degenerate configs.
        let mut shortest = config.idle_timeout;
        if config.time_wait > 0.0 {
            shortest = shortest.min(config.time_wait);
        }
        let granularity = (shortest / 512.0).clamp(1e-3, 60.0);
        let mb = MicroBatcher::new(config.microbatch, config.microbatch_wait);
        StreamScorer {
            clap: self,
            builder: ProfileBuilder::new(self.config.stack),
            gru: GruEngine::from_packed(self.rnn.packed(), config.quant),
            ae: AeEngine::from_model(&self.ae, config.quant),
            resident: ResidentArena::new(config.resident),
            config,
            flows: HashMap::new(),
            slab: Vec::new(),
            free_head: NIL,
            wheel: Wheel::new(granularity),
            probe_cursor: 0,
            closed: Vec::new(),
            cells: std::sync::Arc::new(StreamCells::default()),
            stages: StageRecorder::new(),
            gru_scratch: GruStepScratch::new(),
            ae_ws: AeWorkspace::new(),
            fv: FeatureVector {
                base: Vec::new(),
                raw: Vec::new(),
                equiv_ok: false,
            },
            window: Matrix::default(),
            err_scratch: Vec::new(),
            row: Vec::new(),
            h_scratch: Vec::new(),
            code_scratch: Vec::new(),
            mb,
            fired: Vec::new(),
            clock: 0.0,
            packets_since_sweep: 0,
            auto_seq: 0,
        }
    }
}

impl StreamScorer<'_> {
    /// Consumes one packet from the interleaved stream, tagging it with
    /// the scorer's own 0-based arrival counter (see
    /// [`push_tagged`](Self::push_tagged) for caller-supplied tags).
    ///
    /// Returns the reconstruction error of the stacked window completed by
    /// this packet, if the flow has accumulated enough packets — the
    /// online anomaly signal. For a flow still buffering its leading
    /// packets (orientation undecided, see
    /// [`StreamConfig::orient_buffer`]) the buffered packets are scored in
    /// order once orientation resolves, and the error returned is that of
    /// the latest completed window. Flows torn down by this packet (TCP
    /// close, length cap) are finalized and queued for
    /// [`drain_closed`](Self::drain_closed). Under micro-batching
    /// ([`StreamConfig::microbatch`] ≥ 2) the window error is usually
    /// still pending when `push` returns, so this returns `None` and the
    /// error surfaces in the flow's [`ClosedFlow`] log instead.
    pub fn push(&mut self, p: &Packet) -> Option<f32> {
        let tag = self.auto_seq;
        self.push_tagged(p, tag)
    }

    /// [`push`](Self::push) with a caller-supplied arrival tag for this
    /// packet. The tag of a flow incarnation's *first* packet surfaces on
    /// its [`ClosedFlow::arrival`] — the hook the RSS-sharded front end
    /// uses to merge per-shard verdicts in global first-appearance order
    /// without tracking any per-flow state of its own. Tags are opaque to
    /// the scorer (any `u64`); a flow that restarts inside one push (e.g.
    /// teardown during an orient-buffer replay) re-opens under the tag of
    /// the buffered packet that actually starts the new incarnation.
    pub fn push_tagged(&mut self, p: &Packet, tag: u64) -> Option<f32> {
        self.auto_seq = self.auto_seq.max(tag.wrapping_add(1));
        self.clock = self.clock.max(p.timestamp);
        if !self.mb.items.is_empty() {
            // Latency budget: a pending micro-batch may wait at most
            // `microbatch_wait` stream packets before scoring.
            self.mb.age += 1;
            if self.mb.age >= self.mb.wait {
                self.flush_batch();
            }
        }
        self.packets_since_sweep += 1;
        if self.packets_since_sweep >= self.config.sweep_interval.max(1) {
            self.packets_since_sweep = 0;
            self.expire_due();
        }
        self.ingest(p, tag)
    }

    /// [`push_tagged`](Self::push_tagged) minus the clock/sweep
    /// bookkeeping, so replayed buffered packets do not count as new
    /// stream arrivals.
    fn ingest(&mut self, p: &Packet, tag: u64) -> Option<f32> {
        let ck = CanonicalKey::of(p);
        let is_pure_syn =
            p.tcp_flags().contains(TcpFlags::SYN) && !p.tcp_flags().contains(TcpFlags::ACK);
        let mut handle = self.flows.get(&ck).copied();
        if let Some(h) = handle {
            // 4-tuple reuse during a TIME_WAIT linger: the old
            // incarnation closes now, the SYN opens a fresh one.
            if is_pure_syn && self.slab[h as usize].lingering() {
                self.close_flow(h, CloseReason::TcpClose);
                handle = None;
            }
        }
        let h = match handle {
            Some(h) => h,
            None => {
                if self.flows.len() >= self.config.max_flows.max(1) {
                    self.evict_stalest();
                }
                // Orientation: a pure SYN identifies the initiator
                // outright; anything else is provisionally
                // first-packet-oriented and — with a non-zero orient
                // buffer — held back so a late SYN can still re-orient it.
                let key = FlowKey::new(
                    Endpoint::new(p.src_addr(), p.src_port()),
                    Endpoint::new(p.dst_addr(), p.dst_port()),
                )
                .with_proto(p.transport.protocol_number());
                let h = self.alloc_slot(key, tag);
                if !is_pure_syn && self.config.orient_buffer > 0 {
                    self.slab[h as usize].pending = Some(Box::new(Vec::with_capacity(1)));
                }
                self.flows.insert(ck, h);
                self.cells
                    .flow_opened(self.flows.len() as u64, self.slab.len() as u64);
                h
            }
        };

        self.slab[h as usize].last_seen = self.clock;
        self.arm(h);
        let slot = &mut self.slab[h as usize];
        if let Some(buf) = slot.pending.as_mut() {
            if is_pure_syn {
                // The SYN sender is the real client; re-orient before any
                // packet of this flow has been scored, then replay.
                slot.key = FlowKey::new(
                    Endpoint::new(p.src_addr(), p.src_port()),
                    Endpoint::new(p.dst_addr(), p.dst_port()),
                )
                .with_proto(p.transport.protocol_number());
            } else if buf.len() < self.config.orient_buffer {
                buf.push((tag, p.clone()));
                return None;
            }
            // Buffer full (no SYN showed up) or SYN-resolved: flush.
            let buffered = slot.pending.take().expect("pending checked above");
            return self.replay(ck, &buffered, p, tag);
        }
        self.score_packet(h, p)
    }

    /// Scores previously buffered packets in arrival order, then the
    /// current one. Teardown can finalize the flow mid-replay; any
    /// remaining packets then re-enter through [`ingest`](Self::ingest)
    /// under their original arrival tags and start a fresh flow, exactly
    /// as they would have live.
    fn replay(
        &mut self,
        ck: CanonicalKey,
        buffered: &[(u64, Packet)],
        current: &Packet,
        current_tag: u64,
    ) -> Option<f32> {
        let mut last = None;
        for (t, q) in buffered
            .iter()
            .map(|(t, q)| (*t, q))
            .chain(std::iter::once((current_tag, current)))
        {
            let oriented = self
                .flows
                .get(&ck)
                .copied()
                .filter(|&h| self.slab[h as usize].pending.is_none());
            last = match oriented {
                Some(h) => self.score_packet(h, q),
                None => self.ingest(q, t),
            };
        }
        last
    }

    /// Runs one packet of an oriented flow through the scoring engine
    /// (immediately, or staged into the pending micro-batch) and applies
    /// the teardown / length-cap / TIME_WAIT-linger policy. The policy
    /// inputs — tracker state, packet count — advance at enqueue time,
    /// so its decisions are identical with batching on or off; if it
    /// closes the flow, [`close_flow`](Self::close_flow) flushes the
    /// pending batch first, scoring this packet before finalization.
    fn score_packet(&mut self, h: u32, p: &Packet) -> Option<f32> {
        let hi = h as usize;
        let emitted = if self.mb.enabled() {
            self.enqueue_one(hi, p);
            if self.mb.items.len() >= self.mb.cap {
                self.flush_batch();
            }
            None
        } else {
            self.advance_one(hi, p)
        };
        let slot = &self.slab[hi];
        let mut torn_down = false;
        let mut start_linger = false;
        if self.config.teardown_on_close {
            match slot.tracker.tcp_state() {
                Some(TcpState::Close) => torn_down = true,
                Some(TcpState::TimeWait) => {
                    if self.config.time_wait > 0.0 {
                        start_linger = !slot.lingering();
                    } else {
                        torn_down = true;
                    }
                }
                _ => {}
            }
        }
        let capped = self.slab[hi].packets as usize >= self.config.max_packets_per_flow;
        if torn_down || capped {
            let reason = if torn_down {
                CloseReason::TcpClose
            } else {
                CloseReason::LengthCapped
            };
            self.close_flow(h, reason);
        } else if start_linger {
            self.slab[hi].flags |= FLAG_LINGER;
            // Switch the timer from the idle to the linger timeout.
            self.arm(h);
        }
        emitted
    }

    /// Advances one oriented flow by one packet: TCP tracking,
    /// incremental feature extraction, the resumable GRU step, the
    /// sliding-window reconstruction error (once a full stack exists) and
    /// the profile-ring store.
    fn advance_one(&mut self, hi: usize, p: &Packet) -> Option<f32> {
        let Self {
            clap,
            builder,
            gru,
            ae,
            slab,
            resident,
            gru_scratch,
            ae_ws,
            fv,
            window,
            err_scratch,
            row,
            h_scratch,
            code_scratch,
            stages,
            ..
        } = self;
        let mut clock = stages.sample();
        let stack = builder.stack;
        let hidden = gru.hidden_size();
        let ring_rows = stack - 1;

        let slot = &mut slab[hi];
        // Same fallback as `Connection::direction`: packets matching
        // neither orientation count as client→server.
        let dir = slot
            .key
            .direction_of(p)
            .unwrap_or(Direction::ClientToServer);
        slot.tracker.process(p, dir);
        slot.extractor.push_into(p, dir, fv);
        let t = slot.packets as usize;
        slot.packets += 1;
        slot.bytes += p.wire_len() as u64;
        let packets = t + 1;

        // Packet `t`'s single-packet context profile, built in scorer
        // scratch: packet features ‖ update gates ‖ reset gates.
        row.resize(PROFILE_LEN, 0.0);
        let (feat, gates) = row.split_at_mut(NUM_PACKET);
        clap.ranges.write_packet_features(fv, feat);
        if let Some(c) = clock.as_mut() {
            c.lap(Stage::Extract);
        }
        let (z, r) = gates.split_at_mut(hidden);
        match resident {
            ResidentArena::F32 { h, .. } => {
                gru.step(
                    &fv.base,
                    &mut h[hi * hidden..(hi + 1) * hidden],
                    gru_scratch,
                    z,
                    r,
                );
            }
            ResidentArena::Int8 { h, hq, .. } => {
                h_scratch.resize(hidden, 0.0);
                dequantize_activations_into(&h[hi * hidden..(hi + 1) * hidden], hq[hi], h_scratch);
                gru.step(&fv.base, h_scratch, gru_scratch, z, r);
                hq[hi] = quantize_activations(h_scratch, code_scratch);
                h[hi * hidden..(hi + 1) * hidden].copy_from_slice(code_scratch);
            }
        }
        if let Some(c) = clock.as_mut() {
            c.lap(Stage::Gru);
        }

        // A full stack of profiles completes one sliding window: the
        // previous `stack − 1` rows from the flow's ring, packet `t`'s
        // from scratch.
        let mut emitted = None;
        if packets >= stack {
            window.resize(1, stack * PROFILE_LEN);
            let dst = window.row_mut(0);
            for j in 0..ring_rows {
                let rj = (packets - stack + j) % ring_rows;
                resident.read_ring_row(
                    hi * ring_rows + rj,
                    &mut dst[j * PROFILE_LEN..(j + 1) * PROFILE_LEN],
                );
            }
            dst[ring_rows * PROFILE_LEN..].copy_from_slice(row);
            err_scratch.clear();
            ae.reconstruction_errors_into(window, ae_ws, err_scratch);
            let err = err_scratch[0];
            slab[hi].window_errors.push(err);
            emitted = Some(err);
            if let Some(c) = clock.as_mut() {
                c.lap(Stage::AeWindow);
            }
        }
        if ring_rows > 0 {
            resident.store_ring_row(hi * ring_rows + t % ring_rows, row, code_scratch);
        }
        emitted
    }

    /// Stages one packet of an oriented flow into the pending
    /// micro-batch: TCP tracking and feature extraction run now (so
    /// teardown and eviction decisions stay packet-exact); the GRU step
    /// and the window's autoencoder pass run at the next flush. Mirrors
    /// the pre-step half of [`advance_one`](Self::advance_one). A flow
    /// that already has staged packets chains behind them (the scan for
    /// its chain depth is bounded by the batch capacity).
    fn enqueue_one(&mut self, hi: usize, p: &Packet) {
        let Self {
            clap,
            builder,
            gru,
            slab,
            fv,
            mb,
            stages,
            ..
        } = self;
        let mut clock = stages.sample();
        let stack = builder.stack;

        let slot = &mut slab[hi];
        let dir = slot
            .key
            .direction_of(p)
            .unwrap_or(Direction::ClientToServer);
        slot.tracker.process(p, dir);
        slot.extractor.push_into(p, dir, fv);
        let t = slot.packets as usize;
        slot.packets += 1;
        slot.bytes += p.wire_len() as u64;
        let round = if slot.flags & FLAG_PENDING != 0 {
            mb.items.iter().filter(|it| it.handle == hi as u32).count() as u32
        } else {
            slot.flags |= FLAG_PENDING;
            0
        };

        let b = mb.items.len();
        mb.rows.resize(b + 1, PROFILE_LEN);
        let (feat, _) = mb.rows.row_mut(b).split_at_mut(NUM_PACKET);
        clap.ranges.write_packet_features(fv, feat);
        mb.xs.resize(b + 1, gru.input_size());
        mb.xs.row_mut(b).copy_from_slice(&fv.base);
        mb.items.push(PendItem {
            handle: hi as u32,
            t: t as u32,
            round,
            window: t + 1 >= stack,
        });
        if let Some(c) = clock.as_mut() {
            c.lap(Stage::Extract);
        }
    }

    /// Scores every pending micro-batched item in chain rounds: round
    /// `r` gathers the hidden state of each flow's `r`-th staged packet
    /// from the resident arena (round `r − 1`'s scatter already landed
    /// there), runs one batched GRU step over the gathered rows,
    /// scatters the states back and does the per-item gate copy, window
    /// assembly and ring store; one batched autoencoder pass then
    /// scores every completed window across all rounds. Every row
    /// reproduces the per-packet path bitwise (see the module design
    /// note); never closes a flow, so it is safe to call from
    /// [`close_flow`](Self::close_flow).
    fn flush_batch(&mut self) {
        if self.mb.items.is_empty() {
            return;
        }
        let Self {
            gru,
            ae,
            builder,
            slab,
            resident,
            ae_ws,
            err_scratch,
            code_scratch,
            mb,
            stages,
            ..
        } = self;
        // Batched work amortizes across flows, so time the whole flush
        // (per-stage) rather than sampling individual packets.
        let mut clock = stages.start();
        let stack = builder.stack;
        let hidden = gru.hidden_size();
        let ring_rows = stack - 1;
        let MicroBatcher {
            age,
            items,
            xs,
            rxs,
            hs,
            zs,
            rs,
            rows,
            windows,
            win_flows,
            scratch,
            occupancy,
            ..
        } = mb;

        windows.resize(0, stack * PROFILE_LEN);
        win_flows.clear();
        let mut round = 0u32;
        let mut remaining = items.len();
        while remaining > 0 {
            // Gather this round's items into dense matrices. The scans
            // are bounded by the batch capacity, and chains deeper than
            // one round exist only for flows that sent back-to-back
            // packets since the last flush.
            let b = items.iter().filter(|it| it.round == round).count();
            rxs.resize(b, gru.input_size());
            hs.resize(b, hidden);
            let mut k = 0;
            for (i, item) in items.iter().enumerate() {
                if item.round != round {
                    continue;
                }
                let hi = item.handle as usize;
                rxs.row_mut(k).copy_from_slice(xs.row(i));
                match resident {
                    ResidentArena::F32 { h, .. } => hs
                        .row_mut(k)
                        .copy_from_slice(&h[hi * hidden..(hi + 1) * hidden]),
                    ResidentArena::Int8 { h, hq, .. } => dequantize_activations_into(
                        &h[hi * hidden..(hi + 1) * hidden],
                        hq[hi],
                        hs.row_mut(k),
                    ),
                }
                k += 1;
            }

            gru.step_batch(rxs, hs, scratch, zs, rs);

            let mut k = 0;
            for (i, item) in items.iter().enumerate() {
                if item.round != round {
                    continue;
                }
                let hi = item.handle as usize;
                match resident {
                    ResidentArena::F32 { h, .. } => {
                        h[hi * hidden..(hi + 1) * hidden].copy_from_slice(hs.row(k));
                    }
                    ResidentArena::Int8 { h, hq, .. } => {
                        hq[hi] = quantize_activations(hs.row(k), code_scratch);
                        h[hi * hidden..(hi + 1) * hidden].copy_from_slice(code_scratch);
                    }
                }
                let row = rows.row_mut(i);
                let (_, gates) = row.split_at_mut(NUM_PACKET);
                let (z, r) = gates.split_at_mut(hidden);
                z.copy_from_slice(zs.row(k));
                r.copy_from_slice(rs.row(k));
                let t = item.t as usize;
                if item.window {
                    // The flow's ring is exactly "as of packet t − 1"
                    // here (its previous packet, if staged, stored its
                    // row in the previous round), so assemble the
                    // window before storing row t.
                    let w = windows.rows;
                    windows.resize(w + 1, stack * PROFILE_LEN);
                    let dst = windows.row_mut(w);
                    let packets = t + 1;
                    for j in 0..ring_rows {
                        let rj = (packets - stack + j) % ring_rows;
                        resident.read_ring_row(
                            hi * ring_rows + rj,
                            &mut dst[j * PROFILE_LEN..(j + 1) * PROFILE_LEN],
                        );
                    }
                    dst[ring_rows * PROFILE_LEN..].copy_from_slice(rows.row(i));
                    win_flows.push(item.handle);
                }
                if ring_rows > 0 {
                    resident.store_ring_row(
                        hi * ring_rows + t % ring_rows,
                        rows.row(i),
                        code_scratch,
                    );
                }
                k += 1;
            }
            remaining -= b;
            round += 1;
        }
        if let Some(c) = clock.as_mut() {
            c.lap(Stage::Gru);
        }

        err_scratch.clear();
        if windows.rows > 0 {
            ae.reconstruction_errors_into(windows, ae_ws, err_scratch);
        }
        // Round-major distribution preserves each flow's packet order
        // (a flow's windows sit in consecutive rounds).
        for (k, &h) in win_flows.iter().enumerate() {
            slab[h as usize].window_errors.push(err_scratch[k]);
        }
        if let Some(c) = clock.as_mut() {
            c.lap(Stage::AeWindow);
        }
        for item in items.iter() {
            slab[item.handle as usize].flags &= !FLAG_PENDING;
        }
        occupancy[items.len() - 1] += 1;
        items.clear();
        *age = 0;
    }

    /// Flushes any pending micro-batched work immediately — a no-op when
    /// micro-batching is off or nothing is pending. The sharded engine
    /// calls this when a shard's ingest ring goes idle, so staged
    /// packets never wait on further traffic to be scored.
    pub fn flush_pending(&mut self) {
        self.flush_batch();
    }

    /// Lifetime micro-batch flush-size histogram: entry `b` counts
    /// flushes of exactly `b + 1` rows. Empty when micro-batching is
    /// off.
    pub fn batch_occupancy(&self) -> &[u64] {
        &self.mb.occupancy
    }

    /// Currently tracked (live) flows.
    pub fn live_flows(&self) -> usize {
        self.flows.len()
    }

    /// Dumps every live flow-table entry (conntrack-style list), ordered
    /// by arrival tag — a stable, stream-deterministic order. O(live
    /// flows); meant for operator introspection, not the hot path.
    pub fn flow_entries(&self) -> Vec<FlowEntry> {
        let mut out: Vec<FlowEntry> = self
            .flows
            .values()
            .map(|&h| self.flow_entry_at(h))
            .collect();
        out.sort_by_key(|e| e.arrival);
        out
    }

    /// Looks up one live flow by its canonical (orientation-invariant)
    /// key — conntrack's `get` analogue.
    pub fn flow_entry(&self, key: &CanonicalKey) -> Option<FlowEntry> {
        self.flows.get(key).map(|&h| self.flow_entry_at(h))
    }

    fn flow_entry_at(&self, h: u32) -> FlowEntry {
        let slot = &self.slab[h as usize];
        let (_, score) = score_errors(&slot.window_errors, self.clap.config.score_window);
        FlowEntry {
            key: slot.key,
            state: slot.tracker.tcp_state(),
            lingering: slot.lingering(),
            packets: slot.packets as u64,
            bytes: slot.bytes,
            age: (self.clock - slot.first_seen).max(0.0),
            idle: (self.clock - slot.last_seen).max(0.0),
            arrival: slot.arrival,
            score,
        }
    }

    /// The engine precision this scorer runs at.
    pub fn quant_mode(&self) -> QuantMode {
        self.gru.mode()
    }

    /// Lifetime flow-table counters (a point-in-time read of the
    /// telemetry cells — see [`telemetry`](Self::telemetry)).
    pub fn stats(&self) -> StreamStats {
        let c = self.cells.read();
        StreamStats {
            flows_peak: c.flows_peak as usize,
            evicted_idle: c.evicted_idle,
            evicted_capacity: c.evicted_capacity,
            closed_tcp: c.closed_tcp,
            length_capped: c.length_capped,
            drained: c.drained,
            time_wait_expired: c.time_wait_expired,
        }
    }

    /// The scorer's live flow-table telemetry cells: any thread holding
    /// the `Arc` can take coherent counter reads while packets flow.
    pub fn telemetry(&self) -> std::sync::Arc<StreamCells> {
        std::sync::Arc::clone(&self.cells)
    }

    /// Re-homes the flow-table counters onto caller-owned cells (the
    /// sharded engine points every worker's scorer at its hub slot).
    /// Counters already accumulated on the old cells are left behind;
    /// attach before pushing packets. The current live-flow gauge is
    /// re-published so the new cells never under-report.
    pub fn attach_telemetry(&mut self, cells: std::sync::Arc<StreamCells>) {
        self.cells = cells;
        self.cells
            .flow_opened(self.flows.len() as u64, self.slab.len() as u64);
    }

    /// Routes per-stage latency samples into caller-owned histograms
    /// (no-op timing-wise unless the `telemetry` feature is on).
    pub fn attach_stages(&mut self, hists: std::sync::Arc<StageHists>) {
        self.stages.attach(hists);
    }

    /// Estimated heap footprint of the flow table: handle map, slab,
    /// resident arenas, wheel and the live flows' error logs / orient
    /// buffers. O(slab) — meant for periodic sampling, not the hot path.
    /// Excludes the pending-verdict queue (drained by the caller) and the
    /// shared scratch, micro-batch staging included (constant-size —
    /// bounded by the batch capacity — and flow-independent).
    pub fn mem_bytes(&self) -> usize {
        use std::mem::size_of;
        // hashbrown resizes at 7/8 load; one ctrl byte per bucket.
        let map = if self.flows.capacity() == 0 {
            0
        } else {
            (self.flows.capacity() * 8 / 7).next_power_of_two()
                * (size_of::<(CanonicalKey, u32)>() + 1)
        };
        let logs: usize = self
            .slab
            .iter()
            .map(|s| {
                s.window_errors.capacity() * size_of::<f32>()
                    + s.pending.as_ref().map_or(0, |b| {
                        size_of::<Vec<(u64, Packet)>>() + b.capacity() * size_of::<(u64, Packet)>()
                    })
            })
            .sum();
        map + self.slab.capacity() * size_of::<Slot>()
            + self.resident.heap_bytes()
            + self.wheel.heads.capacity() * size_of::<u32>()
            + logs
    }

    /// Takes every flow finalized since the last drain.
    pub fn drain_closed(&mut self) -> Vec<ClosedFlow> {
        std::mem::take(&mut self.closed)
    }

    /// Finalizes all remaining live flows and returns everything closed
    /// since the last drain (end-of-capture flush). Lingering TIME_WAIT
    /// flows close as [`CloseReason::TcpClose`] (teardown was observed),
    /// everything else as [`CloseReason::Drained`].
    pub fn finish(&mut self) -> Vec<ClosedFlow> {
        for hi in 0..self.slab.len() {
            if self.slab[hi].live() {
                let reason = if self.slab[hi].lingering() {
                    CloseReason::TcpClose
                } else {
                    CloseReason::Drained
                };
                self.close_flow(hi as u32, reason);
            }
        }
        self.drain_closed()
    }

    /// Discards every live flow and pending verdict without finalizing
    /// anything — the supervised sharded engine's post-panic restart. The
    /// clock and arrival counter survive (they are stream positions, not
    /// flow state), so flows started after the reset keep globally
    /// consistent tags; everything that could have been left
    /// half-mutated by an unwinding `push_tagged` is dropped wholesale.
    /// [`StreamStats`] counters survive too (they are lifetime totals).
    pub fn reset(&mut self) {
        self.flows.clear();
        self.slab.clear();
        self.resident.clear();
        self.free_head = NIL;
        self.wheel.reset();
        self.closed.clear();
        self.fired.clear();
        self.probe_cursor = 0;
        self.packets_since_sweep = 0;
        // Staged micro-batch items reference slab handles that no longer
        // exist; drop them wholesale (the occupancy histogram survives,
        // like the stats).
        self.mb.items.clear();
        self.mb.age = 0;
        self.cells.live_sync(0);
    }

    /// Allocates a slab slot (recycling the free list first) for a new
    /// flow and tracks the peak.
    fn alloc_slot(&mut self, key: FlowKey, arrival: u64) -> u32 {
        let hidden = self.gru.hidden_size();
        let now = self.clock;
        let h = if self.free_head != NIL {
            let h = self.free_head;
            let slot = &mut self.slab[h as usize];
            self.free_head = slot.wheel_next;
            *slot = Slot {
                // Reuse the error log's allocation across occupants.
                window_errors: std::mem::take(&mut slot.window_errors),
                ..Slot::new(key, now, arrival)
            };
            self.resident.clear_slot(h as usize, hidden);
            h
        } else {
            let ring_rows = self.builder.stack - 1;
            if self.slab.len() == self.slab.capacity() {
                // Exact doubling clamped to the table cap, so slab (and
                // arena) capacity never overshoots `max_flows`.
                let target = (self.slab.capacity() * 2)
                    .clamp(64, self.config.max_flows.max(64))
                    .max(self.slab.len() + 1);
                self.slab.reserve_exact(target - self.slab.len());
                self.resident.reserve_slots(target, hidden, ring_rows);
            }
            let h = self.slab.len() as u32;
            self.slab.push(Slot::new(key, now, arrival));
            self.resident.push_slot(hidden, ring_rows);
            h
        };
        // The peak gauge advances in `ingest` (flow_opened), after the
        // new flow is mapped — slab growth and the map insert land in one
        // telemetry write section.
        h
    }

    /// Returns a finalized slot to the free list, keeping its error-log
    /// allocation for the next occupant.
    fn free_slot(&mut self, h: u32) {
        let slot = &mut self.slab[h as usize];
        debug_assert_eq!(slot.wheel_pos, NIL_POS, "freed slot must be unarmed");
        slot.flags = 0;
        slot.pending = None;
        slot.window_errors.clear();
        slot.wheel_prev = NIL;
        slot.wheel_next = self.free_head;
        self.free_head = h;
    }

    /// (Re-)arms a flow's expiry timer from its `last_seen` and active
    /// timeout. A no-op in [`EvictionMode::Sweep`] and when the deadline
    /// maps to the timer's current wheel slot (the common per-packet
    /// case).
    fn arm(&mut self, h: u32) {
        if self.config.eviction != EvictionMode::Wheel {
            return;
        }
        let slot = &self.slab[h as usize];
        let timeout = if slot.lingering() {
            self.config.time_wait
        } else {
            self.config.idle_timeout
        };
        let pos = self
            .wheel
            .pos_for(self.wheel.tick_of(slot.last_seen + timeout));
        if slot.wheel_pos == pos {
            return;
        }
        self.wheel.unlink(&mut self.slab, h);
        self.wheel.link(&mut self.slab, h, pos);
    }

    /// Expires idle and linger-complete flows at a sweep boundary. Both
    /// modes apply the identical `last_seen < clock − timeout` predicate,
    /// so they finalize identical flow sets — the wheel just skips
    /// straight to the candidates its fired timers name.
    fn expire_due(&mut self) {
        match self.config.eviction {
            EvictionMode::Wheel => {
                let to = self.wheel.tick_of(self.clock);
                let mut fired = std::mem::take(&mut self.fired);
                fired.clear();
                self.wheel.advance(&mut self.slab, to, &mut fired);
                for &h in &fired {
                    let slot = &self.slab[h as usize];
                    debug_assert!(slot.live(), "wheel fired a vacant slot");
                    let lingering = slot.lingering();
                    let timeout = if lingering {
                        self.config.time_wait
                    } else {
                        self.config.idle_timeout
                    };
                    if slot.last_seen < self.clock - timeout {
                        if lingering {
                            self.cells.time_wait_expired();
                            self.close_flow(h, CloseReason::TcpClose);
                        } else {
                            self.close_flow(h, CloseReason::IdleTimeout);
                        }
                    } else {
                        self.arm(h);
                    }
                }
                self.fired = fired;
            }
            EvictionMode::Sweep => {
                for hi in 0..self.slab.len() {
                    let slot = &self.slab[hi];
                    if !slot.live() {
                        continue;
                    }
                    let lingering = slot.lingering();
                    let timeout = if lingering {
                        self.config.time_wait
                    } else {
                        self.config.idle_timeout
                    };
                    if slot.last_seen < self.clock - timeout {
                        if lingering {
                            self.cells.time_wait_expired();
                            self.close_flow(hi as u32, CloseReason::TcpClose);
                        } else {
                            self.close_flow(hi as u32, CloseReason::IdleTimeout);
                        }
                    }
                }
            }
        }
    }

    /// Table-full eviction: probe a few slab entries past a rotating
    /// cursor, drop the stalest.
    fn evict_stalest(&mut self) {
        let n = self.slab.len();
        if n == 0 {
            return;
        }
        let mut cursor = self.probe_cursor as usize % n;
        let mut victim: Option<(u32, f64)> = None;
        let mut probed = 0;
        let want = EVICT_PROBES.min(self.flows.len());
        for _ in 0..n {
            if probed >= want {
                break;
            }
            let slot = &self.slab[cursor];
            if slot.live() {
                probed += 1;
                if victim.is_none_or(|(_, t)| slot.last_seen < t) {
                    victim = Some((cursor as u32, slot.last_seen));
                }
            }
            cursor = (cursor + 1) % n;
        }
        self.probe_cursor = cursor as u32;
        if let Some((h, _)) = victim {
            self.close_flow(h, CloseReason::CapacityEvicted);
        }
    }

    /// Scores a departing flow, queues the result and recycles its slot.
    /// Mirrors the batch path exactly, including the short-connection
    /// padding rule (repeat the final profile until one full window
    /// exists).
    fn close_flow(&mut self, h: u32, reason: CloseReason) {
        let hi = h as usize;
        // Any pending micro-batched work — this flow's staged packets
        // included — scores before finalization, so verdict content and
        // timing never depend on batching.
        self.flush_batch();
        // A flow evicted while still orientation-buffering scores its held
        // packets now, under the provisional (first-packet) orientation —
        // the same key the offline reassembler would use for a capture
        // with no SYN.
        if let Some(buffered) = self.slab[hi].pending.take() {
            for (_, q) in buffered.iter() {
                self.advance_one(hi, q);
            }
        }
        let stack = self.builder.stack;
        let packets = self.slab[hi].packets as usize;
        if packets > 0 && packets < stack {
            // Fewer packets than the stack depth: ring rows 0..packets-1
            // are packets 0..packets-1 (all within the `stack − 1`-row
            // ring); pad by repeating the last one.
            let last = packets - 1;
            let ring_rows = stack - 1;
            let Self {
                ae,
                resident,
                ae_ws,
                window,
                err_scratch,
                ..
            } = self;
            window.resize(1, stack * PROFILE_LEN);
            let dst = window.row_mut(0);
            for j in 0..stack {
                resident.read_ring_row(
                    hi * ring_rows + j.min(last),
                    &mut dst[j * PROFILE_LEN..(j + 1) * PROFILE_LEN],
                );
            }
            err_scratch.clear();
            ae.reconstruction_errors_into(window, ae_ws, err_scratch);
            let err = err_scratch[0];
            self.slab[hi].window_errors.push(err);
        }
        let slot = &mut self.slab[hi];
        let (peak_window, score) = score_errors(&slot.window_errors, self.clap.config.score_window);
        let scored = ScoredConnection {
            peak_packet: self.builder.window_center(peak_window, packets),
            peak_window,
            window_errors: std::mem::take(&mut slot.window_errors),
            score,
        };
        self.closed.push(ClosedFlow {
            key: slot.key,
            packets,
            reason,
            arrival: slot.arrival,
            scored,
        });
        match reason {
            CloseReason::TcpClose => self.cells.closed_tcp(),
            CloseReason::IdleTimeout => self.cells.evicted_idle(),
            CloseReason::CapacityEvicted => self.cells.evicted_capacity(),
            CloseReason::LengthCapped => self.cells.length_capped(),
            CloseReason::Drained => self.cells.drained(),
        }
        // CanonicalKey is orientation-invariant, so the re-oriented key
        // still maps back to the entry `ingest` created.
        let ck = CanonicalKey::of_key(&self.slab[hi].key);
        let removed = self.flows.remove(&ck);
        debug_assert_eq!(removed, Some(h), "map entry must match the slot");
        self.cells.live_sync(self.flows.len() as u64);
        self.wheel.unlink(&mut self.slab, h);
        self.free_slot(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ClapConfig;
    use net_packet::{Connection, Ipv4Header, TcpFlags, TcpHeader};
    use std::net::Ipv4Addr;
    use std::sync::OnceLock;

    /// One trained model shared across tests (training dominates runtime).
    fn model() -> &'static Clap {
        static MODEL: OnceLock<Clap> = OnceLock::new();
        MODEL.get_or_init(|| {
            let benign = traffic_gen::dataset(91, 20);
            let mut cfg = ClapConfig::ci();
            cfg.ae.epochs = 8;
            Clap::train(&benign, &cfg).0
        })
    }

    fn no_teardown() -> StreamConfig {
        StreamConfig {
            teardown_on_close: false,
            ..StreamConfig::default()
        }
    }

    fn assert_scored_eq(stream: &ScoredConnection, batch: &ScoredConnection) {
        assert!(
            (stream.score - batch.score).abs() < 1e-6,
            "score drift: stream {} vs batch {}",
            stream.score,
            batch.score
        );
        assert_eq!(stream.peak_window, batch.peak_window);
        assert_eq!(stream.peak_packet, batch.peak_packet);
        assert_eq!(stream.window_errors.len(), batch.window_errors.len());
        for (s, b) in stream.window_errors.iter().zip(&batch.window_errors) {
            assert!((s - b).abs() < 1e-6, "window error drift: {s} vs {b}");
        }
    }

    /// The headline guarantee: packets fed one at a time — with flows
    /// interleaved round-robin through ONE scorer — produce the same
    /// scores as offline batch scoring of each complete connection.
    #[test]
    fn interleaved_streaming_matches_batch() {
        let clap = model();
        let corpus = traffic_gen::dataset(911, 12);
        let mut scorer = clap.stream_scorer_with(no_teardown());
        let longest = corpus.iter().map(Connection::len).max().unwrap();
        for i in 0..longest {
            for conn in &corpus {
                if let Some(p) = conn.packets.get(i) {
                    scorer.push(p);
                }
            }
        }
        let closed = scorer.finish();
        assert_eq!(closed.len(), corpus.len(), "one flow per connection");
        for conn in &corpus {
            let flow = closed
                .iter()
                .find(|c| c.key == conn.key)
                .expect("flow key matches connection key");
            assert_eq!(flow.packets, conn.len());
            assert_eq!(flow.reason, CloseReason::Drained);
            assert_scored_eq(&flow.scored, &clap.score_connection(conn));
        }
    }

    /// An orderly close (or RST) finalizes the flow inline, and the score
    /// still matches the batch path because teardown lands on the last
    /// packet of the capture.
    #[test]
    fn tcp_teardown_finalizes_inline_with_batch_score() {
        let clap = model();
        let corpus = traffic_gen::dataset(913, 10);
        let mut scorer = clap.stream_scorer();
        for conn in &corpus {
            for p in &conn.packets {
                scorer.push(p);
            }
        }
        let inline = scorer.drain_closed();
        assert!(
            !inline.is_empty(),
            "generated traffic contains orderly closes"
        );
        for flow in &inline {
            assert_eq!(flow.reason, CloseReason::TcpClose);
            let conn = corpus
                .iter()
                .find(|c| c.key == flow.key && c.len() == flow.packets)
                .expect("teardown flow corresponds to a full connection");
            assert_scored_eq(&flow.scored, &clap.score_connection(conn));
        }
    }

    /// Flows shorter than the stack depth are padded exactly like the
    /// batch path (repeat the last profile, emit one window).
    #[test]
    fn short_flow_padding_matches_batch() {
        let clap = model();
        let conn = &traffic_gen::dataset(917, 1)[0];
        for take in 1..clap.config.stack {
            let mut truncated = Connection::new(conn.key);
            truncated.packets = conn.packets[..take].to_vec();
            let mut scorer = clap.stream_scorer_with(no_teardown());
            for p in &truncated.packets {
                assert_eq!(scorer.push(p), None, "no window before a full stack");
            }
            let closed = scorer.finish();
            assert_eq!(closed.len(), 1);
            assert_eq!(closed[0].scored.window_errors.len(), 1);
            assert_scored_eq(&closed[0].scored, &clap.score_connection(&truncated));
        }
    }

    fn raw_packet(src: (u8, u16), dst: (u8, u16), ts: f64) -> Packet {
        let ip = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, src.0),
            Ipv4Addr::new(10, 0, 0, dst.0),
            64,
        );
        let mut tcp = TcpHeader::new(src.1, dst.1, 1000, 0);
        tcp.flags = TcpFlags::SYN;
        Packet::new(ts, ip, tcp, Vec::new())
    }

    /// A capture that opens mid-flow (server→client data first) followed
    /// by the client's pure SYN: the orient buffer lets streaming adopt
    /// the SYN sender as client, so scores match the offline reassembler's
    /// re-oriented connection exactly.
    #[test]
    fn late_syn_reorients_like_offline_reassembler() {
        let clap = model();
        let conn = &traffic_gen::dataset(919, 1)[0];
        // Find a genuine server→client packet to put in front.
        let s2c = (0..conn.len())
            .find(|&i| conn.direction(i) == net_packet::Direction::ServerToClient)
            .expect("generated connection has server traffic");
        let mut stream_pkts = vec![conn.packets[s2c].clone()];
        stream_pkts.extend(
            conn.packets
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != s2c)
                .map(|(_, p)| p.clone()),
        );
        // `stream_pkts[1]` is now the client's pure SYN (packet 0 of the
        // generated handshake).
        let offline = net_packet::assemble_connections(&stream_pkts);
        assert_eq!(offline.len(), 1);
        assert_eq!(
            offline[0].key.client, conn.key.client,
            "offline reassembler re-orients on the late SYN"
        );

        let mut scorer = clap.stream_scorer_with(no_teardown());
        for p in &stream_pkts {
            scorer.push(p);
        }
        let closed = scorer.finish();
        assert_eq!(closed.len(), 1);
        assert_eq!(
            closed[0].key, offline[0].key,
            "streaming must adopt the SYN sender as client"
        );
        assert_scored_eq(&closed[0].scored, &clap.score_connection(&offline[0]));
    }

    /// No SYN ever arrives: after `orient_buffer` packets the flow flushes
    /// under first-packet orientation — which is also what the offline
    /// reassembler pins for a SYN-less capture, so scores still match.
    #[test]
    fn syn_less_capture_flushes_with_first_packet_orientation() {
        let clap = model();
        let conn = &traffic_gen::dataset(921, 1)[0];
        // Drop the handshake: start mid-connection, no pure SYN anywhere.
        let start = conn
            .first_index_after_handshake()
            .unwrap_or(3)
            .min(conn.len() - 1);
        let stream_pkts: Vec<_> = conn.packets[start..].to_vec();
        assert!(
            stream_pkts
                .iter()
                .all(|p| !p.tcp_flags().contains(TcpFlags::SYN)
                    || p.tcp_flags().contains(TcpFlags::ACK)),
            "test premise: no pure SYN in the tail"
        );
        let offline = net_packet::assemble_connections(&stream_pkts);
        assert_eq!(offline.len(), 1);

        let mut scorer = clap.stream_scorer_with(no_teardown());
        for p in &stream_pkts {
            scorer.push(p);
        }
        let closed = scorer.finish();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].key, offline[0].key);
        assert_eq!(closed[0].packets, stream_pkts.len());
        assert_scored_eq(&closed[0].scored, &clap.score_connection(&offline[0]));
    }

    /// `orient_buffer: 0` restores PR 2 behavior: orientation pinned by
    /// the first packet, a later SYN changes nothing.
    #[test]
    fn zero_orient_buffer_pins_first_packet() {
        let clap = model();
        let mut cfg = no_teardown();
        cfg.orient_buffer = 0;
        let mut scorer = clap.stream_scorer_with(cfg);
        // Server-ish side speaks first, then the "client" SYNs.
        scorer.push(&raw_packet_flags((2, 80), (1, 1111), TcpFlags::ACK, 0.0));
        scorer.push(&raw_packet_flags((1, 1111), (2, 80), TcpFlags::SYN, 0.1));
        let closed = scorer.finish();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].key.client.port, 80, "first packet stays client");
    }

    /// Flows evicted while still orientation-buffering must score their
    /// held packets before finalization — no packet may vanish.
    #[test]
    fn pending_flows_score_buffered_packets_on_finish() {
        let clap = model();
        let mut scorer = clap.stream_scorer_with(no_teardown());
        // Two non-SYN packets: still inside the orient buffer at finish.
        scorer.push(&raw_packet_flags((2, 80), (1, 1111), TcpFlags::ACK, 0.0));
        scorer.push(&raw_packet_flags((2, 80), (1, 1111), TcpFlags::ACK, 0.1));
        let closed = scorer.finish();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].packets, 2);
        assert_eq!(closed[0].scored.window_errors.len(), 1, "padded window");
        assert!(closed[0].scored.score.is_finite());
    }

    fn raw_packet_flags(src: (u8, u16), dst: (u8, u16), flags: TcpFlags, ts: f64) -> Packet {
        let ip = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, src.0),
            Ipv4Addr::new(10, 0, 0, dst.0),
            64,
        );
        let mut tcp = TcpHeader::new(src.1, dst.1, 1000, 0);
        tcp.flags = flags;
        Packet::new(ts, ip, tcp, Vec::new())
    }

    /// Plain `push` tags flows with the scorer's own packet counter;
    /// `push_tagged` records the caller's index — including through a
    /// length-cap restart, where the new incarnation carries the tag of
    /// the packet that opened it.
    #[test]
    fn arrival_tags_follow_flow_incarnations() {
        let clap = model();
        let mut scorer = clap.stream_scorer_with(StreamConfig {
            max_packets_per_flow: 3,
            teardown_on_close: false,
            ..StreamConfig::default()
        });
        // Flow A at stream positions 0..3 (capped), restart at 3..;
        // flow B interleaved at its own positions via explicit tags.
        for t in 0..5u64 {
            scorer.push_tagged(&raw_packet((1, 1111), (2, 80), f64::from(t as u32)), t * 10);
        }
        let capped = scorer.drain_closed();
        assert_eq!(capped.len(), 1);
        assert_eq!(capped[0].arrival, 0, "first incarnation opens at tag 0");
        let rest = scorer.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(
            rest[0].arrival, 30,
            "restarted incarnation carries its opening packet's tag"
        );

        // Plain push: the scorer's own 0-based counter.
        let mut plain = clap.stream_scorer_with(no_teardown());
        plain.push(&raw_packet((1, 1111), (2, 80), 0.0));
        plain.push(&raw_packet((3, 2222), (4, 80), 0.1));
        let closed = plain.finish();
        let mut arrivals: Vec<u64> = closed.iter().map(|c| c.arrival).collect();
        arrivals.sort_unstable();
        assert_eq!(arrivals, vec![0, 1]);
    }

    #[test]
    fn idle_flows_are_swept() {
        let clap = model();
        for eviction in [EvictionMode::Wheel, EvictionMode::Sweep] {
            let mut scorer = clap.stream_scorer_with(StreamConfig {
                idle_timeout: 1.0,
                sweep_interval: 1,
                teardown_on_close: false,
                eviction,
                ..StreamConfig::default()
            });
            scorer.push(&raw_packet((1, 1111), (2, 80), 0.0));
            scorer.push(&raw_packet((3, 2222), (4, 80), 0.5));
            assert_eq!(scorer.live_flows(), 2);
            // 10s later: both earlier flows are past the idle deadline.
            scorer.push(&raw_packet((5, 3333), (6, 80), 10.0));
            assert_eq!(scorer.live_flows(), 1, "{eviction:?}");
            let closed = scorer.drain_closed();
            assert_eq!(closed.len(), 2);
            assert!(closed.iter().all(|c| c.reason == CloseReason::IdleTimeout));
            assert!(closed.iter().all(|c| c.packets == 1));
            assert_eq!(scorer.stats().evicted_idle, 2);
        }
    }

    #[test]
    fn flow_table_capacity_is_bounded() {
        let clap = model();
        let mut scorer = clap.stream_scorer_with(StreamConfig {
            max_flows: 2,
            teardown_on_close: false,
            ..StreamConfig::default()
        });
        for i in 0..5u8 {
            scorer.push(&raw_packet(
                (i + 1, 4000 + u16::from(i)),
                (100, 80),
                f64::from(i),
            ));
            assert!(scorer.live_flows() <= 2, "table exceeded max_flows");
        }
        let closed = scorer.drain_closed();
        assert_eq!(closed.len(), 3);
        assert!(closed
            .iter()
            .all(|c| c.reason == CloseReason::CapacityEvicted));
        let stats = scorer.stats();
        assert_eq!(stats.evicted_capacity, 3);
        assert_eq!(stats.flows_peak, 2, "slab never outgrew max_flows");
    }

    #[test]
    fn length_capped_flows_restart() {
        let clap = model();
        let mut scorer = clap.stream_scorer_with(StreamConfig {
            max_packets_per_flow: 5,
            teardown_on_close: false,
            ..StreamConfig::default()
        });
        for t in 0..12 {
            scorer.push(&raw_packet((1, 1111), (2, 80), f64::from(t)));
        }
        let capped = scorer.drain_closed();
        assert_eq!(capped.len(), 2, "5+5 packets hit the cap twice");
        assert!(capped.iter().all(|c| c.reason == CloseReason::LengthCapped));
        assert!(capped.iter().all(|c| c.packets == 5));
        assert_eq!(scorer.live_flows(), 1, "remaining 2 packets live on");
        let rest = scorer.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].packets, 2);
    }

    /// A recycled slab slot must carry nothing of its previous occupant:
    /// run the same connection through a fresh scorer and through one
    /// whose only slot previously held a different, finalized flow — the
    /// scores must be identical (hidden state, ring and error log all
    /// reset), at both resident precisions.
    #[test]
    fn recycled_slot_leaks_no_prior_state() {
        let clap = model();
        let corpus = traffic_gen::dataset(923, 2);
        for resident in [ResidentMode::F32, ResidentMode::Int8] {
            let cfg = StreamConfig {
                resident,
                teardown_on_close: false,
                max_packets_per_flow: usize::MAX,
                ..StreamConfig::default()
            };
            let mut fresh = clap.stream_scorer_with(cfg.clone());
            for p in &corpus[1].packets {
                fresh.push(p);
            }
            let want = fresh.finish();
            assert_eq!(want.len(), 1);

            let mut reused = clap.stream_scorer_with(cfg);
            // Occupy slot 0 with connection 0, finalize it (slot goes to
            // the free list), then run connection 1 through the recycled
            // slot.
            for p in &corpus[0].packets {
                reused.push(p);
            }
            assert_eq!(reused.finish().len(), 1);
            assert_eq!(reused.stats().flows_peak, 1, "one slot, recycled");
            for p in &corpus[1].packets {
                reused.push(p);
            }
            let got = reused.finish();
            assert_eq!(got.len(), 1);
            assert_eq!(reused.stats().flows_peak, 1, "slot was recycled");
            assert_eq!(got[0].scored.window_errors, want[0].scored.window_errors);
            assert_eq!(got[0].scored.score, want[0].scored.score);
        }
    }

    /// Resident int8 state drifts from f32 but stays bounded and sane on
    /// real traffic (the calibrated bound lives in the proptest suite).
    #[test]
    fn resident_int8_scores_are_finite_and_close() {
        let clap = model();
        let corpus = traffic_gen::dataset(929, 6);
        let run = |resident| {
            let mut scorer = clap.stream_scorer_with(StreamConfig {
                resident,
                teardown_on_close: false,
                ..StreamConfig::default()
            });
            for conn in &corpus {
                for p in &conn.packets {
                    scorer.push(p);
                }
            }
            let mut closed = scorer.finish();
            closed.sort_by_key(|c| c.arrival);
            closed
        };
        let exact = run(ResidentMode::F32);
        let compact = run(ResidentMode::Int8);
        assert_eq!(exact.len(), compact.len());
        for (e, c) in exact.iter().zip(&compact) {
            assert_eq!(e.key, c.key);
            assert_eq!(e.packets, c.packets);
            assert!(c.scored.score.is_finite());
            let rel = (e.scored.score - c.scored.score).abs() / e.scored.score.abs().max(1e-3);
            assert!(
                rel < 0.25,
                "resident drift too large: f32 {} vs int8 {}",
                e.scored.score,
                c.scored.score
            );
        }
    }

    /// `time_wait > 0`: an orderly close lingers (still counted live),
    /// then expires on the wheel as a TcpClose; a pure SYN reusing the
    /// tuple during the linger closes the old incarnation immediately.
    #[test]
    fn time_wait_linger_expires_on_the_wheel() {
        let clap = model();
        let conn = &traffic_gen::dataset(931, 1)[0];
        for eviction in [EvictionMode::Wheel, EvictionMode::Sweep] {
            let mut scorer = clap.stream_scorer_with(StreamConfig {
                time_wait: 5.0,
                sweep_interval: 1,
                eviction,
                ..StreamConfig::default()
            });
            for p in &conn.packets {
                scorer.push(p);
            }
            assert_eq!(
                scorer.live_flows(),
                1,
                "{eviction:?}: closed flow lingers in TIME_WAIT"
            );
            assert!(scorer.drain_closed().is_empty());
            // An unrelated packet far past the linger deadline expires it.
            let late = conn.packets.last().unwrap().timestamp + 60.0;
            scorer.push(&raw_packet((9, 9999), (8, 80), late));
            let closed = scorer.drain_closed();
            assert_eq!(closed.len(), 1);
            assert_eq!(closed[0].reason, CloseReason::TcpClose);
            assert_eq!(closed[0].packets, conn.len());
            assert_eq!(scorer.stats().time_wait_expired, 1);
            assert_scored_eq(&closed[0].scored, &clap.score_connection(conn));
        }

        // Tuple reuse: a pure SYN during the linger starts incarnation 2.
        let mut scorer = clap.stream_scorer_with(StreamConfig {
            time_wait: 300.0,
            sweep_interval: 1,
            ..StreamConfig::default()
        });
        for p in &conn.packets {
            scorer.push(p);
        }
        assert_eq!(scorer.live_flows(), 1);
        let t = conn.packets.last().unwrap().timestamp + 1.0;
        let v4 = |a: std::net::IpAddr| match a {
            std::net::IpAddr::V4(x) => x,
            std::net::IpAddr::V6(_) => unreachable!("test key is IPv4"),
        };
        let ip = Ipv4Header::new(v4(conn.key.client.addr), v4(conn.key.server.addr), 64);
        let mut tcp = TcpHeader::new(conn.key.client.port, conn.key.server.port, 77, 0);
        tcp.flags = TcpFlags::SYN;
        let syn = Packet::new(t, ip, tcp, Vec::new());
        scorer.push(&syn);
        let closed = scorer.drain_closed();
        assert_eq!(closed.len(), 1, "old incarnation closed by tuple reuse");
        assert_eq!(closed[0].reason, CloseReason::TcpClose);
        assert_eq!(closed[0].packets, conn.len());
        assert_eq!(scorer.live_flows(), 1, "the SYN opened incarnation 2");
    }

    /// Micro-batched streaming must be *byte-identical* to per-packet
    /// streaming: same closed-flow order, reasons and arrivals, bitwise
    /// equal window errors and scores — at f32 weights, int8 weights and
    /// int8 resident state, across batch capacities.
    #[test]
    fn microbatched_streaming_is_bitwise_per_packet() {
        let clap = model();
        let corpus = traffic_gen::dataset(937, 10);
        let run = |microbatch: usize, quant, resident| {
            let mut scorer = clap.stream_scorer_with(StreamConfig {
                microbatch,
                microbatch_wait: 7,
                quant,
                resident,
                ..StreamConfig::default()
            });
            let longest = corpus.iter().map(Connection::len).max().unwrap();
            for i in 0..longest {
                for conn in &corpus {
                    if let Some(p) = conn.packets.get(i) {
                        scorer.push(p);
                    }
                }
            }
            scorer.finish()
        };
        for (quant, resident) in [
            (QuantMode::Off, ResidentMode::F32),
            (QuantMode::Int8, ResidentMode::F32),
            (QuantMode::Int8, ResidentMode::Int8),
        ] {
            let base = run(0, quant, resident);
            for cap in [2usize, 4, 16] {
                let batched = run(cap, quant, resident);
                assert_eq!(base.len(), batched.len(), "cap {cap}");
                for (a, b) in base.iter().zip(&batched) {
                    assert_eq!(a.key, b.key, "close order (cap {cap})");
                    assert_eq!(a.packets, b.packets);
                    assert_eq!(a.reason, b.reason);
                    assert_eq!(a.arrival, b.arrival);
                    assert_eq!(
                        a.scored.window_errors, b.scored.window_errors,
                        "window errors must be bitwise equal (cap {cap})"
                    );
                    assert_eq!(a.scored.score.to_bits(), b.scored.score.to_bits());
                    assert_eq!(a.scored.peak_window, b.scored.peak_window);
                    assert_eq!(a.scored.peak_packet, b.scored.peak_packet);
                }
            }
        }
    }

    /// The flush triggers: capacity, the latency budget and
    /// `flush_pending` — and the *non*-trigger: a same-flow burst
    /// chains instead of flushing. All visible through the occupancy
    /// histogram.
    #[test]
    fn microbatch_flush_triggers_and_occupancy() {
        let clap = model();
        let mut scorer = clap.stream_scorer_with(StreamConfig {
            microbatch: 4,
            microbatch_wait: 100,
            teardown_on_close: false,
            ..StreamConfig::default()
        });
        // Three distinct flows: under capacity, everything stays pending.
        for i in 0..3u8 {
            scorer.push(&raw_packet(
                (i + 1, 1000 + u16::from(i)),
                (99, 80),
                0.1 * f64::from(i),
            ));
        }
        assert_eq!(scorer.batch_occupancy().iter().sum::<u64>(), 0);
        scorer.flush_pending();
        assert_eq!(scorer.batch_occupancy()[2], 1, "one flush of 3 rows");
        // Back-to-back packets of one flow chain instead of flushing:
        // nothing drains until the explicit flush, which replays the
        // chain in packet order as one 2-row batch.
        scorer.push(&raw_packet((1, 1000), (99, 80), 1.0));
        scorer.push(&raw_packet((1, 1000), (99, 80), 1.1));
        assert_eq!(
            scorer.batch_occupancy()[0],
            0,
            "a same-flow burst must not force a flush"
        );
        scorer.flush_pending();
        assert_eq!(scorer.batch_occupancy()[1], 1, "chained flush of 2 rows");
        // Capacity flush: 4 more distinct flows fill the batch.
        for i in 10..14u8 {
            scorer.push(&raw_packet(
                (i + 1, 2000 + u16::from(i)),
                (99, 80),
                2.0 + 0.1 * f64::from(i),
            ));
        }
        assert_eq!(scorer.batch_occupancy()[3], 1, "capacity flush of 4 rows");
        // Latency budget: one pending row flushes after `wait` packets.
        let mut lazy = clap.stream_scorer_with(StreamConfig {
            microbatch: 64,
            microbatch_wait: 2,
            teardown_on_close: false,
            ..StreamConfig::default()
        });
        lazy.push(&raw_packet((1, 1000), (99, 80), 0.0));
        lazy.push(&raw_packet((2, 1001), (99, 80), 0.1));
        assert_eq!(lazy.batch_occupancy().iter().sum::<u64>(), 0);
        lazy.push(&raw_packet((3, 1002), (99, 80), 0.2));
        assert_eq!(lazy.batch_occupancy()[1], 1, "age-budget flush of 2 rows");
        // Finalization drains everything pending.
        let closed = lazy.finish();
        assert_eq!(closed.len(), 3);
        assert!(closed.iter().all(|c| c.scored.score.is_finite()));
    }

    /// The wheel survives huge clock jumps (multi-level cascades) and
    /// still evicts exactly the idle flows, matching the sweep reference.
    #[test]
    fn wheel_handles_large_clock_jumps() {
        let clap = model();
        let run = |eviction| {
            let mut scorer = clap.stream_scorer_with(StreamConfig {
                idle_timeout: 50.0,
                sweep_interval: 1,
                teardown_on_close: false,
                eviction,
                ..StreamConfig::default()
            });
            // Flows opening at exponentially spaced times; each new push
            // expires some prefix of the earlier ones.
            for (i, ts) in [0.0, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6]
                .into_iter()
                .enumerate()
            {
                let i = i as u8;
                scorer.push(&raw_packet((i + 1, 1000 + u16::from(i)), (99, 80), ts));
            }
            let mut closed: Vec<(FlowKey, u64)> = scorer
                .finish()
                .into_iter()
                .map(|c| (c.key, c.arrival))
                .collect();
            closed.sort_by_key(|&(_, a)| a);
            closed
        };
        assert_eq!(run(EvictionMode::Wheel), run(EvictionMode::Sweep));
    }
}
