//! Streaming per-flow scoring — the online counterpart of
//! [`Clap::score_connection`].
//!
//! The batch pipeline scores *complete* connections: capture, reassemble,
//! score. A line-rate DPI deployment cannot wait for completeness — it sees
//! one interleaved packet stream over millions of concurrent flows and must
//! emit verdicts as packets arrive. [`StreamScorer`] is that mode:
//!
//! * **Per-flow state, shared arenas.** Each live flow persists only what
//!   the model mathematically needs: the incremental feature-extraction
//!   anchors ([`FeatureExtractor`]), a [`TcpTracker`] for teardown
//!   detection, the GRU hidden state (`H` floats, advanced by
//!   [`PackedGru::step`]), a ring of the last `stack` single-packet
//!   profiles, and the flow's window-error log. Everything else — GRU step
//!   scratch, the 1×345 window matrix, the autoencoder workspace — is
//!   scorer-level and shared across all flows, so per-flow memory is a few
//!   hundred floats and steady-state scoring performs **no per-packet heap
//!   allocation** (the only growth is each flow's error log, amortized).
//! * **Exact batch equivalence.** Feeding a connection's packets one at a
//!   time yields the same window errors and final score as the offline
//!   path: the resumable GRU step is bitwise identical to the batched run,
//!   feature extraction shares one code path, and a 1-row autoencoder pass
//!   computes the same dot products as a batched one. The property tests
//!   pin streaming-vs-batch to ≤1e-6.
//! * **Bounded memory.** Flows are evicted on TCP teardown (RST, or an
//!   orderly close reaching TIME_WAIT), on idle timeout (amortized sweeps
//!   every [`StreamConfig::sweep_interval`] packets), on a per-flow packet
//!   cap, and — conntrack-`early_drop`-style — by probing a handful of
//!   table entries and dropping the stalest when the table is full. Every
//!   eviction finalizes the flow and emits its [`ScoredConnection`].
//! * **Arrival tags.** Every packet carries an arrival tag — the scorer's
//!   own 0-based counter under [`StreamScorer::push`], or a
//!   caller-supplied index under [`StreamScorer::push_tagged`] — and each
//!   flow remembers its first packet's tag ([`ClosedFlow::arrival`]),
//!   surviving orient-buffer replays and same-push restarts. The
//!   RSS-sharded front end merges per-shard verdicts on exactly this tag,
//!   with no bookkeeping of its own.
//! * **Engine precision.** [`StreamConfig::quant`] selects the f32 or the
//!   int8 quantized inference engines (`neural::quant`); both advance
//!   flows through identical code, and within either precision streaming
//!   remains exactly equal to batch scoring at that precision.
//!
//! Orientation matches the offline reassembler for every realistic
//! capture: a flow whose first packet is a pure SYN is oriented
//! immediately (the SYN sender is the client); a flow that starts
//! mid-capture buffers up to [`StreamConfig::orient_buffer`] leading
//! packets *unprocessed*, so a pure SYN arriving among them can
//! retroactively re-orient the flow before any feature is extracted —
//! exactly what [`net_packet::assemble_connections`] does offline. Only a
//! pure SYN arriving *after* the buffer has flushed diverges (the offline
//! reassembler re-orients at any depth; a streaming scorer cannot rewrite
//! already-scored history). The remaining divergence by design: a
//! connection reusing its 4-tuple after teardown becomes a *new* flow
//! rather than one long connection.
//!
//! ```
//! use clap_core::{Clap, ClapConfig};
//!
//! let benign = traffic_gen::dataset(42, 40);
//! let (clap, _) = Clap::train(&benign, &ClapConfig::ci());
//!
//! let mut scorer = clap.stream_scorer();
//! for conn in &benign[..4] {
//!     for p in &conn.packets {
//!         // Window errors surface online, packet by packet.
//!         let _maybe_err: Option<f32> = scorer.push(p);
//!     }
//! }
//! // FIN-terminated flows were finalized inline; drain the rest.
//! let closed = scorer.finish();
//! assert!(!closed.is_empty());
//! assert!(closed.iter().all(|c| c.scored.score.is_finite()));
//! ```

use crate::features::{FeatureExtractor, FeatureVector, NUM_PACKET};
use crate::pipeline::Clap;
use crate::profile::{ProfileBuilder, PROFILE_LEN};
use crate::score::{score_errors, ScoredConnection};
use net_packet::{CanonicalKey, Direction, Endpoint, FlowKey, Packet, TcpFlags};
use neural::{AeEngine, AeWorkspace, GruEngine, GruStepScratch, Matrix, QuantMode};
use std::collections::HashMap;
use tcp_state::{TcpState, TcpTracker};

/// Flow-table policy for a [`StreamScorer`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Evict flows idle for longer than this many seconds. The clock is
    /// the maximum packet timestamp seen, so replayed captures age flows
    /// at capture speed, not wall-clock speed.
    pub idle_timeout: f64,
    /// Hard cap on concurrently tracked flows; at capacity the stalest of
    /// a small probe set is evicted to admit a new flow.
    pub max_flows: usize,
    /// Finalize a flow when its tracker reaches `CLOSE` (RST) or
    /// `TIME_WAIT` (orderly close). Disable to score past teardown — e.g.
    /// when comparing against batch scoring of captures that keep packets
    /// after a close.
    pub teardown_on_close: bool,
    /// Finalize a flow after this many packets regardless of TCP state,
    /// bounding per-flow memory (the error log grows one `f32` per packet
    /// past the stack depth). Subsequent packets start a fresh flow.
    pub max_packets_per_flow: usize,
    /// Run an idle-flow sweep every this many packets. Each sweep visits
    /// a bounded chunk of the table through a rotating scan ring, so
    /// per-packet cost is O(1) regardless of table size; an idle flow is
    /// reclaimed within one ring cycle.
    pub sweep_interval: usize,
    /// A flow that does **not** begin with a pure SYN (a mid-capture
    /// start) buffers up to this many leading packets before anything is
    /// scored, so a late pure SYN among them re-orients the flow exactly
    /// like the offline reassembler. `0` restores first-packet pinning.
    pub orient_buffer: usize,
    /// Engine precision for this scorer's GRU and autoencoder
    /// ([`QuantMode::Int8`] runs the int8 quantized kernels). Defaults to
    /// the process-wide [`QuantMode::active`] selection.
    pub quant: QuantMode,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            idle_timeout: 300.0,
            max_flows: 1 << 20,
            teardown_on_close: true,
            max_packets_per_flow: 1 << 20,
            sweep_interval: 4096,
            orient_buffer: 3,
            quant: QuantMode::active(),
        }
    }
}

/// Why a flow left the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// TCP teardown observed (RST, or orderly close reaching TIME_WAIT).
    TcpClose,
    /// No packets for [`StreamConfig::idle_timeout`] seconds.
    IdleTimeout,
    /// Evicted to admit a new flow at [`StreamConfig::max_flows`].
    CapacityEvicted,
    /// Hit [`StreamConfig::max_packets_per_flow`].
    LengthCapped,
    /// Flushed by [`StreamScorer::finish`].
    Drained,
}

/// A finalized flow: its identity, size, why it closed, the arrival tag
/// of its first packet and the same [`ScoredConnection`] the batch path
/// would have produced.
#[derive(Debug, Clone)]
pub struct ClosedFlow {
    pub key: FlowKey,
    pub packets: usize,
    pub reason: CloseReason,
    /// Arrival tag of this flow incarnation's **first** packet: the
    /// caller-supplied value from [`StreamScorer::push_tagged`], or the
    /// scorer's own 0-based packet counter under plain
    /// [`StreamScorer::push`]. A flow that restarts (length cap, idle
    /// sweep, teardown) carries the tag of the packet that opened the new
    /// incarnation — a pure function of the input stream, which is what
    /// lets the sharded front end merge verdicts deterministically
    /// without any shadow bookkeeping.
    pub arrival: u64,
    pub scored: ScoredConnection,
}

/// Per-flow incremental state (see the module docs for the size budget).
#[derive(Debug, Clone)]
struct FlowState {
    key: FlowKey,
    extractor: FeatureExtractor,
    tracker: TcpTracker,
    /// GRU hidden state carried across this flow's packets (`H`).
    h: Vec<f32>,
    /// Ring buffer of the last `stack` single-packet profiles
    /// (`stack × PROFILE_LEN`, slot `t % stack` holds packet `t`).
    singles: Vec<f32>,
    /// Reconstruction error per emitted stacked window, in order.
    window_errors: Vec<f32>,
    /// Leading packets held back (with their arrival tags) while the
    /// flow's orientation is still undecided (`Some` only for flows that
    /// did not start with a pure SYN, until
    /// [`StreamConfig::orient_buffer`] fills or a SYN lands). Keeping the
    /// tag with each buffered packet means a flow that restarts
    /// mid-replay re-opens under its true first packet's tag.
    pending: Option<Vec<(u64, Packet)>>,
    /// Arrival tag of this incarnation's first packet.
    arrival: u64,
    packets: usize,
    last_seen: f64,
}

impl FlowState {
    fn new(key: FlowKey, hidden: usize, stack: usize, now: f64, arrival: u64) -> Self {
        FlowState {
            key,
            extractor: FeatureExtractor::new(),
            tracker: TcpTracker::new(),
            h: vec![0.0; hidden],
            singles: vec![0.0; stack * PROFILE_LEN],
            window_errors: Vec::new(),
            pending: None,
            arrival,
            packets: 0,
            last_seen: now,
        }
    }
}

/// How many table entries the capacity evictor probes before dropping the
/// stalest (conntrack's `early_drop` idea: O(1) bounded work instead of a
/// full LRU structure).
const EVICT_PROBES: usize = 8;

/// How many table entries one idle sweep visits. Bounds sweep cost
/// independently of table size; the scan ring rotates, so every flow is
/// still visited once per ring cycle.
const SWEEP_CHUNK: usize = 256;

/// Online per-flow scoring session over one interleaved packet stream.
/// Create via [`Clap::stream_scorer`] (or
/// [`Clap::stream_scorer_with`] for a custom [`StreamConfig`]); one
/// scorer per ingest thread.
pub struct StreamScorer<'a> {
    clap: &'a Clap,
    config: StreamConfig,
    builder: ProfileBuilder,
    gru: GruEngine,
    ae: AeEngine<'a>,
    flows: HashMap<CanonicalKey, FlowState>,
    /// Flows finalized since the last [`drain_closed`](Self::drain_closed).
    closed: Vec<ClosedFlow>,
    // --- shared scratch (flow-independent) ---
    gru_scratch: GruStepScratch,
    ae_ws: AeWorkspace,
    fv: FeatureVector,
    /// 1×stacked_len window staged for the autoencoder.
    window: Matrix,
    err_scratch: Vec<f32>,
    sweep_keys: Vec<CanonicalKey>,
    /// Rotating scan ring over flow keys, lazily refilled from the table.
    /// Idle sweeps and capacity probes draw from it so their coverage is
    /// unbiased and amortized O(1) — std `HashMap` iteration always
    /// restarts at the same buckets, which would pin eviction victims to
    /// the leading entries and never visit the rest.
    scan_ring: Vec<CanonicalKey>,
    /// Max packet timestamp seen (the stream clock).
    clock: f64,
    packets_since_sweep: usize,
    /// Arrival counter backing plain [`push`](Self::push); kept one past
    /// the largest tag seen so mixing `push` after `push_tagged` stays
    /// monotone.
    auto_seq: u64,
}

impl Clap {
    /// Builds a streaming per-flow scorer with default table policy (and
    /// the process-default engine precision, see [`QuantMode::active`]).
    pub fn stream_scorer(&self) -> StreamScorer<'_> {
        self.stream_scorer_with(StreamConfig::default())
    }

    /// Builds a streaming per-flow scorer with an explicit table policy.
    pub fn stream_scorer_with(&self, config: StreamConfig) -> StreamScorer<'_> {
        StreamScorer {
            clap: self,
            builder: ProfileBuilder::new(self.config.stack),
            gru: GruEngine::from_packed(self.rnn.packed(), config.quant),
            ae: AeEngine::from_model(&self.ae, config.quant),
            config,
            flows: HashMap::new(),
            closed: Vec::new(),
            gru_scratch: GruStepScratch::new(),
            ae_ws: AeWorkspace::new(),
            fv: FeatureVector {
                base: Vec::new(),
                raw: Vec::new(),
                equiv_ok: false,
            },
            window: Matrix::default(),
            err_scratch: Vec::new(),
            sweep_keys: Vec::new(),
            scan_ring: Vec::new(),
            clock: 0.0,
            packets_since_sweep: 0,
            auto_seq: 0,
        }
    }
}

impl StreamScorer<'_> {
    /// Consumes one packet from the interleaved stream, tagging it with
    /// the scorer's own 0-based arrival counter (see
    /// [`push_tagged`](Self::push_tagged) for caller-supplied tags).
    ///
    /// Returns the reconstruction error of the stacked window completed by
    /// this packet, if the flow has accumulated enough packets — the
    /// online anomaly signal. For a flow still buffering its leading
    /// packets (orientation undecided, see
    /// [`StreamConfig::orient_buffer`]) the buffered packets are scored in
    /// order once orientation resolves, and the error returned is that of
    /// the latest completed window. Flows torn down by this packet (TCP
    /// close, length cap) are finalized and queued for
    /// [`drain_closed`](Self::drain_closed).
    pub fn push(&mut self, p: &Packet) -> Option<f32> {
        let tag = self.auto_seq;
        self.push_tagged(p, tag)
    }

    /// [`push`](Self::push) with a caller-supplied arrival tag for this
    /// packet. The tag of a flow incarnation's *first* packet surfaces on
    /// its [`ClosedFlow::arrival`] — the hook the RSS-sharded front end
    /// uses to merge per-shard verdicts in global first-appearance order
    /// without tracking any per-flow state of its own. Tags are opaque to
    /// the scorer (any `u64`); a flow that restarts inside one push (e.g.
    /// teardown during an orient-buffer replay) re-opens under the tag of
    /// the buffered packet that actually starts the new incarnation.
    pub fn push_tagged(&mut self, p: &Packet, tag: u64) -> Option<f32> {
        self.auto_seq = self.auto_seq.max(tag.wrapping_add(1));
        self.clock = self.clock.max(p.timestamp);
        self.packets_since_sweep += 1;
        if self.packets_since_sweep >= self.config.sweep_interval.max(1) {
            self.packets_since_sweep = 0;
            self.sweep_idle();
        }
        self.ingest(p, tag)
    }

    /// [`push_tagged`](Self::push_tagged) minus the clock/sweep
    /// bookkeeping, so replayed buffered packets do not count as new
    /// stream arrivals.
    fn ingest(&mut self, p: &Packet, tag: u64) -> Option<f32> {
        let ck = CanonicalKey::of(p);
        let is_pure_syn =
            p.tcp.flags.contains(TcpFlags::SYN) && !p.tcp.flags.contains(TcpFlags::ACK);
        if !self.flows.contains_key(&ck) {
            if self.flows.len() >= self.config.max_flows.max(1) {
                self.evict_stalest();
            }
            // Orientation: a pure SYN identifies the initiator outright;
            // anything else is provisionally first-packet-oriented and —
            // with a non-zero orient buffer — held back so a late SYN can
            // still re-orient it.
            let key = FlowKey::new(
                Endpoint::new(p.ip.src, p.tcp.src_port),
                Endpoint::new(p.ip.dst, p.tcp.dst_port),
            );
            let stack = self.builder.stack;
            let hidden = self.gru.hidden_size();
            let mut flow = FlowState::new(key, hidden, stack, self.clock, tag);
            if !is_pure_syn && self.config.orient_buffer > 0 {
                flow.pending = Some(Vec::with_capacity(1));
            }
            self.flows.insert(ck, flow);
        }

        let flow = self.flows.get_mut(&ck).expect("flow inserted above");
        flow.last_seen = self.clock;
        if let Some(buf) = flow.pending.as_mut() {
            if is_pure_syn {
                // The SYN sender is the real client; re-orient before any
                // packet of this flow has been scored, then replay.
                flow.key = FlowKey::new(
                    Endpoint::new(p.ip.src, p.tcp.src_port),
                    Endpoint::new(p.ip.dst, p.tcp.dst_port),
                );
            } else if buf.len() < self.config.orient_buffer {
                buf.push((tag, p.clone()));
                return None;
            }
            // Buffer full (no SYN showed up) or SYN-resolved: flush.
            let buffered = flow.pending.take().expect("pending checked above");
            return self.replay(ck, &buffered, p, tag);
        }
        self.score_packet(ck, p)
    }

    /// Scores previously buffered packets in arrival order, then the
    /// current one. Teardown can finalize the flow mid-replay; any
    /// remaining packets then re-enter through [`ingest`](Self::ingest)
    /// under their original arrival tags and start a fresh flow, exactly
    /// as they would have live.
    fn replay(
        &mut self,
        ck: CanonicalKey,
        buffered: &[(u64, Packet)],
        current: &Packet,
        current_tag: u64,
    ) -> Option<f32> {
        let mut last = None;
        for (t, q) in buffered
            .iter()
            .map(|(t, q)| (*t, q))
            .chain(std::iter::once((current_tag, current)))
        {
            let oriented = self
                .flows
                .get(&ck)
                .is_some_and(|flow| flow.pending.is_none());
            last = if oriented {
                self.score_packet(ck, q)
            } else {
                self.ingest(q, t)
            };
        }
        last
    }

    /// Runs one packet of an oriented flow through the scoring engine and
    /// applies the teardown / length-cap policy.
    fn score_packet(&mut self, ck: CanonicalKey, p: &Packet) -> Option<f32> {
        let flow = self.flows.get_mut(&ck).expect("oriented flow present");
        let emitted = advance_flow(
            self.clap,
            &self.builder,
            &self.gru,
            &self.ae,
            &mut self.gru_scratch,
            &mut self.ae_ws,
            &mut self.fv,
            &mut self.window,
            &mut self.err_scratch,
            flow,
            p,
        );
        let torn_down = self.config.teardown_on_close
            && matches!(flow.tracker.state(), TcpState::Close | TcpState::TimeWait);
        let capped = flow.packets >= self.config.max_packets_per_flow;
        if torn_down || capped {
            let flow = self.flows.remove(&ck).expect("flow present");
            let reason = if torn_down {
                CloseReason::TcpClose
            } else {
                CloseReason::LengthCapped
            };
            self.finalize(flow, reason);
        }
        emitted
    }

    /// Currently tracked (live) flows.
    pub fn live_flows(&self) -> usize {
        self.flows.len()
    }

    /// The engine precision this scorer runs at.
    pub fn quant_mode(&self) -> QuantMode {
        self.gru.mode()
    }

    /// Takes every flow finalized since the last drain.
    pub fn drain_closed(&mut self) -> Vec<ClosedFlow> {
        std::mem::take(&mut self.closed)
    }

    /// Finalizes all remaining live flows and returns everything closed
    /// since the last drain (end-of-capture flush).
    pub fn finish(&mut self) -> Vec<ClosedFlow> {
        self.sweep_keys.clear();
        self.sweep_keys.extend(self.flows.keys().copied());
        for i in 0..self.sweep_keys.len() {
            let k = self.sweep_keys[i];
            if let Some(flow) = self.flows.remove(&k) {
                self.finalize(flow, CloseReason::Drained);
            }
        }
        self.drain_closed()
    }

    /// Discards every live flow and pending verdict without finalizing
    /// anything — the supervised sharded engine's post-panic restart. The
    /// clock and arrival counter survive (they are stream positions, not
    /// flow state), so flows started after the reset keep globally
    /// consistent tags; everything that could have been left
    /// half-mutated by an unwinding `push_tagged` is dropped wholesale.
    pub fn reset(&mut self) {
        self.flows.clear();
        self.closed.clear();
        self.sweep_keys.clear();
        self.scan_ring.clear();
        self.packets_since_sweep = 0;
    }

    /// Pops the next *live* key from the rotating scan ring, refilling the
    /// ring from the table when it runs dry (keys that left the table
    /// since the refill are skipped for free). Returns `None` only when
    /// the table is empty. Amortized O(1): each refill costs one pass
    /// over the table and funds as many pops.
    fn next_scan_key(&mut self) -> Option<CanonicalKey> {
        loop {
            match self.scan_ring.pop() {
                Some(k) if self.flows.contains_key(&k) => return Some(k),
                Some(_) => continue,
                None => {
                    if self.flows.is_empty() {
                        return None;
                    }
                    self.scan_ring.extend(self.flows.keys().copied());
                }
            }
        }
    }

    /// Evicts flows idle past the timeout. Called every `sweep_interval`
    /// packets; each call visits at most [`SWEEP_CHUNK`] ring entries, so
    /// sweep cost is bounded regardless of table size and an idle flow is
    /// reclaimed within one ring cycle.
    fn sweep_idle(&mut self) {
        let deadline = self.clock - self.config.idle_timeout;
        for _ in 0..SWEEP_CHUNK.min(self.flows.len()) {
            let Some(k) = self.next_scan_key() else { break };
            if self.flows[&k].last_seen < deadline {
                let flow = self.flows.remove(&k).expect("scanned key is live");
                self.finalize(flow, CloseReason::IdleTimeout);
            }
        }
    }

    /// Table-full eviction: probe a few ring entries, drop the stalest.
    fn evict_stalest(&mut self) {
        let mut victim: Option<(CanonicalKey, f64)> = None;
        for _ in 0..EVICT_PROBES.min(self.flows.len()) {
            let Some(k) = self.next_scan_key() else { break };
            let last_seen = self.flows[&k].last_seen;
            if victim.is_none_or(|(_, t)| last_seen < t) {
                victim = Some((k, last_seen));
            }
        }
        if let Some((k, _)) = victim {
            let flow = self.flows.remove(&k).expect("probed key is live");
            self.finalize(flow, CloseReason::CapacityEvicted);
        }
    }

    /// Scores a departing flow and queues the result. Mirrors the batch
    /// path exactly, including the short-connection padding rule (repeat
    /// the final profile until one full window exists).
    fn finalize(&mut self, mut flow: FlowState, reason: CloseReason) {
        // A flow evicted while still orientation-buffering scores its held
        // packets now, under the provisional (first-packet) orientation —
        // the same key the offline reassembler would use for a capture
        // with no SYN.
        if let Some(buffered) = flow.pending.take() {
            for (_, q) in &buffered {
                advance_flow(
                    self.clap,
                    &self.builder,
                    &self.gru,
                    &self.ae,
                    &mut self.gru_scratch,
                    &mut self.ae_ws,
                    &mut self.fv,
                    &mut self.window,
                    &mut self.err_scratch,
                    &mut flow,
                    q,
                );
            }
        }
        let stack = self.builder.stack;
        if flow.packets > 0 && flow.packets < stack {
            // Fewer packets than the stack depth: ring slots 0..packets-1
            // are packets 0..packets-1; pad by repeating the last one.
            let last = flow.packets - 1;
            let err = window_error(
                &self.ae,
                &mut self.window,
                &mut self.ae_ws,
                &mut self.err_scratch,
                &flow.singles,
                stack,
                |j| j.min(last),
            );
            flow.window_errors.push(err);
        }
        let (peak_window, score) = score_errors(&flow.window_errors, self.clap.config.score_window);
        let scored = ScoredConnection {
            peak_packet: self.builder.window_center(peak_window, flow.packets),
            peak_window,
            window_errors: std::mem::take(&mut flow.window_errors),
            score,
        };
        self.closed.push(ClosedFlow {
            key: flow.key,
            packets: flow.packets,
            reason,
            arrival: flow.arrival,
            scored,
        });
    }
}

/// Advances one oriented flow by one packet: TCP tracking, incremental
/// feature extraction, the profile-ring write, the resumable GRU step and
/// — once a full stack of profiles exists — the sliding-window
/// reconstruction error. A free function (not a method) because callers
/// hold a `&mut` borrow of the flow alongside the scorer's scratch fields.
#[allow(clippy::too_many_arguments)]
fn advance_flow(
    clap: &Clap,
    builder: &ProfileBuilder,
    gru: &GruEngine,
    ae: &AeEngine<'_>,
    gru_scratch: &mut GruStepScratch,
    ae_ws: &mut AeWorkspace,
    fv: &mut FeatureVector,
    window: &mut Matrix,
    err_scratch: &mut Vec<f32>,
    flow: &mut FlowState,
    p: &Packet,
) -> Option<f32> {
    let stack = builder.stack;
    let hidden = gru.hidden_size();
    // Same fallback as `Connection::direction`: packets matching
    // neither orientation count as client→server.
    let dir = flow
        .key
        .direction_of(p)
        .unwrap_or(Direction::ClientToServer);
    flow.tracker.process(p, dir);
    flow.extractor.push_into(p, dir, fv);
    let t = flow.packets;
    flow.packets += 1;

    // Single-packet context profile straight into the ring slot:
    // packet features ‖ update gates ‖ reset gates.
    let slot = t % stack;
    let row = &mut flow.singles[slot * PROFILE_LEN..(slot + 1) * PROFILE_LEN];
    let (feat, gates) = row.split_at_mut(NUM_PACKET);
    clap.ranges.write_packet_features(fv, feat);
    let (z, r) = gates.split_at_mut(hidden);
    gru.step(&fv.base, &mut flow.h, gru_scratch, z, r);

    // A full stack of profiles completes one sliding window. The
    // oldest profile of the window is packet `packets - stack`.
    if flow.packets >= stack {
        let packets = flow.packets;
        let err = window_error(ae, window, ae_ws, err_scratch, &flow.singles, stack, |j| {
            (packets - stack + j) % stack
        });
        flow.window_errors.push(err);
        return Some(err);
    }
    None
}

/// Gathers `stack` single-packet profiles from a flow's ring buffer
/// (slot `slot_of(j)` becomes window position `j`), stages them as one
/// 1×stacked row and returns its autoencoder reconstruction error. Shared
/// by the live-window path in [`StreamScorer::push`] and the short-flow
/// padding path in finalization, so the two can never drift apart. A free
/// function (not a method) because callers hold a `&mut` borrow of the
/// flow alongside the scorer's scratch fields.
fn window_error(
    ae: &AeEngine<'_>,
    window: &mut Matrix,
    ae_ws: &mut AeWorkspace,
    err_scratch: &mut Vec<f32>,
    singles: &[f32],
    stack: usize,
    slot_of: impl Fn(usize) -> usize,
) -> f32 {
    window.resize(1, stack * PROFILE_LEN);
    let dst = window.row_mut(0);
    for j in 0..stack {
        let src = slot_of(j);
        dst[j * PROFILE_LEN..(j + 1) * PROFILE_LEN]
            .copy_from_slice(&singles[src * PROFILE_LEN..(src + 1) * PROFILE_LEN]);
    }
    err_scratch.clear();
    ae.reconstruction_errors_into(window, ae_ws, err_scratch);
    err_scratch[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ClapConfig;
    use net_packet::{Connection, Ipv4Header, TcpFlags, TcpHeader};
    use std::net::Ipv4Addr;
    use std::sync::OnceLock;

    /// One trained model shared across tests (training dominates runtime).
    fn model() -> &'static Clap {
        static MODEL: OnceLock<Clap> = OnceLock::new();
        MODEL.get_or_init(|| {
            let benign = traffic_gen::dataset(91, 20);
            let mut cfg = ClapConfig::ci();
            cfg.ae.epochs = 8;
            Clap::train(&benign, &cfg).0
        })
    }

    fn no_teardown() -> StreamConfig {
        StreamConfig {
            teardown_on_close: false,
            ..StreamConfig::default()
        }
    }

    fn assert_scored_eq(stream: &ScoredConnection, batch: &ScoredConnection) {
        assert!(
            (stream.score - batch.score).abs() < 1e-6,
            "score drift: stream {} vs batch {}",
            stream.score,
            batch.score
        );
        assert_eq!(stream.peak_window, batch.peak_window);
        assert_eq!(stream.peak_packet, batch.peak_packet);
        assert_eq!(stream.window_errors.len(), batch.window_errors.len());
        for (s, b) in stream.window_errors.iter().zip(&batch.window_errors) {
            assert!((s - b).abs() < 1e-6, "window error drift: {s} vs {b}");
        }
    }

    /// The headline guarantee: packets fed one at a time — with flows
    /// interleaved round-robin through ONE scorer — produce the same
    /// scores as offline batch scoring of each complete connection.
    #[test]
    fn interleaved_streaming_matches_batch() {
        let clap = model();
        let corpus = traffic_gen::dataset(911, 12);
        let mut scorer = clap.stream_scorer_with(no_teardown());
        let longest = corpus.iter().map(Connection::len).max().unwrap();
        for i in 0..longest {
            for conn in &corpus {
                if let Some(p) = conn.packets.get(i) {
                    scorer.push(p);
                }
            }
        }
        let closed = scorer.finish();
        assert_eq!(closed.len(), corpus.len(), "one flow per connection");
        for conn in &corpus {
            let flow = closed
                .iter()
                .find(|c| c.key == conn.key)
                .expect("flow key matches connection key");
            assert_eq!(flow.packets, conn.len());
            assert_eq!(flow.reason, CloseReason::Drained);
            assert_scored_eq(&flow.scored, &clap.score_connection(conn));
        }
    }

    /// An orderly close (or RST) finalizes the flow inline, and the score
    /// still matches the batch path because teardown lands on the last
    /// packet of the capture.
    #[test]
    fn tcp_teardown_finalizes_inline_with_batch_score() {
        let clap = model();
        let corpus = traffic_gen::dataset(913, 10);
        let mut scorer = clap.stream_scorer();
        for conn in &corpus {
            for p in &conn.packets {
                scorer.push(p);
            }
        }
        let inline = scorer.drain_closed();
        assert!(
            !inline.is_empty(),
            "generated traffic contains orderly closes"
        );
        for flow in &inline {
            assert_eq!(flow.reason, CloseReason::TcpClose);
            let conn = corpus
                .iter()
                .find(|c| c.key == flow.key && c.len() == flow.packets)
                .expect("teardown flow corresponds to a full connection");
            assert_scored_eq(&flow.scored, &clap.score_connection(conn));
        }
    }

    /// Flows shorter than the stack depth are padded exactly like the
    /// batch path (repeat the last profile, emit one window).
    #[test]
    fn short_flow_padding_matches_batch() {
        let clap = model();
        let conn = &traffic_gen::dataset(917, 1)[0];
        for take in 1..clap.config.stack {
            let mut truncated = Connection::new(conn.key);
            truncated.packets = conn.packets[..take].to_vec();
            let mut scorer = clap.stream_scorer_with(no_teardown());
            for p in &truncated.packets {
                assert_eq!(scorer.push(p), None, "no window before a full stack");
            }
            let closed = scorer.finish();
            assert_eq!(closed.len(), 1);
            assert_eq!(closed[0].scored.window_errors.len(), 1);
            assert_scored_eq(&closed[0].scored, &clap.score_connection(&truncated));
        }
    }

    fn raw_packet(src: (u8, u16), dst: (u8, u16), ts: f64) -> Packet {
        let ip = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, src.0),
            Ipv4Addr::new(10, 0, 0, dst.0),
            64,
        );
        let mut tcp = TcpHeader::new(src.1, dst.1, 1000, 0);
        tcp.flags = TcpFlags::SYN;
        Packet::new(ts, ip, tcp, Vec::new())
    }

    /// A capture that opens mid-flow (server→client data first) followed
    /// by the client's pure SYN: the orient buffer lets streaming adopt
    /// the SYN sender as client, so scores match the offline reassembler's
    /// re-oriented connection exactly.
    #[test]
    fn late_syn_reorients_like_offline_reassembler() {
        let clap = model();
        let conn = &traffic_gen::dataset(919, 1)[0];
        // Find a genuine server→client packet to put in front.
        let s2c = (0..conn.len())
            .find(|&i| conn.direction(i) == net_packet::Direction::ServerToClient)
            .expect("generated connection has server traffic");
        let mut stream_pkts = vec![conn.packets[s2c].clone()];
        stream_pkts.extend(
            conn.packets
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != s2c)
                .map(|(_, p)| p.clone()),
        );
        // `stream_pkts[1]` is now the client's pure SYN (packet 0 of the
        // generated handshake).
        let offline = net_packet::assemble_connections(&stream_pkts);
        assert_eq!(offline.len(), 1);
        assert_eq!(
            offline[0].key.client, conn.key.client,
            "offline reassembler re-orients on the late SYN"
        );

        let mut scorer = clap.stream_scorer_with(no_teardown());
        for p in &stream_pkts {
            scorer.push(p);
        }
        let closed = scorer.finish();
        assert_eq!(closed.len(), 1);
        assert_eq!(
            closed[0].key, offline[0].key,
            "streaming must adopt the SYN sender as client"
        );
        assert_scored_eq(&closed[0].scored, &clap.score_connection(&offline[0]));
    }

    /// No SYN ever arrives: after `orient_buffer` packets the flow flushes
    /// under first-packet orientation — which is also what the offline
    /// reassembler pins for a SYN-less capture, so scores still match.
    #[test]
    fn syn_less_capture_flushes_with_first_packet_orientation() {
        let clap = model();
        let conn = &traffic_gen::dataset(921, 1)[0];
        // Drop the handshake: start mid-connection, no pure SYN anywhere.
        let start = conn
            .first_index_after_handshake()
            .unwrap_or(3)
            .min(conn.len() - 1);
        let stream_pkts: Vec<_> = conn.packets[start..].to_vec();
        assert!(
            stream_pkts.iter().all(
                |p| !p.tcp.flags.contains(TcpFlags::SYN) || p.tcp.flags.contains(TcpFlags::ACK)
            ),
            "test premise: no pure SYN in the tail"
        );
        let offline = net_packet::assemble_connections(&stream_pkts);
        assert_eq!(offline.len(), 1);

        let mut scorer = clap.stream_scorer_with(no_teardown());
        for p in &stream_pkts {
            scorer.push(p);
        }
        let closed = scorer.finish();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].key, offline[0].key);
        assert_eq!(closed[0].packets, stream_pkts.len());
        assert_scored_eq(&closed[0].scored, &clap.score_connection(&offline[0]));
    }

    /// `orient_buffer: 0` restores PR 2 behavior: orientation pinned by
    /// the first packet, a later SYN changes nothing.
    #[test]
    fn zero_orient_buffer_pins_first_packet() {
        let clap = model();
        let mut cfg = no_teardown();
        cfg.orient_buffer = 0;
        let mut scorer = clap.stream_scorer_with(cfg);
        // Server-ish side speaks first, then the "client" SYNs.
        scorer.push(&raw_packet_flags((2, 80), (1, 1111), TcpFlags::ACK, 0.0));
        scorer.push(&raw_packet_flags((1, 1111), (2, 80), TcpFlags::SYN, 0.1));
        let closed = scorer.finish();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].key.client.port, 80, "first packet stays client");
    }

    /// Flows evicted while still orientation-buffering must score their
    /// held packets before finalization — no packet may vanish.
    #[test]
    fn pending_flows_score_buffered_packets_on_finish() {
        let clap = model();
        let mut scorer = clap.stream_scorer_with(no_teardown());
        // Two non-SYN packets: still inside the orient buffer at finish.
        scorer.push(&raw_packet_flags((2, 80), (1, 1111), TcpFlags::ACK, 0.0));
        scorer.push(&raw_packet_flags((2, 80), (1, 1111), TcpFlags::ACK, 0.1));
        let closed = scorer.finish();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].packets, 2);
        assert_eq!(closed[0].scored.window_errors.len(), 1, "padded window");
        assert!(closed[0].scored.score.is_finite());
    }

    fn raw_packet_flags(src: (u8, u16), dst: (u8, u16), flags: TcpFlags, ts: f64) -> Packet {
        let ip = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, src.0),
            Ipv4Addr::new(10, 0, 0, dst.0),
            64,
        );
        let mut tcp = TcpHeader::new(src.1, dst.1, 1000, 0);
        tcp.flags = flags;
        Packet::new(ts, ip, tcp, Vec::new())
    }

    /// Plain `push` tags flows with the scorer's own packet counter;
    /// `push_tagged` records the caller's index — including through a
    /// length-cap restart, where the new incarnation carries the tag of
    /// the packet that opened it.
    #[test]
    fn arrival_tags_follow_flow_incarnations() {
        let clap = model();
        let mut scorer = clap.stream_scorer_with(StreamConfig {
            max_packets_per_flow: 3,
            teardown_on_close: false,
            ..StreamConfig::default()
        });
        // Flow A at stream positions 0..3 (capped), restart at 3..;
        // flow B interleaved at its own positions via explicit tags.
        for t in 0..5u64 {
            scorer.push_tagged(&raw_packet((1, 1111), (2, 80), f64::from(t as u32)), t * 10);
        }
        let capped = scorer.drain_closed();
        assert_eq!(capped.len(), 1);
        assert_eq!(capped[0].arrival, 0, "first incarnation opens at tag 0");
        let rest = scorer.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(
            rest[0].arrival, 30,
            "restarted incarnation carries its opening packet's tag"
        );

        // Plain push: the scorer's own 0-based counter.
        let mut plain = clap.stream_scorer_with(no_teardown());
        plain.push(&raw_packet((1, 1111), (2, 80), 0.0));
        plain.push(&raw_packet((3, 2222), (4, 80), 0.1));
        let closed = plain.finish();
        let mut arrivals: Vec<u64> = closed.iter().map(|c| c.arrival).collect();
        arrivals.sort_unstable();
        assert_eq!(arrivals, vec![0, 1]);
    }

    #[test]
    fn idle_flows_are_swept() {
        let clap = model();
        let mut scorer = clap.stream_scorer_with(StreamConfig {
            idle_timeout: 1.0,
            sweep_interval: 1,
            teardown_on_close: false,
            ..StreamConfig::default()
        });
        scorer.push(&raw_packet((1, 1111), (2, 80), 0.0));
        scorer.push(&raw_packet((3, 2222), (4, 80), 0.5));
        assert_eq!(scorer.live_flows(), 2);
        // 10s later: both earlier flows are past the idle deadline.
        scorer.push(&raw_packet((5, 3333), (6, 80), 10.0));
        assert_eq!(scorer.live_flows(), 1);
        let closed = scorer.drain_closed();
        assert_eq!(closed.len(), 2);
        assert!(closed.iter().all(|c| c.reason == CloseReason::IdleTimeout));
        assert!(closed.iter().all(|c| c.packets == 1));
    }

    #[test]
    fn flow_table_capacity_is_bounded() {
        let clap = model();
        let mut scorer = clap.stream_scorer_with(StreamConfig {
            max_flows: 2,
            teardown_on_close: false,
            ..StreamConfig::default()
        });
        for i in 0..5u8 {
            scorer.push(&raw_packet(
                (i + 1, 4000 + u16::from(i)),
                (100, 80),
                f64::from(i),
            ));
            assert!(scorer.live_flows() <= 2, "table exceeded max_flows");
        }
        let closed = scorer.drain_closed();
        assert_eq!(closed.len(), 3);
        assert!(closed
            .iter()
            .all(|c| c.reason == CloseReason::CapacityEvicted));
    }

    #[test]
    fn length_capped_flows_restart() {
        let clap = model();
        let mut scorer = clap.stream_scorer_with(StreamConfig {
            max_packets_per_flow: 5,
            teardown_on_close: false,
            ..StreamConfig::default()
        });
        for t in 0..12 {
            scorer.push(&raw_packet((1, 1111), (2, 80), f64::from(t)));
        }
        let capped = scorer.drain_closed();
        assert_eq!(capped.len(), 2, "5+5 packets hit the cap twice");
        assert!(capped.iter().all(|c| c.reason == CloseReason::LengthCapped));
        assert!(capped.iter().all(|c| c.packets == 5));
        assert_eq!(scorer.live_flows(), 1, "remaining 2 packets live on");
        let rest = scorer.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].packets, 2);
    }
}
