//! The end-to-end CLAP pipeline: training (Figure 2) and testing (Figure 3).

use crate::features::{extract_connection, FeatureVector, RangeModel, NUM_BASE};
use crate::profile::{ProfileBuilder, ProfileWorkspace};
use crate::score::{score_errors, ScoredConnection};
use net_packet::Connection;
use neural::{
    AeEngine, AeWorkspace, Autoencoder, AutoencoderConfig, GruClassifier, GruClassifierConfig,
    GruEngine, GruWorkspace, Matrix, QuantMode, TrainReport,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tcp_state::{label_connection, NUM_CLASSES};

/// Full pipeline configuration (Table 6 hyper-parameters + presets).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClapConfig {
    pub rnn: GruClassifierConfig,
    pub ae: AutoencoderConfig,
    /// Profiles per stacked window (paper: 3).
    pub stack: usize,
    /// Profiles averaged around the error peak for the adversarial score
    /// (paper: 5).
    pub score_window: usize,
}

impl ClapConfig {
    /// Paper-scale hyper-parameters (Table 6): RNN 30 epochs, AE 1000
    /// epochs. Expensive — intended for full reproductions.
    pub fn paper() -> Self {
        let mut rnn = GruClassifierConfig::clap_paper(NUM_CLASSES);
        rnn.input = NUM_BASE;
        let stack = 3;
        let mut ae = AutoencoderConfig::clap_paper(stack * crate::profile::PROFILE_LEN);
        rnn.epochs = 30;
        ae.epochs = 1000;
        ClapConfig {
            rnn,
            ae,
            stack,
            score_window: 5,
        }
    }

    /// Minutes-scale preset: same architecture, fewer epochs. The default
    /// for the experiment binaries.
    pub fn quick() -> Self {
        let mut cfg = Self::paper();
        cfg.rnn.epochs = 20;
        cfg.rnn.batch_size = 8;
        cfg.ae.epochs = 60;
        cfg.ae.learning_rate = 2e-3;
        cfg
    }

    /// Seconds-scale preset for unit/integration tests.
    pub fn ci() -> Self {
        let mut cfg = Self::paper();
        cfg.rnn.epochs = 12;
        cfg.rnn.batch_size = 8;
        cfg.ae.epochs = 15;
        cfg
    }
}

/// Metrics from a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainSummary {
    pub rnn_report: TrainReport,
    /// Per-timestep state-prediction accuracy on the training set (paper
    /// Table 5 reports ≈0.995 on held-out data).
    pub rnn_accuracy: f32,
    /// Mean L1 loss per autoencoder epoch.
    pub ae_losses: Vec<f32>,
    /// Number of stacked context profiles the autoencoder was trained on.
    pub profiles: usize,
}

/// A trained CLAP detector: the `{M_GRU, M_AE}` pair of the paper plus the
/// benign range model for amplification features. Serializable, so the
/// "persist / load" arrows of Figures 2–3 are `serde_json` round trips.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Clap {
    pub config: ClapConfig,
    pub ranges: RangeModel,
    pub rnn: GruClassifier,
    pub ae: Autoencoder,
}

impl Clap {
    /// Trains the full pipeline on benign connections only (unsupervised
    /// with respect to attacks).
    pub fn train(benign: &[Connection], cfg: &ClapConfig) -> (Clap, TrainSummary) {
        assert!(!benign.is_empty(), "training requires benign traffic");

        // Stage (a) inputs: features and reference-stack labels.
        let fvs_per_conn: Vec<Vec<FeatureVector>> =
            benign.par_iter().map(extract_connection).collect();
        let ranges = RangeModel::fit(fvs_per_conn.iter().flatten());

        // Sequences borrow the feature rows — no per-packet clones.
        let sequences: Vec<(Vec<&[f32]>, Vec<usize>)> = benign
            .par_iter()
            .zip(&fvs_per_conn)
            .map(|(conn, fvs)| {
                let xs: Vec<&[f32]> = fvs.iter().map(|fv| fv.base.as_slice()).collect();
                let ys: Vec<usize> = label_connection(conn)
                    .iter()
                    .map(|l| l.class_index())
                    .collect();
                (xs, ys)
            })
            .collect();

        let mut rnn = GruClassifier::new(&cfg.rnn);
        let rnn_report = rnn.train(&sequences, &cfg.rnn);
        let rnn_accuracy = rnn.accuracy(&sequences);

        // Stages (b)+(c): benign context profiles -> autoencoder.
        let builder = ProfileBuilder::new(cfg.stack);
        let per_conn: Vec<Matrix> = fvs_per_conn
            .par_iter()
            .map(|fvs| builder.stacked_profiles(&ranges, &rnn, fvs))
            .collect();
        let total_rows: usize = per_conn.iter().map(|m| m.rows).sum();
        let mut data = Matrix::zeros(total_rows, builder.stacked_len());
        let mut r = 0;
        for m in &per_conn {
            data.data[r * data.cols..(r + m.rows) * data.cols].copy_from_slice(&m.data);
            r += m.rows;
        }

        let mut ae_cfg = cfg.ae.clone();
        ae_cfg.layer_sizes[0] = builder.stacked_len();
        *ae_cfg.layer_sizes.last_mut().unwrap() = builder.stacked_len();
        let mut ae = Autoencoder::new(&ae_cfg.layer_sizes, ae_cfg.seed);
        let ae_losses = ae.train(&data, &ae_cfg);

        let clap = Clap {
            config: cfg.clone(),
            ranges,
            rnn,
            ae,
        };
        let summary = TrainSummary {
            rnn_report,
            rnn_accuracy,
            ae_losses,
            profiles: total_rows,
        };
        (clap, summary)
    }

    /// Builds a reusable scoring session holding the packed GRU weights
    /// and every scratch arena the fused hot path needs. One scorer per
    /// worker thread; scoring through it is allocation-free in steady
    /// state (aside from the returned results).
    ///
    /// The engine precision follows the process default
    /// ([`QuantMode::active`], i.e. the `NEURAL_QUANT` environment
    /// variable); use [`scorer_with`](Self::scorer_with) to pin it.
    pub fn scorer(&self) -> ClapScorer<'_> {
        self.scorer_with(QuantMode::active())
    }

    /// [`scorer`](Self::scorer) with an explicit engine precision:
    /// [`QuantMode::Off`] scores on the f32 engine, [`QuantMode::Int8`]
    /// quantizes the autoencoder and packed-GRU weights once per scorer
    /// and runs the int8 GEMM kernels.
    pub fn scorer_with(&self, mode: QuantMode) -> ClapScorer<'_> {
        self.scorer_from_engines(
            GruEngine::from_packed(self.rnn.packed(), mode),
            AeEngine::from_model(&self.ae, mode),
        )
    }

    /// Assembles a scorer around already-built engines, so batch entry
    /// points can pay weight (re)quantization once and hand each worker a
    /// clone (a memcpy) instead of re-deriving the engines per chunk.
    fn scorer_from_engines<'a>(&'a self, gru: GruEngine, ae: AeEngine<'a>) -> ClapScorer<'a> {
        ClapScorer {
            clap: self,
            builder: ProfileBuilder::new(self.config.stack),
            gru,
            ae,
            profiles: ProfileWorkspace::new(),
            ae_ws: AeWorkspace::new(),
            batch: Matrix::default(),
            errors: Vec::new(),
        }
    }

    /// Stage (d): scores one unseen connection. Higher = more likely to
    /// contain adversarial packets.
    ///
    /// Convenience wrapper that builds a fresh [`ClapScorer`]; loops should
    /// create one scorer via [`Clap::scorer`] and reuse it.
    pub fn score_connection(&self, conn: &Connection) -> ScoredConnection {
        self.scorer().score_connection(conn)
    }

    /// Reference (unfused) scoring path, frozen at the seed
    /// implementation: naive sequential-sum kernels, six matvecs per
    /// packet, fresh buffers everywhere. Kept to prove the fused engine
    /// equivalent and to measure the speedup; not used by production
    /// scoring.
    pub fn score_connection_unfused(&self, conn: &Connection) -> ScoredConnection {
        let fvs = extract_connection(conn);
        let builder = ProfileBuilder::new(self.config.stack);
        let stacked = builder.stacked_profiles_unfused(&self.ranges, &self.rnn, &fvs);
        let window_errors = self.ae.reconstruction_errors_unfused(&stacked);
        let (peak_window, score) = score_errors(&window_errors, self.config.score_window);
        ScoredConnection {
            peak_packet: builder.window_center(peak_window, conn.len()),
            peak_window,
            window_errors,
            score,
        }
    }

    /// Parallel batch scoring over the unfused reference path (see
    /// [`score_connection_unfused`](Self::score_connection_unfused)).
    pub fn score_connections_unfused(&self, conns: &[Connection]) -> Vec<ScoredConnection> {
        conns
            .par_iter()
            .map(|c| self.score_connection_unfused(c))
            .collect()
    }

    /// Scores a batch of connections, sharding them across rayon workers.
    /// Each worker owns one [`ClapScorer`] arena set and pushes its whole
    /// shard through the autoencoder in per-shard batched GEMM chains.
    /// Engine precision follows [`QuantMode::active`].
    pub fn score_connections(&self, conns: &[Connection]) -> Vec<ScoredConnection> {
        self.score_connections_with(conns, QuantMode::active())
    }

    /// [`score_connections`](Self::score_connections) at an explicit
    /// engine precision.
    pub fn score_connections_with(
        &self,
        conns: &[Connection],
        mode: QuantMode,
    ) -> Vec<ScoredConnection> {
        if conns.is_empty() {
            return Vec::new();
        }
        // ~4 shards per worker keeps the pool busy despite uneven
        // connection lengths, while each shard is still large enough to
        // batch well. Sized from the executing rayon pool, so a pinned
        // single-thread pool gets 4 large batches, not one per core.
        let workers = rayon::current_num_threads().max(1);
        let shard = conns.len().div_ceil(workers * 4).max(1);
        // Pack (and at Int8, quantize) the engines once; per-chunk scorers
        // clone the finished engines rather than re-deriving them.
        let gru = GruEngine::from_packed(self.rnn.packed(), mode);
        let ae = AeEngine::from_model(&self.ae, mode);
        let nested: Vec<Vec<ScoredConnection>> = conns
            .par_chunks(shard)
            .map(|chunk| {
                self.scorer_from_engines(gru.clone(), ae.clone())
                    .score_batch(chunk)
            })
            .collect();
        nested.into_iter().flatten().collect()
    }

    /// Boolean verdict against a deployer-chosen threshold.
    pub fn detect(&self, conn: &Connection, threshold: f32) -> bool {
        self.score_connection(conn).score > threshold
    }

    /// Packet index of the most suspicious packet (first step of
    /// localize-and-estimate).
    pub fn localize(&self, conn: &Connection) -> usize {
        self.score_connection(conn).peak_packet
    }

    /// Suggests a detection threshold as a quantile of benign scores
    /// (e.g. `0.95` → ≈5% false-positive budget). Engine precision
    /// follows [`QuantMode::active`]; thresholds should be calibrated at
    /// the precision that will score production traffic
    /// ([`threshold_from_benign_with`](Self::threshold_from_benign_with)).
    pub fn threshold_from_benign(&self, benign: &[Connection], quantile: f64) -> f32 {
        self.threshold_from_benign_with(benign, quantile, QuantMode::active())
    }

    /// [`threshold_from_benign`](Self::threshold_from_benign) at an
    /// explicit engine precision — the single source of truth for the
    /// quantile recipe (the quantization parity harnesses pin against
    /// exactly this function).
    pub fn threshold_from_benign_with(
        &self,
        benign: &[Connection],
        quantile: f64,
        mode: QuantMode,
    ) -> f32 {
        let mut scores: Vec<f32> = self
            .score_connections_with(benign, mode)
            .iter()
            .map(|s| s.score)
            .collect();
        // total_cmp: a NaN score must not scramble the quantile order.
        scores.sort_by(f32::total_cmp);
        if scores.is_empty() {
            return 0.0;
        }
        let idx = ((scores.len() as f64 - 1.0) * quantile.clamp(0.0, 1.0)).round() as usize;
        scores[idx]
    }

    /// Per-label `(correct, total)` state-prediction counts on a labelled
    /// corpus — the data behind the paper's Table 5. Runs on the fused
    /// engine with one reused arena: no per-packet clones.
    pub fn rnn_confusion(&self, conns: &[Connection]) -> Vec<(usize, usize)> {
        let packed = self.rnn.packed();
        let mut ws = GruWorkspace::new();
        let mut x = Matrix::default();
        let mut logits = vec![0.0f32; self.rnn.num_classes()];
        let mut preds = Vec::new();
        let mut counts = vec![(0usize, 0usize); NUM_CLASSES];
        for conn in conns {
            let fvs = extract_connection(conn);
            x.resize(fvs.len(), NUM_BASE);
            for (t, fv) in fvs.iter().enumerate() {
                x.row_mut(t).copy_from_slice(&fv.base);
            }
            self.rnn
                .predict_packed_into(&packed, &x, &mut ws, &mut logits, &mut preds);
            for (label, &pred) in label_connection(conn).iter().zip(&preds) {
                let idx = label.class_index();
                counts[idx].1 += 1;
                counts[idx].0 += usize::from(pred == idx);
            }
        }
        counts
    }

    /// Serializes the whole detector to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Restores a detector from [`Clap::to_json`] output.
    pub fn from_json(json: &str) -> serde_json::Result<Clap> {
        serde_json::from_str(json)
    }
}

/// A scoring session: the gate-packed GRU and autoencoder engines (f32 or
/// int8, see [`Clap::scorer_with`]) plus every scratch arena the fused hot
/// path threads through ([`ProfileWorkspace`], [`AeWorkspace`], the shard
/// batch matrix and the error buffer). Create one per worker via
/// [`Clap::scorer`] and feed it connections; steady state performs no heap
/// allocation beyond the returned results.
pub struct ClapScorer<'a> {
    clap: &'a Clap,
    builder: ProfileBuilder,
    gru: GruEngine,
    ae: AeEngine<'a>,
    profiles: ProfileWorkspace,
    ae_ws: AeWorkspace,
    /// Concatenated stacked profiles of one shard (AE batch input).
    batch: Matrix,
    errors: Vec<f32>,
}

impl ClapScorer<'_> {
    /// The engine precision this scorer runs at.
    pub fn quant_mode(&self) -> QuantMode {
        self.gru.mode()
    }

    /// Scores one connection through the fused engine.
    pub fn score_connection(&mut self, conn: &Connection) -> ScoredConnection {
        let fvs = extract_connection(conn);
        self.builder
            .stacked_profiles_into(&self.clap.ranges, &self.gru, &fvs, &mut self.profiles);
        self.errors.clear();
        self.ae.reconstruction_errors_into(
            &self.profiles.stacked,
            &mut self.ae_ws,
            &mut self.errors,
        );
        let (peak_window, score) = score_errors(&self.errors, self.clap.config.score_window);
        ScoredConnection {
            peak_packet: self.builder.window_center(peak_window, conn.len()),
            peak_window,
            window_errors: self.errors.clone(),
            score,
        }
    }

    /// Scores a shard of connections, pushing **all** their stacked
    /// windows through the autoencoder in one batched GEMM chain instead
    /// of one chain per connection.
    pub fn score_batch(&mut self, conns: &[Connection]) -> Vec<ScoredConnection> {
        let width = self.builder.stacked_len();
        self.batch.data.clear();
        self.batch.cols = width;
        let mut rows_per_conn = Vec::with_capacity(conns.len());
        for conn in conns {
            let fvs = extract_connection(conn);
            self.builder.stacked_profiles_into(
                &self.clap.ranges,
                &self.gru,
                &fvs,
                &mut self.profiles,
            );
            self.batch
                .data
                .extend_from_slice(&self.profiles.stacked.data);
            rows_per_conn.push(self.profiles.stacked.rows);
        }
        self.batch.rows = rows_per_conn.iter().sum();

        self.errors.clear();
        self.ae
            .reconstruction_errors_into(&self.batch, &mut self.ae_ws, &mut self.errors);

        let mut out = Vec::with_capacity(conns.len());
        let mut offset = 0;
        for (conn, &rows) in conns.iter().zip(&rows_per_conn) {
            let window_errors = self.errors[offset..offset + rows].to_vec();
            offset += rows;
            let (peak_window, score) = score_errors(&window_errors, self.clap.config.score_window);
            out.push(ScoredConnection {
                peak_packet: self.builder.window_center(peak_window, conn.len()),
                peak_window,
                window_errors,
                score,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ClapConfig {
        let mut cfg = ClapConfig::ci();
        cfg.ae.epochs = 8;
        cfg
    }

    #[test]
    fn train_and_score_smoke() {
        let benign = traffic_gen::dataset(21, 30);
        let (clap, summary) = Clap::train(&benign, &tiny_cfg());
        assert!(
            summary.rnn_accuracy > 0.5,
            "accuracy {}",
            summary.rnn_accuracy
        );
        assert!(summary.profiles > 100);
        assert!(summary.ae_losses.last().unwrap() < &summary.ae_losses[0]);
        let s = clap.score_connection(&benign[0]);
        assert!(s.score.is_finite() && s.score >= 0.0);
        assert_eq!(s.window_errors.len(), benign[0].len().max(3) - 2);
        assert!(s.peak_packet < benign[0].len());
    }

    #[test]
    fn corrupted_connection_scores_higher_than_benign() {
        let benign = traffic_gen::dataset(22, 40);
        let (clap, _) = Clap::train(&benign, &tiny_cfg());
        let held_out = traffic_gen::dataset(522, 12);
        let benign_mean: f32 = clap
            .score_connections(&held_out)
            .iter()
            .map(|s| s.score)
            .sum::<f32>()
            / held_out.len() as f32;

        // Hand-rolled Bad-Checksum-RST (the paper's motivating example).
        let mut attacked = held_out.clone();
        for conn in &mut attacked {
            if let Some(idx) = conn.first_index_after_handshake() {
                let mut rst = conn.packets[idx.min(conn.len() - 1)].clone();
                rst.tcp_mut().flags = net_packet::TcpFlags::RST;
                rst.payload.clear();
                rst.fill_checksums();
                rst.tcp_mut().checksum ^= 0x0bad;
                conn.packets.insert(idx.min(conn.len() - 1), rst);
            }
        }
        let adv_mean: f32 = clap
            .score_connections(&attacked)
            .iter()
            .map(|s| s.score)
            .sum::<f32>()
            / attacked.len() as f32;
        assert!(
            adv_mean > benign_mean,
            "adversarial mean {adv_mean} should exceed benign mean {benign_mean}"
        );
    }

    #[test]
    fn threshold_quantile_behaviour() {
        let benign = traffic_gen::dataset(23, 25);
        let (clap, _) = Clap::train(&benign, &tiny_cfg());
        let t50 = clap.threshold_from_benign(&benign, 0.5);
        let t95 = clap.threshold_from_benign(&benign, 0.95);
        assert!(t95 >= t50);
        let flagged = benign.iter().filter(|c| clap.detect(c, t95)).count();
        assert!(flagged <= benign.len() / 10);
    }

    #[test]
    fn json_round_trip_preserves_scores() {
        let benign = traffic_gen::dataset(24, 15);
        let (clap, _) = Clap::train(&benign, &tiny_cfg());
        let json = clap.to_json().unwrap();
        let back = Clap::from_json(&json).unwrap();
        let a = clap.score_connection(&benign[3]);
        let b = back.score_connection(&benign[3]);
        assert_eq!(a.score, b.score);
        assert_eq!(a.peak_packet, b.peak_packet);
    }

    /// The headline equivalence guarantee: the fused engine (packed GRU,
    /// workspace arenas, batched AE) scores every connection identically
    /// (≤1e-6) to the unfused reference path, via both the single and the
    /// sharded batch entry points. Pinned to the f32 engine explicitly:
    /// the unfused reference is f32 by construction, so this test must
    /// keep meaning "fusion changes nothing" even when the suite runs
    /// under `NEURAL_QUANT=int8` (int8-vs-f32 drift is bounded separately
    /// by the quantization parity tests).
    #[test]
    fn fused_engine_matches_unfused_reference() {
        let benign = traffic_gen::dataset(26, 25);
        let (clap, _) = Clap::train(&benign, &tiny_cfg());
        let corpus = traffic_gen::dataset(777, 30);

        let reference = clap.score_connections_unfused(&corpus);
        let batched = clap.score_connections_with(&corpus, QuantMode::Off);
        let mut scorer = clap.scorer_with(QuantMode::Off);
        assert_eq!(reference.len(), batched.len());
        for (conn, (r, b)) in corpus.iter().zip(reference.iter().zip(&batched)) {
            let single = scorer.score_connection(conn);
            for fused in [&single, b] {
                assert!(
                    (r.score - fused.score).abs() < 1e-6,
                    "score drift: {} vs {}",
                    r.score,
                    fused.score
                );
                assert_eq!(r.peak_window, fused.peak_window);
                assert_eq!(r.peak_packet, fused.peak_packet);
                assert_eq!(r.window_errors.len(), fused.window_errors.len());
                for (x, y) in r.window_errors.iter().zip(&fused.window_errors) {
                    assert!((x - y).abs() < 1e-6, "window error drift: {x} vs {y}");
                }
            }
        }
    }

    /// Scorer arenas are reused across connections of wildly different
    /// lengths; reuse must never change results versus a fresh scorer.
    #[test]
    fn scorer_reuse_across_connection_sizes() {
        let benign = traffic_gen::dataset(27, 20);
        let (clap, _) = Clap::train(&benign, &tiny_cfg());
        let corpus = traffic_gen::dataset(888, 12);
        let mut reused = clap.scorer();
        // Interleave: big/small connections through one scorer.
        for _ in 0..2 {
            for conn in &corpus {
                let a = reused.score_connection(conn);
                let b = clap.scorer().score_connection(conn);
                assert_eq!(a.score, b.score, "arena reuse changed a score");
                assert_eq!(a.window_errors, b.window_errors);
            }
        }
    }

    /// The int8 engine must track the f32 engine closely (quantization
    /// noise, not a different detector), be deterministic, and agree
    /// between its single-connection and batched entry points exactly.
    #[test]
    fn int8_scorer_tracks_f32_and_is_deterministic() {
        let benign = traffic_gen::dataset(29, 25);
        let (clap, _) = Clap::train(&benign, &tiny_cfg());
        let corpus = traffic_gen::dataset(779, 20);

        let f32_scores = clap.score_connections_with(&corpus, QuantMode::Off);
        let int8_a = clap.score_connections_with(&corpus, QuantMode::Int8);
        let int8_b = clap.score_connections_with(&corpus, QuantMode::Int8);
        let mut single = clap.scorer_with(QuantMode::Int8);
        assert_eq!(single.quant_mode(), QuantMode::Int8);
        for (conn, ((f, a), b)) in corpus
            .iter()
            .zip(f32_scores.iter().zip(&int8_a).zip(&int8_b))
        {
            assert_eq!(a.score, b.score, "int8 scoring must be deterministic");
            let s = single.score_connection(conn);
            assert_eq!(s.score, a.score, "single vs batched int8 entry points");
            let rel = (a.score - f.score).abs() / f.score.abs().max(1e-3);
            assert!(
                rel < 0.05,
                "int8 score drifted {:.2}% from f32 ({} vs {})",
                rel * 100.0,
                a.score,
                f.score
            );
        }
    }

    #[test]
    fn confusion_counts_sum_to_packets() {
        let benign = traffic_gen::dataset(25, 10);
        let (clap, _) = Clap::train(&benign, &tiny_cfg());
        let counts = clap.rnn_confusion(&benign);
        let total: usize = counts.iter().map(|&(_, t)| t).sum();
        let packets: usize = benign.iter().map(Connection::len).sum();
        assert_eq!(total, packets);
    }
}
