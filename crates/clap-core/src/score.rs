//! The localize-and-estimate adversarial score (paper §3.3(d)).
//!
//! The autoencoder yields one reconstruction error per stacked profile.
//! Injected adversarial packets produce a spike in that sequence (Figure
//! 6); the score is the mean error over a window of 5 profiles centred on
//! the spike, which "best captures the most distinguishing part of the
//! reconstruction error sequence".

use serde::{Deserialize, Serialize};

/// Scoring output for one connection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoredConnection {
    /// Reconstruction error per sliding stacked-profile window.
    pub window_errors: Vec<f32>,
    /// Index (into `window_errors`) of the maximum-error window.
    pub peak_window: usize,
    /// Packet index CLAP reports as the most suspicious.
    pub peak_packet: usize,
    /// The localize-and-estimate adversarial score.
    pub score: f32,
}

impl ScoredConnection {
    /// Packet indices for the `n` highest-error windows (descending error),
    /// mapped through the given window→packet function. Used by Top-N
    /// forensics.
    pub fn top_packets(&self, n: usize, window_to_packet: impl Fn(usize) -> usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.window_errors.len()).collect();
        // total_cmp: NaN errors sort deterministically instead of
        // scrambling the ranking.
        idx.sort_by(|&a, &b| self.window_errors[b].total_cmp(&self.window_errors[a]));
        let mut out = Vec::new();
        for w in idx.into_iter().map(window_to_packet) {
            if !out.contains(&w) {
                out.push(w);
            }
            if out.len() == n {
                break;
            }
        }
        out
    }
}

/// Computes the adversarial score from a sequence of window errors:
/// locate the maximum, then average over `score_window` profiles centred
/// on it (clamped at the sequence boundaries).
pub fn score_errors(window_errors: &[f32], score_window: usize) -> (usize, f32) {
    if window_errors.is_empty() {
        return (0, 0.0);
    }
    let peak = window_errors
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let half = score_window.max(1) / 2;
    let lo = peak.saturating_sub(half);
    let hi = (peak + half + 1).min(window_errors.len());
    let mean = window_errors[lo..hi].iter().sum::<f32>() / (hi - lo) as f32;
    (peak, mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_errors_scores_zero() {
        assert_eq!(score_errors(&[], 5), (0, 0.0));
    }

    #[test]
    fn single_value() {
        assert_eq!(score_errors(&[0.7], 5), (0, 0.7));
    }

    #[test]
    fn peak_found_and_averaged() {
        let errs = [0.1, 0.1, 0.9, 0.5, 0.1, 0.1];
        let (peak, score) = score_errors(&errs, 5);
        assert_eq!(peak, 2);
        // Window [0..5): mean of 0.1,0.1,0.9,0.5,0.1
        assert!((score - 0.34).abs() < 1e-6);
    }

    #[test]
    fn peak_at_boundary_clamps() {
        let errs = [0.9, 0.1, 0.1, 0.1];
        let (peak, score) = score_errors(&errs, 5);
        assert_eq!(peak, 0);
        // Window [0..3): mean of 0.9, 0.1, 0.1
        assert!((score - (1.1 / 3.0)).abs() < 1e-6);
    }

    #[test]
    fn score_window_one_is_just_the_peak() {
        let errs = [0.2, 0.8, 0.3];
        let (peak, score) = score_errors(&errs, 1);
        assert_eq!(peak, 1);
        assert_eq!(score, 0.8);
    }

    #[test]
    fn spike_raises_score_vs_flat() {
        let flat = [0.1; 9];
        let mut spiked = flat;
        spiked[4] = 0.9;
        let (_, s_flat) = score_errors(&flat, 5);
        let (_, s_spiked) = score_errors(&spiked, 5);
        assert!(s_spiked > s_flat * 2.0);
    }

    #[test]
    fn top_packets_ordering_and_dedup() {
        let sc = ScoredConnection {
            window_errors: vec![0.1, 0.9, 0.8, 0.05],
            peak_window: 1,
            peak_packet: 2,
            score: 0.6,
        };
        // Identity mapping.
        assert_eq!(sc.top_packets(2, |w| w), vec![1, 2]);
        // Collapsing mapping dedups.
        assert_eq!(sc.top_packets(2, |_| 7), vec![7]);
    }
}
