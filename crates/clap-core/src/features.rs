//! Packet feature extraction — Table 7 of the paper.
//!
//! Every packet yields:
//!
//! * **32 base features** (Table 7 #1–#32) used as RNN input: direction,
//!   relative SEQ/ACK, data offset, the 9 flag bits one-hot, window,
//!   checksum validities, urgent pointer, payload length, option values
//!   (MSS, TSval/TSecr deltas, WScale, UTO, MD5 presence), timestamps and
//!   the IP-layer fields — all lightly scaled to ≈[0, 1] but otherwise raw
//!   ("minimum feature engineering", §3.3(a));
//! * **19 amplification features** (Table 7 #33–#51): out-of-range
//!   indicators for the 13 numeric TCP and 5 numeric IP features — binary
//!   flags lit when a value falls outside the range observed in benign
//!   training traffic — plus the payload-length equivalence check
//!   `#17 = #26 − #28 − 4·#4`. These amplify perturbations too subtle for
//!   the autoencoder to notice otherwise (§3.3(b)).
//!
//! The out-of-range flags need the benign ranges, so extraction is
//! two-phase: [`extract_connection`] computes base features plus the raw
//! numeric values; the trained [`RangeModel`] then materializes the final
//! 51-dim packet-feature vector.

use net_packet::{Connection, Direction, IpHeader, Packet, TcpFlags};
use serde::{Deserialize, Serialize};

/// Base (RNN-input) feature count — Table 7 features #1–#32.
pub const NUM_BASE: usize = 32;
/// Raw numeric values tracked for out-of-range amplification (13 TCP + 5 IP).
pub const NUM_RAW: usize = 18;
/// Full packet-feature vector width (#1–#51).
pub const NUM_PACKET: usize = NUM_BASE + NUM_RAW + 1;

/// Per-packet extraction output (before range amplification).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureVector {
    /// Features #1–#32, scaled to ≈[0, 1].
    pub base: Vec<f32>,
    /// Raw numeric values for the 18 out-of-range indicators, in the fixed
    /// order documented on [`RAW_NAMES`].
    pub raw: Vec<f32>,
    /// Whether the payload-length equivalence (#51) holds.
    pub equiv_ok: bool,
}

/// Names for the raw numeric slots (debugging / experiment output).
pub const RAW_NAMES: [&str; NUM_RAW] = [
    "rel_seq",
    "rel_ack",
    "data_offset",
    "window",
    "urgent",
    "payload_len",
    "mss",
    "tsval_delta",
    "tsecr",
    "wscale",
    "uto",
    "tsval",
    "inter_arrival",
    "ip_total_len",
    "ttl",
    "ihl",
    "ip_version",
    "tos",
];

/// Wrapping distance from an initial sequence number, saturated into f32.
fn rel_seq(value: u32, isn: Option<u32>) -> f32 {
    match isn {
        Some(base) => value.wrapping_sub(base) as f32,
        None => 0.0,
    }
}

/// Incremental per-flow feature extraction state: the ISN anchor and
/// previous-timestamp memory [`extract_connection`] keeps per connection,
/// packaged so a streaming scorer can advance it one packet at a time.
/// Feeding a connection's packets through [`push_into`](Self::push_into)
/// in capture order produces exactly the vectors `extract_connection`
/// returns (same code path, so bitwise identical).
///
/// The optional anchors live as raw values plus presence bits rather than
/// `Option`s: sequence numbers and timestamps span the full `u32` range,
/// so presence cannot be encoded in-band, and `Option` padding would
/// nearly double this struct — which sits resident in every flow-table
/// slot at million-flow scale.
#[derive(Debug, Clone, Default)]
pub struct FeatureExtractor {
    isn: [u32; 2],
    prev_tsval: [u32; 2],
    prev_time: f64,
    /// Presence bits: 0–1 `isn[d]`, 2–3 `prev_tsval[d]`, 4 `prev_time`.
    present: u8,
}

impl FeatureExtractor {
    pub fn new() -> Self {
        Self::default()
    }

    fn get(&self, bit: u8, value: u32) -> Option<u32> {
        (self.present & (1 << bit) != 0).then_some(value)
    }

    /// Extracts the next packet's features into a caller-owned
    /// [`FeatureVector`], reusing its buffers — zero allocation once the
    /// vector has been through one call.
    pub fn push_into(&mut self, p: &Packet, dir: Direction, out: &mut FeatureVector) {
        // The first sequence number seen per direction anchors relative
        // SEQ/ACK (for SYNs this is the true ISN). UDP has no sequence
        // space; its anchor stays 0 and the relative slots read 0.
        let d = dir.index();
        if self.present & (1 << d) == 0 {
            self.isn[d] = p.transport.tcp().map_or(0, |t| t.seq);
            self.present |= 1 << d;
        }
        let isn = [self.get(0, self.isn[0]), self.get(1, self.isn[1])];
        let mut prev_tsval = [
            self.get(2, self.prev_tsval[0]),
            self.get(3, self.prev_tsval[1]),
        ];
        let mut prev_time = (self.present & (1 << 4) != 0).then_some(self.prev_time);
        extract_packet_into(p, dir, isn, &mut prev_tsval, &mut prev_time, out);
        for (d, v) in prev_tsval.iter().enumerate() {
            if let Some(v) = v {
                self.prev_tsval[d] = *v;
                self.present |= 1 << (2 + d);
            }
        }
        if let Some(t) = prev_time {
            self.prev_time = t;
            self.present |= 1 << 4;
        }
    }

    /// Allocating convenience wrapper around [`push_into`](Self::push_into).
    pub fn push(&mut self, p: &Packet, dir: Direction) -> FeatureVector {
        let mut fv = FeatureVector {
            base: Vec::with_capacity(NUM_BASE),
            raw: Vec::with_capacity(NUM_RAW),
            equiv_ok: false,
        };
        self.push_into(p, dir, &mut fv);
        fv
    }
}

/// Extracts base features + raw numerics for every packet of a connection.
///
/// Per-connection state (ISNs per direction, previous timestamps) is
/// maintained internally; packets are processed in capture order.
pub fn extract_connection(conn: &Connection) -> Vec<FeatureVector> {
    let mut extractor = FeatureExtractor::new();
    conn.packets
        .iter()
        .enumerate()
        .map(|(i, p)| extractor.push(p, conn.direction(i)))
        .collect()
}

fn extract_packet_into(
    p: &Packet,
    dir: Direction,
    isn: [Option<u32>; 2],
    prev_tsval: &mut [Option<u32>; 2],
    prev_time: &mut Option<f64>,
    out: &mut FeatureVector,
) {
    // TCP-specific slots read 0 for UDP packets — the feature layout is
    // fixed at 51 dims across transports, and a constant-zero slot is
    // exactly what "this protocol has no such field" should look like to
    // the autoencoder.
    let tcp = p.transport.tcp();
    let f = p.tcp_flags();
    let has_ack = f.contains(TcpFlags::ACK);
    let timestamps = tcp.and_then(|t| t.timestamps());

    // --- Raw numeric values -------------------------------------------
    let r_seq = match tcp {
        Some(t) => rel_seq(t.seq, isn[dir.index()]),
        None => 0.0,
    };
    let r_ack = match tcp {
        Some(t) if has_ack => rel_seq(t.ack, isn[dir.flip().index()]),
        _ => 0.0,
    };
    let (tsval, tsecr) = timestamps.unwrap_or((0, 0));
    let ts_delta = match (timestamps, prev_tsval[dir.index()]) {
        (Some((v, _)), Some(prev)) => v.wrapping_sub(prev) as i32 as f32,
        _ => 0.0,
    };
    if let Some((v, _)) = timestamps {
        prev_tsval[dir.index()] = Some(v);
    }
    let iat = match *prev_time {
        Some(t) => (p.timestamp - t).max(0.0) as f32,
        None => 0.0,
    };
    *prev_time = Some(p.timestamp);

    // IP-layer slots, version-erased. The "IHL" slot carries the *claimed*
    // header length in 32-bit words for both versions: the v4 IHL nibble
    // verbatim, or the v6 fixed header plus what the extension chain's
    // `hdr_ext_len` fields claim — so a lying length field surfaces here
    // for either version.
    let claimed_ip_hdr_words = match &p.ip {
        IpHeader::V4(h) => f32::from(h.ihl),
        IpHeader::V6(h) => {
            let claimed: usize = h.ext.iter().map(|e| 8 * (e.hdr_ext_len as usize + 1)).sum();
            (net_packet::ipv6::IPV6_HEADER_LEN + claimed) as f32 / 4.0
        }
    };
    let tos = match &p.ip {
        IpHeader::V4(h) => h.tos,
        IpHeader::V6(h) => h.traffic_class,
    };
    let ip_anomalous_options = match &p.ip {
        IpHeader::V4(h) => h.has_nonstandard_options(),
        IpHeader::V6(h) => h.ext_chain_anomalous(),
    };

    let data_offset = tcp.map_or(0, |t| t.data_offset);
    let window = tcp.map_or(0, |t| t.window);
    let urgent = tcp.map_or(0, |t| t.urgent);
    let mss = tcp.and_then(|t| t.mss()).unwrap_or(0);
    let wscale = tcp.and_then(|t| t.window_scale()).unwrap_or(0);
    let uto = tcp.and_then(|t| t.user_timeout()).unwrap_or(0);

    out.raw.clear();
    out.raw.extend_from_slice(&[
        r_seq,
        r_ack,
        data_offset as f32,
        window as f32,
        urgent as f32,
        p.payload.len() as f32,
        mss as f32,
        ts_delta,
        tsecr as f32,
        wscale as f32,
        uto as f32,
        tsval as f32,
        iat,
        p.ip.total_length_field() as f32,
        p.ip.ttl() as f32,
        claimed_ip_hdr_words,
        p.ip.version_field() as f32,
        tos as f32,
    ]);

    // --- Base features #1..#32, scaled --------------------------------
    // Heavy-tailed quantities are log-compressed: without this, a single
    // large benign value (a long idle gap, a big transfer) dominates the
    // autoencoder's reconstruction error and drowns the one-bit signals
    // the amplification features carry.
    let log_scale = |v: f32, cap: f32| ((1.0 + v.max(0.0)).ln() / (1.0 + cap).ln()).min(1.0);

    out.base.clear();
    let base = &mut out.base;
    base.push(dir.index() as f32); // #1 direction
    base.push(log_scale(r_seq, u32::MAX as f32)); // #2
    base.push(log_scale(r_ack, u32::MAX as f32)); // #3
    base.push(data_offset as f32 / 15.0); // #4
    for flag in TcpFlags::ALL {
        base.push(f.contains(flag) as u8 as f32); // #5..#13
    }
    base.push(window as f32 / 65_535.0); // #14
    base.push(p.transport_checksum_valid() as u8 as f32); // #15
    base.push(urgent as f32 / 65_535.0); // #16
    base.push((p.payload.len() as f32 / 1500.0).min(2.0) / 2.0); // #17
    base.push(mss as f32 / 1460.0); // #18
    base.push((ts_delta / 1.0e6).clamp(-1.0, 1.0) * 0.5 + 0.5); // #19
    base.push(tsecr as f32 / u32::MAX as f32); // #20
    base.push(wscale as f32 / 14.0); // #21
    base.push((uto as f32 / 600.0).min(2.0) / 2.0); // #22
    base.push(tcp.is_some_and(|t| t.has_md5()) as u8 as f32); // #23
    base.push(tsval as f32 / u32::MAX as f32); // #24
    base.push(log_scale(iat * 1000.0, 60_000.0)); // #25 (log-ms, cap 60 s)
    base.push((p.ip.total_length_field() as f32 / 1500.0).min(2.0) / 2.0); // #26
    base.push(p.ip.ttl() as f32 / 255.0); // #27
    base.push(claimed_ip_hdr_words / 15.0); // #28
    base.push(p.ip_checksum_valid() as u8 as f32); // #29
    base.push(p.ip.version_field() as f32 / 15.0); // #30
    base.push(tos as f32 / 255.0); // #31
    base.push(ip_anomalous_options as u8 as f32); // #32
    debug_assert_eq!(base.len(), NUM_BASE);

    // --- Equivalence relation #51 --------------------------------------
    // TCP/IPv4: payload_len = total_length − 4·IHL − 4·data_offset (the
    // paper's `#17 = #26 − #28 − 4·#4`). The same relation generalizes to
    // v6 (claimed header words) and UDP (the UDP length field must agree
    // both with the IP datagram length and the actual payload). A packet
    // reassembled from *conflicting* overlapping fragments also breaks the
    // equivalence: its byte ranges were claimed twice with different
    // contents, which is precisely the length/content lying this feature
    // exists to expose.
    let ip_payload = p.ip.total_length_field() as i64 - (claimed_ip_hdr_words as i64) * 4;
    let lengths_ok = match &p.transport {
        net_packet::Transport::Tcp(t) => {
            ip_payload - i64::from(t.data_offset) * 4 == p.payload.len() as i64
        }
        net_packet::Transport::Udp(u) => {
            ip_payload == i64::from(u.length) && u.length_consistent(p.payload.len())
        }
    };
    let overlap_conflict = p.reassembly.is_some_and(|r| r.conflicting);
    out.equiv_ok = lengths_ok && !overlap_conflict;
}

/// Benign value ranges for the 18 raw numerics; lights the out-of-range
/// amplification flags (#33–#50) at inference time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RangeModel {
    mins: Vec<f32>,
    maxs: Vec<f32>,
}

/// Raw slots derived from unbounded, wrap-prone counters (relative
/// SEQ/ACK, timestamp values and deltas). On backbone-scale traffic their
/// benign ranges cover essentially the whole value space, so out-of-range
/// amplification is vacuous for them; we disable it outright rather than
/// let small synthetic corpora make these flags unrealistically sharp.
const WRAP_PRONE_SLOTS: [usize; 5] = [0, 1, 7, 8, 11];

impl RangeModel {
    /// Learns per-feature [min, max] over benign packets, widened by a
    /// small tolerance so borderline-benign values do not flap.
    pub fn fit<'a>(packets: impl IntoIterator<Item = &'a FeatureVector>) -> Self {
        let mut mins = vec![f32::INFINITY; NUM_RAW];
        let mut maxs = vec![f32::NEG_INFINITY; NUM_RAW];
        for fv in packets {
            for (i, &v) in fv.raw.iter().enumerate() {
                mins[i] = mins[i].min(v);
                maxs[i] = maxs[i].max(v);
            }
        }
        for i in 0..NUM_RAW {
            if !mins[i].is_finite() {
                mins[i] = 0.0;
                maxs[i] = 0.0;
            }
            let span = (maxs[i] - mins[i]).abs().max(1.0);
            mins[i] -= span * 0.01;
            maxs[i] += span * 0.01;
        }
        for slot in WRAP_PRONE_SLOTS {
            // Finite sentinels (JSON cannot carry infinities): no raw value
            // ever falls outside [f32::MIN, f32::MAX].
            mins[slot] = f32::MIN;
            maxs[slot] = f32::MAX;
        }
        RangeModel { mins, maxs }
    }

    /// True when raw slot `i` is outside the benign range.
    pub fn out_of_range(&self, i: usize, v: f32) -> bool {
        v < self.mins[i] || v > self.maxs[i]
    }

    /// Materializes the full 51-dim packet-feature vector
    /// (#1–#32 base, #33–#50 out-of-range flags, #51 equivalence).
    pub fn packet_features(&self, fv: &FeatureVector) -> Vec<f32> {
        let mut out = vec![0.0; NUM_PACKET];
        self.write_packet_features(fv, &mut out);
        out
    }

    /// Allocation-free variant of [`packet_features`](Self::packet_features):
    /// writes the 51 values into a caller-owned slice (e.g. a profile-matrix
    /// row), so the scoring hot path reuses one buffer per worker.
    pub fn write_packet_features(&self, fv: &FeatureVector, out: &mut [f32]) {
        debug_assert_eq!(out.len(), NUM_PACKET);
        out[..NUM_BASE].copy_from_slice(&fv.base);
        for (i, &v) in fv.raw.iter().enumerate() {
            out[NUM_BASE + i] = self.out_of_range(i, v) as u8 as f32;
        }
        out[NUM_PACKET - 1] = fv.equiv_ok as u8 as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_packet::{Endpoint, FlowKey, Ipv4Header, TcpHeader, TcpOption};
    use std::net::Ipv4Addr;

    fn test_conn() -> Connection {
        let key = FlowKey::new(
            Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 40000),
            Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 443),
        );
        let mut conn = Connection::new(key);
        let mk = |dir: Direction, flags: TcpFlags, seq: u32, ack: u32, payload: &[u8], ts: f64| {
            let (src, dst) = match dir {
                Direction::ClientToServer => (key.client, key.server),
                Direction::ServerToClient => (key.server, key.client),
            };
            let v4 = |a: std::net::IpAddr| match a {
                std::net::IpAddr::V4(v) => v,
                std::net::IpAddr::V6(_) => unreachable!("test key is IPv4"),
            };
            let ip = Ipv4Header::new(v4(src.addr), v4(dst.addr), 57);
            let mut tcp = TcpHeader::new(src.port, dst.port, seq, ack);
            tcp.flags = flags;
            Packet::new(ts, ip, tcp, payload.to_vec())
        };
        conn.packets.push(mk(
            Direction::ClientToServer,
            TcpFlags::SYN,
            1000,
            0,
            &[],
            0.0,
        ));
        conn.packets.push(mk(
            Direction::ServerToClient,
            TcpFlags::SYN | TcpFlags::ACK,
            9000,
            1001,
            &[],
            0.01,
        ));
        conn.packets.push(mk(
            Direction::ClientToServer,
            TcpFlags::ACK,
            1001,
            9001,
            &[],
            0.02,
        ));
        conn.packets.push(mk(
            Direction::ClientToServer,
            TcpFlags::ACK | TcpFlags::PSH,
            1001,
            9001,
            b"hello",
            0.03,
        ));
        conn
    }

    #[test]
    fn feature_widths() {
        let fvs = extract_connection(&test_conn());
        assert_eq!(fvs.len(), 4);
        for fv in &fvs {
            assert_eq!(fv.base.len(), NUM_BASE);
            assert_eq!(fv.raw.len(), NUM_RAW);
        }
        let rm = RangeModel::fit(&fvs);
        assert_eq!(rm.packet_features(&fvs[0]).len(), NUM_PACKET);
    }

    #[test]
    fn direction_and_flags_encoded() {
        let fvs = extract_connection(&test_conn());
        assert_eq!(fvs[0].base[0], 0.0); // c2s
        assert_eq!(fvs[1].base[0], 1.0); // s2c
                                         // #5..#13 one-hot: SYN is the 2nd flag (index 1).
        assert_eq!(fvs[0].base[4 + 1], 1.0);
        assert_eq!(fvs[0].base[4], 0.0); // FIN off
                                         // SYN-ACK sets both SYN (idx 1) and ACK (idx 4).
        assert_eq!(fvs[1].base[4 + 1], 1.0);
        assert_eq!(fvs[1].base[4 + 4], 1.0);
    }

    #[test]
    fn relative_seq_starts_at_zero_and_grows() {
        let fvs = extract_connection(&test_conn());
        assert_eq!(fvs[0].raw[0], 0.0); // first client packet anchors ISN
        assert_eq!(fvs[2].raw[0], 1.0); // +1 after SYN
        assert_eq!(fvs[3].raw[5], 5.0); // payload length
    }

    #[test]
    fn checksum_validity_features() {
        let mut conn = test_conn();
        conn.packets[3].tcp_mut().checksum ^= 0xbad;
        let fvs = extract_connection(&conn);
        assert_eq!(fvs[3].base[14], 0.0); // #15 invalid
        assert_eq!(fvs[2].base[14], 1.0);
    }

    #[test]
    fn equivalence_feature_detects_length_lies() {
        let mut conn = test_conn();
        assert!(extract_connection(&conn)[3].equiv_ok);
        conn.packets[3].ipv4_mut().total_length += 7;
        assert!(!extract_connection(&conn)[3].equiv_ok);
    }

    #[test]
    fn range_model_flags_outliers() {
        let fvs = extract_connection(&test_conn());
        let rm = RangeModel::fit(&fvs);
        // TTL (raw slot 14) was 57 everywhere; 3 is out of range.
        assert!(rm.out_of_range(14, 3.0));
        assert!(!rm.out_of_range(14, 57.0));
        // IP version (slot 16) was 4; 5 is out of range.
        assert!(rm.out_of_range(16, 5.0));
    }

    #[test]
    fn md5_and_urgent_features() {
        let mut conn = test_conn();
        let p = conn.packets[3].clone();
        let mut tcp = p.tcp().clone();
        tcp.options.push(TcpOption::Md5([1; 16]));
        tcp.urgent = 5;
        conn.packets[3] = Packet::new(p.timestamp, p.ipv4().clone(), tcp, p.payload.clone());
        let fvs = extract_connection(&conn);
        assert_eq!(fvs[3].base[22], 1.0); // #23 MD5 present
        assert!(fvs[3].base[15] > 0.0); // #16 urgent pointer
    }

    #[test]
    fn protocol_udp_features_zero_tcp_slots() {
        use net_packet::UdpHeader;
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 57);
        let p = Packet::new_udp(0.0, ip, UdpHeader::new(40000, 53), b"query".to_vec());
        let mut ex = FeatureExtractor::new();
        let fv = ex.push(&p, Direction::ClientToServer);
        assert_eq!(fv.base.len(), NUM_BASE);
        assert_eq!(fv.raw.len(), NUM_RAW);
        // TCP-only slots are zero: rel seq/ack, data offset, window, urgent.
        for slot in [0, 1, 2, 3, 4] {
            assert_eq!(fv.raw[slot], 0.0, "raw slot {slot}");
        }
        // Flag one-hots (#5..#13) all off.
        for i in 4..13 {
            assert_eq!(fv.base[i], 0.0, "base #{}", i + 1);
        }
        assert_eq!(fv.raw[5], 5.0); // payload length is real
        assert_eq!(fv.base[14], 1.0); // #15 checksum valid
        assert!(fv.equiv_ok, "consistent UDP lengths satisfy #51");
        // A lying UDP length breaks the equivalence.
        let mut bad = p.clone();
        bad.udp_mut().length += 3;
        let fv = FeatureExtractor::new().push(&bad, Direction::ClientToServer);
        assert!(!fv.equiv_ok);
    }

    #[test]
    fn protocol_v6_features_fill_ip_slots() {
        use net_packet::{Ipv6ExtHeader, Ipv6Header};
        use std::net::Ipv6Addr;
        let mut ip = Ipv6Header::new(
            Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1),
            Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2),
            61,
        );
        let tcp = TcpHeader::new(40000, 443, 1, 0);
        let plain = Packet::new_v6(0.0, ip.clone(), tcp.clone(), vec![]);
        let fv = FeatureExtractor::new().push(&plain, Direction::ClientToServer);
        assert_eq!(fv.raw[16], 6.0); // version slot
        assert_eq!(fv.raw[14], 61.0); // hop limit in the TTL slot
        assert_eq!(fv.raw[15], 10.0); // 40-byte fixed header = 10 words
        assert_eq!(fv.base[31], 0.0); // #32: no extensions
        assert!(fv.equiv_ok);

        // An extension chain lights the anomalous-options channel and
        // widens the claimed-header slot.
        ip.next_header = net_packet::ipv6::EXT_HOP_BY_HOP;
        ip.ext = vec![Ipv6ExtHeader::well_formed(
            net_packet::ipv4::PROTO_TCP,
            0,
            vec![],
        )];
        let with_ext = Packet::new_v6(0.0, ip, tcp, vec![]);
        let fv = FeatureExtractor::new().push(&with_ext, Direction::ClientToServer);
        assert_eq!(fv.base[31], 1.0); // #32
        assert_eq!(fv.raw[15], 12.0); // +8 bytes = +2 words
        assert!(fv.equiv_ok, "well-formed ext chain keeps #51 intact");
    }

    #[test]
    fn protocol_conflicting_reassembly_breaks_equivalence() {
        let mut conn = test_conn();
        assert!(extract_connection(&conn)[3].equiv_ok);
        conn.packets[3].reassembly = Some(net_packet::ReassemblyInfo {
            fragments: 3,
            overlapped: true,
            conflicting: true,
        });
        assert!(!extract_connection(&conn)[3].equiv_ok);
        // Benign duplicate overlap (no conflicting bytes) is not punished.
        conn.packets[3].reassembly = Some(net_packet::ReassemblyInfo {
            fragments: 2,
            overlapped: true,
            conflicting: false,
        });
        assert!(extract_connection(&conn)[3].equiv_ok);
    }

    #[test]
    fn timestamp_delta_neutral_without_option() {
        let fvs = extract_connection(&test_conn());
        for fv in &fvs {
            assert_eq!(fv.base[18], 0.5); // #19 centred when no TS option
        }
    }
}
