//! RSS-sharded multi-queue streaming front end — the multi-core
//! counterpart of [`StreamScorer`].
//!
//! PR 2's streaming engine is single-threaded by design: one flow table,
//! one ingest thread. [`ShardedStreamScorer`] scales that engine across
//! cores the way an RSS NIC scales a line-rate tap across receive queues:
//!
//! * **Symmetric hash partitioning.** Each packet is assigned to a shard
//!   by [`CanonicalKey::shard_of`] — the standard Toeplitz RSS function
//!   over the 4-tuple in *canonical* (order-normalized) form, so both
//!   directions of a flow land on the same shard and every shard owns its
//!   flows outright. No flow state is ever shared between workers; the
//!   per-shard engine is the unmodified [`StreamScorer`], which is what
//!   makes the sharded path exactly as trustworthy as the single-threaded
//!   one (and lets the property tests pin sharded == unsharded ≤1e-6).
//! * **Bounded SPSC ingest queues.** The dispatch thread pushes `(arrival
//!   index, packet)` pairs into one bounded single-producer/single-consumer
//!   ring per shard ([`spsc`]). What happens when a ring is full is the
//!   configured [`OverloadPolicy`] (see below); the default `Block`
//!   applies backpressure to the dispatcher (spin-then-yield, counted per
//!   shard in [`ShardStats::full_waits`]) rather than dropping packets or
//!   growing without bound — the ingest path can stall, but it can never
//!   lose a packet or exhaust memory.
//! * **Per-shard policy, per-shard clocks.** Every shard runs its own
//!   [`StreamConfig`]: idle sweeps, capacity probing and TCP-teardown
//!   finalization fire per shard exactly as in the unsharded engine. One
//!   deliberate divergence (the same one a real multi-queue NIC
//!   deployment has — each queue's conntrack ages independently): a
//!   shard's clock and sweep cadence advance only with *its own*
//!   packets, so *where idle-timeout splits land* can depend on the
//!   partition. In exchange, no cross-shard synchronization exists at
//!   all.
//! * **Stable merged output.** The dispatcher hands each packet's global
//!   arrival index to the per-shard scorer
//!   ([`StreamScorer::push_tagged`]), which carries each flow's
//!   first-packet index on [`ClosedFlow::arrival`] — through restarts and
//!   orient-buffer replays — so workers keep no flow bookkeeping of their
//!   own; [`ShardedRun::verdicts`] is sorted by that index. The merged order is therefore *order of
//!   first appearance in the stream* — the same order
//!   [`net_packet::assemble_connections`] returns — and is a pure
//!   function of (input stream, shard count): independent of queue
//!   capacities and thread scheduling, so any replay is reproducible
//!   byte for byte. Output is additionally independent of the shard
//!   count itself whenever no idle-timeout eviction fires (teardown,
//!   capacity and length-cap policies are all per-flow) — in particular
//!   for any capture shorter than [`StreamConfig::idle_timeout`], like
//!   the checked-in regression capture; with idle evictions in play,
//!   per-shard clocks may split long-quiet flows at different packets
//!   than the single-threaded engine would (see above).
//!
//! # Failure modes & overload policies
//!
//! The engine is *supervised*: it keeps scoring N-1 shards when one
//! fails, sheds load deterministically when it cannot keep up, and
//! accounts for every packet exactly once no matter what.
//!
//! * **Panic isolation.** Each worker scores packets inside
//!   `catch_unwind`. A panic while scoring quarantines the offending
//!   packet ([`ShardedRun::quarantined`] logs shard, flow key and global
//!   arrival index), rebuilds that shard's flow table from scratch
//!   ([`StreamScorer::reset`], counted in [`ShardStats::restarts`]) and
//!   the run completes. Because flows never span shards, the other
//!   shards' verdicts are byte-identical to a fault-free run.
//! * **Hard failures.** A panic that escapes the supervised region kills
//!   the worker;
//!   [`try_score_stream`](ShardedStreamScorer::try_score_stream) then
//!   returns [`ShardRunError`] naming the dead shard and carrying the
//!   surviving shards' verdicts and *every* shard's stats (the dead
//!   shard's counters live in shared telemetry and survive it).
//!   [`score_stream`](ShardedStreamScorer::score_stream) panics on hard
//!   failures, preserving the pre-supervision contract.
//! * **Overload policies** ([`OverloadPolicy`], consulted on ring-full):
//!   `Block` (default) spins until space frees — zero loss, bitwise
//!   determinism, unbounded dispatch latency. `DropNewest` sheds the
//!   packet that found the ring full — bounded latency, loss counted in
//!   [`ShardStats::dropped`]. `Degrade { keep_one_in: k }` scores one in
//!   k packets per flow while the ring stays saturated — every flow
//!   keeps producing (degraded) verdicts; saturation episodes are
//!   counted in [`ShardStats::degraded_windows`]. Under the shed
//!   policies, *which* packets are shed depends on real ring occupancy,
//!   i.e. on thread scheduling — only `Block` keeps bitwise run-to-run
//!   determinism. (The fault harness's forced bursts are deterministic,
//!   which is how the shed paths are tested; see [`fault`].)
//! * **Accounting invariant.** For every shard, exactly:
//!   `pushed == packets + dropped + quarantined`. Every packet the
//!   dispatcher addressed to a shard is scored, shed, or quarantined —
//!   including packets lost to a dying worker (its in-flight packet and
//!   its undrained ring are counted into `dropped`).
//! * **Stuck-shard watchdog.** A shard whose ring stays full while its
//!   progress heartbeat is frozen for [`ShardConfig::watchdog_limit`]
//!   consecutive dispatcher wait-iterations is declared stuck: the
//!   dispatcher stops feeding it (shedding its packets into `dropped`)
//!   and reports it in the run's [`ShardRunError`]. A merely *slow*
//!   shard keeps its heartbeat advancing and is never flagged. If a
//!   stuck worker later recovers, its verdicts are still merged; the
//!   failure report stands.
//! * **Fault injection.** [`fault::FaultPlan`] injects panics, hard
//!   kills, stalls, forced ring-full bursts and malformed packets at
//!   seed-deterministic arrivals — same plan, same stream, same outcome
//!   — so every path above is testable (see the `fault_*` tests and the
//!   proptest suites).
//!
//! ```
//! use clap_core::{Clap, ClapConfig, ShardConfig};
//!
//! let benign = traffic_gen::dataset(42, 40);
//! let (clap, _) = Clap::train(&benign, &ClapConfig::ci());
//!
//! // One interleaved stream over all flows, as a tap would deliver it.
//! let mut stream: Vec<&net_packet::Packet> =
//!     benign[..4].iter().flat_map(|c| c.packets.iter()).collect();
//! stream.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
//!
//! let sharded = clap.sharded_scorer_with(ShardConfig {
//!     shards: 2,
//!     ..ShardConfig::default()
//! });
//! let run = sharded.score_stream(stream.iter().copied());
//! assert_eq!(run.verdicts.len(), 4);
//! assert!(run.verdicts.iter().all(|v| v.flow.scored.score.is_finite()));
//! assert!(run.stats.iter().all(|s| s.dropped == 0 && s.quarantined == 0));
//! ```

pub mod fault;
pub mod supervise;

use crate::pipeline::Clap;
use crate::stream::{ClosedFlow, FlowEntry, StreamConfig, StreamScorer, StreamStats};
use clap_telemetry::hist::Stage;
use clap_telemetry::{ShardCells, StageRecorder, TelemetryHub, WorkerCells};
use fault::FaultPlan;
use net_packet::{CanonicalKey, Packet};
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use supervise::{Quarantined, ShardFailure, ShardFailureKind, ShardRunError};

/// What the dispatcher does with a packet whose shard's ingest ring is
/// full. See the module-level "Failure modes & overload policies"
/// section for the guarantees each variant keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Spin (spin-then-yield) until the ring frees a slot. Zero loss and
    /// bitwise determinism, at the price of unbounded dispatch latency
    /// behind a slow shard. The pre-supervision behavior.
    #[default]
    Block,
    /// Shed the packet that found the ring full (counted per shard in
    /// [`ShardStats::dropped`]). Bounded dispatch latency, bounded loss.
    DropNewest,
    /// While the ring stays saturated, score one in `keep_one_in`
    /// packets *per flow* (shedding the rest) so every flow keeps
    /// producing verdicts under overload, just on thinner evidence.
    /// Saturation episodes are counted in
    /// [`ShardStats::degraded_windows`].
    Degrade { keep_one_in: u32 },
}

impl OverloadPolicy {
    /// Parses the `--overload-policy` CLI grammar: `block`,
    /// `drop-newest` (or `drop`), `degrade` (1-in-8) or `degrade:K`.
    pub fn parse(spec: &str) -> Result<OverloadPolicy, String> {
        match spec {
            "block" => Ok(OverloadPolicy::Block),
            "drop-newest" | "drop" => Ok(OverloadPolicy::DropNewest),
            "degrade" => Ok(OverloadPolicy::Degrade { keep_one_in: 8 }),
            other => match other.strip_prefix("degrade:") {
                Some(k) => {
                    let keep_one_in: u32 = k
                        .parse()
                        .map_err(|_| format!("overload policy `{other}`: `{k}` is not a number"))?;
                    if keep_one_in == 0 {
                        return Err(format!("overload policy `{other}`: K must be ≥ 1"));
                    }
                    Ok(OverloadPolicy::Degrade { keep_one_in })
                }
                None => Err(format!(
                    "unknown overload policy `{other}` (expected block/drop-newest/degrade[:K])"
                )),
            },
        }
    }
}

impl std::fmt::Display for OverloadPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverloadPolicy::Block => write!(f, "block"),
            OverloadPolicy::DropNewest => write!(f, "drop-newest"),
            OverloadPolicy::Degrade { keep_one_in } => write!(f, "degrade:{keep_one_in}"),
        }
    }
}

/// Partitioning and supervision policy for a [`ShardedStreamScorer`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of worker shards (≥ 1). Each shard owns one ingest queue,
    /// one [`StreamScorer`] flow table and one thread; the dispatch loop
    /// runs on the calling thread, so `shards` worker cores plus one
    /// dispatch core are busy at saturation.
    pub shards: usize,
    /// Capacity of each shard's SPSC ingest ring, in packets. Smaller
    /// rings bound ingest memory and latency tighter but backpressure the
    /// dispatcher sooner; correctness is unaffected either way.
    pub queue_capacity: usize,
    /// Flow-table policy applied *per shard* (each worker runs its own
    /// [`StreamScorer`] under this config). Note `max_flows` is therefore
    /// a per-shard bound: total tracked flows ≤ `shards × max_flows`.
    /// `microbatch` likewise batches *within* each shard; an idle shard
    /// flushes its pending batch immediately, and end-of-stream drain
    /// flushes before finalizing, so batching never changes verdicts.
    pub stream: StreamConfig,
    /// What to do with a packet whose shard's ring is full.
    pub overload: OverloadPolicy,
    /// Stuck-shard watchdog threshold: a shard is declared stuck after
    /// this many consecutive dispatcher wait-iterations with its ring
    /// full and its heartbeat frozen. The default (`1 << 26`, tens of
    /// seconds of spinning) only ever fires on a genuinely wedged
    /// worker; tests lower it to exercise the path.
    pub watchdog_limit: u64,
    /// Injected fault schedule (empty in production use).
    pub faults: FaultPlan,
    /// Dump every shard's live flow table (conntrack-style
    /// [`FlowEntry`] records, as of end of stream, before the final
    /// drain) into [`ShardedRun::flows`]. Off by default: the dump is
    /// O(live flows) per shard.
    pub dump_flows: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        // Leave one core for the dispatch loop when the machine has the
        // cores to spare; degrade to a single shard otherwise.
        let workers =
            std::thread::available_parallelism().map_or(1, |n| n.get().saturating_sub(1).max(1));
        ShardConfig {
            shards: workers,
            queue_capacity: 1024,
            stream: StreamConfig::default(),
            overload: OverloadPolicy::Block,
            watchdog_limit: 1 << 26,
            faults: FaultPlan::none(),
            dump_flows: false,
        }
    }
}

/// Ingest/backpressure/supervision accounting for one shard of a
/// finished run. The exact invariant, enforced under every policy and
/// fault schedule: `pushed == packets + dropped + quarantined`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index (`0..shards`).
    pub shard: usize,
    /// Packets the dispatcher addressed to this shard (scored, shed or
    /// quarantined — every one is accounted below).
    pub pushed: u64,
    /// Packets this shard scored.
    pub packets: u64,
    /// Flows this shard finalized (all close reasons).
    pub flows_closed: u64,
    /// Times the dispatcher found this shard's ingest ring full and had
    /// to wait — the backpressure signal. Counted once per stalled push,
    /// not per spin iteration.
    pub full_waits: u64,
    /// Packets shed: by the overload policy, by the watchdog cutting off
    /// a stuck shard, or lost to a dying worker (its in-flight packet
    /// and undrained ring).
    pub dropped: u64,
    /// Saturation episodes under [`OverloadPolicy::Degrade`]: incremented
    /// once per full→saturated transition, not per packet.
    pub degraded_windows: u64,
    /// Packets quarantined after a supervised scoring panic.
    pub quarantined: u64,
    /// Times this shard's flow table was rebuilt from scratch (one per
    /// quarantine, plus one if the end-of-stream flush panicked).
    pub restarts: u64,
    /// This shard's flow-table counters ([`StreamStats`]): peak live
    /// flows, eviction breakdown by cause. The counters live in the
    /// shared telemetry hub ([`ShardedStreamScorer::telemetry`]), so they
    /// survive even a shard whose worker died mid-run.
    pub stream: StreamStats,
}

/// One merged verdict: which shard scored the flow, the global arrival
/// index of the flow's first packet (the merge sort key), and the same
/// [`ClosedFlow`] the unsharded engine would have produced.
#[derive(Debug, Clone)]
pub struct ShardVerdict {
    pub shard: usize,
    /// Index (0-based) in the input stream of the first packet of this
    /// flow incarnation. Unique per verdict, which makes the merged order
    /// total and deterministic.
    pub arrival: u64,
    pub flow: ClosedFlow,
}

/// The merged output of one sharded replay.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// Every finalized flow, sorted by [`ShardVerdict::arrival`] — the
    /// order of first appearance in the stream. Independent of queue
    /// capacity and scheduling always; independent of shard count too
    /// unless idle-timeout evictions fire (see the module docs).
    pub verdicts: Vec<ShardVerdict>,
    /// Per-shard ingest accounting, indexed by shard.
    pub stats: Vec<ShardStats>,
    /// Every quarantined packet, sorted by arrival index (empty on a
    /// fault-free run).
    pub quarantined: Vec<Quarantined>,
    /// Conntrack-style dump of every shard's live flow table as of end
    /// of stream (before the final drain finalized them), sorted by
    /// arrival index. Empty unless [`ShardConfig::dump_flows`] is set.
    pub flows: Vec<FlowEntry>,
}

/// RSS-sharded scoring session: a hash-partitioned fan-out of
/// [`StreamScorer`]s. Create via [`Clap::sharded_scorer`] (or
/// [`Clap::sharded_scorer_with`] for explicit policy), then feed one
/// interleaved packet stream to [`score_stream`](Self::score_stream) or
/// [`try_score_stream`](Self::try_score_stream).
pub struct ShardedStreamScorer<'a> {
    clap: &'a Clap,
    config: ShardConfig,
    /// Per-shard telemetry cells, shared with every thread that wants a
    /// live view: counters are lifetime-cumulative across runs of this
    /// scorer; each run's [`ShardStats`] is the baseline-vs-end delta.
    hub: Arc<TelemetryHub>,
}

impl Clap {
    /// Builds a sharded streaming scorer with default policy (one shard
    /// per available core, minus one for dispatch).
    pub fn sharded_scorer(&self) -> ShardedStreamScorer<'_> {
        self.sharded_scorer_with(ShardConfig::default())
    }

    /// Builds a sharded streaming scorer with an explicit [`ShardConfig`].
    pub fn sharded_scorer_with(&self, config: ShardConfig) -> ShardedStreamScorer<'_> {
        let hub = Arc::new(TelemetryHub::new(config.shards.max(1)));
        ShardedStreamScorer {
            clap: self,
            config,
            hub,
        }
    }
}

/// Outcome of one blocking (policy `Block`, or a `Degrade` keeper) push.
enum PushOutcome {
    Delivered {
        stalled: bool,
    },
    /// The worker terminated with its ring full — it will never drain.
    WorkerDead,
    /// Ring full and heartbeat frozen past the watchdog limit.
    Stuck {
        heartbeat: u64,
    },
}

/// Pushes `item`, spinning while the ring is full; watches the worker's
/// liveness (thread finished) and progress (heartbeat) while waiting. A
/// *slow* worker keeps its heartbeat moving and resets the frozen count,
/// so only a genuinely wedged shard ever trips `Stuck`.
fn blocking_push<T>(
    ring: &spsc::Ring<T>,
    worker_finished: impl Fn() -> bool,
    worker: &WorkerCells,
    watchdog_limit: u64,
    mut item: T,
) -> PushOutcome {
    let mut backoff = spsc::Backoff::new();
    let mut stalled = false;
    let mut beat = 0u64;
    let mut frozen_iters = 0u64;
    loop {
        match ring.try_push(item) {
            Ok(()) => return PushOutcome::Delivered { stalled },
            Err(back) => {
                item = back;
                if worker_finished() {
                    return PushOutcome::WorkerDead;
                }
                let now = worker.heartbeat();
                if !stalled || now != beat {
                    stalled = true;
                    beat = now;
                    frozen_iters = 0;
                } else {
                    frozen_iters += 1;
                    if frozen_iters >= watchdog_limit {
                        return PushOutcome::Stuck { heartbeat: now };
                    }
                }
                backoff.snooze();
            }
        }
    }
}

impl ShardedStreamScorer<'_> {
    /// The effective shard count (the configured value, floored at 1).
    pub fn shards(&self) -> usize {
        self.config.shards.max(1)
    }

    /// The scorer's live telemetry hub. Any thread holding the `Arc` can
    /// take coherent [`TelemetryHub::snapshot`]s while a run is in
    /// flight — counters are wait-free for the writers and
    /// lifetime-cumulative across runs of this scorer.
    pub fn telemetry(&self) -> Arc<TelemetryHub> {
        Arc::clone(&self.hub)
    }

    /// Replays one interleaved packet stream through the sharded engine
    /// and returns the merged verdicts plus per-shard accounting,
    /// panicking if any shard fails hard. Prefer
    /// [`try_score_stream`](Self::try_score_stream) when the caller can
    /// use a degraded run.
    pub fn score_stream<'p>(&self, packets: impl IntoIterator<Item = &'p Packet>) -> ShardedRun {
        match self.try_score_stream(packets) {
            Ok(run) => run,
            Err(e) => panic!("sharded run failed hard: {e}"),
        }
    }

    /// Replays one interleaved packet stream through the supervised
    /// sharded engine. On a clean (possibly degraded-by-policy) run,
    /// returns the merged verdicts plus per-shard accounting; if any
    /// shard dies or is declared stuck, returns a [`ShardRunError`]
    /// naming the failed shards and carrying the surviving shards'
    /// verdicts and every shard's stats.
    ///
    /// The calling thread runs the dispatch loop (hash → shard → SPSC
    /// push under the configured [`OverloadPolicy`]); `shards` scoped
    /// worker threads consume their rings into per-shard supervised
    /// [`StreamScorer`]s. All live flows are finalized at end of stream,
    /// exactly like [`StreamScorer::finish`].
    pub fn try_score_stream<'p>(
        &self,
        packets: impl IntoIterator<Item = &'p Packet>,
    ) -> Result<ShardedRun, ShardRunError> {
        let shards = self.shards();
        let capacity = self.config.queue_capacity.max(1);
        let policy = self.config.overload;
        let watchdog_limit = self.config.watchdog_limit.max(1);
        let plan = &self.config.faults;

        // Malformed substitutes are owned packets; build them (and
        // therefore collect the stream) before the worker scope so the
        // rings can borrow them.
        let stream: Vec<&'p Packet> = packets.into_iter().collect();
        let mangled: HashMap<u64, Packet> = if plan.is_empty() {
            HashMap::new()
        } else {
            stream
                .iter()
                .enumerate()
                .filter(|(seq, _)| plan.malform_at(*seq as u64))
                .map(|(seq, p)| (seq as u64, fault::malform(p)))
                .collect()
        };
        let queues: Vec<spsc::Ring<(u64, &Packet)>> =
            (0..shards).map(|_| spsc::Ring::new(capacity)).collect();
        let hub = &self.hub;
        // The hub is lifetime-cumulative; this run's ShardStats is the
        // delta against the baseline taken before any worker starts.
        let base = hub.snapshot();
        let dump_flows = self.config.dump_flows;

        std::thread::scope(|s| {
            // Any unwind out of this closure — e.g. a panic inside the
            // caller's `packets` iterator — must still close every ring,
            // or the scope's implicit join would hang on workers spinning
            // against open rings. The guard closes them on drop; the
            // normal path drops it (and thus closes the rings) before
            // joining.
            let close_rings = CloseRings(&queues);

            let handles: Vec<_> = queues
                .iter()
                .enumerate()
                .map(|(i, ring)| {
                    let stream_cfg = self.config.stream.clone();
                    let clap = self.clap;
                    let cells = hub.shard(i);
                    s.spawn(move || {
                        shard_worker(clap, stream_cfg, i, ring, cells, plan, dump_flows)
                    })
                })
                .collect();

            let mut was_saturated = vec![false; shards];
            let mut degrade_seq: Vec<HashMap<CanonicalKey, u64>> =
                (0..shards).map(|_| HashMap::new()).collect();
            let mut dead = vec![false; shards];
            let mut failures: Vec<ShardFailure> = Vec::new();

            for (seq, orig) in stream.iter().enumerate() {
                let seq = seq as u64;
                let ck = CanonicalKey::of(orig);
                let shard = ck.shard_of(shards);
                let cells = hub.shard(shard);
                cells.dispatch.dispatched_inc();
                if dead[shard] {
                    cells.dispatch.shed();
                    continue;
                }
                let p: &Packet = mangled.get(&seq).map_or(*orig, |m| m);
                // A forced burst makes the ring *look* full to the policy
                // without being full, so shed decisions are reproducible.
                let forced = plan.forced_full(seq);
                let deliver = match policy {
                    OverloadPolicy::Block => {
                        if forced {
                            cells.dispatch.full_wait();
                        }
                        true
                    }
                    OverloadPolicy::DropNewest => {
                        if forced {
                            false
                        } else {
                            match queues[shard].try_push((seq, p)) {
                                Ok(()) => continue,
                                Err(_) => false,
                            }
                        }
                    }
                    OverloadPolicy::Degrade { keep_one_in } => {
                        let saturated = forced || queues[shard].is_full();
                        if saturated && !was_saturated[shard] {
                            cells.dispatch.degraded_window();
                        }
                        was_saturated[shard] = saturated;
                        if saturated {
                            let count = degrade_seq[shard].entry(ck).or_insert(0);
                            let keep = (*count).is_multiple_of(u64::from(keep_one_in.max(1)));
                            *count += 1;
                            keep
                        } else {
                            true
                        }
                    }
                };
                if !deliver {
                    cells.dispatch.shed();
                    continue;
                }
                match blocking_push(
                    &queues[shard],
                    || handles[shard].is_finished(),
                    &cells.worker,
                    watchdog_limit,
                    (seq, p),
                ) {
                    PushOutcome::Delivered { stalled } => {
                        if stalled {
                            cells.dispatch.full_wait();
                        }
                    }
                    PushOutcome::WorkerDead => {
                        // The join below records the Died failure with
                        // the actual panic message.
                        dead[shard] = true;
                        cells.dispatch.shed();
                    }
                    PushOutcome::Stuck { heartbeat } => {
                        dead[shard] = true;
                        cells.dispatch.shed();
                        failures.push(ShardFailure {
                            shard,
                            kind: ShardFailureKind::Stuck { heartbeat },
                        });
                    }
                }
            }
            drop(close_rings);

            let mut verdicts = Vec::new();
            let mut quarantined: Vec<Quarantined> = Vec::new();
            let mut flows: Vec<FlowEntry> = Vec::new();
            for (shard, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(mut output) => {
                        verdicts.append(&mut output.verdicts);
                        quarantined.append(&mut output.quarantined);
                        flows.append(&mut output.flows);
                    }
                    Err(payload) => {
                        failures.push(ShardFailure {
                            shard,
                            kind: ShardFailureKind::Died(supervise::panic_message(
                                payload.as_ref(),
                            )),
                        });
                        // The dead worker never drained its leftovers;
                        // the join above makes this thread the sole ring
                        // user, so count them as dropped to keep the
                        // accounting invariant exact.
                        let mut leftovers = 0u64;
                        while queues[shard].try_pop().is_some() {
                            leftovers += 1;
                        }
                        hub.shard(shard).dispatch.shed_many(leftovers);
                    }
                }
            }
            // Every worker has joined and every leftover is accounted, so
            // this cut has `dispatched == pushed` per shard; the delta
            // against the run-start baseline is this run's stats.
            let end = hub.snapshot();
            let stats: Vec<ShardStats> = (0..shards)
                .map(|shard| {
                    let b = &base.shards[shard];
                    let e = &end.shards[shard];
                    ShardStats {
                        shard,
                        pushed: e.dispatched - b.dispatched,
                        packets: e.scored - b.scored,
                        flows_closed: e.flows_closed - b.flows_closed,
                        full_waits: e.full_waits - b.full_waits,
                        dropped: e.dropped - b.dropped,
                        degraded_windows: e.degraded_windows - b.degraded_windows,
                        quarantined: e.quarantined - b.quarantined,
                        restarts: e.restarts - b.restarts,
                        stream: StreamStats {
                            // A high-water mark, not a rate: reported raw.
                            flows_peak: e.flows_peak as usize,
                            evicted_idle: e.evicted_idle - b.evicted_idle,
                            evicted_capacity: e.evicted_capacity - b.evicted_capacity,
                            closed_tcp: e.closed_tcp - b.closed_tcp,
                            length_capped: e.length_capped - b.length_capped,
                            drained: e.drained - b.drained,
                            time_wait_expired: e.time_wait_expired - b.time_wait_expired,
                        },
                    }
                })
                .collect();
            // First-packet arrival indices are unique across flows (each
            // tags a distinct packet), so this order is total in
            // practice; the stable sort makes even a pathological tie
            // deterministic (tied verdicts share a tuple, hence a shard,
            // and keep that shard's emission order, which is itself a
            // pure function of the input).
            let mut merge_rec = StageRecorder::new();
            merge_rec.attach(Arc::clone(&hub.shard(0).stages));
            let mut merge_clock = merge_rec.start();
            verdicts.sort_by_key(|v| v.arrival);
            quarantined.sort_by_key(|q| q.arrival);
            flows.sort_by_key(|f| f.arrival);
            if let Some(c) = merge_clock.as_mut() {
                c.lap(Stage::Merge);
            }
            let run = ShardedRun {
                verdicts,
                stats,
                quarantined,
                flows,
            };
            if failures.is_empty() {
                Ok(run)
            } else {
                failures.sort_by_key(|f| f.shard);
                Err(ShardRunError {
                    failures,
                    partial: run,
                })
            }
        })
    }
}

/// Closes every ring when dropped. Held across the dispatch loop so that
/// both the normal path and any unwind (a panicking caller iterator)
/// release the workers from their pop loops.
struct CloseRings<'q, T>(&'q [spsc::Ring<T>]);

impl<T> Drop for CloseRings<'_, T> {
    fn drop(&mut self) {
        for ring in self.0 {
            ring.close();
        }
    }
}

/// What one (surviving) worker hands back at join.
struct WorkerOutput {
    verdicts: Vec<ShardVerdict>,
    quarantined: Vec<Quarantined>,
    /// End-of-stream flow-table dump (empty unless
    /// [`ShardConfig::dump_flows`]).
    flows: Vec<FlowEntry>,
}

/// One shard's supervised consume loop: pop packets from the ring into
/// this shard's [`StreamScorer`] via [`StreamScorer::push_tagged`], each
/// push wrapped in `catch_unwind` — a scoring panic quarantines the
/// packet and rebuilds the flow table instead of killing the worker. The
/// scorer itself carries each flow incarnation's first-packet arrival
/// index (on [`ClosedFlow::arrival`]) — including across restarts inside
/// a single push and through orient-buffer replays, where the buffered
/// packets keep their original tags — so the worker does no per-flow
/// bookkeeping at all: no shadow key→arrival map, no re-tag branch, no
/// fallbacks.
fn shard_worker<'p>(
    clap: &Clap,
    stream_cfg: StreamConfig,
    shard: usize,
    ring: &spsc::Ring<(u64, &'p Packet)>,
    cells: &ShardCells,
    plan: &FaultPlan,
    dump_flows: bool,
) -> WorkerOutput {
    let mut scorer = clap.stream_scorer_with(stream_cfg);
    // Re-home the scorer's flow-table counters and stage clocks onto the
    // shard's hub slot, so they are visible to mid-run snapshots and
    // survive this worker if it dies.
    scorer.attach_telemetry(Arc::clone(&cells.stream));
    scorer.attach_stages(Arc::clone(&cells.stages));
    let telemetry = &cells.worker;
    let mut out = WorkerOutput {
        verdicts: Vec::new(),
        quarantined: Vec::new(),
        flows: Vec::new(),
    };

    let consume =
        |scorer: &mut StreamScorer<'_>, out: &mut WorkerOutput, (seq, p): (u64, &Packet)| {
            if let Some(millis) = plan.stall_at(seq) {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            if plan.kill_at(seq) {
                // Deliberately outside the supervised region: models an
                // unrecoverable failure that takes the whole worker down.
                panic!(
                    "{}: hard kill at arrival {seq} (shard {shard})",
                    fault::INJECTED_TAG
                );
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                if plan.panic_at(seq) {
                    panic!(
                        "{}: scorer panic at arrival {seq} (shard {shard})",
                        fault::INJECTED_TAG
                    );
                }
                scorer.push_tagged(p, seq);
            }));
            match result {
                Ok(_) => {
                    telemetry.scored();
                    for flow in scorer.drain_closed() {
                        telemetry.flow_closed();
                        out.verdicts.push(ShardVerdict {
                            shard,
                            arrival: flow.arrival,
                            flow,
                        });
                    }
                }
                Err(payload) => {
                    // Quarantine: log the packet, throw away whatever state
                    // the unwinding push may have left half-mutated, keep
                    // going on a fresh flow table.
                    telemetry.quarantined();
                    out.quarantined.push(Quarantined {
                        shard,
                        arrival: seq,
                        key: CanonicalKey::of(p),
                        panic: supervise::panic_message(payload.as_ref()),
                    });
                    scorer.reset();
                }
            }
            telemetry.beat();
        };
    // A panic escaping `consume` (a hard kill, or a bug in the
    // quarantine path itself) takes this thread down; account for the
    // in-flight packet first so `pushed == packets + dropped +
    // quarantined` stays exact even for a dead shard, then let it fly —
    // the dispatcher picks the payload up at join.
    let supervised =
        |scorer: &mut StreamScorer<'_>, out: &mut WorkerOutput, item: (u64, &'p Packet)| {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| consume(scorer, out, item))) {
                telemetry.dropped_in_flight();
                resume_unwind(payload);
            }
        };

    let mut backoff = spsc::Backoff::new();
    loop {
        while let Some(item) = ring.try_pop() {
            supervised(&mut scorer, &mut out, item);
            backoff.reset();
        }
        if ring.is_closed() {
            // Pushes that raced the close flag: one final drain after the
            // Acquire load of `closed` has ordered them before us.
            while let Some(item) = ring.try_pop() {
                supervised(&mut scorer, &mut out, item);
            }
            break;
        }
        // Going idle: score any pending micro-batched work now instead
        // of letting it wait on further traffic (flushing never closes a
        // flow, so there are no verdicts to drain here). Supervised like
        // a push — a flush panic rebuilds the flow table.
        if catch_unwind(AssertUnwindSafe(|| scorer.flush_pending())).is_err() {
            telemetry.restart();
            scorer.reset();
        }
        backoff.snooze();
    }

    // The conntrack-style dump captures the table as of end of stream —
    // before the final drain below finalizes (and removes) every flow.
    if dump_flows {
        out.flows = scorer.flow_entries();
    }

    // End-of-stream flush, supervised like every per-packet push: a
    // panicking flush costs the pending verdicts of this shard only.
    match catch_unwind(AssertUnwindSafe(|| scorer.finish())) {
        Ok(flows) => {
            for flow in flows {
                telemetry.flow_closed();
                out.verdicts.push(ShardVerdict {
                    shard,
                    arrival: flow.arrival,
                    flow,
                });
            }
        }
        Err(_) => telemetry.restart(),
    }
    out
}

/// Bounded single-producer/single-consumer ring — the per-shard ingest
/// queue. Lock-free on both fast paths (one atomic load + one atomic
/// store each); the only waiting is spin-then-yield backoff at the
/// endpoints, so it behaves sanely even when producer and consumer share
/// a core. Safety argument: `head` is written only by the consumer and
/// `tail` only by the producer; a slot is written before the `Release`
/// store of `tail` that publishes it and read before the `Release` store
/// of `head` that retires it, so the two sides never touch a slot
/// concurrently.
pub mod spsc {
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    /// Pads the producer- and consumer-owned counters onto their own
    /// cache lines so the two sides don't false-share.
    #[repr(align(64))]
    struct CacheAligned<T>(T);

    /// The bounded SPSC ring. `try_push` may only ever be called from one
    /// thread at a time, and `try_pop` from one (possibly different)
    /// thread — the sharded front end upholds this by giving each shard
    /// exactly one dispatcher and one worker.
    pub struct Ring<T> {
        slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
        /// Next index to pop (consumer-owned, monotonically increasing).
        head: CacheAligned<AtomicUsize>,
        /// Next index to push (producer-owned, monotonically increasing).
        tail: CacheAligned<AtomicUsize>,
        closed: AtomicBool,
    }

    // SAFETY: the ring hands each value from exactly one producer thread
    // to exactly one consumer thread (see the module docs); the atomics
    // order the slot accesses.
    unsafe impl<T: Send> Sync for Ring<T> {}
    unsafe impl<T: Send> Send for Ring<T> {}

    impl<T> Ring<T> {
        /// A ring holding at most `capacity` (≥ 1) items.
        pub fn new(capacity: usize) -> Ring<T> {
            let capacity = capacity.max(1);
            let slots = (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect::<Vec<_>>()
                .into_boxed_slice();
            Ring {
                slots,
                head: CacheAligned(AtomicUsize::new(0)),
                tail: CacheAligned(AtomicUsize::new(0)),
                closed: AtomicBool::new(false),
            }
        }

        /// Producer side: enqueues `value`, or returns it when the ring
        /// is full (the backpressure signal).
        pub fn try_push(&self, value: T) -> Result<(), T> {
            let tail = self.tail.0.load(Ordering::Relaxed);
            let head = self.head.0.load(Ordering::Acquire);
            if tail - head == self.slots.len() {
                return Err(value);
            }
            let slot = &self.slots[tail % self.slots.len()];
            // SAFETY: `head ≤ tail - len` fails above, so the consumer
            // has retired this slot; only the producer writes `tail`.
            unsafe { (*slot.get()).write(value) };
            self.tail.0.store(tail + 1, Ordering::Release);
            Ok(())
        }

        /// Consumer side: dequeues the oldest item, or `None` when the
        /// ring is currently empty.
        pub fn try_pop(&self) -> Option<T> {
            let head = self.head.0.load(Ordering::Relaxed);
            let tail = self.tail.0.load(Ordering::Acquire);
            if head == tail {
                return None;
            }
            let slot = &self.slots[head % self.slots.len()];
            // SAFETY: `head < tail` means the producer published this
            // slot (Acquire pairs with its Release); only the consumer
            // writes `head`.
            let value = unsafe { (*slot.get()).assume_init_read() };
            self.head.0.store(head + 1, Ordering::Release);
            Some(value)
        }

        /// Number of items currently enqueued (approximate under
        /// concurrent access; exact when quiescent).
        pub fn len(&self) -> usize {
            self.tail
                .0
                .load(Ordering::Acquire)
                .wrapping_sub(self.head.0.load(Ordering::Acquire))
        }

        /// True when no items are enqueued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Producer side: true when the ring currently holds `capacity`
        /// items (the saturation signal the `Degrade` policy keys on).
        pub fn is_full(&self) -> bool {
            self.len() >= self.slots.len()
        }

        /// The fixed capacity this ring was built with.
        pub fn capacity(&self) -> usize {
            self.slots.len()
        }

        /// Producer side: marks the stream finished. The consumer must
        /// drain once more *after* observing the flag — `close` is
        /// ordered after every preceding push.
        pub fn close(&self) {
            self.closed.store(true, Ordering::Release);
        }

        /// Consumer side: true once the producer closed the ring. Items
        /// pushed before the close may still be pending; drain after.
        pub fn is_closed(&self) -> bool {
            self.closed.load(Ordering::Acquire)
        }
    }

    impl<T> Drop for Ring<T> {
        fn drop(&mut self) {
            // `&mut self`: no concurrent access; drop any undrained items.
            while self.try_pop().is_some() {}
        }
    }

    /// Spin-then-yield wait loop for the ring endpoints. The short spin
    /// phase covers the common case (the peer is mid-operation on another
    /// core); the yield phase keeps a shared-core configuration — e.g. a
    /// single-CPU container, or more shards than cores — live instead of
    /// burning the peer's timeslice.
    pub struct Backoff {
        spins: u32,
    }

    impl Backoff {
        const SPIN_LIMIT: u32 = 24;

        #[allow(clippy::new_without_default)]
        pub fn new() -> Backoff {
            Backoff { spins: 0 }
        }

        /// Back off once: cheap CPU hint first, scheduler yield after.
        pub fn snooze(&mut self) {
            if self.spins < Self::SPIN_LIMIT {
                self.spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }

        /// Forget accumulated pressure after useful work happened.
        pub fn reset(&mut self) {
            self.spins = 0;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_capacity() {
            let ring: Ring<u32> = Ring::new(2);
            assert_eq!(ring.capacity(), 2);
            assert!(!ring.is_full());
            assert!(ring.try_push(1).is_ok());
            assert!(ring.try_push(2).is_ok());
            assert!(ring.is_full());
            assert_eq!(ring.try_push(3), Err(3), "full ring rejects");
            assert_eq!(ring.try_pop(), Some(1));
            assert!(!ring.is_full());
            assert!(ring.try_push(3).is_ok());
            assert_eq!(ring.try_pop(), Some(2));
            assert_eq!(ring.try_pop(), Some(3));
            assert_eq!(ring.try_pop(), None);
        }

        #[test]
        fn close_then_drain_protocol() {
            let ring: Ring<u32> = Ring::new(4);
            ring.try_push(7).unwrap();
            ring.close();
            assert!(ring.is_closed());
            assert_eq!(ring.try_pop(), Some(7), "closed rings still drain");
            assert_eq!(ring.try_pop(), None);
        }

        #[test]
        fn cross_thread_transfer_preserves_every_item() {
            const N: u64 = 10_000;
            let ring: Ring<u64> = Ring::new(8);
            std::thread::scope(|s| {
                let consumer = s.spawn(|| {
                    let mut seen = Vec::with_capacity(N as usize);
                    let mut backoff = Backoff::new();
                    loop {
                        while let Some(v) = ring.try_pop() {
                            seen.push(v);
                            backoff.reset();
                        }
                        if ring.is_closed() {
                            while let Some(v) = ring.try_pop() {
                                seen.push(v);
                            }
                            break;
                        }
                        backoff.snooze();
                    }
                    seen
                });
                let mut backoff = Backoff::new();
                for v in 0..N {
                    let mut item = v;
                    while let Err(back) = ring.try_push(item) {
                        item = back;
                        backoff.snooze();
                    }
                }
                ring.close();
                let seen = consumer.join().unwrap();
                assert_eq!(seen.len() as u64, N);
                assert!(
                    seen.windows(2).all(|w| w[0] + 1 == w[1]),
                    "SPSC must preserve order"
                );
            });
        }

        #[test]
        fn dropping_nonempty_ring_drops_items() {
            let counted = std::sync::Arc::new(());
            {
                let ring: Ring<std::sync::Arc<()>> = Ring::new(4);
                ring.try_push(counted.clone()).unwrap();
                ring.try_push(counted.clone()).unwrap();
                assert_eq!(std::sync::Arc::strong_count(&counted), 3);
            }
            assert_eq!(std::sync::Arc::strong_count(&counted), 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fault::Fault;
    use super::*;
    use crate::pipeline::ClapConfig;
    use crate::stream::CloseReason;
    use net_packet::{
        Connection, Endpoint, FlowKey, Ipv4Header, Ipv6Header, TcpFlags, TcpHeader, UdpHeader,
    };
    use std::net::{Ipv4Addr, Ipv6Addr};
    use std::sync::OnceLock;

    /// One trained model shared across tests (training dominates runtime).
    fn model() -> &'static Clap {
        static MODEL: OnceLock<Clap> = OnceLock::new();
        MODEL.get_or_init(|| {
            let benign = traffic_gen::dataset(87, 20);
            let mut cfg = ClapConfig::ci();
            cfg.ae.epochs = 8;
            Clap::train(&benign, &cfg).0
        })
    }

    fn cfg(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            queue_capacity: 8,
            stream: StreamConfig {
                teardown_on_close: false,
                ..StreamConfig::default()
            },
            ..ShardConfig::default()
        }
    }

    fn interleave(conns: &[Connection]) -> Vec<&Packet> {
        let mut stream: Vec<&Packet> = conns.iter().flat_map(|c| c.packets.iter()).collect();
        stream.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
        stream
    }

    fn raw_packet(src: (u8, u16), dst: (u8, u16), flags: TcpFlags, ts: f64) -> Packet {
        let ip = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, src.0),
            Ipv4Addr::new(10, 0, 0, dst.0),
            64,
        );
        let mut tcp = TcpHeader::new(src.1, dst.1, 1000, 0);
        tcp.flags = flags;
        Packet::new(ts, ip, tcp, Vec::new())
    }

    fn v6_packet(src: (u16, u16), dst: (u16, u16), flags: TcpFlags, ts: f64) -> Packet {
        let ip = Ipv6Header::new(
            Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, src.0),
            Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, dst.0),
            64,
        );
        let mut tcp = TcpHeader::new(src.1, dst.1, 1000, 0);
        tcp.flags = flags;
        Packet::new_v6(ts, ip, tcp, Vec::new())
    }

    fn udp_packet(src: (u8, u16), dst: (u8, u16), ts: f64, payload: Vec<u8>) -> Packet {
        let ip = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, src.0),
            Ipv4Addr::new(10, 0, 0, dst.0),
            64,
        );
        Packet::new_udp(ts, ip, UdpHeader::new(src.1, dst.1), payload)
    }

    fn udp6_packet(src: (u16, u16), dst: (u16, u16), ts: f64, payload: Vec<u8>) -> Packet {
        let ip = Ipv6Header::new(
            Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, src.0),
            Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, dst.0),
            64,
        );
        Packet::new_udp6(ts, ip, UdpHeader::new(src.1, dst.1), payload)
    }

    /// Client ports whose flows (10.0.0.1:port -> 10.0.0.2:80) land on
    /// `target` of `shards` — lets a test aim traffic at one shard.
    fn ports_on_shard(target: usize, shards: usize, n: usize) -> Vec<u16> {
        (1024u16..)
            .filter(|&port| {
                let p = raw_packet((1, port), (2, 80), TcpFlags::SYN, 0.0);
                CanonicalKey::of(&p).shard_of(shards) == target
            })
            .take(n)
            .collect()
    }

    /// Asserts the exact accounting invariant on every shard of a run,
    /// through the library-level checker
    /// ([`TelemetrySnapshot::check_invariants`]) — the same one the
    /// mid-run snapshot proptests apply while packets are still flowing.
    fn assert_accounting(stats: &[ShardStats]) {
        use clap_telemetry::{ShardSnapshot, TelemetrySnapshot};
        let snap = TelemetrySnapshot {
            shards: stats
                .iter()
                .map(|s| ShardSnapshot {
                    pushed: s.pushed,
                    scored: s.packets,
                    dropped: s.dropped,
                    quarantined: s.quarantined,
                    // At end of run every dispatched packet is accounted.
                    dispatched: s.pushed,
                    flows_peak: s.stream.flows_peak as u64,
                    ..ShardSnapshot::default()
                })
                .collect(),
        };
        if let Err(e) = snap.check_invariants() {
            panic!("accounting invariant broken: {e}\nstats: {stats:?}");
        }
    }

    /// Bitwise fingerprint of a run's verdicts, for determinism and
    /// survivor-identity checks.
    fn fingerprint(run: &ShardedRun) -> Vec<(u64, usize, usize, u32)> {
        run.verdicts
            .iter()
            .map(|v| {
                (
                    v.arrival,
                    v.flow.packets,
                    v.shard,
                    v.flow.scored.score.to_bits(),
                )
            })
            .collect()
    }

    /// Merged verdicts come back in order of first appearance in the
    /// stream — the `assemble_connections` order — for any shard count.
    #[test]
    fn shard_merge_order_is_first_appearance() {
        let clap = model();
        let corpus = traffic_gen::dataset(870, 10);
        let stream = interleave(&corpus);
        let offline = net_packet::assemble_connections(
            &stream.iter().map(|p| (*p).clone()).collect::<Vec<_>>(),
        );
        for shards in [1, 2, 4] {
            let run = clap
                .sharded_scorer_with(cfg(shards))
                .score_stream(stream.iter().copied());
            assert_eq!(run.verdicts.len(), offline.len());
            for (v, conn) in run.verdicts.iter().zip(&offline) {
                assert_eq!(
                    CanonicalKey::of_key(&v.flow.key),
                    CanonicalKey::of_key(&conn.key),
                    "merge order must match first-appearance order at {shards} shards"
                );
            }
            assert!(
                run.verdicts.windows(2).all(|w| w[0].arrival < w[1].arrival),
                "arrival tags are strictly increasing"
            );
        }
    }

    /// Every packet is accounted for exactly once across shards, and the
    /// per-shard stats are consistent with the merged verdicts.
    #[test]
    fn shard_accounting_is_exact() {
        let clap = model();
        let corpus = traffic_gen::dataset(871, 12);
        let stream = interleave(&corpus);
        let mut config = cfg(4);
        config.queue_capacity = 1; // maximal backpressure still loses nothing
        let run = clap
            .sharded_scorer_with(config)
            .score_stream(stream.iter().copied());
        assert_eq!(run.stats.len(), 4);
        let consumed: u64 = run.stats.iter().map(|s| s.packets).sum();
        assert_eq!(consumed as usize, stream.len());
        let pushed: u64 = run.stats.iter().map(|s| s.pushed).sum();
        assert_eq!(pushed as usize, stream.len());
        assert_accounting(&run.stats);
        let closed: u64 = run.stats.iter().map(|s| s.flows_closed).sum();
        assert_eq!(closed as usize, run.verdicts.len());
        let scored: usize = run.verdicts.iter().map(|v| v.flow.packets).sum();
        assert_eq!(scored, stream.len(), "every packet reaches a verdict");
        for v in &run.verdicts {
            assert_eq!(
                v.shard,
                CanonicalKey::of_key(&v.flow.key).shard_of(4),
                "flows are scored by the shard the hash assigns"
            );
        }
    }

    /// Driving one shard to its per-shard flow-table capacity fires
    /// capacity probing on that shard exactly as the unsharded engine
    /// would, while the other shards stay untouched.
    #[test]
    fn shard_capacity_eviction_matches_unsharded() {
        let clap = model();
        let shards = 4;
        let target = 2;
        let ports = ports_on_shard(target, shards, 6);
        let packets: Vec<Packet> = ports
            .iter()
            .enumerate()
            .map(|(i, &port)| raw_packet((1, port), (2, 80), TcpFlags::SYN, i as f64))
            .collect();

        let stream_cfg = StreamConfig {
            max_flows: 2,
            teardown_on_close: false,
            ..StreamConfig::default()
        };
        let config = ShardConfig {
            shards,
            queue_capacity: 8,
            stream: stream_cfg.clone(),
            ..ShardConfig::default()
        };
        let run = clap
            .sharded_scorer_with(config)
            .score_stream(packets.iter());

        // Reference: the same packets through one unsharded scorer with
        // the same per-table policy.
        let mut plain = clap.stream_scorer_with(stream_cfg);
        for p in &packets {
            plain.push(p);
        }
        let reference = plain.finish();

        assert_eq!(run.verdicts.len(), reference.len());
        let evicted = |flows: Vec<&ClosedFlow>| {
            flows
                .iter()
                .filter(|f| f.reason == CloseReason::CapacityEvicted)
                .count()
        };
        assert_eq!(
            evicted(run.verdicts.iter().map(|v| &v.flow).collect()),
            evicted(reference.iter().collect()),
            "capacity probing fires per shard exactly as unsharded"
        );
        assert_eq!(evicted(reference.iter().collect()), 4, "6 flows - 2 slots");
        for (shard, st) in run.stats.iter().enumerate() {
            if shard == target {
                assert_eq!(st.packets as usize, packets.len());
            } else {
                assert_eq!(st.packets, 0, "idle shards see no traffic");
                assert_eq!(st.flows_closed, 0);
            }
        }
    }

    /// Idle-timeout sweeps fire per shard with the shard's own clock,
    /// matching the unsharded engine fed the same (sub)stream.
    #[test]
    fn shard_idle_sweep_matches_unsharded() {
        let clap = model();
        let shards = 4;
        let target = 1;
        let ports = ports_on_shard(target, shards, 3);
        // Two flows at t=0, then a third packet 10s later: both earlier
        // flows are past a 1s idle deadline when the sweep runs.
        let packets = vec![
            raw_packet((1, ports[0]), (2, 80), TcpFlags::SYN, 0.0),
            raw_packet((1, ports[1]), (2, 80), TcpFlags::SYN, 0.5),
            raw_packet((1, ports[2]), (2, 80), TcpFlags::SYN, 10.0),
        ];
        let stream_cfg = StreamConfig {
            idle_timeout: 1.0,
            sweep_interval: 1,
            teardown_on_close: false,
            ..StreamConfig::default()
        };
        let config = ShardConfig {
            shards,
            queue_capacity: 8,
            stream: stream_cfg.clone(),
            ..ShardConfig::default()
        };
        let run = clap
            .sharded_scorer_with(config)
            .score_stream(packets.iter());

        let mut plain = clap.stream_scorer_with(stream_cfg);
        for p in &packets {
            plain.push(p);
        }
        let reference = plain.finish();

        let reasons = |flows: Vec<CloseReason>| {
            let mut idle = 0;
            let mut drained = 0;
            for r in flows {
                match r {
                    CloseReason::IdleTimeout => idle += 1,
                    CloseReason::Drained => drained += 1,
                    other => panic!("unexpected close reason {other:?}"),
                }
            }
            (idle, drained)
        };
        let sharded = reasons(run.verdicts.iter().map(|v| v.flow.reason).collect());
        let unsharded = reasons(reference.iter().map(|f| f.reason).collect());
        assert_eq!(
            sharded, unsharded,
            "idle sweeps fire per shard as unsharded"
        );
        assert_eq!(sharded, (2, 1));
    }

    /// TCP teardown finalizes flows inline on their owning shard with the
    /// same verdicts as the unsharded engine.
    #[test]
    fn shard_teardown_matches_unsharded() {
        let clap = model();
        let corpus = traffic_gen::dataset(873, 10);
        let stream = interleave(&corpus);
        let config = ShardConfig {
            shards: 4,
            queue_capacity: 8,
            stream: StreamConfig::default(), // teardown_on_close: true
            ..ShardConfig::default()
        };
        let run = clap
            .sharded_scorer_with(config)
            .score_stream(stream.iter().copied());

        let mut plain = clap.stream_scorer();
        for p in &stream {
            plain.push(p);
        }
        let mut reference = plain.drain_closed();
        reference.extend(plain.finish());

        assert_eq!(run.verdicts.len(), reference.len());
        let torn: Vec<&ShardVerdict> = run
            .verdicts
            .iter()
            .filter(|v| v.flow.reason == CloseReason::TcpClose)
            .collect();
        assert!(
            !torn.is_empty(),
            "generated traffic contains orderly closes"
        );
        for v in &torn {
            let r = reference
                .iter()
                .find(|f| f.key == v.flow.key && f.packets == v.flow.packets)
                .expect("teardown flow exists in unsharded reference");
            assert_eq!(r.reason, CloseReason::TcpClose);
            assert!(
                (r.scored.score - v.flow.scored.score).abs() < 1e-6,
                "sharded teardown verdict diverged: {} vs {}",
                v.flow.scored.score,
                r.scored.score
            );
        }
    }

    /// A single-packet smoke check that orientation handling (the PR 3
    /// orient buffer) behaves identically under sharding: the late pure
    /// SYN re-orients the flow on its shard.
    #[test]
    fn shard_late_syn_reorients() {
        let clap = model();
        // Server speaks first, client's pure SYN arrives second.
        let packets = [
            raw_packet((2, 80), (1, 1111), TcpFlags::ACK, 0.0),
            raw_packet((1, 1111), (2, 80), TcpFlags::SYN, 0.1),
        ];
        let config = ShardConfig {
            shards: 4,
            queue_capacity: 8,
            stream: StreamConfig {
                teardown_on_close: false,
                ..StreamConfig::default()
            },
            ..ShardConfig::default()
        };
        let run = clap
            .sharded_scorer_with(config)
            .score_stream(packets.iter());
        assert_eq!(run.verdicts.len(), 1);
        let key = &run.verdicts[0].flow.key;
        assert_eq!(key.client.port, 1111, "SYN sender becomes client");
        assert_eq!(
            key,
            &FlowKey::new(
                Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 1111),
                Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80),
            )
        );
    }

    /// A tuple whose flow is idle-swept and restarted *by the same push*
    /// (packet arrives after the idle deadline) must re-tag the new
    /// incarnation: both verdicts carry real, distinct arrival indices,
    /// identically across shard counts. Regression test for the restart
    /// path losing its arrival tag.
    #[test]
    fn shard_flow_restart_keeps_deterministic_arrivals() {
        let clap = model();
        // Same tuple: packet 0 at t=0, packet 1 at t=10 past a 1s idle
        // deadline — the second push sweeps incarnation 1 and starts
        // incarnation 2 from the same packet. A second tuple sits in
        // between so a lost tag would collide with its arrival.
        let packets = [
            raw_packet((1, 1111), (2, 80), TcpFlags::SYN, 0.0),
            raw_packet((3, 2222), (4, 80), TcpFlags::SYN, 0.5),
            raw_packet((1, 1111), (2, 80), TcpFlags::ACK, 10.0),
        ];
        let stream_cfg = StreamConfig {
            idle_timeout: 1.0,
            sweep_interval: 1,
            teardown_on_close: false,
            ..StreamConfig::default()
        };
        let mut arrivals_by_count = Vec::new();
        for shards in [1usize, 2, 4] {
            let config = ShardConfig {
                shards,
                queue_capacity: 8,
                stream: stream_cfg.clone(),
                ..ShardConfig::default()
            };
            let run = clap
                .sharded_scorer_with(config)
                .score_stream(packets.iter());
            assert_eq!(run.verdicts.len(), 3, "2 incarnations + 1 other flow");
            let arrivals: Vec<(u64, u16, usize)> = run
                .verdicts
                .iter()
                .map(|v| (v.arrival, v.flow.key.client.port, v.flow.packets))
                .collect();
            assert_eq!(
                arrivals,
                vec![(0, 1111, 1), (1, 2222, 1), (2, 1111, 1)],
                "restarted incarnation carries its own packet's index at {shards} shards"
            );
            arrivals_by_count.push(arrivals);
        }
        assert!(
            arrivals_by_count.windows(2).all(|w| w[0] == w[1]),
            "arrival tags are shard-count independent"
        );
    }

    /// With idle sweeps firing aggressively (long gaps, sweep every
    /// packet), repeated runs at a fixed shard count must still produce
    /// exactly the same verdicts — scheduling can never leak into output.
    /// (Across *different* shard counts, idle-split points may legally
    /// move: that boundary is documented in the module docs.)
    #[test]
    fn shard_idle_sweeps_are_deterministic_per_shard_count() {
        let clap = model();
        // Three tuples with multi-packet flows and inter-flow gaps far
        // past the idle deadline, so flows split into incarnations.
        let mut packets = Vec::new();
        for round in 0..4u8 {
            for (host, port) in [(1u8, 1111u16), (3, 2222), (5, 3333)] {
                packets.push(raw_packet(
                    (host, port),
                    (host + 1, 80),
                    if round == 0 {
                        TcpFlags::SYN
                    } else {
                        TcpFlags::ACK
                    },
                    f64::from(round) * 50.0 + f64::from(host) * 0.1,
                ));
            }
        }
        let stream_cfg = StreamConfig {
            idle_timeout: 10.0,
            sweep_interval: 1,
            teardown_on_close: false,
            ..StreamConfig::default()
        };
        for shards in [2usize, 4] {
            let config = ShardConfig {
                shards,
                queue_capacity: 2,
                stream: stream_cfg.clone(),
                ..ShardConfig::default()
            };
            let a = clap
                .sharded_scorer_with(config.clone())
                .score_stream(packets.iter());
            let b = clap
                .sharded_scorer_with(config)
                .score_stream(packets.iter());
            assert!(
                a.verdicts.len() > 3,
                "test premise: idle sweeps split flows into incarnations"
            );
            assert_eq!(
                fingerprint(&a),
                fingerprint(&b),
                "identical runs diverged at {shards} shards"
            );
        }
    }

    /// A mixed v4/v6/TCP/UDP stream (plus generated v4 background
    /// traffic) must yield *byte-identical* verdicts — same arrivals,
    /// keys, packet counts, reasons and bitwise scores — at every shard
    /// count. This is the PR-9 acceptance gate for the widened flow key:
    /// if the v6 or UDP key hashed or compared inconsistently anywhere in
    /// the dispatch path, flows would split or land on moving shards and
    /// the fingerprints would diverge.
    #[test]
    fn protocol_mixed_stream_verdicts_are_shard_count_invariant() {
        let clap = model();
        let mut packets: Vec<Packet> = traffic_gen::dataset(871, 6)
            .iter()
            .flat_map(|c| c.packets.iter().cloned())
            .collect();
        // v6 TCP handshake + data.
        packets.push(v6_packet((0xa, 5555), (0xb, 443), TcpFlags::SYN, 0.11));
        packets.push(v6_packet(
            (0xb, 443),
            (0xa, 5555),
            TcpFlags::SYN | TcpFlags::ACK,
            0.22,
        ));
        packets.push(v6_packet((0xa, 5555), (0xb, 443), TcpFlags::ACK, 0.33));
        // v4 UDP exchange.
        packets.push(udp_packet((7, 9999), (8, 53), 0.15, vec![1, 2, 3]));
        packets.push(udp_packet((8, 53), (7, 9999), 0.25, vec![4, 5, 6, 7]));
        // v6 UDP exchange.
        packets.push(udp6_packet((0xc, 7777), (0xd, 53), 0.18, vec![9; 12]));
        packets.push(udp6_packet((0xd, 53), (0xc, 7777), 0.28, vec![8; 20]));
        packets.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));

        let mut runs = Vec::new();
        for shards in [1usize, 2, 4, 7] {
            let run = clap
                .sharded_scorer_with(cfg(shards))
                .score_stream(packets.iter());
            let print: Vec<(u64, FlowKey, usize, CloseReason, u32)> = run
                .verdicts
                .iter()
                .map(|v| {
                    (
                        v.arrival,
                        v.flow.key,
                        v.flow.packets,
                        v.flow.reason,
                        v.flow.scored.score.to_bits(),
                    )
                })
                .collect();
            runs.push((shards, print));
        }
        let (_, reference) = &runs[0];
        assert!(
            reference
                .iter()
                .any(|(_, k, ..)| k.proto == net_packet::ipv4::PROTO_UDP),
            "test premise: stream produced UDP flows"
        );
        assert!(
            reference.iter().any(|(_, k, ..)| k.client.addr.is_ipv6()),
            "test premise: stream produced IPv6 flows"
        );
        for (shards, print) in &runs[1..] {
            assert_eq!(
                print, reference,
                "mixed-protocol verdicts diverged at {shards} shards"
            );
        }
    }

    /// Zero/one shard configurations degrade gracefully.
    #[test]
    fn shard_count_is_floored_at_one() {
        let clap = model();
        let corpus = traffic_gen::dataset(874, 3);
        let stream = interleave(&corpus);
        let run = clap
            .sharded_scorer_with(cfg(0))
            .score_stream(stream.iter().copied());
        assert_eq!(run.stats.len(), 1);
        assert_eq!(run.verdicts.len(), corpus.len());
    }

    /// An injected scoring panic quarantines exactly that packet,
    /// restarts the shard, and the run still completes with exact
    /// accounting.
    #[test]
    fn fault_panic_quarantines_packet_and_completes() {
        fault::silence_injected_panics();
        let clap = model();
        let corpus = traffic_gen::dataset(875, 10);
        let stream = interleave(&corpus);
        let arrival = (stream.len() / 2) as u64;
        let victim = CanonicalKey::of(stream[arrival as usize]).shard_of(4);
        let mut config = cfg(4);
        config.faults = FaultPlan::none().with(Fault::PanicAt { arrival });
        let run = clap
            .sharded_scorer_with(config)
            .try_score_stream(stream.iter().copied())
            .expect("supervised panic must not fail the run");
        assert_accounting(&run.stats);
        assert_eq!(run.quarantined.len(), 1);
        let q = &run.quarantined[0];
        assert_eq!(q.arrival, arrival);
        assert_eq!(q.shard, victim);
        assert_eq!(q.key, CanonicalKey::of(stream[arrival as usize]));
        assert!(q.panic.contains(fault::INJECTED_TAG));
        assert_eq!(run.stats[victim].quarantined, 1);
        assert_eq!(run.stats[victim].restarts, 1);
        for s in &run.stats {
            if s.shard != victim {
                assert_eq!(s.quarantined, 0);
                assert_eq!(s.restarts, 0);
            }
        }
        let pushed: u64 = run.stats.iter().map(|s| s.pushed).sum();
        assert_eq!(pushed as usize, stream.len());
    }

    /// Flows owned by surviving shards score byte-identically whether or
    /// not another shard quarantined and restarted mid-run — panic
    /// isolation leaks nothing across the partition.
    #[test]
    fn fault_panic_leaves_other_shards_bitwise_identical() {
        fault::silence_injected_panics();
        let clap = model();
        let corpus = traffic_gen::dataset(876, 10);
        let stream = interleave(&corpus);
        let arrival = (stream.len() / 3) as u64;
        let victim = CanonicalKey::of(stream[arrival as usize]).shard_of(4);
        let clean = clap
            .sharded_scorer_with(cfg(4))
            .score_stream(stream.iter().copied());
        let mut config = cfg(4);
        config.faults = FaultPlan::none().with(Fault::PanicAt { arrival });
        let faulted = clap
            .sharded_scorer_with(config)
            .try_score_stream(stream.iter().copied())
            .expect("supervised panic must not fail the run");
        let survivors = |run: &ShardedRun| -> Vec<(u64, usize, usize, u32)> {
            fingerprint(run)
                .into_iter()
                .filter(|&(_, _, shard, _)| shard != victim)
                .collect()
        };
        assert!(
            !survivors(&clean).is_empty(),
            "test premise: other shards own flows"
        );
        assert_eq!(
            survivors(&clean),
            survivors(&faulted),
            "surviving shards must be byte-identical to the fault-free run"
        );
    }

    /// A panic escaping the supervised region kills the worker: the run
    /// reports a typed error naming the dead shard, keeps the survivors'
    /// verdicts and every shard's stats, and accounting stays exact.
    #[test]
    fn fault_kill_returns_shard_run_error_with_survivors() {
        fault::silence_injected_panics();
        let clap = model();
        let corpus = traffic_gen::dataset(877, 10);
        let stream = interleave(&corpus);
        let arrival = (stream.len() / 2) as u64;
        let victim = CanonicalKey::of(stream[arrival as usize]).shard_of(4);
        let mut config = cfg(4);
        config.faults = FaultPlan::none().with(Fault::KillAt { arrival });
        let err = clap
            .sharded_scorer_with(config)
            .try_score_stream(stream.iter().copied())
            .expect_err("a hard kill must fail the run");
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].shard, victim);
        match &err.failures[0].kind {
            ShardFailureKind::Died(msg) => assert!(msg.contains(fault::INJECTED_TAG)),
            other => panic!("expected Died, got {other:?}"),
        }
        assert!(err.to_string().contains(&format!("shard {victim}")));
        let run = &err.partial;
        assert_eq!(run.stats.len(), 4, "dead shard's stats are retained");
        assert_accounting(&run.stats);
        let pushed: u64 = run.stats.iter().map(|s| s.pushed).sum();
        assert_eq!(pushed as usize, stream.len());
        assert!(run.stats[victim].dropped >= 1, "the in-flight packet");
        assert!(
            run.verdicts.iter().all(|v| v.shard != victim),
            "a dead shard contributes no verdicts"
        );
        assert!(!run.verdicts.is_empty(), "survivors' verdicts are retained");
        // And the survivors are byte-identical to a fault-free run.
        let clean = clap
            .sharded_scorer_with(cfg(4))
            .score_stream(stream.iter().copied());
        let survivors = |run: &ShardedRun| -> Vec<(u64, usize, usize, u32)> {
            fingerprint(run)
                .into_iter()
                .filter(|&(_, _, shard, _)| shard != victim)
                .collect()
        };
        assert_eq!(survivors(&clean), survivors(run));
    }

    /// A worker wedged long enough (injected stall, frozen heartbeat,
    /// full ring) trips the watchdog: the dispatcher cuts the shard off,
    /// sheds its remaining packets, and reports it stuck — while exact
    /// accounting holds throughout.
    #[test]
    fn fault_stall_trips_watchdog_and_sheds() {
        fault::silence_injected_panics();
        let clap = model();
        let shards = 4;
        let target = 0;
        let ports = ports_on_shard(target, shards, 4);
        let packets: Vec<Packet> = ports
            .iter()
            .enumerate()
            .map(|(i, &port)| raw_packet((1, port), (2, 80), TcpFlags::SYN, i as f64))
            .collect();
        let mut config = cfg(shards);
        config.queue_capacity = 1;
        config.watchdog_limit = 5_000;
        config.faults = FaultPlan::none().with(Fault::StallAt {
            arrival: 1,
            millis: 1_500,
        });
        let err = clap
            .sharded_scorer_with(config)
            .try_score_stream(packets.iter())
            .expect_err("a wedged shard must fail the run");
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].shard, target);
        assert!(matches!(
            err.failures[0].kind,
            ShardFailureKind::Stuck { .. }
        ));
        let st = &err.partial.stats[target];
        assert_eq!(st.pushed as usize, packets.len());
        assert!(st.dropped >= 1, "the watchdog shed at least one packet");
        assert_eq!(st.quarantined, 0);
        assert_accounting(&err.partial.stats);
    }

    /// Under `DropNewest` with a deterministic forced burst, exactly the
    /// burst's packets are shed — and two runs agree bit for bit.
    #[test]
    fn fault_drop_newest_sheds_only_during_burst() {
        let clap = model();
        let shards = 4;
        let target = 1;
        let ports = ports_on_shard(target, shards, 5);
        let packets: Vec<Packet> = ports
            .iter()
            .enumerate()
            .map(|(i, &port)| raw_packet((1, port), (2, 80), TcpFlags::SYN, i as f64))
            .collect();
        let mut config = cfg(shards);
        config.overload = OverloadPolicy::DropNewest;
        config.faults = FaultPlan::none().with(Fault::FullBurst { from: 1, until: 3 });
        let a = clap
            .sharded_scorer_with(config.clone())
            .try_score_stream(packets.iter())
            .expect("shedding is not a failure");
        let st = &a.stats[target];
        assert_eq!(st.pushed, 5);
        assert_eq!(st.dropped, 2, "exactly the burst arrivals are shed");
        assert_eq!(st.packets, 3);
        assert_eq!(st.quarantined, 0);
        assert_accounting(&a.stats);
        assert_eq!(a.verdicts.len(), 3, "shed single-packet flows never open");
        let b = clap
            .sharded_scorer_with(config)
            .try_score_stream(packets.iter())
            .expect("shedding is not a failure");
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(a.stats, b.stats, "forced bursts shed deterministically");
    }

    /// Under `Degrade { keep_one_in: 2 }` with the ring forced saturated
    /// for the whole stream, each flow keeps every other packet — all
    /// flows keep producing verdicts, on thinner evidence.
    #[test]
    fn fault_degrade_keeps_one_in_k_per_flow() {
        let clap = model();
        let shards = 4;
        let target = 2;
        let ports = ports_on_shard(target, shards, 2);
        // Two flows interleaved: A B A B A B (arrivals 0..6).
        let mut packets = Vec::new();
        for i in 0..3 {
            for (j, &port) in ports.iter().enumerate() {
                let flags = if i == 0 { TcpFlags::SYN } else { TcpFlags::ACK };
                packets.push(raw_packet(
                    (1, port),
                    (2, 80),
                    flags,
                    f64::from(i) + 0.1 * j as f64,
                ));
            }
        }
        let mut config = cfg(shards);
        config.overload = OverloadPolicy::Degrade { keep_one_in: 2 };
        config.faults = FaultPlan::none().with(Fault::FullBurst {
            from: 0,
            until: packets.len() as u64,
        });
        let run = clap
            .sharded_scorer_with(config)
            .try_score_stream(packets.iter())
            .expect("degrading is not a failure");
        let st = &run.stats[target];
        assert_eq!(st.pushed, 6);
        assert_eq!(st.packets, 4, "each flow keeps packets 0 and 2 of 3");
        assert_eq!(st.dropped, 2, "each flow sheds its middle packet");
        assert_eq!(st.degraded_windows, 1, "one saturation episode");
        assert_accounting(&run.stats);
        assert_eq!(run.verdicts.len(), 2, "both flows still produce verdicts");
        for v in &run.verdicts {
            assert_eq!(v.flow.packets, 2, "each flow scored 2 of its 3 packets");
        }
    }

    /// A garbage-header packet must be *scored*, not crash the worker:
    /// the pipeline models invalid fields by design (attacks store them
    /// deliberately).
    #[test]
    fn fault_malformed_packet_is_scored_not_fatal() {
        let clap = model();
        let corpus = traffic_gen::dataset(878, 8);
        let stream = interleave(&corpus);
        let arrival = (stream.len() / 2) as u64;
        let mut config = cfg(4);
        config.faults = FaultPlan::none().with(Fault::MalformAt { arrival });
        let run = clap
            .sharded_scorer_with(config)
            .try_score_stream(stream.iter().copied())
            .expect("a malformed packet must not fail the run");
        assert_accounting(&run.stats);
        assert_eq!(run.quarantined.len(), 0, "malformed packets are scored");
        let scored: u64 = run.stats.iter().map(|s| s.packets).sum();
        assert_eq!(scored as usize, stream.len(), "nothing is shed");
        let clean = clap
            .sharded_scorer_with(cfg(4))
            .score_stream(stream.iter().copied());
        assert_eq!(run.verdicts.len(), clean.verdicts.len());
    }

    /// A fault-free run under the default policy sheds, quarantines and
    /// restarts nothing — the regression gate the CI throughput job
    /// leans on.
    #[test]
    fn fault_free_runs_report_zero_shed() {
        let clap = model();
        let corpus = traffic_gen::dataset(879, 10);
        let stream = interleave(&corpus);
        let mut config = cfg(4);
        config.queue_capacity = 2; // heavy real backpressure, zero loss
        let run = clap
            .sharded_scorer_with(config)
            .try_score_stream(stream.iter().copied())
            .expect("fault-free runs succeed");
        assert_accounting(&run.stats);
        for s in &run.stats {
            assert_eq!(s.pushed, s.packets, "Block loses nothing");
            assert_eq!(s.dropped, 0);
            assert_eq!(s.quarantined, 0);
            assert_eq!(s.restarts, 0);
            assert_eq!(s.degraded_windows, 0);
        }
        assert!(run.quarantined.is_empty());
    }

    /// The `--overload-policy` grammar round-trips through Display.
    #[test]
    fn fault_overload_policy_parse_round_trips() {
        for (spec, policy) in [
            ("block", OverloadPolicy::Block),
            ("drop-newest", OverloadPolicy::DropNewest),
            ("drop", OverloadPolicy::DropNewest),
            ("degrade", OverloadPolicy::Degrade { keep_one_in: 8 }),
            ("degrade:3", OverloadPolicy::Degrade { keep_one_in: 3 }),
        ] {
            assert_eq!(OverloadPolicy::parse(spec), Ok(policy));
        }
        assert_eq!(
            OverloadPolicy::parse("degrade:3").unwrap().to_string(),
            "degrade:3"
        );
        assert_eq!(OverloadPolicy::default(), OverloadPolicy::Block);
        for bad in ["", "shed", "degrade:0", "degrade:x"] {
            assert!(
                OverloadPolicy::parse(bad).is_err(),
                "`{bad}` must not parse"
            );
        }
    }
}
