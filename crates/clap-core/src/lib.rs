//! CLAP — Context Learning based Adversarial Protection.
//!
//! Reproduction of the system from *"You Do (Not) Belong Here: Detecting DPI
//! Evasion Attacks with Context Learning"* (Zhu et al., CoNEXT '20). CLAP is
//! an unsupervised detector for packets crafted to elude stateful DPI
//! middleboxes. It trains on benign traffic only, in four stages (paper
//! §3.3):
//!
//! 1. **Inter-packet context** ([`rnn`] via [`features`] + `tcp-state`): a
//!    GRU is trained to predict, per packet, the reference TCP-stack state
//!    (22 classes). The trained gates encode how packets relate across a
//!    connection.
//! 2. **Context-profile fusion** ([`profile`]): per-packet header features
//!    (incl. amplification features) are concatenated with the GRU's update
//!    and reset gate activations into a 115-dim context profile; 3
//!    consecutive profiles are stacked into the 345-dim autoencoder input.
//! 3. **Joint-distribution learning**: an L1 autoencoder learns the benign
//!    context-profile distribution.
//! 4. **Verification** ([`score`]): sliding-window reconstruction errors are
//!    summarized with the paper's *localize-and-estimate* adversarial
//!    score; thresholding yields detection, the error peak yields
//!    localization.
//!
//! Scoring runs in three modes: **offline batch** over reassembled
//! connections ([`Clap::score_connections`], sharded across rayon workers
//! on the fused engine), **online streaming** over an interleaved packet
//! stream ([`stream`]: per-flow incremental state, bounded flow table,
//! scores emitted as packets arrive — equivalent to the batch path within
//! 1e-6), and **sharded streaming** ([`shard`]: the streaming engine
//! fanned out across worker threads by a symmetric RSS hash of the
//! 4-tuple, with bounded SPSC ingest queues and a deterministic merged
//! verdict order — equivalent to the single-threaded stream within 1e-6).
//!
//! # Quick start
//!
//! ```
//! use clap_core::{Clap, ClapConfig};
//!
//! // Benign traffic only (here: synthetic; swap in PCAPs for real use).
//! let benign = traffic_gen::dataset(42, 60);
//! let (clap, summary) = Clap::train(&benign, &ClapConfig::ci());
//! assert!(summary.rnn_accuracy > 0.5);
//!
//! // Score an unseen connection: higher = more likely adversarial.
//! let unseen = traffic_gen::dataset(43, 1).pop().unwrap();
//! let scored = clap.score_connection(&unseen);
//! assert!(scored.score.is_finite());
//! ```

pub mod features;
pub mod metrics;
pub mod pipeline;
pub mod profile;
pub mod score;
pub mod shard;
pub mod stream;

pub use features::{
    extract_connection, FeatureExtractor, FeatureVector, RangeModel, NUM_BASE, NUM_PACKET, NUM_RAW,
};
pub use metrics::{auc_roc, equal_error_rate, roc_curve, top_n_hit, RocPoint, ShardHealth};
pub use neural::QuantMode;
pub use pipeline::{Clap, ClapConfig, ClapScorer, TrainSummary};
pub use profile::{ProfileBuilder, ProfileWorkspace, GATE_FEATURES, PROFILE_LEN};
pub use score::{score_errors, ScoredConnection};
pub use shard::fault::{Fault, FaultPlan};
pub use shard::supervise::{Quarantined, ShardFailure, ShardFailureKind, ShardRunError};
pub use shard::{
    OverloadPolicy, ShardConfig, ShardStats, ShardVerdict, ShardedRun, ShardedStreamScorer,
};
pub use stream::{
    CloseReason, ClosedFlow, EvictionMode, FlowEntry, ResidentMode, StreamConfig, StreamScorer,
    StreamStats,
};
// The live telemetry plane (re-exported so callers need not depend on
// `clap-telemetry` directly): wait-free counters + coherent snapshots,
// per-stage latency histograms, and the verdict/flow wire format.
pub use clap_telemetry::{
    self as telemetry, ShardSnapshot, Stage, StageHists, StageSummary, StreamCells, TelemetryHub,
    TelemetrySnapshot,
};
