//! Supervision primitives for the sharded engine: quarantine records and
//! the typed error a degraded run returns instead of a bare panic.
//!
//! The design constraint is that a shard's accounting must survive the
//! shard's own death: if the worker thread panics outside the supervised
//! per-packet region, its local counters die with it. So every counter a
//! failure report needs lives in the shared telemetry hub
//! (`clap_telemetry::TelemetryHub`, one `WorkerCells` region per shard)
//! — owned by the [`ShardedStreamScorer`] and *shared by reference* into
//! the scoped worker — and the worker updates it wait-free as it goes.
//! Any thread can take a coherent snapshot mid-run; joining the (dead or
//! alive) worker synchronizes the final values, after which the
//! dispatcher reads them into the final [`ShardStats`].
//!
//! [`ShardStats`]: super::ShardStats
//! [`ShardedStreamScorer`]: super::ShardedStreamScorer

use net_packet::CanonicalKey;

/// One quarantined packet: a panic inside the supervised scoring region,
/// logged with the flow identity and the packet's global arrival index.
/// The key is the *canonical* (order-normalized) 4-tuple — orientation
/// may not have resolved by the time the packet blew up, so the oriented
/// `FlowKey` might not exist yet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// Shard whose worker panicked.
    pub shard: usize,
    /// Global arrival index of the offending packet.
    pub arrival: u64,
    /// Canonical 4-tuple of the offending packet.
    pub key: CanonicalKey,
    /// The panic payload, stringified.
    pub panic: String,
}

impl std::fmt::Display for Quarantined {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} quarantined packet #{} of flow {:?}: {}",
            self.shard, self.arrival, self.key, self.panic
        )
    }
}

/// Why a shard failed hard (as opposed to recovering via quarantine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardFailureKind {
    /// The worker thread died: a panic escaped the supervised region.
    /// Carries the stringified panic payload.
    Died(String),
    /// The watchdog declared the shard stuck: its ingest ring stayed
    /// full while its heartbeat froze at this reading for the configured
    /// iteration limit. The dispatcher stopped feeding it; if the worker
    /// later recovers, its verdicts are still merged.
    Stuck { heartbeat: u64 },
}

/// One failed shard of a degraded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    pub shard: usize,
    pub kind: ShardFailureKind,
}

impl std::fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ShardFailureKind::Died(msg) => {
                write!(f, "shard {} worker died: {}", self.shard, msg)
            }
            ShardFailureKind::Stuck { heartbeat } => write!(
                f,
                "shard {} declared stuck (ring full, heartbeat frozen at {})",
                self.shard, heartbeat
            ),
        }
    }
}

/// A sharded run in which at least one shard failed hard. This is an
/// error that *carries the partial result*: the surviving shards'
/// verdicts (merged in the usual arrival order) and every shard's stats
/// — including the failed ones', whose counters survive in the shared
/// telemetry — so a caller can keep serving N-1 shards' worth of
/// verdicts and alert on the failure instead of losing the whole run.
#[derive(Debug)]
pub struct ShardRunError {
    /// The failed shards, ordered by shard index.
    pub failures: Vec<ShardFailure>,
    /// Verdicts and per-shard stats of the degraded run.
    pub partial: super::ShardedRun,
}

impl std::fmt::Display for ShardRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of {} shards failed (",
            self.failures.len(),
            self.partial.stats.len()
        )?;
        for (i, failure) in self.failures.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{failure}")?;
        }
        write!(
            f,
            "); {} verdicts from surviving shards retained",
            self.partial.verdicts.len()
        )
    }
}

impl std::error::Error for ShardRunError {}

/// Stringifies a panic payload (`&str` and `String` payloads verbatim,
/// anything else a placeholder) for quarantine and failure records.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_failure_messages_name_the_shard() {
        let died = ShardFailure {
            shard: 3,
            kind: ShardFailureKind::Died("boom".into()),
        };
        assert_eq!(died.to_string(), "shard 3 worker died: boom");
        let stuck = ShardFailure {
            shard: 1,
            kind: ShardFailureKind::Stuck { heartbeat: 42 },
        };
        assert!(stuck.to_string().contains("shard 1"));
        assert!(stuck.to_string().contains("42"));
    }

    #[test]
    fn shard_panic_message_handles_payload_kinds() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static".to_string());
        assert_eq!(panic_message(s.as_ref()), "static");
        let s: Box<dyn std::any::Any + Send> = Box::new("literal");
        assert_eq!(panic_message(s.as_ref()), "literal");
        let s: Box<dyn std::any::Any + Send> = Box::new(7u32);
        assert_eq!(panic_message(s.as_ref()), "<non-string panic payload>");
    }
}
