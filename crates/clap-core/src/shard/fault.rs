//! Seed-deterministic fault injection for the supervised sharded engine.
//!
//! A [`FaultPlan`] is a schedule of faults keyed on the *global arrival
//! index* of the packet stream — the same index the dispatcher tags
//! packets with — so a plan is a pure value: replaying the same stream
//! under the same plan reproduces the same failures, byte for byte. The
//! supervisor and dispatcher consult the plan at well-defined points:
//!
//! * [`Fault::PanicAt`] — the worker panics *inside* the supervised
//!   per-packet region while scoring that packet. Exercises quarantine +
//!   fresh-flow-table restart; the run completes.
//! * [`Fault::KillAt`] — the worker dies *outside* the supervised region
//!   (models an unrecoverable failure). Exercises the hard-death path:
//!   the run returns a `ShardRunError` carrying the survivors' results.
//! * [`Fault::StallAt`] — the worker sleeps before consuming that packet
//!   (a slow consumer). Under a small ring this backs up the dispatcher
//!   and, with a tight watchdog limit, trips the stuck-shard detector.
//! * [`Fault::FullBurst`] — the dispatcher treats the owning shard's ring
//!   as full for every push in an arrival range. This is how the shed
//!   policies (`DropNewest`, `Degrade`) are tested deterministically:
//!   real ring occupancy depends on thread scheduling, a forced burst
//!   does not.
//! * [`Fault::MalformAt`] — the packet is replaced by [`malform`]'s
//!   garbage-header mutation of itself before dispatch (4-tuple
//!   preserved, so flow identity and shard assignment are unchanged).
//!
//! Plans come from three constructors: [`FaultPlan::with`] (explicit,
//! for targeted tests), [`FaultPlan::randomized`] (a seed-deterministic
//! schedule of *recoverable* faults, for property tests), and
//! [`FaultPlan::parse`] (the `--fault-plan` CLI grammar of the bench
//! binaries).

use net_packet::{IpHeader, Packet, Transport};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Marker every injected panic message carries, so
/// [`silence_injected_panics`] can tell expected fault noise from a real
/// bug's panic report.
pub const INJECTED_TAG: &str = "injected fault";

/// One injected fault, keyed on the global arrival index (see the module
/// docs for the semantics of each kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Worker panics inside the supervised region while scoring this
    /// packet: quarantined, shard restarts, run completes.
    PanicAt { arrival: u64 },
    /// Worker dies outside the supervised region on this packet: the run
    /// finishes degraded and reports a `ShardRunError`.
    KillAt { arrival: u64 },
    /// Worker sleeps `millis` before consuming this packet.
    StallAt { arrival: u64, millis: u64 },
    /// Dispatcher treats the owning shard's ring as full for every
    /// arrival in `from..until`.
    FullBurst { from: u64, until: u64 },
    /// Packet is replaced with [`malform`]'s mutation before dispatch.
    MalformAt { arrival: u64 },
}

/// A deterministic schedule of injected faults (possibly empty — the
/// default plan injects nothing and costs one slice scan per packet).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder: adds one fault to the schedule.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// True when the plan contains a hard kill — the only fault kind
    /// after which a run cannot complete cleanly.
    pub fn has_kills(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::KillAt { .. }))
    }

    /// Should the worker panic (supervised) while scoring this arrival?
    pub fn panic_at(&self, arrival: u64) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::PanicAt { arrival: a } if *a == arrival))
    }

    /// Should the worker die hard (unsupervised) on this arrival?
    pub fn kill_at(&self, arrival: u64) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::KillAt { arrival: a } if *a == arrival))
    }

    /// Stall duration before consuming this arrival, if any (the longest
    /// wins when several stalls target one packet).
    pub fn stall_at(&self, arrival: u64) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::StallAt { arrival: a, millis } if *a == arrival => Some(*millis),
                _ => None,
            })
            .max()
    }

    /// Should the dispatcher treat the target ring as full at this
    /// arrival?
    pub fn forced_full(&self, arrival: u64) -> bool {
        self.faults.iter().any(
            |f| matches!(f, Fault::FullBurst { from, until } if (*from..*until).contains(&arrival)),
        )
    }

    /// Should this arrival be replaced with its malformed mutation?
    pub fn malform_at(&self, arrival: u64) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::MalformAt { arrival: a } if *a == arrival))
    }

    /// A seed-deterministic schedule of 1–4 *recoverable* faults (no
    /// hard kills) over a stream of `packets` arrivals: panics, short
    /// stalls, forced-full bursts and malformed packets. Same seed, same
    /// plan — the property tests lean on that to assert run-to-run
    /// determinism under faults.
    pub fn randomized(seed: u64, packets: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let span = packets.max(1);
        let mut plan = FaultPlan::none();
        for _ in 0..rng.gen_range(1..=4usize) {
            let fault = match rng.gen_range(0..4u8) {
                0 => Fault::PanicAt {
                    arrival: rng.gen_range(0..span),
                },
                1 => Fault::StallAt {
                    arrival: rng.gen_range(0..span),
                    millis: rng.gen_range(1..4),
                },
                2 => {
                    let from = rng.gen_range(0..span);
                    Fault::FullBurst {
                        from,
                        until: (from + rng.gen_range(1..24)).min(span),
                    }
                }
                _ => Fault::MalformAt {
                    arrival: rng.gen_range(0..span),
                },
            };
            plan = plan.with(fault);
        }
        plan
    }

    /// Parses the `--fault-plan` CLI grammar: a comma-separated list of
    /// `panic@N`, `kill@N`, `stall@N:MS` (`MS` defaults to 10),
    /// `burst@A..B`, `malform@N`, or `random@SEED` (expands to
    /// [`randomized`](Self::randomized) over `packets` arrivals).
    pub fn parse(spec: &str, packets: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for token in spec.split(',').filter(|t| !t.trim().is_empty()) {
            let token = token.trim();
            let (kind, rest) = token
                .split_once('@')
                .ok_or_else(|| format!("fault `{token}`: expected `kind@position`"))?;
            let num = |s: &str| -> Result<u64, String> {
                s.parse()
                    .map_err(|_| format!("fault `{token}`: `{s}` is not a number"))
            };
            let fault = match kind {
                "panic" => Fault::PanicAt {
                    arrival: num(rest)?,
                },
                "kill" => Fault::KillAt {
                    arrival: num(rest)?,
                },
                "stall" => match rest.split_once(':') {
                    Some((a, ms)) => Fault::StallAt {
                        arrival: num(a)?,
                        millis: num(ms)?,
                    },
                    None => Fault::StallAt {
                        arrival: num(rest)?,
                        millis: 10,
                    },
                },
                "burst" => {
                    let (from, until) = rest
                        .split_once("..")
                        .ok_or_else(|| format!("fault `{token}`: expected `burst@A..B`"))?;
                    let (from, until) = (num(from)?, num(until)?);
                    if until <= from {
                        return Err(format!("fault `{token}`: empty burst range"));
                    }
                    Fault::FullBurst { from, until }
                }
                "malform" => Fault::MalformAt {
                    arrival: num(rest)?,
                },
                "random" => {
                    let random = FaultPlan::randomized(num(rest)?, packets);
                    for &f in random.faults() {
                        plan = plan.with(f);
                    }
                    continue;
                }
                other => {
                    return Err(format!(
                        "fault `{token}`: unknown kind `{other}` \
                         (expected panic/kill/stall/burst/malform/random)"
                    ))
                }
            };
            plan = plan.with(fault);
        }
        Ok(plan)
    }
}

/// Deterministic garbage-header mutation of a packet: every field a
/// header-parsing or feature-extraction bug could trip on is driven to a
/// hostile value, while the 4-tuple and timestamp are preserved so the
/// packet still belongs to the same flow, the same shard, and the same
/// position in stream time. The scoring pipeline models invalid fields
/// by design (attacks store them deliberately), so a malformed packet
/// must be *scored*, not crash the worker — the fault tests pin that.
pub fn malform(p: &Packet) -> Packet {
    let mut m = p.clone();
    match &mut m.ip {
        IpHeader::V4(h) => {
            h.version = 0xf;
            h.ihl = 1; // below the minimum legal 5
            h.total_length = u16::MAX; // wildly longer than the packet
            h.ttl = 0;
            h.checksum = !h.checksum;
        }
        IpHeader::V6(h) => {
            h.version = 0xf;
            h.payload_length = u16::MAX;
            h.hop_limit = 0;
        }
    }
    match &mut m.transport {
        Transport::Tcp(t) => {
            t.data_offset = 3; // below the minimum legal 5
            t.seq = u32::MAX;
            t.ack = u32::MAX;
            t.window = 0;
            t.urgent = u16::MAX;
            t.checksum = !t.checksum;
        }
        Transport::Udp(u) => {
            u.length = u16::MAX;
            u.checksum = !u.checksum;
        }
    }
    m
}

/// Installs (once, process-wide) a panic hook that swallows the report
/// of *injected* panics — fault suites would otherwise spray hundreds of
/// expected `injected fault` backtraces over the test output. Any panic
/// whose payload does not carry [`INJECTED_TAG`] still reaches the
/// previously installed hook untouched, so real bugs keep their reports.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|msg| msg.contains(INJECTED_TAG));
            if !injected {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_lookups_match_schedule() {
        let plan = FaultPlan::none()
            .with(Fault::PanicAt { arrival: 3 })
            .with(Fault::KillAt { arrival: 9 })
            .with(Fault::StallAt {
                arrival: 5,
                millis: 7,
            })
            .with(Fault::FullBurst {
                from: 10,
                until: 12,
            })
            .with(Fault::MalformAt { arrival: 1 });
        assert!(plan.panic_at(3) && !plan.panic_at(4));
        assert!(plan.kill_at(9) && !plan.kill_at(3));
        assert_eq!(plan.stall_at(5), Some(7));
        assert_eq!(plan.stall_at(6), None);
        assert!(plan.forced_full(10) && plan.forced_full(11));
        assert!(!plan.forced_full(12), "burst range is half-open");
        assert!(plan.malform_at(1) && !plan.malform_at(2));
        assert!(plan.has_kills());
        assert!(!FaultPlan::none().has_kills());
    }

    #[test]
    fn fault_plan_randomized_is_seed_deterministic() {
        let a = FaultPlan::randomized(42, 500);
        let b = FaultPlan::randomized(42, 500);
        assert_eq!(a, b, "same seed must yield the same plan");
        assert!(!a.is_empty());
        assert!(!a.has_kills(), "randomized plans stay recoverable");
        let c = FaultPlan::randomized(43, 500);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn fault_plan_parse_round_trips_the_grammar() {
        let plan = FaultPlan::parse("panic@12, stall@30:5,burst@40..60,malform@7,kill@99", 100)
            .expect("valid spec");
        assert_eq!(
            plan.faults(),
            &[
                Fault::PanicAt { arrival: 12 },
                Fault::StallAt {
                    arrival: 30,
                    millis: 5
                },
                Fault::FullBurst {
                    from: 40,
                    until: 60
                },
                Fault::MalformAt { arrival: 7 },
                Fault::KillAt { arrival: 99 },
            ]
        );
        assert_eq!(
            FaultPlan::parse("stall@8", 10).unwrap().stall_at(8),
            Some(10),
            "stall millis default to 10"
        );
        let random = FaultPlan::parse("random@42", 500).unwrap();
        assert_eq!(random, FaultPlan::randomized(42, 500));
        assert_eq!(FaultPlan::parse("", 10).unwrap(), FaultPlan::none());
        for bad in ["panic", "panic@x", "burst@5..5", "burst@9", "flood@3"] {
            assert!(FaultPlan::parse(bad, 10).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn fault_malform_keeps_flow_identity() {
        use net_packet::{CanonicalKey, Ipv4Header, TcpFlags, TcpHeader};
        use std::net::Ipv4Addr;
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 64);
        let mut tcp = TcpHeader::new(1234, 80, 77, 0);
        tcp.flags = TcpFlags::SYN;
        let p = Packet::new(1.5, ip, tcp, vec![1, 2, 3]);
        let m = malform(&p);
        assert_eq!(CanonicalKey::of(&m), CanonicalKey::of(&p));
        assert_eq!(m.timestamp, p.timestamp);
        assert_ne!(m.tcp().data_offset, p.tcp().data_offset);
        assert_ne!(m.ipv4().total_length, p.ipv4().total_length);
    }
}
