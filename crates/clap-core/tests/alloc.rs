//! Steady-state allocation discipline for the streaming flow table.
//!
//! At a churn plateau the scorer recycles slab slots, resident-arena rows
//! and the canonical-key map in place, so the per-packet hot path must not
//! allocate. The only inherent allocation is per flow *retirement*: a
//! [`ClosedFlow`] takes ownership of the flow's score log (`mem::take` of
//! `window_errors`), so the recycled slot regrows a small vector for its
//! next occupant. This test pins both facts with a counting global
//! allocator: allocations across a measured window scale with flows
//! closed, not with packets pushed.
//!
//! The whole file is one `#[test]` because the counter is process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use clap_core::{
    Clap, ClapConfig, EvictionMode, QuantMode, ResidentMode, StageHists, StreamCells, StreamConfig,
};
use traffic_gen::ChurnConfig;

/// Counts every heap acquisition (alloc, alloc_zeroed, realloc).
/// Deallocation is free and uncounted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const WARMUP_PACKETS: usize = 20_000;
const WINDOW_PACKETS: usize = 40_000;
const PLATEAU_FLOWS: usize = 96;

#[test]
fn steady_state_pushes_do_not_allocate_per_packet() {
    let benign = traffic_gen::dataset(77, 20);
    let mut cfg = ClapConfig::ci();
    cfg.ae.epochs = 8;
    let clap = Clap::train(&benign, &cfg).0;

    // Pre-materialize the whole stream so generator allocations (packet
    // buffers, RNG state) stay outside the measured window.
    let churn = ChurnConfig::new(0xa110c, PLATEAU_FLOWS, WARMUP_PACKETS + WINDOW_PACKETS);
    let packets: Vec<_> = traffic_gen::churn(&churn).collect();
    assert_eq!(packets.len(), WARMUP_PACKETS + WINDOW_PACKETS);

    let mut scorer = clap.stream_scorer_with(StreamConfig {
        quant: QuantMode::Off,
        resident: ResidentMode::Int8,
        eviction: EvictionMode::Wheel,
        idle_timeout: 30.0,
        ..StreamConfig::default()
    });
    // Telemetry on: counter cells and stage histograms attached up front
    // must keep the measured hot path allocation-free (the cells are
    // fixed-size atomics; a latency sample records into preallocated
    // buckets).
    scorer.attach_telemetry(std::sync::Arc::new(StreamCells::default()));
    scorer.attach_stages(std::sync::Arc::new(StageHists::default()));

    // Warmup: reach the churn plateau so the slab, resident arena, key
    // map, wheel lists and every scratch buffer are at their steady size.
    for p in &packets[..WARMUP_PACKETS] {
        scorer.push(p);
    }
    drop(scorer.drain_closed());
    let closed_before: u64 = {
        let s = scorer.stats();
        s.closed_tcp + s.evicted_idle + s.evicted_capacity + s.length_capped
    };

    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    for p in &packets[WARMUP_PACKETS..] {
        scorer.push(p);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;

    let closed: u64 = {
        let s = scorer.stats();
        s.closed_tcp + s.evicted_idle + s.evicted_capacity + s.length_capped
    } - closed_before;
    assert!(
        closed > 1_000,
        "churn window retired only {closed} flows — not a steady-state measurement"
    );

    eprintln!("steady window: {allocs} allocations, {WINDOW_PACKETS} packets, {closed} closes");

    // Retiring a flow hands its score log to the ClosedFlow and regrows a
    // small vector in the recycled slot: a handful of allocations per
    // close. Nothing on the per-packet path allocates.
    let budget = closed * 8 + 256;
    assert!(
        allocs <= budget,
        "{allocs} allocations for {WINDOW_PACKETS} packets / {closed} closes \
         (budget {budget}) — the per-packet path is allocating"
    );
    assert!(
        allocs < (WINDOW_PACKETS as u64) / 4,
        "{allocs} allocations across {WINDOW_PACKETS} packets — \
         allocation is scaling with packets, not flow turnover"
    );
}
