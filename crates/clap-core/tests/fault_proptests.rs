//! Property-based tests for the supervised sharded engine's fault
//! tolerance: isolation, accounting and determinism under randomized
//! injected fault schedules — the acceptance invariants of the
//! supervision work.

use clap_core::{
    Clap, ClapConfig, Fault, FaultPlan, OverloadPolicy, ShardConfig, ShardHealth, ShardedRun,
    StreamConfig,
};
use net_packet::CanonicalKey;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One trained detector shared across property cases (training dominates
/// runtime; per-case work is scoring only).
fn model() -> &'static Clap {
    static MODEL: OnceLock<Clap> = OnceLock::new();
    MODEL.get_or_init(|| {
        clap_core::shard::fault::silence_injected_panics();
        let benign = traffic_gen::dataset(78, 20);
        let mut cfg = ClapConfig::ci();
        cfg.ae.epochs = 8;
        Clap::train(&benign, &cfg).0
    })
}

/// An interleaved packet stream over a generated corpus.
fn stream_for(seed: u64) -> Vec<net_packet::Packet> {
    let conns = traffic_gen::dataset(seed ^ 0xfa17, 6);
    let mut stream: Vec<net_packet::Packet> = conns
        .iter()
        .flat_map(|c| c.packets.iter().cloned())
        .collect();
    stream.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
    stream
}

fn config(shards: usize, queue_capacity: usize) -> ShardConfig {
    ShardConfig {
        shards,
        queue_capacity,
        stream: StreamConfig {
            teardown_on_close: false,
            ..StreamConfig::default()
        },
        ..ShardConfig::default()
    }
}

/// Bitwise verdict fingerprint: arrival, flow size, owning shard, exact
/// score bits.
fn fingerprint(run: &ShardedRun) -> Vec<(u64, usize, usize, u32)> {
    run.verdicts
        .iter()
        .map(|v| {
            (
                v.arrival,
                v.flow.packets,
                v.shard,
                v.flow.scored.score.to_bits(),
            )
        })
        .collect()
}

// Every case replays the full corpus through the sharded engine (twice
// for the determinism and isolation properties), so case budgets are
// kept deliberately small.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Under a randomized schedule of recoverable faults (panics,
    /// stalls, forced bursts, malformed packets) and any overload
    /// policy, the run completes and the exact accounting invariant
    /// `pushed == scored + dropped + quarantined` holds on every shard,
    /// with the pushed total covering the whole stream.
    #[test]
    fn fault_randomized_schedules_preserve_accounting(
        seed in 0u64..10_000,
        shards in prop_oneof![Just(2usize), Just(4usize)],
        queue_capacity in 1usize..16,
        policy in prop_oneof![
            Just(OverloadPolicy::Block),
            Just(OverloadPolicy::DropNewest),
            Just(OverloadPolicy::Degrade { keep_one_in: 3 }),
        ],
    ) {
        let clap = model();
        let stream = stream_for(seed);
        let mut cfg = config(shards, queue_capacity);
        cfg.overload = policy;
        cfg.faults = FaultPlan::randomized(seed, stream.len() as u64);
        let run = clap
            .sharded_scorer_with(cfg)
            .try_score_stream(stream.iter())
            .expect("recoverable faults must not fail the run");
        let accounting = ShardHealth::check_accounting(&run.stats);
        prop_assert!(accounting.is_ok(), "{:?}", accounting);
        let health = ShardHealth::of(&run.stats);
        prop_assert_eq!(health.pushed as usize, stream.len(), "every packet dispatched");
        prop_assert_eq!(
            health.quarantined as usize,
            run.quarantined.len(),
            "quarantine log matches the counters"
        );
        // Flows only shrink under shed policies; verdicts never exceed
        // what the scored packets can open.
        let scored_in_verdicts: usize = run.verdicts.iter().map(|v| v.flow.packets).sum();
        prop_assert!(scored_in_verdicts as u64 <= health.scored);
    }

    /// The acceptance-pinned isolation property: with a `FaultPlan`
    /// panicking one shard mid-run, the run completes and every flow
    /// owned by a *surviving* shard produces a verdict byte-identical to
    /// the fault-free run — quarantine and restart leak nothing across
    /// the partition.
    #[test]
    fn fault_panic_isolation_leaves_survivors_bitwise_identical(
        seed in 0u64..10_000,
        arrival_pick in 0usize..1_000,
        queue_capacity in 1usize..16,
    ) {
        let clap = model();
        let stream = stream_for(seed);
        let shards = 4;
        let arrival = (arrival_pick % stream.len()) as u64;
        let victim = CanonicalKey::of(&stream[arrival as usize]).shard_of(shards);

        let clean = clap
            .sharded_scorer_with(config(shards, queue_capacity))
            .try_score_stream(stream.iter())
            .expect("fault-free run succeeds");
        let mut cfg = config(shards, queue_capacity);
        cfg.faults = FaultPlan::none().with(Fault::PanicAt { arrival });
        let faulted = clap
            .sharded_scorer_with(cfg)
            .try_score_stream(stream.iter())
            .expect("a supervised panic must not fail the run");

        let accounting = ShardHealth::check_accounting(&faulted.stats);
        prop_assert!(accounting.is_ok(), "{:?}", accounting);
        prop_assert_eq!(faulted.quarantined.len(), 1);
        prop_assert_eq!(faulted.quarantined[0].arrival, arrival);
        prop_assert_eq!(faulted.stats[victim].quarantined, 1);
        let survivors = |run: &ShardedRun| -> Vec<(u64, usize, usize, u32)> {
            fingerprint(run)
                .into_iter()
                .filter(|&(_, _, shard, _)| shard != victim)
                .collect()
        };
        prop_assert_eq!(
            survivors(&clean),
            survivors(&faulted),
            "surviving shards must be byte-identical to the fault-free run"
        );
    }

    /// Run-to-run determinism under faults: the same seed-derived plan
    /// replayed twice over the same stream yields byte-identical
    /// verdicts, stats and quarantine logs. (Real ring occupancy never
    /// sheds here — the capacity exceeds the stream — so shed decisions
    /// come only from the plan's deterministic forced bursts.)
    #[test]
    fn fault_same_seed_is_byte_identical_across_runs(
        seed in 0u64..10_000,
        policy in prop_oneof![
            Just(OverloadPolicy::Block),
            Just(OverloadPolicy::DropNewest),
            Just(OverloadPolicy::Degrade { keep_one_in: 2 }),
        ],
    ) {
        let clap = model();
        let stream = stream_for(seed);
        let mut cfg = config(4, stream.len().max(1));
        cfg.overload = policy;
        cfg.faults = FaultPlan::randomized(seed, stream.len() as u64);
        let run = |c: ShardConfig| {
            clap.sharded_scorer_with(c)
                .try_score_stream(stream.iter())
                .expect("recoverable faults must not fail the run")
        };
        let a = run(cfg.clone());
        let b = run(cfg);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b), "verdicts diverged");
        prop_assert_eq!(a.stats, b.stats, "stats diverged");
        prop_assert_eq!(a.quarantined, b.quarantined, "quarantine logs diverged");
    }
}
