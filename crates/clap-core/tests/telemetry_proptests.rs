//! Property-based tests for the live telemetry plane: snapshots taken
//! *while packets flow* — from a separate sampler thread, against a
//! sharded run under randomized fault injection — must be coherent at
//! every instant: the exact shed/accounting invariant `pushed == scored +
//! dropped + quarantined` holds in every sample, every monotone counter
//! only moves forward between samples, and the end-of-run deltas agree
//! with the run's own [`ShardStats`].

use clap_core::{
    Clap, ClapConfig, FaultPlan, OverloadPolicy, ShardConfig, StreamConfig, TelemetrySnapshot,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// One trained detector shared across property cases (training dominates
/// runtime; per-case work is scoring only).
fn model() -> &'static Clap {
    static MODEL: OnceLock<Clap> = OnceLock::new();
    MODEL.get_or_init(|| {
        clap_core::shard::fault::silence_injected_panics();
        let benign = traffic_gen::dataset(79, 20);
        let mut cfg = ClapConfig::ci();
        cfg.ae.epochs = 8;
        Clap::train(&benign, &cfg).0
    })
}

/// An interleaved packet stream over a generated corpus.
fn stream_for(seed: u64) -> Vec<net_packet::Packet> {
    let conns = traffic_gen::dataset(seed ^ 0x7e1e, 6);
    let mut stream: Vec<net_packet::Packet> = conns
        .iter()
        .flat_map(|c| c.packets.iter().cloned())
        .collect();
    stream.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
    stream
}

fn config(shards: usize, queue_capacity: usize) -> ShardConfig {
    ShardConfig {
        shards,
        queue_capacity,
        stream: StreamConfig {
            teardown_on_close: false,
            ..StreamConfig::default()
        },
        ..ShardConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A sampler thread hammering [`TelemetryHub::snapshot`] while a
    /// faulted sharded run is in flight sees, at *every* sample, the
    /// exact accounting invariant and per-counter monotonicity — the
    /// seqlock cut is coherent mid-run, not just at join.
    #[test]
    fn telemetry_midrun_snapshots_stay_coherent_under_faults(
        seed in 0u64..10_000,
        shards in prop_oneof![Just(2usize), Just(4usize)],
        queue_capacity in 1usize..16,
        policy in prop_oneof![
            Just(OverloadPolicy::Block),
            Just(OverloadPolicy::DropNewest),
            Just(OverloadPolicy::Degrade { keep_one_in: 3 }),
        ],
    ) {
        let clap = model();
        let stream = stream_for(seed);
        let mut cfg = config(shards, queue_capacity);
        cfg.overload = policy;
        cfg.faults = FaultPlan::randomized(seed, stream.len() as u64);
        let scorer = clap.sharded_scorer_with(cfg);
        let hub = scorer.telemetry();

        let stop = AtomicBool::new(false);
        let (run, samples) = std::thread::scope(|s| {
            let sampler = s.spawn(|| {
                let mut taken = 0u64;
                let mut prev: Option<TelemetrySnapshot> = None;
                while !stop.load(Ordering::Relaxed) {
                    let snap = hub.snapshot();
                    snap.check_invariants()?;
                    if let Some(p) = &prev {
                        TelemetrySnapshot::check_monotonic(p, &snap)?;
                    }
                    prev = Some(snap);
                    taken += 1;
                }
                Ok::<u64, String>(taken)
            });
            let run = scorer
                .try_score_stream(stream.iter())
                .expect("recoverable faults must not fail the run");
            stop.store(true, Ordering::Relaxed);
            (run, sampler.join().expect("sampler must not panic"))
        });
        let samples = samples.unwrap_or_else(|e| panic!("mid-run snapshot incoherent: {e}"));
        prop_assert!(samples > 0, "sampler never ran");

        // At rest, the hub deltas are exactly the run's ShardStats: the
        // wait-free cells and the classical accounting agree.
        let end = hub.snapshot();
        prop_assert!(end.check_invariants().is_ok());
        for st in &run.stats {
            let e = &end.shards[st.shard];
            prop_assert_eq!(e.pushed, st.pushed);
            prop_assert_eq!(e.dispatched, st.pushed);
            prop_assert_eq!(e.scored, st.packets);
            prop_assert_eq!(e.dropped, st.dropped);
            prop_assert_eq!(e.quarantined, st.quarantined);
            prop_assert_eq!(e.restarts, st.restarts);
            prop_assert_eq!(e.flows_closed, st.flows_closed);
            prop_assert_eq!(e.full_waits, st.full_waits);
            prop_assert_eq!(e.degraded_windows, st.degraded_windows);
            prop_assert_eq!(e.in_flight, 0u64, "nothing in flight at rest");
            prop_assert_eq!(e.live_flows, 0u64, "final drain closed everything");
            prop_assert_eq!(e.flows_peak as usize, st.stream.flows_peak);
        }
    }

    /// The conntrack-style dump: with `dump_flows` on, the end-of-stream
    /// flow table comes back sorted by arrival, keyed consistently with
    /// the verdicts, and with per-flow packet counts that never exceed
    /// what the shard scored.
    #[test]
    fn telemetry_flow_dump_is_consistent(
        seed in 0u64..10_000,
        shards in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
    ) {
        let clap = model();
        let stream = stream_for(seed);
        let mut cfg = config(shards, stream.len().max(1));
        cfg.dump_flows = true;
        // Keep flows alive to the end so the dump is non-trivial.
        cfg.stream.idle_timeout = 1e9;
        let scorer = clap.sharded_scorer_with(cfg);
        let run = scorer
            .try_score_stream(stream.iter())
            .expect("fault-free run succeeds");
        prop_assert!(!run.flows.is_empty(), "idle timeout off: flows must survive to the dump");
        prop_assert!(
            run.flows.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "dump is sorted by arrival"
        );
        let dumped_packets: u64 = run.flows.iter().map(|f| f.packets).sum();
        let scored: u64 = run.stats.iter().map(|s| s.packets).sum();
        prop_assert!(dumped_packets <= scored);
        for f in &run.flows {
            prop_assert!(f.age >= 0.0 && f.idle >= 0.0 && f.age >= f.idle);
            prop_assert!(f.score.is_finite());
            // A flow still orientation-buffering has scored nothing yet;
            // any flow with scored packets has accumulated their bytes.
            prop_assert!(f.packets == 0 || f.bytes > 0);
        }
        // Every drained verdict's flow appears in the dump (drained ==
        // alive at end of stream), under the same canonical key.
        use std::collections::HashSet;
        let dumped: HashSet<_> = run
            .flows
            .iter()
            .map(|f| net_packet::CanonicalKey::of_key(&f.key))
            .collect();
        for v in &run.verdicts {
            if v.flow.reason == clap_core::CloseReason::Drained {
                prop_assert!(
                    dumped.contains(&net_packet::CanonicalKey::of_key(&v.flow.key)),
                    "drained flow missing from the dump"
                );
            }
        }
    }
}
