//! Property-based tests for CLAP's feature extraction, metrics and
//! scoring invariants.

use clap_core::{
    auc_roc, equal_error_rate, extract_connection, roc_curve, score_errors, Clap, ClapConfig,
    EvictionMode, QuantMode, RangeModel, ResidentMode, ShardConfig, StreamConfig,
};
use net_packet::{Connection, TcpFlags};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One trained detector shared across property cases (training dominates
/// runtime; per-case work is scoring only).
fn model() -> &'static Clap {
    static MODEL: OnceLock<Clap> = OnceLock::new();
    MODEL.get_or_init(|| {
        let benign = traffic_gen::dataset(77, 20);
        let mut cfg = ClapConfig::ci();
        cfg.ae.epochs = 8;
        Clap::train(&benign, &cfg).0
    })
}

/// Maximum relative int8-vs-f32 score drift the calibration harness
/// tolerates. Measured drift on this model family sits around 1–2% for
/// benign traffic. Corrupted packets used to push the worst connections
/// toward ~10% by planting an outlier in a profile row and coarsening
/// that row's on-the-fly activation grid; the outlier-aware clip in
/// `neural::quant` now saturates such isolated spikes instead, and the
/// measured tail over 300 randomized corrupted cases sits below 4%. The
/// 5% bound keeps margin for the slightly different models each CI
/// kernel-ISA leg trains, without letting a *different verdict function*
/// masquerade as quantization noise.
const INT8_REL_DRIFT: f32 = 0.05;

/// A detection threshold for flip-rate checks, derived once from the f32
/// engine's benign score distribution — the deployment recipe itself
/// (`Clap::threshold_from_benign` at the 95th percentile).
fn f32_threshold() -> f32 {
    static THRESHOLD: OnceLock<f32> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        let benign = traffic_gen::dataset(0x7e57_7e57, 24);
        model().threshold_from_benign_with(&benign, 0.95, QuantMode::Off)
    })
}

proptest! {
    /// Feature extraction is total and well-shaped on arbitrary generated
    /// traffic, and every base feature stays within sane bounds.
    #[test]
    fn features_are_bounded(seed in 0u64..500) {
        let conns = traffic_gen::dataset(seed, 1);
        let fvs = extract_connection(&conns[0]);
        prop_assert_eq!(fvs.len(), conns[0].len());
        for fv in &fvs {
            prop_assert_eq!(fv.base.len(), clap_core::NUM_BASE);
            prop_assert_eq!(fv.raw.len(), clap_core::NUM_RAW);
            for (i, &v) in fv.base.iter().enumerate() {
                prop_assert!(v.is_finite(), "base[{i}] not finite");
                prop_assert!((-0.01..=1.01).contains(&v), "base[{i}] = {v} out of [0,1]");
            }
            for (i, &v) in fv.raw.iter().enumerate() {
                prop_assert!(v.is_finite(), "raw[{i}] not finite");
            }
        }
    }

    /// Benign traffic fits its own fitted ranges: no out-of-range flags.
    #[test]
    fn fitted_ranges_cover_training_data(seed in 0u64..300) {
        let conns = traffic_gen::dataset(seed, 3);
        let fvs: Vec<_> = conns.iter().flat_map(extract_connection).collect();
        let rm = RangeModel::fit(&fvs);
        for fv in &fvs {
            let row = rm.packet_features(fv);
            // Amplification slots #33..#50 (indices 32..50) must all be 0.
            for (i, &v) in row[32..50].iter().enumerate() {
                prop_assert_eq!(v, 0.0, "training data flagged out-of-range at slot {}", i);
            }
        }
    }

    /// AUC is symmetric under swapping populations: AUC(a,b) = 1 - AUC(b,a).
    #[test]
    fn auc_antisymmetry(
        a in prop::collection::vec(0.0f32..1.0, 1..30),
        b in prop::collection::vec(0.0f32..1.0, 1..30),
    ) {
        let x = auc_roc(&a, &b);
        let y = auc_roc(&b, &a);
        prop_assert!((x + y - 1.0).abs() < 1e-5, "{x} + {y} != 1");
    }

    /// AUC is invariant under any strictly monotone transform of scores.
    #[test]
    fn auc_monotone_invariance(
        a in prop::collection::vec(0.0f32..1.0, 1..20),
        b in prop::collection::vec(0.0f32..1.0, 1..20),
    ) {
        let x = auc_roc(&a, &b);
        let ta: Vec<f32> = a.iter().map(|v| v * 3.0 + 1.0).collect();
        let tb: Vec<f32> = b.iter().map(|v| v * 3.0 + 1.0).collect();
        prop_assert!((auc_roc(&ta, &tb) - x).abs() < 1e-6);
    }

    /// EER is always in [0, 1] and roughly complements AUC direction:
    /// perfect separation gives EER ~0, inverted separation gives high EER.
    #[test]
    fn eer_bounds(
        a in prop::collection::vec(0.0f32..1.0, 2..30),
        b in prop::collection::vec(0.0f32..1.0, 2..30),
    ) {
        let e = equal_error_rate(&a, &b);
        prop_assert!((0.0..=1.0).contains(&e));
    }

    /// ROC curves always span (0,0) to (1,1) and are monotone.
    #[test]
    fn roc_curve_monotone(
        a in prop::collection::vec(0.0f32..1.0, 1..25),
        b in prop::collection::vec(0.0f32..1.0, 1..25),
    ) {
        let curve = roc_curve(&a, &b);
        prop_assert_eq!(curve[0].tpr, 1.0);
        prop_assert_eq!(curve[0].fpr, 1.0);
        let last = curve.last().unwrap();
        prop_assert_eq!(last.tpr, 0.0);
        prop_assert_eq!(last.fpr, 0.0);
        for w in curve.windows(2) {
            prop_assert!(w[1].tpr <= w[0].tpr + 1e-6);
            prop_assert!(w[1].fpr <= w[0].fpr + 1e-6);
        }
    }

    /// The adversarial score never exceeds the peak error and never falls
    /// below the minimum error (it is a mean over a window containing the
    /// peak).
    #[test]
    fn score_bounded_by_errors(errs in prop::collection::vec(0.0f32..10.0, 1..50)) {
        let (peak, score) = score_errors(&errs, 5);
        let max = errs.iter().cloned().fold(f32::MIN, f32::max);
        let min = errs.iter().cloned().fold(f32::MAX, f32::min);
        prop_assert!(errs[peak] == max);
        prop_assert!(score <= max + 1e-6);
        prop_assert!(score >= min - 1e-6);
    }

    /// The streaming engine's headline guarantee: feeding a connection's
    /// packets one at a time — with flows interleaved through one shared
    /// scorer — yields scores within 1e-6 of the offline batch path, on
    /// arbitrary generated traffic with and without injected adversarial
    /// packets (the paper's Bad-Checksum-RST).
    #[test]
    fn streaming_scores_match_batch(seed in 0u64..10_000, corrupt in any::<bool>()) {
        let clap = model();
        let mut conns = traffic_gen::dataset(seed ^ 0x57ab, 2);
        if corrupt {
            for conn in &mut conns {
                if let Some(idx) = conn.first_index_after_handshake() {
                    let at = idx.min(conn.len() - 1);
                    let mut rst = conn.packets[at].clone();
                    rst.tcp_mut().flags = TcpFlags::RST;
                    rst.payload.clear();
                    rst.fill_checksums();
                    rst.tcp_mut().checksum ^= 0x0bad;
                    conn.packets.insert(at, rst);
                }
            }
        }

        let mut scorer = clap.stream_scorer_with(StreamConfig {
            // Score past teardown, like batch scoring of a full capture.
            teardown_on_close: false,
            ..StreamConfig::default()
        });
        let longest = conns.iter().map(Connection::len).max().unwrap();
        for i in 0..longest {
            for conn in &conns {
                if let Some(p) = conn.packets.get(i) {
                    scorer.push(p);
                }
            }
        }
        let closed = scorer.finish();
        prop_assert_eq!(closed.len(), conns.len(), "one flow per connection");
        for conn in &conns {
            let flow = closed
                .iter()
                .find(|c| c.key == conn.key)
                .expect("flow key matches connection key");
            let batch = clap.score_connection(conn);
            prop_assert!(
                (flow.scored.score - batch.score).abs() < 1e-6,
                "score drift: stream {} vs batch {}", flow.scored.score, batch.score
            );
            prop_assert_eq!(flow.scored.peak_window, batch.peak_window);
            prop_assert_eq!(flow.scored.peak_packet, batch.peak_packet);
            prop_assert_eq!(
                flow.scored.window_errors.len(),
                batch.window_errors.len()
            );
            for (s, b) in flow.scored.window_errors.iter().zip(&batch.window_errors) {
                prop_assert!((s - b).abs() < 1e-6, "window error drift: {} vs {}", s, b);
            }
        }
    }

    /// Orientation recovery: a capture that opens with up to 3 mid-flow
    /// (server-sent) packets before the client's pure SYN must stream to
    /// exactly the scores of the offline reassembler, which re-orients the
    /// connection on that late SYN. This pins the streaming orient buffer
    /// against `net_packet::assemble_connections` + batch scoring.
    #[test]
    fn late_syn_streaming_matches_reassembled_batch(
        seed in 0u64..5_000,
        lead in 1usize..4,
    ) {
        let clap = model();
        let conn = &traffic_gen::dataset(seed ^ 0x0a1e, 1)[0];
        // Move up to `lead` server→client packets in front of the SYN,
        // simulating a capture that starts mid-connection.
        let s2c: Vec<usize> = (0..conn.len())
            .filter(|&i| i > 0 && conn.direction(i) == net_packet::Direction::ServerToClient)
            .take(lead)
            .collect();
        if s2c.is_empty() {
            // Degenerate connection with no server traffic: nothing to test.
            return;
        }
        let mut stream_pkts: Vec<_> = s2c.iter().map(|&i| conn.packets[i].clone()).collect();
        stream_pkts.extend(
            conn.packets
                .iter()
                .enumerate()
                .filter(|(i, _)| !s2c.contains(i))
                .map(|(_, p)| p.clone()),
        );

        let offline = net_packet::assemble_connections(&stream_pkts);
        prop_assert_eq!(offline.len(), 1);
        prop_assert_eq!(
            offline[0].key.client, conn.key.client,
            "offline reassembly re-orients on the late pure SYN"
        );
        let batch = clap.score_connection(&offline[0]);

        let mut scorer = clap.stream_scorer_with(StreamConfig {
            teardown_on_close: false,
            ..StreamConfig::default()
        });
        for p in &stream_pkts {
            scorer.push(p);
        }
        let closed = scorer.finish();
        prop_assert_eq!(closed.len(), 1);
        prop_assert_eq!(closed[0].key, offline[0].key, "streaming re-orients too");
        prop_assert_eq!(closed[0].packets, stream_pkts.len());
        prop_assert!(
            (closed[0].scored.score - batch.score).abs() < 1e-6,
            "score drift: stream {} vs batch {}", closed[0].scored.score, batch.score
        );
        prop_assert_eq!(closed[0].scored.peak_window, batch.peak_window);
        prop_assert_eq!(
            closed[0].scored.window_errors.len(),
            batch.window_errors.len()
        );
        for (s, b) in closed[0].scored.window_errors.iter().zip(&batch.window_errors) {
            prop_assert!((s - b).abs() < 1e-6, "window error drift: {} vs {}", s, b);
        }
    }

    /// The int8 quantization calibration harness, end to end: over
    /// randomized corrupted+benign traffic, the int8 engine's scores stay
    /// within the relative drift bound of the f32 engine's — through both
    /// the batch and the streaming entry points (which must also agree
    /// with each other exactly, since int8 streaming == int8 batch is
    /// bitwise) — and any verdict flip at the deployed f32 threshold is
    /// confined to scores already inside the drift band of the threshold.
    #[test]
    fn int8_scores_and_verdicts_track_f32(seed in 0u64..10_000, corrupt in any::<bool>()) {
        let clap = model();
        let thr = f32_threshold();
        let mut conns = traffic_gen::dataset(seed ^ 0x1178, 2);
        if corrupt {
            for conn in &mut conns {
                if let Some(idx) = conn.first_index_after_handshake() {
                    let at = idx.min(conn.len() - 1);
                    let mut rst = conn.packets[at].clone();
                    rst.tcp_mut().flags = TcpFlags::RST;
                    rst.payload.clear();
                    rst.fill_checksums();
                    rst.tcp_mut().checksum ^= 0x0bad;
                    conn.packets.insert(at, rst);
                }
            }
        }

        let f32_scores = clap.score_connections_with(&conns, QuantMode::Off);
        let int8_scores = clap.score_connections_with(&conns, QuantMode::Int8);

        // Streaming at int8: identical to int8 batch (bitwise engine
        // equivalence carries through the whole scoring pipeline ≤1e-6 —
        // the same budget the f32 streaming==batch property uses).
        let mut scorer = clap.stream_scorer_with(StreamConfig {
            teardown_on_close: false,
            quant: QuantMode::Int8,
            ..StreamConfig::default()
        });
        for conn in &conns {
            for p in &conn.packets {
                scorer.push(p);
            }
        }
        let closed = scorer.finish();

        for (conn, (f, q)) in conns.iter().zip(f32_scores.iter().zip(&int8_scores)) {
            let rel = (q.score - f.score).abs() / f.score.abs().max(1e-3);
            prop_assert!(
                rel <= INT8_REL_DRIFT,
                "int8 drifted {:.2}%: {} vs {}", rel * 100.0, q.score, f.score
            );
            prop_assert_eq!(q.window_errors.len(), f.window_errors.len());
            // Verdict flips at the deployed threshold can only happen
            // within the drift band around it — a flip on a clearly
            // benign or clearly adversarial score would mean int8 is a
            // different detector, not a noisier one.
            let band = INT8_REL_DRIFT * f.score.abs().max(1e-3);
            prop_assert!(
                (q.score > thr) == (f.score > thr) || (f.score - thr).abs() <= band,
                "verdict flipped outside the drift band: f32 {} int8 {} thr {}",
                f.score, q.score, thr
            );
            let flow = closed
                .iter()
                .find(|c| c.key == conn.key)
                .expect("flow key matches connection key");
            prop_assert!(
                (flow.scored.score - q.score).abs() < 1e-6,
                "int8 streaming diverged from int8 batch: {} vs {}",
                flow.scored.score, q.score
            );
        }
    }

    /// Raising any single error never lowers the adversarial score's peak.
    #[test]
    fn score_monotone_in_spikes(
        errs in prop::collection::vec(0.0f32..1.0, 3..30),
        which in 0usize..30,
        boost in 1.0f32..10.0,
    ) {
        let mut spiked = errs.clone();
        let i = which % errs.len();
        spiked[i] += boost;
        let (_, s0) = score_errors(&errs, 5);
        let (p1, s1) = score_errors(&spiked, 5);
        prop_assert_eq!(p1, i, "spike must relocate the peak");
        // The spiked score includes the boosted element, so it cannot be
        // lower than the average the boost replaced by more than the old
        // score.
        prop_assert!(s1 >= s0 - 1.0, "score collapsed: {s0} -> {s1}");
    }
}

// One sharded case runs the corpus through five engines (unsharded plus
// four shard counts), so the case budget is kept deliberately small.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sharded front end's headline guarantee: for random interleaved
    /// corrupted+benign traffic, `ShardedStreamScorer` with N ∈ {1, 2, 4,
    /// 7} shards produces the identical per-flow verdict set (scores
    /// ≤1e-6, same close reasons, same localization) as the
    /// single-threaded `StreamScorer` — regardless of queue capacity,
    /// sweep cadence and flush timing, with teardown both on and off.
    /// (Idle-timeout evictions never fire here: generated captures are
    /// far shorter than the 300 s idle deadline. That is the documented
    /// boundary of shard-count equality — per-shard clocks may split
    /// longer-quiet flows differently — and the run-to-run determinism
    /// that *does* hold under idle sweeps is pinned separately by
    /// `shard::tests::shard_flow_restart_keeps_deterministic_arrivals`
    /// and `shard_idle_sweeps_are_deterministic_per_shard_count`.)
    #[test]
    fn sharded_verdicts_match_unsharded(
        seed in 0u64..10_000,
        queue_capacity in 1usize..24,
        sweep_interval in prop_oneof![Just(1usize), Just(7usize), Just(4096usize)],
        teardown in any::<bool>(),
        corrupt in any::<bool>(),
    ) {
        let clap = model();
        let mut conns = traffic_gen::dataset(seed ^ 0x5a4d, 6);
        if corrupt {
            // Inject a bad-checksum RST (the paper's flagship evasion)
            // into every other flow, so the stream mixes corrupted and
            // benign traffic through the same tables.
            for conn in conns.iter_mut().step_by(2) {
                if let Some(idx) = conn.first_index_after_handshake() {
                    let at = idx.min(conn.len() - 1);
                    let mut rst = conn.packets[at].clone();
                    rst.tcp_mut().flags = TcpFlags::RST;
                    rst.payload.clear();
                    rst.fill_checksums();
                    rst.tcp_mut().checksum ^= 0x0bad;
                    conn.packets.insert(at, rst);
                }
            }
        }
        let mut stream: Vec<&net_packet::Packet> =
            conns.iter().flat_map(|c| c.packets.iter()).collect();
        stream.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));

        let stream_cfg = StreamConfig {
            teardown_on_close: teardown,
            sweep_interval,
            ..StreamConfig::default()
        };

        // Unsharded reference verdict set.
        let mut plain = clap.stream_scorer_with(stream_cfg.clone());
        for p in &stream {
            plain.push(p);
        }
        let mut reference = plain.drain_closed();
        reference.extend(plain.finish());
        let expect: Vec<_> = verdict_set(reference.iter());

        for shards in [1usize, 2, 4, 7] {
            let run = clap
                .sharded_scorer_with(ShardConfig {
                    shards,
                    queue_capacity,
                    stream: stream_cfg.clone(),
                    ..ShardConfig::default()
                })
                .score_stream(stream.iter().copied());
            let got: Vec<_> = verdict_set(run.verdicts.iter().map(|v| &v.flow));
            prop_assert_eq!(got.len(), expect.len(), "flow count at {} shards", shards);
            for (g, e) in got.iter().zip(&expect) {
                prop_assert_eq!(g.0, e.0, "flow identity at {} shards", shards);
                prop_assert_eq!(g.1, e.1, "packet count at {} shards", shards);
                prop_assert_eq!(g.2, e.2, "close reason at {} shards", shards);
                prop_assert_eq!(g.3, e.3, "peak packet at {} shards", shards);
                prop_assert!(
                    (g.4 - e.4).abs() < 1e-6,
                    "score drift at {} shards: {} vs {}", shards, g.4, e.4
                );
            }
        }
    }

    /// Cross-flow micro-batching is a pure scheduling change: for random
    /// interleaved corrupted+benign traffic and *random flush budgets*
    /// (capacity and packet-count age), the micro-batched engine closes
    /// the same flows in the same order with the same reasons and
    /// arrival tags as the per-packet engine — bitwise-identical errors
    /// and scores at int8 (and in practice at f32 too; the asserted f32
    /// floor is the suite-wide 1e-6) — and the sharded front end's
    /// verdict table is byte-identical with batching on vs off at a
    /// random shard count.
    #[test]
    fn microbatched_matches_per_packet(
        seed in 0u64..10_000,
        cap in prop_oneof![Just(2usize), Just(3usize), Just(5usize), Just(16usize), Just(64usize)],
        wait in prop_oneof![Just(1usize), Just(3usize), Just(17usize), Just(64usize)],
        shards in prop_oneof![Just(1usize), Just(2usize), Just(4usize), Just(7usize)],
        teardown in any::<bool>(),
        corrupt in any::<bool>(),
        mode in prop_oneof![
            Just((QuantMode::Off, ResidentMode::F32)),
            Just((QuantMode::Int8, ResidentMode::F32)),
            Just((QuantMode::Int8, ResidentMode::Int8)),
        ],
    ) {
        let clap = model();
        let (quant, resident) = mode;
        let mut conns = traffic_gen::dataset(seed ^ 0x6b1c, 5);
        if corrupt {
            for conn in conns.iter_mut().step_by(2) {
                if let Some(idx) = conn.first_index_after_handshake() {
                    let at = idx.min(conn.len() - 1);
                    let mut rst = conn.packets[at].clone();
                    rst.tcp_mut().flags = TcpFlags::RST;
                    rst.payload.clear();
                    rst.fill_checksums();
                    rst.tcp_mut().checksum ^= 0x0bad;
                    conn.packets.insert(at, rst);
                }
            }
        }
        let mut stream: Vec<&net_packet::Packet> =
            conns.iter().flat_map(|c| c.packets.iter()).collect();
        stream.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));

        let cfg = |microbatch: usize| StreamConfig {
            teardown_on_close: teardown,
            quant,
            resident,
            microbatch,
            microbatch_wait: wait,
            ..StreamConfig::default()
        };

        // One scorer, per-packet vs micro-batched: identical close
        // stream, packet for packet.
        let run = |microbatch: usize| {
            let mut s = clap.stream_scorer_with(cfg(microbatch));
            for p in &stream {
                s.push(p);
            }
            let mut closed = s.drain_closed();
            closed.extend(s.finish());
            closed
        };
        let base = run(0);
        let batched = run(cap);
        prop_assert_eq!(base.len(), batched.len(), "closed flow count");
        for (a, b) in base.iter().zip(&batched) {
            prop_assert_eq!(&a.key, &b.key, "close order / identity");
            prop_assert_eq!(a.packets, b.packets);
            prop_assert_eq!(a.reason, b.reason);
            prop_assert_eq!(a.arrival, b.arrival);
            prop_assert_eq!(a.scored.peak_window, b.scored.peak_window);
            prop_assert_eq!(a.scored.peak_packet, b.scored.peak_packet);
            prop_assert_eq!(
                a.scored.window_errors.len(),
                b.scored.window_errors.len()
            );
            if quant == QuantMode::Int8 {
                prop_assert_eq!(
                    a.scored.score.to_bits(),
                    b.scored.score.to_bits(),
                    "int8 micro-batching must be bitwise"
                );
                for (x, y) in a.scored.window_errors.iter().zip(&b.scored.window_errors) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "int8 window error bits");
                }
            } else {
                prop_assert!(
                    (a.scored.score - b.scored.score).abs() < 1e-6,
                    "f32 score drift: {} vs {}", a.scored.score, b.scored.score
                );
                for (x, y) in a.scored.window_errors.iter().zip(&b.scored.window_errors) {
                    prop_assert!((x - y).abs() < 1e-6, "f32 window error drift");
                }
            }
        }

        // Sharded front end: verdict-for-verdict byte identity.
        let sharded = |microbatch: usize| {
            clap.sharded_scorer_with(ShardConfig {
                shards,
                queue_capacity: 8,
                stream: cfg(microbatch),
                ..ShardConfig::default()
            })
            .score_stream(stream.iter().copied())
        };
        let off = sharded(0);
        let on = sharded(cap);
        prop_assert_eq!(off.verdicts.len(), on.verdicts.len(), "sharded verdict count");
        for (a, b) in off.verdicts.iter().zip(&on.verdicts) {
            prop_assert_eq!(a.shard, b.shard);
            prop_assert_eq!(a.arrival, b.arrival);
            prop_assert_eq!(&a.flow.key, &b.flow.key);
            prop_assert_eq!(a.flow.packets, b.flow.packets);
            prop_assert_eq!(a.flow.reason, b.flow.reason);
            prop_assert_eq!(
                a.flow.scored.score.to_bits(),
                b.flow.scored.score.to_bits(),
                "sharded verdict table must be byte-identical with batching on/off"
            );
        }
    }

    /// The symmetric shard hash keeps every packet of a flow — both
    /// directions, including pre-SYN orient-buffer reorderings where
    /// server packets precede the client's SYN — on one shard.
    #[test]
    fn all_packets_of_a_flow_share_a_shard(
        seed in 0u64..10_000,
        lead in 0usize..4,
        shards in prop_oneof![Just(2usize), Just(4usize), Just(7usize), Just(13usize)],
    ) {
        let conn = &traffic_gen::dataset(seed ^ 0x15a6, 1)[0];
        // Reorder like a mid-capture start: up to `lead` server→client
        // packets ahead of the handshake (the PR 3 orient-buffer shape).
        let s2c: Vec<usize> = (0..conn.len())
            .filter(|&i| i > 0 && conn.direction(i) == net_packet::Direction::ServerToClient)
            .take(lead)
            .collect();
        let mut stream: Vec<&net_packet::Packet> =
            s2c.iter().map(|&i| &conn.packets[i]).collect();
        stream.extend(
            conn.packets
                .iter()
                .enumerate()
                .filter(|(i, _)| !s2c.contains(i))
                .map(|(_, p)| p),
        );

        let home = net_packet::CanonicalKey::of(stream[0]).shard_of(shards);
        for p in &stream {
            prop_assert_eq!(
                net_packet::CanonicalKey::of(p).shard_of(shards),
                home,
                "a packet left its flow's shard"
            );
        }
        prop_assert_eq!(
            net_packet::CanonicalKey::of_key(&conn.key).shard_of(shards),
            home,
            "the oriented flow key agrees with its packets"
        );
    }
}

/// Maximum relative drift the int8 *resident* form (quantized per-flow
/// hidden state + profile ring, requantized on every store) may add over
/// the f32 resident form. Calibrated over this suite's randomized traffic:
/// observed drift sits in the low single-digit percents — repeated
/// dequant/requant cycles do not compound, because each store re-derives
/// the codes from full-precision values. Recalibrated alongside the
/// outlier-aware activation clip (which also guards the resident codes):
/// the measured tail over 300 randomized corrupted cases stays below 4%,
/// so the bound matches the tightened int8 *weights* budget: resident
/// quantization must behave like quantization noise, not like a
/// different detector.
const RESIDENT_INT8_REL_DRIFT: f32 = 0.05;

// The eviction-equivalence cases run the corpus through two full engines
// per case; budget like the sharded suite.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The timing wheel's headline guarantee: for random interleaved
    /// traffic re-timed with randomized idle gaps — under randomized
    /// sweep cadences, teardown on/off and TIME_WAIT lingers — the wheel
    /// finalizes the *identical* flow set as the O(n)-scan reference
    /// (`EvictionMode::Sweep`): same identities, close reasons,
    /// localization, scores within 1e-6, and identical lifetime counters.
    /// Both modes fire at sweep boundaries through the same exact
    /// `last_seen < clock − timeout` predicate; the wheel only narrows
    /// *which flows get checked*, so any divergence is a wheel bug
    /// (a slot never re-armed, an entry stranded on a higher level, a
    /// linger timer lost).
    #[test]
    fn wheel_idle_eviction_matches_sweep(
        seed in 0u64..10_000,
        sweep_interval in prop_oneof![Just(1usize), Just(7usize), Just(64usize)],
        idle_timeout in prop_oneof![Just(2.0f64), Just(8.0)],
        teardown in any::<bool>(),
        time_wait in prop_oneof![Just(0.0f64), Just(3.0)],
        gap_seed in 0u64..1_000,
    ) {
        let clap = model();
        let conns = traffic_gen::dataset(seed ^ 0x37ee, 5);
        let mut pkts: Vec<net_packet::Packet> = conns
            .iter()
            .flat_map(|c| c.packets.iter().cloned())
            .collect();
        pkts.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
        // Re-time the stream: mostly sub-second spacing, with occasional
        // jumps past the idle timeout so mid-flow evictions (and reopened
        // incarnations of the same tuple) actually happen.
        let mut t = 0.0f64;
        let mut x = gap_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for p in &mut pkts {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t += if x % 11 == 0 {
                idle_timeout * 1.5 + (x % 7) as f64
            } else {
                0.05 * ((x % 16) as f64)
            };
            p.timestamp = t;
        }

        let run = |eviction: EvictionMode| {
            let mut s = clap.stream_scorer_with(StreamConfig {
                eviction,
                idle_timeout,
                sweep_interval,
                teardown_on_close: teardown,
                time_wait,
                ..StreamConfig::default()
            });
            for p in &pkts {
                s.push(p);
            }
            let mut closed = s.drain_closed();
            closed.extend(s.finish());
            (closed, s.stats())
        };
        let (wheel_closed, wheel_stats) = run(EvictionMode::Wheel);
        let (sweep_closed, sweep_stats) = run(EvictionMode::Sweep);

        prop_assert_eq!(wheel_stats, sweep_stats, "lifetime counters diverged");
        let wheel = verdict_set(wheel_closed.iter());
        let sweep = verdict_set(sweep_closed.iter());
        prop_assert_eq!(wheel.len(), sweep.len(), "finalized flow count");
        for (w, s) in wheel.iter().zip(&sweep) {
            prop_assert_eq!(w.0, s.0, "flow identity");
            prop_assert_eq!(w.1, s.1, "packet count");
            prop_assert_eq!(w.2, s.2, "close reason");
            prop_assert_eq!(w.3, s.3, "peak packet");
            prop_assert!(
                (w.4 - s.4).abs() < 1e-6,
                "score drift: wheel {} vs sweep {}", w.4, s.4
            );
        }
    }

    /// The int8 resident form's calibration harness: holding the per-flow
    /// GRU hidden state and profile ring as 7-bit codes (dequantized on
    /// step, requantized on store) stays within the calibrated relative
    /// drift of the f32 resident form on randomized corrupted+benign
    /// traffic, flow for flow — with identical flow sets, close reasons
    /// and window counts. Weights stay f32 in both runs, so every
    /// observed divergence is attributable to the resident codes alone.
    #[test]
    fn resident_int8_drift_is_calibrated(
        seed in 0u64..10_000,
        corrupt in any::<bool>(),
    ) {
        let clap = model();
        let mut conns = traffic_gen::dataset(seed ^ 0x8e51, 3);
        if corrupt {
            for conn in conns.iter_mut().step_by(2) {
                if let Some(idx) = conn.first_index_after_handshake() {
                    let at = idx.min(conn.len() - 1);
                    let mut rst = conn.packets[at].clone();
                    rst.tcp_mut().flags = TcpFlags::RST;
                    rst.payload.clear();
                    rst.fill_checksums();
                    rst.tcp_mut().checksum ^= 0x0bad;
                    conn.packets.insert(at, rst);
                }
            }
        }
        let mut stream: Vec<&net_packet::Packet> =
            conns.iter().flat_map(|c| c.packets.iter()).collect();
        stream.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));

        let run = |resident: ResidentMode| {
            let mut s = clap.stream_scorer_with(StreamConfig {
                resident,
                teardown_on_close: false,
                ..StreamConfig::default()
            });
            for p in &stream {
                s.push(p);
            }
            let mut closed = s.finish();
            closed.sort_by(|a, b| format!("{}", a.key).cmp(&format!("{}", b.key)));
            closed
        };
        let f32_closed = run(ResidentMode::F32);
        let int8_closed = run(ResidentMode::Int8);

        prop_assert_eq!(f32_closed.len(), int8_closed.len());
        for (f, q) in f32_closed.iter().zip(&int8_closed) {
            prop_assert_eq!(&f.key, &q.key);
            prop_assert_eq!(f.packets, q.packets);
            prop_assert_eq!(f.reason, q.reason);
            prop_assert_eq!(
                f.scored.window_errors.len(),
                q.scored.window_errors.len()
            );
            prop_assert!(q.scored.score.is_finite());
            let rel = (q.scored.score - f.scored.score).abs()
                / f.scored.score.abs().max(1e-3);
            prop_assert!(
                rel <= RESIDENT_INT8_REL_DRIFT,
                "resident int8 drifted {:.2}%: {} vs {}",
                rel * 100.0, q.scored.score, f.scored.score
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The `spsc::Ring` close/drain protocol under a real thread race: a
    /// producer pushes `sent` items and calls `close()` immediately —
    /// racing a consumer that is draining concurrently — and the
    /// consumer must still receive exactly the pushed prefix, in order,
    /// with nothing lost to the close and nothing double-delivered.
    #[test]
    fn shard_spsc_close_race_delivers_exactly_once(
        capacity in 1usize..8,
        sent in 0usize..200,
        consumer_delay_spins in 0u32..64,
    ) {
        let ring: clap_core::shard::spsc::Ring<usize> = clap_core::shard::spsc::Ring::new(capacity);
        let seen = std::thread::scope(|s| {
            let consumer = s.spawn(|| {
                // A variable head start skews the race both ways: sometimes
                // the close lands before the first pop, sometimes mid-drain.
                for _ in 0..consumer_delay_spins {
                    std::hint::spin_loop();
                }
                let mut seen = Vec::new();
                let mut backoff = clap_core::shard::spsc::Backoff::new();
                loop {
                    while let Some(v) = ring.try_pop() {
                        seen.push(v);
                        backoff.reset();
                    }
                    if ring.is_closed() {
                        while let Some(v) = ring.try_pop() {
                            seen.push(v);
                        }
                        break;
                    }
                    backoff.snooze();
                }
                seen
            });
            let mut backoff = clap_core::shard::spsc::Backoff::new();
            for v in 0..sent {
                let mut item = v;
                while let Err(back) = ring.try_push(item) {
                    item = back;
                    backoff.snooze();
                }
            }
            ring.close();
            consumer.join().unwrap()
        });
        prop_assert_eq!(
            seen,
            (0..sent).collect::<Vec<_>>(),
            "every pushed item must arrive exactly once, in order"
        );
    }
}

/// Canonicalizes a verdict list into a deterministic, comparable set:
/// sorted by (canonical flow identity, packets), carrying close reason,
/// localization and score.
fn verdict_set<'a>(
    flows: impl Iterator<Item = &'a clap_core::ClosedFlow>,
) -> Vec<(
    net_packet::CanonicalKey,
    usize,
    clap_core::CloseReason,
    usize,
    f32,
)> {
    let mut set: Vec<_> = flows
        .map(|f| {
            (
                net_packet::CanonicalKey::of_key(&f.key),
                f.packets,
                f.reason,
                f.scored.peak_packet,
                f.scored.score,
            )
        })
        .collect();
    // Total order (score included) so repeated incarnations of one tuple
    // pair up deterministically between the two engines.
    set.sort_by(|a, b| {
        format!("{:?}", a.0)
            .cmp(&format!("{:?}", b.0))
            .then(a.1.cmp(&b.1))
            .then(a.4.total_cmp(&b.4))
    });
    set
}
