//! Property-based tests for the neural substrate.

use neural::dense::Activation;
use neural::quant::{self, QuantMatrix, QuantPackedGru};
use neural::{
    softmax_cross_entropy, softmax_inplace, Autoencoder, GruCell, GruWorkspace, KernelSet, Matrix,
    PackedGru,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic pseudo-random fill for kernel-equivalence tests.
fn kernel_input(len: usize, seed: u64, scale: f32) -> Vec<f32> {
    (0..len)
        .map(|i| (i as f32 * 0.7311 + seed as f32 * 0.137).sin() * scale)
        .collect()
}

/// Tolerance for SIMD-vs-scalar drift: 1e-6 relative to the magnitude of
/// the scalar result (absolute 1e-6 for results inside the unit range).
/// SIMD kernels differ from the scalar reference only by reassociation
/// and the polynomial exp.
fn close(simd: f32, scalar: f32) -> bool {
    (simd - scalar).abs() <= 1e-6 * scalar.abs().max(1.0)
}

proptest! {
    /// Softmax output is a probability distribution for any finite input.
    #[test]
    fn softmax_is_distribution(v in prop::collection::vec(-50.0f32..50.0, 1..20)) {
        let mut p = v.clone();
        softmax_inplace(&mut p);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    /// Cross-entropy loss is non-negative and its gradient sums to ~0.
    #[test]
    fn cross_entropy_invariants(
        v in prop::collection::vec(-20.0f32..20.0, 2..15),
        t in 0usize..15,
    ) {
        let target = t % v.len();
        let (loss, grad) = softmax_cross_entropy(&v, target);
        prop_assert!(loss >= 0.0);
        prop_assert!(grad[target] <= 0.0);
        let sum: f32 = grad.iter().sum();
        prop_assert!(sum.abs() < 1e-4);
    }

    /// GEMM identities: (A·B)ᵀ relations across the three variants.
    #[test]
    fn gemm_consistency(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::xavier(m, k, &mut rng);
        let b = Matrix::xavier(k, n, &mut rng);
        let c_nn = Matrix::matmul_nn(&a, &b);
        // nt: A · (Bᵀ)ᵀ — build Bᵀ explicitly.
        let bt = Matrix::from_fn(n, k, |r, c| b.get(c, r));
        let c_nt = Matrix::matmul_nt(&a, &bt);
        for i in 0..m {
            for j in 0..n {
                prop_assert!((c_nn.get(i, j) - c_nt.get(i, j)).abs() < 1e-4);
            }
        }
        // tn: (Aᵀ)ᵀ · B.
        let at = Matrix::from_fn(k, m, |r, c| a.get(c, r));
        let c_tn = Matrix::matmul_tn(&at, &b);
        for i in 0..m {
            for j in 0..n {
                prop_assert!((c_nn.get(i, j) - c_tn.get(i, j)).abs() < 1e-4);
            }
        }
    }

    /// matvec agrees with matmul against a 1-column matrix.
    #[test]
    fn matvec_matches_gemm(rows in 1usize..8, cols in 1usize..8, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Matrix::xavier(rows, cols, &mut rng);
        let x = Matrix::xavier(cols, 1, &mut rng);
        let y1 = w.matvec(&x.data);
        let y2 = Matrix::matmul_nn(&w, &x);
        for (i, v) in y1.iter().enumerate() {
            prop_assert!((v - y2.get(i, 0)).abs() < 1e-5);
        }
    }

    /// GRU hidden states and gates stay in their analytic ranges for any
    /// bounded input sequence.
    #[test]
    fn gru_ranges(
        seq_len in 1usize..12,
        seed in 0u64..500,
        scale in 0.1f32..5.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = GruCell::new(4, 6, &mut rng);
        let xs: Vec<Vec<f32>> = (0..seq_len)
            .map(|t| (0..4).map(|i| ((t * 7 + i) as f32).sin() * scale).collect())
            .collect();
        let trace = cell.forward(&xs);
        for t in 0..seq_len {
            prop_assert!(trace.hs[t].iter().all(|v| v.abs() <= 1.0 + 1e-5));
            prop_assert!(trace.zs[t].iter().all(|v| (0.0..=1.0).contains(v)));
            prop_assert!(trace.rs[t].iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    /// Prefix property: the GRU's state at step t depends only on inputs
    /// up to t (causality).
    #[test]
    fn gru_is_causal(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = GruCell::new(3, 4, &mut rng);
        let xs: Vec<Vec<f32>> = (0..8)
            .map(|t| (0..3).map(|i| ((t + i) as f32 * 0.3).cos()).collect())
            .collect();
        let full = cell.forward(&xs);
        let prefix = cell.forward(&xs[..5]);
        for t in 0..5 {
            prop_assert_eq!(&full.hs[t], &prefix.hs[t]);
            prop_assert_eq!(&full.zs[t], &prefix.zs[t]);
        }
    }

    /// Autoencoder reconstruction error is zero iff the net reproduces the
    /// input; always finite and non-negative for bounded inputs.
    #[test]
    fn ae_error_nonnegative(
        v in prop::collection::vec(-1.0f32..1.0, 6),
        seed in 0u64..100,
    ) {
        let ae = Autoencoder::new(&[6, 3, 6], seed);
        let e = ae.reconstruction_error(&v);
        prop_assert!(e.is_finite());
        prop_assert!(e >= 0.0);
    }

    /// Fused-engine equivalence over random shapes and inputs: the packed
    /// GRU reproduces the reference forward pass within 1e-6.
    #[test]
    fn packed_gru_matches_reference(
        seed in 0u64..300,
        input in 1usize..9,
        hidden in 1usize..17,
        steps in 0usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = GruCell::new(input, hidden, &mut rng);
        let xs: Vec<Vec<f32>> = (0..steps)
            .map(|t| (0..input).map(|i| ((t * input + i) as f32 * 0.41 + seed as f32).sin()).collect())
            .collect();
        let trace = cell.forward(&xs);
        let mut x = Matrix::zeros(steps, input);
        for (t, row) in xs.iter().enumerate() {
            x.row_mut(t).copy_from_slice(row);
        }
        let packed = PackedGru::pack(&cell);
        let mut ws = GruWorkspace::new();
        packed.run(&x, &mut ws);
        prop_assert_eq!(ws.len(), steps);
        for t in 0..steps {
            for i in 0..hidden {
                prop_assert!((trace.hs[t][i] - ws.hs.get(t, i)).abs() < 1e-6);
                prop_assert!((trace.zs[t][i] - ws.zs.get(t, i)).abs() < 1e-6);
                prop_assert!((trace.rs[t][i] - ws.rs.get(t, i)).abs() < 1e-6);
            }
        }
    }

    /// Workspace reuse across random mixes of sequence lengths never
    /// changes results: every run through a shared arena is bitwise equal
    /// to a run through a fresh one.
    #[test]
    fn gru_workspace_reuse_never_changes_results(
        seed in 0u64..200,
        lens in prop::collection::vec(0usize..24, 1..8),
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x60);
        let cell = GruCell::new(5, 11, &mut rng);
        let packed = PackedGru::pack(&cell);
        let mut shared = GruWorkspace::new();
        for (k, &len) in lens.iter().enumerate() {
            let mut x = Matrix::zeros(len, 5);
            for t in 0..len {
                for i in 0..5 {
                    x.set(t, i, ((t * 5 + i + k) as f32 * 0.29 + seed as f32 * 0.01).cos());
                }
            }
            packed.run(&x, &mut shared);
            let mut fresh = GruWorkspace::new();
            packed.run(&x, &mut fresh);
            prop_assert_eq!(&shared.hs, &fresh.hs, "len {} at position {}", len, k);
            prop_assert_eq!(&shared.zs, &fresh.zs);
            prop_assert_eq!(&shared.rs, &fresh.rs);
        }
    }

    /// Every dispatched SIMD kernel set reproduces the scalar reference
    /// dot products within 1e-6 on randomized lengths, including
    /// remainder lanes (lengths that are not multiples of 8/16/32).
    #[test]
    fn simd_dot_kernels_match_scalar(
        len in 0usize..134,
        seed in 0u64..500,
        scale in 0.1f32..3.0,
    ) {
        let a = kernel_input(len, seed, scale);
        let b0 = kernel_input(len, seed ^ 1, scale);
        let b1 = kernel_input(len, seed ^ 2, scale);
        let b2 = kernel_input(len, seed ^ 3, scale);
        let b3 = kernel_input(len, seed ^ 4, scale);
        let scalar = KernelSet::scalar();
        let want = scalar.dot(&a, &b0);
        let want4 = scalar.dot4(&a, &b0, &b1, &b2, &b3);
        for ks in KernelSet::available() {
            let got = ks.dot(&a, &b0);
            prop_assert!(close(got, want), "{} dot: {got} vs {want}", ks.name);
            let got4 = ks.dot4(&a, &b0, &b1, &b2, &b3);
            for j in 0..4 {
                prop_assert!(
                    close(got4[j], want4[j]),
                    "{} dot4[{j}]: {} vs {}", ks.name, got4[j], want4[j]
                );
            }
        }
    }

    /// SIMD axpy and the L1 error reduction match the scalar reference on
    /// randomized lengths including remainders.
    #[test]
    fn simd_axpy_and_l1_match_scalar(
        len in 0usize..71,
        seed in 0u64..500,
        alpha in -2.0f32..2.0,
    ) {
        let src = kernel_input(len, seed, 1.0);
        let base = kernel_input(len, seed ^ 7, 1.0);
        let scalar = KernelSet::scalar();
        let mut want = base.clone();
        scalar.axpy(&mut want, &src, alpha);
        let want_l1 = scalar.sum_abs_diff(&base, &src);
        for ks in KernelSet::available() {
            let mut got = base.clone();
            ks.axpy(&mut got, &src, alpha);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!(close(*g, *w), "{} axpy: {g} vs {w}", ks.name);
            }
            let got_l1 = ks.sum_abs_diff(&base, &src);
            prop_assert!(close(got_l1, want_l1), "{} l1: {got_l1} vs {want_l1}", ks.name);
        }
    }

    /// The SIMD GRU gate block (vectorized sigmoid/tanh over the packed 3H
    /// slab) matches the scalar reference within 1e-6 for any hidden size
    /// — including non-multiple-of-lane sizes — and across the whole
    /// pre-activation range, saturation included.
    #[test]
    fn simd_gru_gates_match_scalar(
        hidden in 1usize..41,
        seed in 0u64..500,
        scale in 0.1f32..40.0,
    ) {
        let xp = kernel_input(3 * hidden, seed, scale);
        let up = kernel_input(3 * hidden, seed ^ 11, scale);
        let h0 = kernel_input(hidden, seed ^ 13, 0.9);
        let scalar = KernelSet::scalar();
        let (mut wh, mut wz, mut wr) = (h0.clone(), vec![0.0; hidden], vec![0.0; hidden]);
        scalar.gru_gates(&xp, &up, &mut wh, &mut wz, &mut wr);
        for ks in KernelSet::available() {
            let (mut gh, mut gz, mut gr) = (h0.clone(), vec![0.0; hidden], vec![0.0; hidden]);
            ks.gru_gates(&xp, &up, &mut gh, &mut gz, &mut gr);
            for i in 0..hidden {
                prop_assert!((gz[i] - wz[i]).abs() < 1e-6, "{} z[{i}]: {} vs {}", ks.name, gz[i], wz[i]);
                prop_assert!((gr[i] - wr[i]).abs() < 1e-6, "{} r[{i}]: {} vs {}", ks.name, gr[i], wr[i]);
                prop_assert!((gh[i] - wh[i]).abs() < 1e-6, "{} h[{i}]: {} vs {}", ks.name, gh[i], wh[i]);
            }
        }
    }

    /// The SIMD bias+activation epilogue matches the scalar reference for
    /// every activation on randomized row widths including remainders.
    #[test]
    fn simd_bias_act_matches_scalar(
        len in 0usize..47,
        seed in 0u64..500,
        scale in 0.1f32..8.0,
    ) {
        let base = kernel_input(len, seed, scale);
        let bias = kernel_input(len, seed ^ 17, scale);
        let scalar = KernelSet::scalar();
        for act in [
            Activation::Linear,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            let mut want = base.clone();
            scalar.bias_act(&mut want, &bias, act);
            for ks in KernelSet::available() {
                let mut got = base.clone();
                ks.bias_act(&mut got, &bias, act);
                for (g, w) in got.iter().zip(&want) {
                    prop_assert!(close(*g, *w), "{} {act:?}: {g} vs {w}", ks.name);
                }
            }
        }
    }

    /// Every available int8 kernel set equals the scalar int8 reference
    /// **exactly** (i32 accumulation is associative integer math — there
    /// is no reassociation drift to tolerate), across remainder-lane
    /// lengths spanning every SIMD tail path (AVX2 32/64-byte blocks,
    /// VNNI 64/128-byte blocks and masked tails) and the full contract
    /// ranges (activations 0..=127, weights −127..=127).
    #[test]
    fn int8_kernels_match_scalar_exactly(
        len in 0usize..300,
        seed in 0u64..1000,
    ) {
        let a: Vec<u8> = (0..len)
            .map(|i| (((i as u64).wrapping_mul(31) ^ seed.wrapping_mul(2654435761)) % 128) as u8)
            .collect();
        let row = |s: u64| -> Vec<i8> {
            (0..len)
                .map(|i| {
                    let v = ((i as u64).wrapping_mul(17) ^ s.wrapping_mul(40503)) % 255;
                    (v as i32 - 127) as i8
                })
                .collect()
        };
        let (b0, b1, b2, b3) = (row(seed), row(seed ^ 1), row(seed ^ 2), row(seed ^ 3));
        let scalar = KernelSet::scalar();
        let want = scalar.dot_i8(&a, &b0);
        let want4 = scalar.dot4_i8(&a, &b0, &b1, &b2, &b3);
        for ks in KernelSet::available() {
            prop_assert_eq!(ks.dot_i8(&a, &b0), want, "{} dot_i8 len={}", ks.name, len);
            prop_assert_eq!(
                ks.dot4_i8(&a, &b0, &b1, &b2, &b3),
                want4,
                "{} dot4_i8 len={}", ks.name, len
            );
        }
    }

    /// The quantized matvec tracks the f32 product within the analytic
    /// quantization-error bound: with activation grid step `s_a`, row grid
    /// step `s_r`, activation magnitude bound `A = max(|min|, |max|)` and
    /// weight magnitude bound `127·s_r`, the per-term error is at most
    /// `127·s_r·s_a/2 + A·s_r/2 + s_r·s_a/4`, summed over `cols` terms.
    #[test]
    fn quant_matvec_within_analytic_error_bound(
        rows in 1usize..20,
        cols in 1usize..80,
        seed in 0u64..500,
        scale in 0.01f32..10.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::xavier(rows, cols, &mut rng);
        m.scale(scale);
        let x: Vec<f32> = (0..cols)
            .map(|i| ((i as f32 * 0.71 + seed as f32 * 0.13).sin()) * scale)
            .collect();
        let q = QuantMatrix::quantize(&m);
        let mut qa = Vec::new();
        let act = quant::quantize_activations(&x, &mut qa);
        let amax = x.iter().fold(0.0f32, |a, v| a.max(v.abs()));
        let mut y = vec![0.0f32; rows];
        q.matvec_into(&x, &mut qa, &mut y);
        let reference = m.matvec(&x);
        for r in 0..rows {
            let sr = q.scale(r);
            let per_term = 127.0 * sr * act.scale * 0.5 + amax * sr * 0.5 + sr * act.scale * 0.25;
            let bound = cols as f32 * per_term + 1e-5;
            prop_assert!(
                (y[r] - reference[r]).abs() <= bound,
                "row {}: int8 {} vs f32 {} (bound {})", r, y[r], reference[r], bound
            );
        }
    }

    /// Int8 streaming == int8 batch, the quantized twin of the PackedGru
    /// invariant: stepping one packet at a time is bitwise identical to
    /// one batched run, for any shape including remainder lanes.
    #[test]
    fn quant_gru_step_matches_run_bitwise(
        seed in 0u64..300,
        input in 1usize..9,
        hidden in 1usize..17,
        steps in 1usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = GruCell::new(input, hidden, &mut rng);
        let q = QuantPackedGru::quantize(&PackedGru::pack(&cell));
        let mut xs = Matrix::zeros(steps, input);
        for t in 0..steps {
            for i in 0..input {
                xs.set(t, i, ((t * input + i) as f32 * 0.41 + seed as f32).sin());
            }
        }
        let mut ws = GruWorkspace::new();
        q.run(&xs, &mut ws);
        let mut h = vec![0.0f32; hidden];
        let mut z = vec![0.0f32; hidden];
        let mut r = vec![0.0f32; hidden];
        let mut scratch = neural::GruStepScratch::new();
        for t in 0..steps {
            q.step(xs.row(t), &mut h, &mut scratch, &mut z, &mut r);
            prop_assert_eq!(h.as_slice(), ws.hs.row(t), "h diverged at t={}", t);
            prop_assert_eq!(z.as_slice(), ws.zs.row(t), "z diverged at t={}", t);
            prop_assert_eq!(r.as_slice(), ws.rs.row(t), "r diverged at t={}", t);
        }
    }

    /// The L2-tiled nt-GEMM is bitwise identical to row-by-row matvec for
    /// any shape — including `B` tall enough to span multiple tiles and
    /// `A` blocks with ragged remainders — so tiling can never perturb
    /// the streaming == batch equivalence chain.
    #[test]
    fn tiled_nt_gemm_matches_matvec_bitwise(
        arows in 1usize..36,
        brows in 1usize..260,
        cols in prop_oneof![Just(256usize), Just(345usize), Just(400usize)],
        seed in 0u64..200,
    ) {
        let a = Matrix::from_fn(arows, cols, |r, c| {
            ((r * cols + c) as f32 * 0.093 + seed as f32 * 0.01).sin()
        });
        let b = Matrix::from_fn(brows, cols, |r, c| {
            ((r * 13 + c * 7) as f32 * 0.051 + seed as f32 * 0.02).cos()
        });
        let mut c = Matrix::default();
        Matrix::matmul_nt_into(&a, &b, &mut c);
        let mut row = vec![0.0f32; brows];
        for i in 0..arows {
            b.matvec_into(a.row(i), &mut row);
            prop_assert_eq!(c.row(i), row.as_slice(), "row {} diverged", i);
        }
    }

    /// Batched AE inference through the workspace equals the allocating
    /// reference for any batch size.
    #[test]
    fn ae_workspace_matches_reference(
        seed in 0u64..100,
        rows in 1usize..20,
    ) {
        let ae = Autoencoder::new(&[7, 4, 2, 4, 7], seed);
        let x = Matrix::from_fn(rows, 7, |r, c| ((r * 7 + c) as f32 * 0.37 + seed as f32).sin());
        let reference = ae.reconstruction_errors(&x);
        let mut ws = neural::AeWorkspace::new();
        let mut out = Vec::new();
        // Twice through the same workspace: reuse must not drift.
        for _ in 0..2 {
            out.clear();
            ae.reconstruction_errors_into(&x, &mut ws, &mut out);
            prop_assert_eq!(out.len(), rows);
            for (a, b) in out.iter().zip(&reference) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }
}
