//! Property-based tests for the neural substrate.

use neural::{softmax_cross_entropy, softmax_inplace, Autoencoder, GruCell, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Softmax output is a probability distribution for any finite input.
    #[test]
    fn softmax_is_distribution(v in prop::collection::vec(-50.0f32..50.0, 1..20)) {
        let mut p = v.clone();
        softmax_inplace(&mut p);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    /// Cross-entropy loss is non-negative and its gradient sums to ~0.
    #[test]
    fn cross_entropy_invariants(
        v in prop::collection::vec(-20.0f32..20.0, 2..15),
        t in 0usize..15,
    ) {
        let target = t % v.len();
        let (loss, grad) = softmax_cross_entropy(&v, target);
        prop_assert!(loss >= 0.0);
        prop_assert!(grad[target] <= 0.0);
        let sum: f32 = grad.iter().sum();
        prop_assert!(sum.abs() < 1e-4);
    }

    /// GEMM identities: (A·B)ᵀ relations across the three variants.
    #[test]
    fn gemm_consistency(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::xavier(m, k, &mut rng);
        let b = Matrix::xavier(k, n, &mut rng);
        let c_nn = Matrix::matmul_nn(&a, &b);
        // nt: A · (Bᵀ)ᵀ — build Bᵀ explicitly.
        let bt = Matrix::from_fn(n, k, |r, c| b.get(c, r));
        let c_nt = Matrix::matmul_nt(&a, &bt);
        for i in 0..m {
            for j in 0..n {
                prop_assert!((c_nn.get(i, j) - c_nt.get(i, j)).abs() < 1e-4);
            }
        }
        // tn: (Aᵀ)ᵀ · B.
        let at = Matrix::from_fn(k, m, |r, c| a.get(c, r));
        let c_tn = Matrix::matmul_tn(&at, &b);
        for i in 0..m {
            for j in 0..n {
                prop_assert!((c_nn.get(i, j) - c_tn.get(i, j)).abs() < 1e-4);
            }
        }
    }

    /// matvec agrees with matmul against a 1-column matrix.
    #[test]
    fn matvec_matches_gemm(rows in 1usize..8, cols in 1usize..8, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Matrix::xavier(rows, cols, &mut rng);
        let x = Matrix::xavier(cols, 1, &mut rng);
        let y1 = w.matvec(&x.data);
        let y2 = Matrix::matmul_nn(&w, &x);
        for i in 0..rows {
            prop_assert!((y1[i] - y2.get(i, 0)).abs() < 1e-5);
        }
    }

    /// GRU hidden states and gates stay in their analytic ranges for any
    /// bounded input sequence.
    #[test]
    fn gru_ranges(
        seq_len in 1usize..12,
        seed in 0u64..500,
        scale in 0.1f32..5.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = GruCell::new(4, 6, &mut rng);
        let xs: Vec<Vec<f32>> = (0..seq_len)
            .map(|t| (0..4).map(|i| ((t * 7 + i) as f32).sin() * scale).collect())
            .collect();
        let trace = cell.forward(&xs);
        for t in 0..seq_len {
            prop_assert!(trace.hs[t].iter().all(|v| v.abs() <= 1.0 + 1e-5));
            prop_assert!(trace.zs[t].iter().all(|v| (0.0..=1.0).contains(v)));
            prop_assert!(trace.rs[t].iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    /// Prefix property: the GRU's state at step t depends only on inputs
    /// up to t (causality).
    #[test]
    fn gru_is_causal(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = GruCell::new(3, 4, &mut rng);
        let xs: Vec<Vec<f32>> = (0..8)
            .map(|t| (0..3).map(|i| ((t + i) as f32 * 0.3).cos()).collect())
            .collect();
        let full = cell.forward(&xs);
        let prefix = cell.forward(&xs[..5]);
        for t in 0..5 {
            prop_assert_eq!(&full.hs[t], &prefix.hs[t]);
            prop_assert_eq!(&full.zs[t], &prefix.zs[t]);
        }
    }

    /// Autoencoder reconstruction error is zero iff the net reproduces the
    /// input; always finite and non-negative for bounded inputs.
    #[test]
    fn ae_error_nonnegative(
        v in prop::collection::vec(-1.0f32..1.0, 6),
        seed in 0u64..100,
    ) {
        let ae = Autoencoder::new(&[6, 3, 6], seed);
        let e = ae.reconstruction_error(&v);
        prop_assert!(e.is_finite());
        prop_assert!(e >= 0.0);
    }
}
