//! Adam optimizer (Kingma & Ba, 2015) over flat parameter buffers.

use serde::{Deserialize, Serialize};

/// Adam state for one parameter tensor. Keep one `Adam` per weight matrix /
/// bias vector; all tensors share hyper-parameters but carry independent
/// moment estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Standard hyper-parameters (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(len: usize, lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Adjusts the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update: `params -= lr * m̂ / (sqrt(v̂) + eps)`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "parameter count changed");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = (x - 3)^2, df/dx = 2(x - 3).
        let mut x = vec![10.0f32];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
    }

    #[test]
    fn minimizes_multidim() {
        // f(x, y) = x^2 + 10 y^2.
        let mut p = vec![5.0f32, -4.0];
        let mut opt = Adam::new(2, 0.05);
        for _ in 0..1000 {
            let g = vec![2.0 * p[0], 20.0 * p[1]];
            opt.step(&mut p, &g);
        }
        assert!(p[0].abs() < 0.05 && p[1].abs() < 0.05, "p = {p:?}");
    }

    #[test]
    #[should_panic(expected = "gradient count mismatch")]
    fn shape_checked() {
        let mut opt = Adam::new(2, 0.1);
        let mut p = vec![0.0; 2];
        opt.step(&mut p, &[0.0; 3]);
    }
}
