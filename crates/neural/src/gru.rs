//! Gated Recurrent Unit with full backpropagation through time.
//!
//! The cell follows the standard (PyTorch-convention) formulation:
//!
//! ```text
//! z_t = σ(Wz x_t + Uz h_{t-1} + bz)              (update gate)
//! r_t = σ(Wr x_t + Ur h_{t-1} + br)              (reset gate)
//! n_t = tanh(Wn x_t + bn + r_t ∘ (Un h_{t-1}))   (candidate state)
//! h_t = (1 - z_t) ∘ n_t + z_t ∘ h_{t-1}
//! ```
//!
//! CLAP does not only use the classifier output: the per-timestep **gate
//! activations** `z_t` and `r_t` are the learned inter-packet context that
//! gets fused into the context profile (paper §3.3(b), features #52–#115 of
//! Table 7). [`GruTrace`] therefore exposes them directly.

use crate::matrix::vecops;
use crate::{sigmoid, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// GRU parameters. All matrices are `hidden × input` (W*) or
/// `hidden × hidden` (U*).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruCell {
    pub wz: Matrix,
    pub uz: Matrix,
    pub bz: Vec<f32>,
    pub wr: Matrix,
    pub ur: Matrix,
    pub br: Vec<f32>,
    pub wn: Matrix,
    pub un: Matrix,
    pub bn: Vec<f32>,
}

/// Everything the backward pass (and CLAP's feature fusion) needs from a
/// forward run over one sequence.
#[derive(Debug, Clone)]
pub struct GruTrace {
    /// Inputs, one per timestep.
    pub xs: Vec<Vec<f32>>,
    /// Hidden states `h_1..h_T` (`h_0` is the zero vector).
    pub hs: Vec<Vec<f32>>,
    /// Update-gate activations `z_t` per timestep.
    pub zs: Vec<Vec<f32>>,
    /// Reset-gate activations `r_t` per timestep.
    pub rs: Vec<Vec<f32>>,
    /// Candidate states `n_t`.
    pub ns: Vec<Vec<f32>>,
    /// Cached `Un · h_{t-1}` (needed for the reset-gate gradient).
    pub un_hs: Vec<Vec<f32>>,
}

impl GruTrace {
    pub fn len(&self) -> usize {
        self.hs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hs.is_empty()
    }
}

/// Gradients for every GRU parameter, same shapes as [`GruCell`].
#[derive(Debug, Clone)]
pub struct GruGrads {
    pub dwz: Matrix,
    pub duz: Matrix,
    pub dbz: Vec<f32>,
    pub dwr: Matrix,
    pub dur: Matrix,
    pub dbr: Vec<f32>,
    pub dwn: Matrix,
    pub dun: Matrix,
    pub dbn: Vec<f32>,
}

impl GruGrads {
    pub fn zeros(input: usize, hidden: usize) -> Self {
        GruGrads {
            dwz: Matrix::zeros(hidden, input),
            duz: Matrix::zeros(hidden, hidden),
            dbz: vec![0.0; hidden],
            dwr: Matrix::zeros(hidden, input),
            dur: Matrix::zeros(hidden, hidden),
            dbr: vec![0.0; hidden],
            dwn: Matrix::zeros(hidden, input),
            dun: Matrix::zeros(hidden, hidden),
            dbn: vec![0.0; hidden],
        }
    }

    /// Accumulates another gradient set (used for batching across
    /// sequences).
    pub fn add_assign(&mut self, other: &GruGrads) {
        self.dwz.add_assign(&other.dwz);
        self.duz.add_assign(&other.duz);
        vecops::add_assign(&mut self.dbz, &other.dbz);
        self.dwr.add_assign(&other.dwr);
        self.dur.add_assign(&other.dur);
        vecops::add_assign(&mut self.dbr, &other.dbr);
        self.dwn.add_assign(&other.dwn);
        self.dun.add_assign(&other.dun);
        vecops::add_assign(&mut self.dbn, &other.dbn);
    }

    /// Scales all gradients (e.g. by 1/batch).
    pub fn scale(&mut self, s: f32) {
        self.dwz.scale(s);
        self.duz.scale(s);
        self.dbz.iter_mut().for_each(|v| *v *= s);
        self.dwr.scale(s);
        self.dur.scale(s);
        self.dbr.iter_mut().for_each(|v| *v *= s);
        self.dwn.scale(s);
        self.dun.scale(s);
        self.dbn.iter_mut().for_each(|v| *v *= s);
    }
}

impl GruCell {
    pub fn new(input: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        GruCell {
            wz: Matrix::xavier(hidden, input, rng),
            uz: Matrix::xavier(hidden, hidden, rng),
            bz: vec![0.0; hidden],
            wr: Matrix::xavier(hidden, input, rng),
            ur: Matrix::xavier(hidden, hidden, rng),
            br: vec![0.0; hidden],
            wn: Matrix::xavier(hidden, input, rng),
            un: Matrix::xavier(hidden, hidden, rng),
            bn: vec![0.0; hidden],
        }
    }

    pub fn input_size(&self) -> usize {
        self.wz.cols
    }

    pub fn hidden_size(&self) -> usize {
        self.wz.rows
    }

    /// Runs the cell over a sequence, returning the full trace.
    ///
    /// This is the **reference implementation**: six separate `matvec`s and
    /// fresh buffers per step. Inference goes through [`PackedGru`], which
    /// is proven equivalent to this path by the test suite; training keeps
    /// using this trace because BPTT needs every intermediate.
    ///
    /// Accepts any slice-of-rows shape (`&[Vec<f32>]`, `&[&[f32]]`), so
    /// callers can borrow feature storage instead of cloning it.
    pub fn forward<S: AsRef<[f32]>>(&self, xs: &[S]) -> GruTrace {
        let hidden = self.hidden_size();
        let mut trace = GruTrace {
            xs: xs.iter().map(|x| x.as_ref().to_vec()).collect(),
            hs: Vec::with_capacity(xs.len()),
            zs: Vec::with_capacity(xs.len()),
            rs: Vec::with_capacity(xs.len()),
            ns: Vec::with_capacity(xs.len()),
            un_hs: Vec::with_capacity(xs.len()),
        };
        let mut h = vec![0.0f32; hidden];
        for x in xs {
            let x = x.as_ref();
            debug_assert_eq!(x.len(), self.input_size());
            let mut z = self.wz.matvec(x);
            vecops::add_assign(&mut z, &self.uz.matvec(&h));
            vecops::add_assign(&mut z, &self.bz);
            z.iter_mut().for_each(|v| *v = sigmoid(*v));

            let mut r = self.wr.matvec(x);
            vecops::add_assign(&mut r, &self.ur.matvec(&h));
            vecops::add_assign(&mut r, &self.br);
            r.iter_mut().for_each(|v| *v = sigmoid(*v));

            let un_h = self.un.matvec(&h);
            let mut n = self.wn.matvec(x);
            vecops::add_assign(&mut n, &self.bn);
            for i in 0..hidden {
                n[i] = (n[i] + r[i] * un_h[i]).tanh();
            }

            let mut h_new = vec![0.0f32; hidden];
            for i in 0..hidden {
                h_new[i] = (1.0 - z[i]) * n[i] + z[i] * h[i];
            }

            trace.zs.push(z);
            trace.rs.push(r);
            trace.ns.push(n);
            trace.un_hs.push(un_h);
            trace.hs.push(h_new.clone());
            h = h_new;
        }
        trace
    }

    /// The seed-era forward pass, frozen verbatim on the [`naive`] kernels:
    /// six separate matvecs and ~10 fresh `Vec`s per step. This is the
    /// pre-fusion baseline the fused engine is measured against; production
    /// inference uses [`PackedGru::run`], training uses [`forward`].
    ///
    /// [`naive`]: crate::matrix::naive
    /// [`forward`]: Self::forward
    pub fn forward_unfused<S: AsRef<[f32]>>(&self, xs: &[S]) -> GruTrace {
        use crate::matrix::naive;
        let hidden = self.hidden_size();
        let mut trace = GruTrace {
            xs: xs.iter().map(|x| x.as_ref().to_vec()).collect(),
            hs: Vec::with_capacity(xs.len()),
            zs: Vec::with_capacity(xs.len()),
            rs: Vec::with_capacity(xs.len()),
            ns: Vec::with_capacity(xs.len()),
            un_hs: Vec::with_capacity(xs.len()),
        };
        let mut h = vec![0.0f32; hidden];
        for x in xs {
            let x = x.as_ref();
            let mut z = naive::matvec(&self.wz, x);
            vecops::add_assign(&mut z, &naive::matvec(&self.uz, &h));
            vecops::add_assign(&mut z, &self.bz);
            z.iter_mut().for_each(|v| *v = sigmoid(*v));

            let mut r = naive::matvec(&self.wr, x);
            vecops::add_assign(&mut r, &naive::matvec(&self.ur, &h));
            vecops::add_assign(&mut r, &self.br);
            r.iter_mut().for_each(|v| *v = sigmoid(*v));

            let un_h = naive::matvec(&self.un, &h);
            let mut n = naive::matvec(&self.wn, x);
            vecops::add_assign(&mut n, &self.bn);
            for i in 0..hidden {
                n[i] = (n[i] + r[i] * un_h[i]).tanh();
            }

            let mut h_new = vec![0.0f32; hidden];
            for i in 0..hidden {
                h_new[i] = (1.0 - z[i]) * n[i] + z[i] * h[i];
            }

            trace.zs.push(z);
            trace.rs.push(r);
            trace.ns.push(n);
            trace.un_hs.push(un_h);
            trace.hs.push(h_new.clone());
            h = h_new;
        }
        trace
    }

    /// Backpropagation through time.
    ///
    /// `dhs[t]` is ∂loss/∂h_t coming from outside the recurrence (e.g. the
    /// per-timestep classification head). Returns parameter gradients and
    /// ∂loss/∂x_t for each step.
    pub fn backward(&self, trace: &GruTrace, dhs: &[Vec<f32>]) -> (GruGrads, Vec<Vec<f32>>) {
        let hidden = self.hidden_size();
        let input = self.input_size();
        let steps = trace.len();
        assert_eq!(dhs.len(), steps, "dh per timestep required");
        let mut grads = GruGrads::zeros(input, hidden);
        let mut dxs = vec![vec![0.0f32; input]; steps];
        let zero = vec![0.0f32; hidden];
        let mut dh_next = vec![0.0f32; hidden]; // carried from t+1

        for t in (0..steps).rev() {
            let h_prev = if t == 0 { &zero } else { &trace.hs[t - 1] };
            let (z, r, n, un_h, x) = (
                &trace.zs[t],
                &trace.rs[t],
                &trace.ns[t],
                &trace.un_hs[t],
                &trace.xs[t],
            );

            // Total gradient flowing into h_t.
            let mut dh = dhs[t].clone();
            vecops::add_assign(&mut dh, &dh_next);

            // h_t = (1-z) n + z h_prev
            let mut dz = vec![0.0f32; hidden];
            let mut dn = vec![0.0f32; hidden];
            let mut dh_prev = vec![0.0f32; hidden];
            for i in 0..hidden {
                dz[i] = dh[i] * (h_prev[i] - n[i]);
                dn[i] = dh[i] * (1.0 - z[i]);
                dh_prev[i] = dh[i] * z[i];
            }

            // n = tanh(pre_n); pre_n = Wn x + bn + r ∘ (Un h_prev)
            let mut dn_pre = vec![0.0f32; hidden];
            for i in 0..hidden {
                dn_pre[i] = dn[i] * (1.0 - n[i] * n[i]);
            }
            grads.dwn.add_outer(&dn_pre, x, 1.0);
            vecops::add_assign(&mut grads.dbn, &dn_pre);
            let dn_pre_r = vecops::hadamard(&dn_pre, r);
            grads.dun.add_outer(&dn_pre_r, h_prev, 1.0);
            vecops::add_assign(&mut dh_prev, &self.un.matvec_t(&dn_pre_r));
            vecops::add_assign(&mut dxs[t], &self.wn.matvec_t(&dn_pre));
            let dr = vecops::hadamard(&dn_pre, un_h);

            // z = σ(pre_z)
            let mut dz_pre = vec![0.0f32; hidden];
            for i in 0..hidden {
                dz_pre[i] = dz[i] * z[i] * (1.0 - z[i]);
            }
            grads.dwz.add_outer(&dz_pre, x, 1.0);
            grads.duz.add_outer(&dz_pre, h_prev, 1.0);
            vecops::add_assign(&mut grads.dbz, &dz_pre);
            vecops::add_assign(&mut dh_prev, &self.uz.matvec_t(&dz_pre));
            vecops::add_assign(&mut dxs[t], &self.wz.matvec_t(&dz_pre));

            // r = σ(pre_r)
            let mut dr_pre = vec![0.0f32; hidden];
            for i in 0..hidden {
                dr_pre[i] = dr[i] * r[i] * (1.0 - r[i]);
            }
            grads.dwr.add_outer(&dr_pre, x, 1.0);
            grads.dur.add_outer(&dr_pre, h_prev, 1.0);
            vecops::add_assign(&mut grads.dbr, &dr_pre);
            vecops::add_assign(&mut dh_prev, &self.ur.matvec_t(&dr_pre));
            vecops::add_assign(&mut dxs[t], &self.wr.matvec_t(&dr_pre));

            dh_next = dh_prev;
        }
        (grads, dxs)
    }

    /// Flat views over all parameter buffers, paired with matching
    /// gradient buffers — convenient for driving one optimizer per tensor.
    pub fn param_grad_pairs<'a>(&'a mut self, g: &'a GruGrads) -> Vec<(&'a mut [f32], &'a [f32])> {
        vec![
            (&mut self.wz.data[..], &g.dwz.data[..]),
            (&mut self.uz.data[..], &g.duz.data[..]),
            (&mut self.bz[..], &g.dbz[..]),
            (&mut self.wr.data[..], &g.dwr.data[..]),
            (&mut self.ur.data[..], &g.dur.data[..]),
            (&mut self.br[..], &g.dbr[..]),
            (&mut self.wn.data[..], &g.dwn.data[..]),
            (&mut self.un.data[..], &g.dun.data[..]),
            (&mut self.bn[..], &g.dbn[..]),
        ]
    }
}

// ---------------------------------------------------------------------------
// Fused inference engine
// ---------------------------------------------------------------------------

/// Gate-packed GRU weights for inference.
///
/// The three input projections `Wz/Wr/Wn` are stacked into one `3H×I`
/// matrix and the recurrent projections `Uz/Ur/Un` into one `3H×H` matrix,
/// so a whole sequence's input side is a single GEMM (`X · Wᵀ`) and each
/// step's recurrent side is one fused matvec instead of three. Built from a
/// [`GruCell`] on demand (typically once per scoring session); not
/// serialized — the cell remains the source of truth.
#[derive(Debug, Clone)]
pub struct PackedGru {
    /// `[Wz; Wr; Wn]` stacked row-wise: `3H×I`.
    pub(crate) w: Matrix,
    /// `[Uz; Ur; Un]` stacked row-wise: `3H×H`.
    pub(crate) u: Matrix,
    /// `[bz; br; bn]`: `3H`.
    pub(crate) b: Vec<f32>,
    pub(crate) hidden: usize,
}

/// Reusable scratch arena for [`PackedGru::run`]. All buffers grow to the
/// longest sequence seen and are then reused, so steady-state inference
/// performs **zero heap allocation**. Outputs (`hs`, `zs`, `rs`) are flat
/// `T×H` matrices — one contiguous row per timestep.
#[derive(Debug, Clone, Default)]
pub struct GruWorkspace {
    /// `T×3H` input-side projections `X·Wᵀ + b`.
    pub(crate) xp: Matrix,
    /// Current step's recurrent projections `U·h_{t-1}` (`3H`).
    pub(crate) up: Vec<f32>,
    /// Hidden states, one row per step (`T×H`).
    pub hs: Matrix,
    /// Update-gate activations per step (`T×H`).
    pub zs: Matrix,
    /// Reset-gate activations per step (`T×H`).
    pub rs: Matrix,
    /// Running hidden state (`H`).
    pub(crate) h: Vec<f32>,
    /// Quantized-activation scratch for the int8 engine
    /// ([`crate::quant::QuantPackedGru`]); unused on the f32 path.
    pub(crate) qa: Vec<u8>,
}

impl GruWorkspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Steps recorded by the last [`PackedGru::run`].
    pub fn len(&self) -> usize {
        self.hs.rows
    }

    pub fn is_empty(&self) -> bool {
        self.hs.rows == 0
    }
}

/// Scratch buffers for the resumable [`PackedGru::step`] API: the input
/// and recurrent projections of the *current* step only. One scratch set
/// can be shared across any number of flows (the per-flow state is just
/// the `H`-wide hidden vector), so a streaming scorer tracking millions of
/// flows pays 2 × 3H floats once, not per flow.
#[derive(Debug, Clone, Default)]
pub struct GruStepScratch {
    /// Current step's input-side projections `W·x + b` (`3H`).
    pub(crate) xp: Vec<f32>,
    /// Current step's recurrent projections `U·h_{t-1}` (`3H`).
    pub(crate) up: Vec<f32>,
    /// Quantized-activation scratch for the int8 engine
    /// ([`crate::quant::QuantPackedGru`]); unused on the f32 path.
    pub(crate) qa: Vec<u8>,
}

impl GruStepScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Scratch buffers for the cross-flow batched [`PackedGru::step_batch`]
/// API: the input and recurrent projections of one micro-batch of
/// *independent* flows, each advancing by one timestep. Like
/// [`GruStepScratch`] this is flow-independent and reusable; it grows to
/// the largest batch seen and allocates nothing afterwards.
#[derive(Debug, Clone, Default)]
pub struct GruBatchScratch {
    /// Input-side projections `X·Wᵀ + b`, one row per flow (`B×3H`).
    pub(crate) xp: Matrix,
    /// Recurrent projections `H·Uᵀ`, one row per flow (`B×3H`).
    pub(crate) up: Matrix,
    /// Quantized-activation scratch for the int8 engine
    /// ([`crate::quant::QuantPackedGru`]); unused on the f32 path.
    pub(crate) qa: Vec<u8>,
}

impl GruBatchScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

impl PackedGru {
    /// Packs a cell's nine parameter tensors into the fused layout.
    pub fn pack(cell: &GruCell) -> PackedGru {
        let hidden = cell.hidden_size();
        let input = cell.input_size();
        let mut w = Matrix::zeros(3 * hidden, input);
        let mut u = Matrix::zeros(3 * hidden, hidden);
        let mut b = vec![0.0f32; 3 * hidden];
        for (block, (wsrc, usrc, bsrc)) in [
            (&cell.wz, &cell.uz, &cell.bz),
            (&cell.wr, &cell.ur, &cell.br),
            (&cell.wn, &cell.un, &cell.bn),
        ]
        .into_iter()
        .enumerate()
        {
            let lo = block * hidden;
            w.data[lo * input..(lo + hidden) * input].copy_from_slice(&wsrc.data);
            u.data[lo * hidden..(lo + hidden) * hidden].copy_from_slice(&usrc.data);
            b[lo..lo + hidden].copy_from_slice(bsrc);
        }
        PackedGru { w, u, b, hidden }
    }

    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    pub fn input_size(&self) -> usize {
        self.w.cols
    }

    /// Runs the cell over a sequence laid out as a `T×I` matrix, filling
    /// the workspace's `hs`/`zs`/`rs`. Allocation-free once `ws` has grown
    /// to the sequence size.
    ///
    /// Produces the same gate/hidden trajectories as [`GruCell::forward`]
    /// up to floating-point reassociation (the equivalence tests pin this
    /// to ≤1e-6).
    pub fn run(&self, xs: &Matrix, ws: &mut GruWorkspace) {
        let hidden = self.hidden;
        let steps = xs.rows;
        debug_assert_eq!(xs.cols, self.input_size());

        // Whole-sequence input projections in one GEMM, bias folded in.
        Matrix::matmul_nt_into(xs, &self.w, &mut ws.xp);
        for r in 0..steps {
            let row = ws.xp.row_mut(r);
            for (v, &bv) in row.iter_mut().zip(&self.b) {
                *v += bv;
            }
        }

        ws.hs.resize(steps, hidden);
        ws.zs.resize(steps, hidden);
        ws.rs.resize(steps, hidden);
        ws.up.resize(3 * hidden, 0.0);
        ws.h.clear();
        ws.h.resize(hidden, 0.0);

        let ks = crate::simd::KernelSet::active();
        for t in 0..steps {
            // One fused matvec covers Uz·h, Ur·h and Un·h.
            self.u.matvec_into(&ws.h, &mut ws.up);
            // The dispatched gate kernel computes z/r and the new hidden
            // state over the packed 3H slab (vectorized sigmoid/tanh on
            // SIMD sets); `ws.h` keeps the running copy, the trajectory
            // row gets a copy.
            ks.gru_gates(
                ws.xp.row(t),
                &ws.up,
                &mut ws.h,
                ws.zs.row_mut(t),
                ws.rs.row_mut(t),
            );
            ws.hs.row_mut(t).copy_from_slice(&ws.h);
        }
    }

    /// Advances the cell by **one** timestep, carrying the hidden state
    /// across calls — the resumable core of streaming per-flow scoring.
    ///
    /// `h` is the caller-owned running hidden state (`H` floats, zeroed
    /// before the first packet of a flow); it is updated in place. The
    /// update- and reset-gate activations are written to `z`/`r` (`H`
    /// each), which may alias rows of a caller's profile matrix. `scratch`
    /// is flow-independent and reusable across flows.
    ///
    /// Feeding a sequence through `step` one packet at a time produces
    /// **bitwise identical** trajectories to one [`run`](Self::run) over
    /// the whole sequence: both sides compute the input projection row
    /// with the same `dot`/`dot4` kernels (`matmul_nt_into` degenerates to
    /// `matvec_into` row-for-row) and share the elementwise tail. The test
    /// suite pins this.
    pub fn step(
        &self,
        x: &[f32],
        h: &mut [f32],
        scratch: &mut GruStepScratch,
        z: &mut [f32],
        r: &mut [f32],
    ) {
        let hidden = self.hidden;
        debug_assert_eq!(x.len(), self.input_size());
        debug_assert_eq!(h.len(), hidden);
        debug_assert_eq!(z.len(), hidden);
        debug_assert_eq!(r.len(), hidden);
        scratch.xp.resize(3 * hidden, 0.0);
        scratch.up.resize(3 * hidden, 0.0);

        self.w.matvec_into(x, &mut scratch.xp);
        for (v, &bv) in scratch.xp.iter_mut().zip(&self.b) {
            *v += bv;
        }
        self.u.matvec_into(h, &mut scratch.up);

        // Same dispatched gate kernel as `run`, which is what keeps the
        // two paths bitwise identical.
        crate::simd::KernelSet::active().gru_gates(&scratch.xp, &scratch.up, h, z, r);
    }

    /// Advances a micro-batch of **independent** flows by one timestep
    /// each — the cross-flow continuous-batching core of the streaming
    /// scorer.
    ///
    /// `xs` holds one input row per flow (`B×I`) and `hs` the matching
    /// hidden rows (`B×H`, gathered from per-flow storage by the caller
    /// and updated in place); `zs`/`rs` are resized to `B×H` and receive
    /// the gate activations row-for-row. Flows never interact: row `i` of
    /// every matrix belongs to the same flow throughout.
    ///
    /// **Bitwise identical** to `B` separate [`step`](Self::step) calls:
    /// `matmul_nt_into` computes each row with the same `dot`/`dot4`
    /// kernels as `matvec_into` (the 1-row==matvec guarantee), the bias
    /// add is the same per-row scalar loop, and the gate block runs the
    /// same dispatched kernel per row. The test suite pins this.
    pub fn step_batch(
        &self,
        xs: &Matrix,
        hs: &mut Matrix,
        scratch: &mut GruBatchScratch,
        zs: &mut Matrix,
        rs: &mut Matrix,
    ) {
        let hidden = self.hidden;
        let b = xs.rows;
        debug_assert_eq!(xs.cols, self.input_size());
        debug_assert_eq!(hs.rows, b);
        debug_assert_eq!(hs.cols, hidden);

        Matrix::matmul_nt_into(xs, &self.w, &mut scratch.xp);
        for r in 0..b {
            let row = scratch.xp.row_mut(r);
            for (v, &bv) in row.iter_mut().zip(&self.b) {
                *v += bv;
            }
        }
        Matrix::matmul_nt_into(hs, &self.u, &mut scratch.up);

        zs.resize(b, hidden);
        rs.resize(b, hidden);
        let ks = crate::simd::KernelSet::active();
        for i in 0..b {
            ks.gru_gates(
                scratch.xp.row(i),
                scratch.up.row(i),
                hs.row_mut(i),
                zs.row_mut(i),
                rs.row_mut(i),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_inputs(seq: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..seq)
            .map(|t| {
                (0..dim)
                    .map(|i| ((t * dim + i) as f32 * 0.37).sin() * 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn forward_shapes_and_gate_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let cell = GruCell::new(4, 6, &mut rng);
        let xs = toy_inputs(5, 4);
        let trace = cell.forward(&xs);
        assert_eq!(trace.len(), 5);
        for t in 0..5 {
            assert_eq!(trace.hs[t].len(), 6);
            assert!(trace.zs[t].iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!(trace.rs[t].iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!(trace.hs[t].iter().all(|&v| (-1.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn empty_sequence_yields_empty_trace() {
        let mut rng = StdRng::seed_from_u64(3);
        let cell = GruCell::new(4, 6, &mut rng);
        let trace = cell.forward::<Vec<f32>>(&[]);
        assert!(trace.is_empty());
    }

    #[test]
    fn deterministic_forward() {
        let mut rng = StdRng::seed_from_u64(9);
        let cell = GruCell::new(3, 5, &mut rng);
        let xs = toy_inputs(4, 3);
        let a = cell.forward(&xs);
        let b = cell.forward(&xs);
        assert_eq!(a.hs, b.hs);
    }

    /// The heavyweight correctness test: full BPTT against central finite
    /// differences, for every parameter tensor and the inputs.
    #[test]
    fn bptt_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut cell = GruCell::new(3, 4, &mut rng);
        let xs = toy_inputs(6, 3);

        // Loss = sum over timesteps of sum(h_t) — exercises the recurrence.
        fn loss(cell: &GruCell, xs: &[Vec<f32>]) -> f32 {
            let tr = cell.forward(xs);
            tr.hs.iter().map(|h| h.iter().sum::<f32>()).sum()
        }

        let trace = cell.forward(&xs);
        let dhs: Vec<Vec<f32>> = (0..trace.len()).map(|_| vec![1.0f32; 4]).collect();
        let (grads, dxs) = cell.backward(&trace, &dhs);

        let eps = 1e-2f32;
        let tol = 3e-2f32;

        macro_rules! check_tensor {
            ($field:expr, $grad:expr, $name:expr) => {
                for i in 0..$field.len() {
                    let orig = $field[i];
                    $field[i] = orig + eps;
                    let lp = loss(&cell, &xs);
                    // Re-borrow because `cell` was borrowed by `loss`.
                    $field[i] = orig - eps;
                    let lm = loss(&cell, &xs);
                    $field[i] = orig;
                    let fd = (lp - lm) / (2.0 * eps);
                    let an = $grad[i];
                    assert!(
                        (fd - an).abs() < tol,
                        "{}[{}]: finite-diff {} vs analytic {}",
                        $name,
                        i,
                        fd,
                        an
                    );
                }
            };
        }

        check_tensor!(cell.wz.data, grads.dwz.data, "Wz");
        check_tensor!(cell.uz.data, grads.duz.data, "Uz");
        check_tensor!(cell.bz, grads.dbz, "bz");
        check_tensor!(cell.wr.data, grads.dwr.data, "Wr");
        check_tensor!(cell.ur.data, grads.dur.data, "Ur");
        check_tensor!(cell.br, grads.dbr, "br");
        check_tensor!(cell.wn.data, grads.dwn.data, "Wn");
        check_tensor!(cell.un.data, grads.dun.data, "Un");
        check_tensor!(cell.bn, grads.dbn, "bn");

        // Input gradients.
        let mut xs2 = xs.clone();
        for t in 0..xs2.len() {
            for i in 0..xs2[t].len() {
                let orig = xs2[t][i];
                xs2[t][i] = orig + eps;
                let lp = loss(&cell, &xs2);
                xs2[t][i] = orig - eps;
                let lm = loss(&cell, &xs2);
                xs2[t][i] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - dxs[t][i]).abs() < tol,
                    "dx[{t}][{i}]: finite-diff {fd} vs analytic {}",
                    dxs[t][i]
                );
            }
        }
    }

    fn as_matrix(xs: &[Vec<f32>]) -> Matrix {
        let cols = xs.first().map_or(0, Vec::len);
        let mut m = Matrix::zeros(xs.len(), cols);
        for (r, x) in xs.iter().enumerate() {
            m.row_mut(r).copy_from_slice(x);
        }
        m
    }

    /// The packed inference engine must reproduce the reference forward
    /// pass: hidden states and both gate trajectories, step for step.
    #[test]
    fn packed_matches_reference_forward() {
        let mut rng = StdRng::seed_from_u64(17);
        let cell = GruCell::new(7, 12, &mut rng);
        let packed = PackedGru::pack(&cell);
        let mut ws = GruWorkspace::new();
        for seq in [1usize, 2, 5, 33] {
            let xs = toy_inputs(seq, 7);
            let trace = cell.forward(&xs);
            packed.run(&as_matrix(&xs), &mut ws);
            assert_eq!(ws.len(), seq);
            for t in 0..seq {
                for i in 0..12 {
                    assert!((trace.hs[t][i] - ws.hs.get(t, i)).abs() < 1e-6);
                    assert!((trace.zs[t][i] - ws.zs.get(t, i)).abs() < 1e-6);
                    assert!((trace.rs[t][i] - ws.rs.get(t, i)).abs() < 1e-6);
                }
            }
        }
    }

    /// Workspace reuse across differently-sized sequences must not leak
    /// state between runs: re-running a sequence after longer/shorter ones
    /// gives bitwise-identical trajectories.
    #[test]
    fn workspace_reuse_is_stateless() {
        let mut rng = StdRng::seed_from_u64(23);
        let cell = GruCell::new(4, 9, &mut rng);
        let packed = PackedGru::pack(&cell);
        let xs = as_matrix(&toy_inputs(6, 4));

        let mut fresh = GruWorkspace::new();
        packed.run(&xs, &mut fresh);
        let expect = fresh.hs.clone();

        let mut reused = GruWorkspace::new();
        for other_len in [31usize, 1, 17, 2] {
            packed.run(&as_matrix(&toy_inputs(other_len, 4)), &mut reused);
            packed.run(&xs, &mut reused);
            assert_eq!(reused.hs, expect, "after interleaving len {other_len}");
        }
    }

    /// Streaming invariant: advancing packet-by-packet through `step`
    /// (carrying the hidden state across calls) reproduces the batched
    /// `run` trajectories bitwise — the foundation of per-flow scoring.
    #[test]
    fn step_matches_batched_run_bitwise() {
        let mut rng = StdRng::seed_from_u64(31);
        let cell = GruCell::new(6, 10, &mut rng);
        let packed = PackedGru::pack(&cell);
        let mut ws = GruWorkspace::new();
        let mut scratch = GruStepScratch::new();
        for seq in [1usize, 3, 9, 40] {
            let xs = toy_inputs(seq, 6);
            packed.run(&as_matrix(&xs), &mut ws);

            let mut h = vec![0.0f32; 10];
            let mut z = vec![0.0f32; 10];
            let mut r = vec![0.0f32; 10];
            for (t, x) in xs.iter().enumerate() {
                packed.step(x, &mut h, &mut scratch, &mut z, &mut r);
                assert_eq!(h.as_slice(), ws.hs.row(t), "h diverged at t={t}");
                assert_eq!(z.as_slice(), ws.zs.row(t), "z diverged at t={t}");
                assert_eq!(r.as_slice(), ws.rs.row(t), "r diverged at t={t}");
            }
        }
    }

    /// One shared scratch across interleaved flows must not leak state
    /// between them: only the per-flow hidden vector matters.
    #[test]
    fn step_scratch_shared_across_flows() {
        let mut rng = StdRng::seed_from_u64(37);
        let cell = GruCell::new(4, 8, &mut rng);
        let packed = PackedGru::pack(&cell);
        let xs_a = toy_inputs(7, 4);
        let xs_b: Vec<Vec<f32>> = toy_inputs(7, 4)
            .into_iter()
            .map(|row| row.into_iter().map(|v| -v).collect())
            .collect();

        // Reference: each flow alone.
        let mut ws = GruWorkspace::new();
        packed.run(&as_matrix(&xs_a), &mut ws);
        let expect_a = ws.hs.clone();
        packed.run(&as_matrix(&xs_b), &mut ws);
        let expect_b = ws.hs.clone();

        // Interleaved through one scratch.
        let mut scratch = GruStepScratch::new();
        let (mut ha, mut hb) = (vec![0.0f32; 8], vec![0.0f32; 8]);
        let (mut z, mut r) = (vec![0.0f32; 8], vec![0.0f32; 8]);
        for t in 0..7 {
            packed.step(&xs_a[t], &mut ha, &mut scratch, &mut z, &mut r);
            assert_eq!(ha.as_slice(), expect_a.row(t));
            packed.step(&xs_b[t], &mut hb, &mut scratch, &mut z, &mut r);
            assert_eq!(hb.as_slice(), expect_b.row(t));
        }
    }

    /// Cross-flow batching invariant: one `step_batch` over B independent
    /// flows reproduces B separate `step` calls bitwise — hidden states
    /// and both gate rows — for every batch size including 0 and 1.
    #[test]
    fn step_batch_matches_per_flow_step_bitwise() {
        let mut rng = StdRng::seed_from_u64(41);
        let cell = GruCell::new(6, 10, &mut rng);
        let packed = PackedGru::pack(&cell);
        let mut scratch = GruStepScratch::new();
        let mut batch_scratch = GruBatchScratch::new();
        for b in [0usize, 1, 3, 4, 7, 16] {
            // Distinct mid-flow hidden states per flow.
            let mut hs_ref: Vec<Vec<f32>> = (0..b)
                .map(|f| {
                    (0..10)
                        .map(|i| ((f * 10 + i) as f32 * 0.13).sin() * 0.8)
                        .collect()
                })
                .collect();
            let xs_rows: Vec<Vec<f32>> = (0..b)
                .map(|f| (0..6).map(|i| ((f * 6 + i) as f32 * 0.29).cos()).collect())
                .collect();

            // Reference: per-flow steps.
            let mut zs_ref = vec![vec![0.0f32; 10]; b];
            let mut rs_ref = vec![vec![0.0f32; 10]; b];
            for f in 0..b {
                packed.step(
                    &xs_rows[f],
                    &mut hs_ref[f],
                    &mut scratch,
                    &mut zs_ref[f],
                    &mut rs_ref[f],
                );
            }

            // Batched.
            let mut xs = Matrix::zeros(b, 6);
            let mut hs = Matrix::zeros(b, 10);
            for (f, xrow) in xs_rows.iter().enumerate() {
                xs.row_mut(f).copy_from_slice(xrow);
                for i in 0..10 {
                    hs.row_mut(f)[i] = ((f * 10 + i) as f32 * 0.13).sin() * 0.8;
                }
            }
            let (mut zs, mut rs) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
            packed.step_batch(&xs, &mut hs, &mut batch_scratch, &mut zs, &mut rs);
            for f in 0..b {
                assert_eq!(hs.row(f), hs_ref[f].as_slice(), "h diverged, b={b} f={f}");
                assert_eq!(zs.row(f), zs_ref[f].as_slice(), "z diverged, b={b} f={f}");
                assert_eq!(rs.row(f), rs_ref[f].as_slice(), "r diverged, b={b} f={f}");
            }
        }
    }

    #[test]
    fn empty_sequence_through_packed_path() {
        let mut rng = StdRng::seed_from_u64(29);
        let cell = GruCell::new(3, 5, &mut rng);
        let packed = PackedGru::pack(&cell);
        let mut ws = GruWorkspace::new();
        packed.run(&Matrix::zeros(0, 3), &mut ws);
        assert!(ws.is_empty());
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let mut rng = StdRng::seed_from_u64(11);
        let cell = GruCell::new(2, 3, &mut rng);
        let xs = toy_inputs(3, 2);
        let trace = cell.forward(&xs);
        let dhs: Vec<Vec<f32>> = (0..3).map(|_| vec![1.0f32; 3]).collect();
        let (g1, _) = cell.backward(&trace, &dhs);
        let mut acc = GruGrads::zeros(2, 3);
        acc.add_assign(&g1);
        acc.add_assign(&g1);
        acc.scale(0.5);
        for (a, b) in acc.dwz.data.iter().zip(&g1.dwz.data) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
