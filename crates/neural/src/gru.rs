//! Gated Recurrent Unit with full backpropagation through time.
//!
//! The cell follows the standard (PyTorch-convention) formulation:
//!
//! ```text
//! z_t = σ(Wz x_t + Uz h_{t-1} + bz)              (update gate)
//! r_t = σ(Wr x_t + Ur h_{t-1} + br)              (reset gate)
//! n_t = tanh(Wn x_t + bn + r_t ∘ (Un h_{t-1}))   (candidate state)
//! h_t = (1 - z_t) ∘ n_t + z_t ∘ h_{t-1}
//! ```
//!
//! CLAP does not only use the classifier output: the per-timestep **gate
//! activations** `z_t` and `r_t` are the learned inter-packet context that
//! gets fused into the context profile (paper §3.3(b), features #52–#115 of
//! Table 7). [`GruTrace`] therefore exposes them directly.

use crate::matrix::vecops;
use crate::{sigmoid, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// GRU parameters. All matrices are `hidden × input` (W*) or
/// `hidden × hidden` (U*).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruCell {
    pub wz: Matrix,
    pub uz: Matrix,
    pub bz: Vec<f32>,
    pub wr: Matrix,
    pub ur: Matrix,
    pub br: Vec<f32>,
    pub wn: Matrix,
    pub un: Matrix,
    pub bn: Vec<f32>,
}

/// Everything the backward pass (and CLAP's feature fusion) needs from a
/// forward run over one sequence.
#[derive(Debug, Clone)]
pub struct GruTrace {
    /// Inputs, one per timestep.
    pub xs: Vec<Vec<f32>>,
    /// Hidden states `h_1..h_T` (`h_0` is the zero vector).
    pub hs: Vec<Vec<f32>>,
    /// Update-gate activations `z_t` per timestep.
    pub zs: Vec<Vec<f32>>,
    /// Reset-gate activations `r_t` per timestep.
    pub rs: Vec<Vec<f32>>,
    /// Candidate states `n_t`.
    pub ns: Vec<Vec<f32>>,
    /// Cached `Un · h_{t-1}` (needed for the reset-gate gradient).
    pub un_hs: Vec<Vec<f32>>,
}

impl GruTrace {
    pub fn len(&self) -> usize {
        self.hs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hs.is_empty()
    }
}

/// Gradients for every GRU parameter, same shapes as [`GruCell`].
#[derive(Debug, Clone)]
pub struct GruGrads {
    pub dwz: Matrix,
    pub duz: Matrix,
    pub dbz: Vec<f32>,
    pub dwr: Matrix,
    pub dur: Matrix,
    pub dbr: Vec<f32>,
    pub dwn: Matrix,
    pub dun: Matrix,
    pub dbn: Vec<f32>,
}

impl GruGrads {
    pub fn zeros(input: usize, hidden: usize) -> Self {
        GruGrads {
            dwz: Matrix::zeros(hidden, input),
            duz: Matrix::zeros(hidden, hidden),
            dbz: vec![0.0; hidden],
            dwr: Matrix::zeros(hidden, input),
            dur: Matrix::zeros(hidden, hidden),
            dbr: vec![0.0; hidden],
            dwn: Matrix::zeros(hidden, input),
            dun: Matrix::zeros(hidden, hidden),
            dbn: vec![0.0; hidden],
        }
    }

    /// Accumulates another gradient set (used for batching across
    /// sequences).
    pub fn add_assign(&mut self, other: &GruGrads) {
        self.dwz.add_assign(&other.dwz);
        self.duz.add_assign(&other.duz);
        vecops::add_assign(&mut self.dbz, &other.dbz);
        self.dwr.add_assign(&other.dwr);
        self.dur.add_assign(&other.dur);
        vecops::add_assign(&mut self.dbr, &other.dbr);
        self.dwn.add_assign(&other.dwn);
        self.dun.add_assign(&other.dun);
        vecops::add_assign(&mut self.dbn, &other.dbn);
    }

    /// Scales all gradients (e.g. by 1/batch).
    pub fn scale(&mut self, s: f32) {
        self.dwz.scale(s);
        self.duz.scale(s);
        self.dbz.iter_mut().for_each(|v| *v *= s);
        self.dwr.scale(s);
        self.dur.scale(s);
        self.dbr.iter_mut().for_each(|v| *v *= s);
        self.dwn.scale(s);
        self.dun.scale(s);
        self.dbn.iter_mut().for_each(|v| *v *= s);
    }
}

impl GruCell {
    pub fn new(input: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        GruCell {
            wz: Matrix::xavier(hidden, input, rng),
            uz: Matrix::xavier(hidden, hidden, rng),
            bz: vec![0.0; hidden],
            wr: Matrix::xavier(hidden, input, rng),
            ur: Matrix::xavier(hidden, hidden, rng),
            br: vec![0.0; hidden],
            wn: Matrix::xavier(hidden, input, rng),
            un: Matrix::xavier(hidden, hidden, rng),
            bn: vec![0.0; hidden],
        }
    }

    pub fn input_size(&self) -> usize {
        self.wz.cols
    }

    pub fn hidden_size(&self) -> usize {
        self.wz.rows
    }

    /// Runs the cell over a sequence, returning the full trace.
    pub fn forward(&self, xs: &[Vec<f32>]) -> GruTrace {
        let hidden = self.hidden_size();
        let mut trace = GruTrace {
            xs: xs.to_vec(),
            hs: Vec::with_capacity(xs.len()),
            zs: Vec::with_capacity(xs.len()),
            rs: Vec::with_capacity(xs.len()),
            ns: Vec::with_capacity(xs.len()),
            un_hs: Vec::with_capacity(xs.len()),
        };
        let mut h = vec![0.0f32; hidden];
        for x in xs {
            debug_assert_eq!(x.len(), self.input_size());
            let mut z = self.wz.matvec(x);
            vecops::add_assign(&mut z, &self.uz.matvec(&h));
            vecops::add_assign(&mut z, &self.bz);
            z.iter_mut().for_each(|v| *v = sigmoid(*v));

            let mut r = self.wr.matvec(x);
            vecops::add_assign(&mut r, &self.ur.matvec(&h));
            vecops::add_assign(&mut r, &self.br);
            r.iter_mut().for_each(|v| *v = sigmoid(*v));

            let un_h = self.un.matvec(&h);
            let mut n = self.wn.matvec(x);
            vecops::add_assign(&mut n, &self.bn);
            for i in 0..hidden {
                n[i] = (n[i] + r[i] * un_h[i]).tanh();
            }

            let mut h_new = vec![0.0f32; hidden];
            for i in 0..hidden {
                h_new[i] = (1.0 - z[i]) * n[i] + z[i] * h[i];
            }

            trace.zs.push(z);
            trace.rs.push(r);
            trace.ns.push(n);
            trace.un_hs.push(un_h);
            trace.hs.push(h_new.clone());
            h = h_new;
        }
        trace
    }

    /// Backpropagation through time.
    ///
    /// `dhs[t]` is ∂loss/∂h_t coming from outside the recurrence (e.g. the
    /// per-timestep classification head). Returns parameter gradients and
    /// ∂loss/∂x_t for each step.
    pub fn backward(&self, trace: &GruTrace, dhs: &[Vec<f32>]) -> (GruGrads, Vec<Vec<f32>>) {
        let hidden = self.hidden_size();
        let input = self.input_size();
        let steps = trace.len();
        assert_eq!(dhs.len(), steps, "dh per timestep required");
        let mut grads = GruGrads::zeros(input, hidden);
        let mut dxs = vec![vec![0.0f32; input]; steps];
        let zero = vec![0.0f32; hidden];
        let mut dh_next = vec![0.0f32; hidden]; // carried from t+1

        for t in (0..steps).rev() {
            let h_prev = if t == 0 { &zero } else { &trace.hs[t - 1] };
            let (z, r, n, un_h, x) =
                (&trace.zs[t], &trace.rs[t], &trace.ns[t], &trace.un_hs[t], &trace.xs[t]);

            // Total gradient flowing into h_t.
            let mut dh = dhs[t].clone();
            vecops::add_assign(&mut dh, &dh_next);

            // h_t = (1-z) n + z h_prev
            let mut dz = vec![0.0f32; hidden];
            let mut dn = vec![0.0f32; hidden];
            let mut dh_prev = vec![0.0f32; hidden];
            for i in 0..hidden {
                dz[i] = dh[i] * (h_prev[i] - n[i]);
                dn[i] = dh[i] * (1.0 - z[i]);
                dh_prev[i] = dh[i] * z[i];
            }

            // n = tanh(pre_n); pre_n = Wn x + bn + r ∘ (Un h_prev)
            let mut dn_pre = vec![0.0f32; hidden];
            for i in 0..hidden {
                dn_pre[i] = dn[i] * (1.0 - n[i] * n[i]);
            }
            grads.dwn.add_outer(&dn_pre, x, 1.0);
            vecops::add_assign(&mut grads.dbn, &dn_pre);
            let dn_pre_r = vecops::hadamard(&dn_pre, r);
            grads.dun.add_outer(&dn_pre_r, h_prev, 1.0);
            vecops::add_assign(&mut dh_prev, &self.un.matvec_t(&dn_pre_r));
            vecops::add_assign(&mut dxs[t], &self.wn.matvec_t(&dn_pre));
            let dr = vecops::hadamard(&dn_pre, un_h);

            // z = σ(pre_z)
            let mut dz_pre = vec![0.0f32; hidden];
            for i in 0..hidden {
                dz_pre[i] = dz[i] * z[i] * (1.0 - z[i]);
            }
            grads.dwz.add_outer(&dz_pre, x, 1.0);
            grads.duz.add_outer(&dz_pre, h_prev, 1.0);
            vecops::add_assign(&mut grads.dbz, &dz_pre);
            vecops::add_assign(&mut dh_prev, &self.uz.matvec_t(&dz_pre));
            vecops::add_assign(&mut dxs[t], &self.wz.matvec_t(&dz_pre));

            // r = σ(pre_r)
            let mut dr_pre = vec![0.0f32; hidden];
            for i in 0..hidden {
                dr_pre[i] = dr[i] * r[i] * (1.0 - r[i]);
            }
            grads.dwr.add_outer(&dr_pre, x, 1.0);
            grads.dur.add_outer(&dr_pre, h_prev, 1.0);
            vecops::add_assign(&mut grads.dbr, &dr_pre);
            vecops::add_assign(&mut dh_prev, &self.ur.matvec_t(&dr_pre));
            vecops::add_assign(&mut dxs[t], &self.wr.matvec_t(&dr_pre));

            dh_next = dh_prev;
        }
        (grads, dxs)
    }

    /// Flat views over all parameter buffers, paired with matching
    /// gradient buffers — convenient for driving one optimizer per tensor.
    pub fn param_grad_pairs<'a>(
        &'a mut self,
        g: &'a GruGrads,
    ) -> Vec<(&'a mut [f32], &'a [f32])> {
        vec![
            (&mut self.wz.data[..], &g.dwz.data[..]),
            (&mut self.uz.data[..], &g.duz.data[..]),
            (&mut self.bz[..], &g.dbz[..]),
            (&mut self.wr.data[..], &g.dwr.data[..]),
            (&mut self.ur.data[..], &g.dur.data[..]),
            (&mut self.br[..], &g.dbr[..]),
            (&mut self.wn.data[..], &g.dwn.data[..]),
            (&mut self.un.data[..], &g.dun.data[..]),
            (&mut self.bn[..], &g.dbn[..]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_inputs(seq: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..seq)
            .map(|t| (0..dim).map(|i| ((t * dim + i) as f32 * 0.37).sin() * 0.5).collect())
            .collect()
    }

    #[test]
    fn forward_shapes_and_gate_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let cell = GruCell::new(4, 6, &mut rng);
        let xs = toy_inputs(5, 4);
        let trace = cell.forward(&xs);
        assert_eq!(trace.len(), 5);
        for t in 0..5 {
            assert_eq!(trace.hs[t].len(), 6);
            assert!(trace.zs[t].iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!(trace.rs[t].iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!(trace.hs[t].iter().all(|&v| (-1.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn empty_sequence_yields_empty_trace() {
        let mut rng = StdRng::seed_from_u64(3);
        let cell = GruCell::new(4, 6, &mut rng);
        let trace = cell.forward(&[]);
        assert!(trace.is_empty());
    }

    #[test]
    fn deterministic_forward() {
        let mut rng = StdRng::seed_from_u64(9);
        let cell = GruCell::new(3, 5, &mut rng);
        let xs = toy_inputs(4, 3);
        let a = cell.forward(&xs);
        let b = cell.forward(&xs);
        assert_eq!(a.hs, b.hs);
    }

    /// The heavyweight correctness test: full BPTT against central finite
    /// differences, for every parameter tensor and the inputs.
    #[test]
    fn bptt_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut cell = GruCell::new(3, 4, &mut rng);
        let xs = toy_inputs(6, 3);

        // Loss = sum over timesteps of sum(h_t) — exercises the recurrence.
        fn loss(cell: &GruCell, xs: &[Vec<f32>]) -> f32 {
            let tr = cell.forward(xs);
            tr.hs.iter().map(|h| h.iter().sum::<f32>()).sum()
        }

        let trace = cell.forward(&xs);
        let dhs: Vec<Vec<f32>> = (0..trace.len()).map(|_| vec![1.0f32; 4]).collect();
        let (grads, dxs) = cell.backward(&trace, &dhs);

        let eps = 1e-2f32;
        let tol = 3e-2f32;

        macro_rules! check_tensor {
            ($field:expr, $grad:expr, $name:expr) => {
                for i in 0..$field.len() {
                    let orig = $field[i];
                    $field[i] = orig + eps;
                    let lp = loss(&cell, &xs);
                    // Re-borrow because `cell` was borrowed by `loss`.
                    $field[i] = orig - eps;
                    let lm = loss(&cell, &xs);
                    $field[i] = orig;
                    let fd = (lp - lm) / (2.0 * eps);
                    let an = $grad[i];
                    assert!(
                        (fd - an).abs() < tol,
                        "{}[{}]: finite-diff {} vs analytic {}",
                        $name,
                        i,
                        fd,
                        an
                    );
                }
            };
        }

        check_tensor!(cell.wz.data, grads.dwz.data, "Wz");
        check_tensor!(cell.uz.data, grads.duz.data, "Uz");
        check_tensor!(cell.bz, grads.dbz, "bz");
        check_tensor!(cell.wr.data, grads.dwr.data, "Wr");
        check_tensor!(cell.ur.data, grads.dur.data, "Ur");
        check_tensor!(cell.br, grads.dbr, "br");
        check_tensor!(cell.wn.data, grads.dwn.data, "Wn");
        check_tensor!(cell.un.data, grads.dun.data, "Un");
        check_tensor!(cell.bn, grads.dbn, "bn");

        // Input gradients.
        let mut xs2 = xs.clone();
        for t in 0..xs2.len() {
            for i in 0..xs2[t].len() {
                let orig = xs2[t][i];
                xs2[t][i] = orig + eps;
                let lp = loss(&cell, &xs2);
                xs2[t][i] = orig - eps;
                let lm = loss(&cell, &xs2);
                xs2[t][i] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - dxs[t][i]).abs() < tol,
                    "dx[{t}][{i}]: finite-diff {fd} vs analytic {}",
                    dxs[t][i]
                );
            }
        }
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let mut rng = StdRng::seed_from_u64(11);
        let cell = GruCell::new(2, 3, &mut rng);
        let xs = toy_inputs(3, 2);
        let trace = cell.forward(&xs);
        let dhs: Vec<Vec<f32>> = (0..3).map(|_| vec![1.0f32; 3]).collect();
        let (g1, _) = cell.backward(&trace, &dhs);
        let mut acc = GruGrads::zeros(2, 3);
        acc.add_assign(&g1);
        acc.add_assign(&g1);
        acc.scale(0.5);
        for (a, b) in acc.dwz.data.iter().zip(&g1.dwz.data) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
