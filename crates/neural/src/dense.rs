//! Fully-connected layer with batched forward/backward.

use crate::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation applied after the affine map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    Linear,
    Relu,
    Tanh,
    Sigmoid,
}

impl Activation {
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => crate::sigmoid(x),
        }
    }

    /// Derivative expressed in terms of the *activation output* `y`.
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
        }
    }
}

/// `y = act(x Wᵀ + b)` with `W: out×in`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    pub w: Matrix,
    pub b: Vec<f32>,
    pub activation: Activation,
}

/// Cached activations from a forward pass, needed for backward.
pub struct DenseTrace {
    /// Layer input (batch × in).
    pub input: Matrix,
    /// Layer output after activation (batch × out).
    pub output: Matrix,
}

/// Parameter gradients for one layer.
#[derive(Debug, Clone)]
pub struct DenseGrads {
    pub dw: Matrix,
    pub db: Vec<f32>,
}

impl Dense {
    pub fn new(input: usize, output: usize, activation: Activation, rng: &mut impl Rng) -> Self {
        Dense {
            w: Matrix::xavier(output, input, rng),
            b: vec![0.0; output],
            activation,
        }
    }

    pub fn input_size(&self) -> usize {
        self.w.cols
    }

    pub fn output_size(&self) -> usize {
        self.w.rows
    }

    /// Batched forward pass; `x` is batch × in.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(x.rows, self.w.rows);
        self.forward_into(x, &mut y);
        y
    }

    /// Batched forward pass into a caller-owned output matrix (reused
    /// allocation); the inference engine's building block. The bias +
    /// activation epilogue runs on the dispatched kernel set (vectorized
    /// tanh/sigmoid on SIMD-capable CPUs).
    pub fn forward_into(&self, x: &Matrix, y: &mut Matrix) {
        Matrix::matmul_nt_into(x, &self.w, y);
        let ks = crate::simd::KernelSet::active();
        for r in 0..y.rows {
            ks.bias_act(y.row_mut(r), &self.b, self.activation);
        }
    }

    /// Forward pass that also returns the trace for backprop.
    pub fn forward_trace(&self, x: &Matrix) -> DenseTrace {
        let output = self.forward(x);
        DenseTrace {
            input: x.clone(),
            output,
        }
    }

    /// Backward pass: given `dl/dy`, returns (`dl/dx`, parameter grads).
    pub fn backward(&self, trace: &DenseTrace, mut dy: Matrix) -> (Matrix, DenseGrads) {
        // Fold the activation derivative into dy.
        for (dv, &yv) in dy.data.iter_mut().zip(&trace.output.data) {
            *dv *= self.activation.derivative_from_output(yv);
        }
        let dw = Matrix::matmul_tn(&dy, &trace.input);
        let mut db = vec![0.0; self.output_size()];
        for r in 0..dy.rows {
            for (acc, &v) in db.iter_mut().zip(dy.row(r)) {
                *acc += v;
            }
        }
        let dx = Matrix::matmul_nn(&dy, &self.w);
        (dx, DenseGrads { dw, db })
    }

    /// Flattens parameters into `(weights, biases)` mutable views for the
    /// optimizer.
    pub fn params_mut(&mut self) -> (&mut [f32], &mut [f32]) {
        (&mut self.w.data, &mut self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(2, 2, Activation::Linear, &mut rng);
        layer.w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        layer.b = vec![0.5, -0.5];
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = layer.forward(&x);
        assert_eq!(y.data, vec![3.5, 6.5]);
    }

    #[test]
    fn relu_clips_negatives() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(1, 2, Activation::Relu, &mut rng);
        layer.w = Matrix::from_vec(2, 1, vec![1.0, -1.0]);
        layer.b = vec![0.0, 0.0];
        let y = layer.forward(&Matrix::from_vec(1, 1, vec![2.0]));
        assert_eq!(y.data, vec![2.0, 0.0]);
    }

    /// Finite-difference check of dense backward for every activation.
    #[test]
    fn gradients_match_finite_differences() {
        for act in [
            Activation::Linear,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Relu,
        ] {
            let mut rng = StdRng::seed_from_u64(42);
            let mut layer = Dense::new(3, 2, act, &mut rng);
            // Keep ReLU away from the kink.
            if act == Activation::Relu {
                layer.b = vec![0.3, 0.4];
            }
            let x = Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]);
            // Loss = sum(y).
            let loss = |layer: &Dense, x: &Matrix| layer.forward(x).data.iter().sum::<f32>();

            let trace = layer.forward_trace(&x);
            let dy = Matrix::from_vec(2, 2, vec![1.0; 4]);
            let (dx, grads) = layer.backward(&trace, dy);

            let eps = 1e-2f32;
            // Weight grads.
            for i in 0..layer.w.data.len() {
                let orig = layer.w.data[i];
                layer.w.data[i] = orig + eps;
                let lp = loss(&layer, &x);
                layer.w.data[i] = orig - eps;
                let lm = loss(&layer, &x);
                layer.w.data[i] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grads.dw.data[i]).abs() < 2e-2,
                    "{act:?} dW[{i}]: fd={fd} analytic={}",
                    grads.dw.data[i]
                );
            }
            // Input grads.
            let mut x2 = x.clone();
            for i in 0..x2.data.len() {
                let orig = x2.data[i];
                x2.data[i] = orig + eps;
                let lp = loss(&layer, &x2);
                x2.data[i] = orig - eps;
                let lm = loss(&layer, &x2);
                x2.data[i] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - dx.data[i]).abs() < 2e-2,
                    "{act:?} dX[{i}]: fd={fd} analytic={}",
                    dx.data[i]
                );
            }
        }
    }
}
