//! `neural::quant` — int8 quantized inference for the scoring hot path.
//!
//! The autoencoder dominates CLAP's inference FLOPs (≈176k MACs per packet
//! at the paper's Table-6 sizes) and its f32 weights push the working set
//! past L2. This module halves the memory traffic and roughly doubles GEMM
//! throughput on the same SIMD width by running the dense inner loops in
//! int8 with i32 accumulation:
//!
//! * **Weights** ([`QuantMatrix`]): per-output-row *symmetric* int8 —
//!   `q[r][k] = round(w[r][k] / s_r)` with `s_r = max_k |w[r][k]| / 127`,
//!   so every row uses the full `-127..=127` range regardless of the other
//!   rows' magnitudes. The per-row sums `Σ_k q[r][k]` are precomputed for
//!   the zero-point correction below.
//! * **Activations**: quantized **on the fly, one row per GEMM call**, to
//!   7-bit unsigned over the row's *actual* range (asymmetric):
//!   `qa[k] = clamp(round((x[k] − m) / s_a), 0, 127)` with
//!   `m = min_k x[k]` and `s_a = (max_k x[k] − m) / 127`. Using the
//!   empirical `[min, max]` instead of a symmetric `±max` grid doubles
//!   the resolution on one-sided data — which CLAP's hot path is full of
//!   (profile features and gate activations live in `[0, 1]`). Unsigned
//!   activations are what the AVX2 `maddubs` (u8×i8) instruction wants,
//!   and confining them to `0..=127` bounds every i16 pair-sum by
//!   2·127·127 = 32258 < 32767 — saturation is *unreachable by
//!   construction*, so all kernel tiers (scalar, AVX2 `maddubs`+`madd`,
//!   256-bit and 512-bit `vpdpbusd`) produce the bit-identical i32.
//!   For rows of at least [`CLIP_MIN_LEN`] elements the scan range is
//!   *outlier-clipped*: a 128-bin histogram pass finds the highest bin
//!   whose upper tail holds at most ~1/64 of the samples, and if that
//!   cut is separated from the raw maximum by a clear gap (≥25% of the
//!   raw width) the grid covers only `[min, cut)` and everything above
//!   saturates to code 127. One adversarially-inflated feature then
//!   costs *itself* its resolution instead of stretching the grid —
//!   and flattening every honest value — across the whole row. The
//!   clip decision is a pure function of the row, applied by the shared
//!   planner behind every matvec *and* every GEMM row, so it never
//!   perturbs the streaming == batch equivalences below.
//! * **Dequantization**: with `R_r = Σ_k q[r][k]` precomputed,
//!   `y[r] = s_r · (s_a · acc[r] + m · R_r)` — the per-row zero-point
//!   correction folds the activation offset back in exactly. The result
//!   feeds the existing f32 epilogues (bias+activation, GRU gates), which
//!   stay on the dispatched f32 [`KernelSet`].
//!
//! Because each activation row is quantized independently, a 1-row GEMM is
//! bitwise identical to a matvec — the same invariant the f32 engine has —
//! so int8 **streaming scoring equals int8 batch scoring exactly**, and
//! the int8-vs-f32 drift is pure quantization error (bounded by the
//! property tests; end-to-end score drift and verdict-flip rate are pinned
//! by the clap-core calibration harness).
//!
//! Saturation behavior: weights are clamped to `-127..=127` (−128 is never
//! emitted) and activations to `0..=127`; values beyond the row maximum
//! cannot occur since the scale is derived from it, so clamping only
//! guards rounding at the extremes. Non-finite activations are excluded
//! from the `[min, max]` range and then saturate onto its edges: NaN
//! encodes to code 0 (it dequantizes as the row *minimum*, contributing
//! `m·w` per output) and +inf to code 127 (the row maximum). That is a
//! deliberate divergence from the f32 engine, which would propagate
//! NaN/inf through every downstream value — the int8 engine degrades a
//! malformed element to the nearest representable neighbor instead.
//!
//! Engine selection: [`QuantMode::active`] reads the `NEURAL_QUANT`
//! environment variable once per process — `int8` selects the quantized
//! engines wherever a scorer is built with the default mode, anything else
//! (including unset) keeps f32. The int8 kernels themselves live in the
//! [`KernelSet`] ladder (`avx512vnni → avx512 → avxvnni → avx2 →
//! scalar`), so
//! `NEURAL_KERNELS`/`NEURAL_FORCE_SCALAR` pin their ISA exactly as for the
//! f32 kernels.

use crate::autoencoder::{AeWorkspace, Autoencoder};
use crate::dense::{Activation, Dense};
use crate::gru::{GruBatchScratch, GruStepScratch, GruWorkspace, PackedGru};
use crate::matrix::Matrix;
use crate::simd::KernelSet;
use std::sync::OnceLock;

/// Activation quantization levels: codes span the 7-bit unsigned range
/// `0..=127` over the row's empirical `[min, max]`.
pub const ACT_LEVELS: f32 = 127.0;
/// Weight quantization levels (symmetric int8, −128 never emitted).
pub const WEIGHT_LEVELS: f32 = 127.0;

/// Rows shorter than this skip outlier-aware calibration: the histogram
/// scan isn't worth it, and short rows (the GRU's 37-wide inputs and
/// 32-wide hidden state) have too few samples for a quantile to be
/// meaningful. The autoencoder's ≥96-wide activation rows — where one
/// adversarially-inflated feature would otherwise stretch the grid over
/// the whole profile — are the target.
const CLIP_MIN_LEN: usize = 48;
/// Histogram resolution of the outlier scan.
const CLIP_BINS: usize = 128;

/// The affine parameters of one quantized activation row:
/// `x[k] ≈ min + scale · qa[k]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActQuant {
    /// Grid step `s_a` (`0.0` for a constant row — every code is 0 and
    /// the row dequantizes to exactly `min`).
    pub scale: f32,
    /// Row minimum `m` (the value code 0 stands for).
    pub min: f32,
}

/// Whether default-constructed scorers run the f32 or the int8 engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// Full-precision f32 inference (the default).
    Off,
    /// Int8 weights + on-the-fly activation quantization, i32 accumulate.
    Int8,
}

impl QuantMode {
    /// The process-wide default mode: `NEURAL_QUANT=int8` (case
    /// insensitive) selects [`QuantMode::Int8`]; anything else — unset,
    /// empty, `off`, unknown — keeps [`QuantMode::Off`]. Read once,
    /// cached forever (same contract as [`KernelSet::active`]).
    pub fn active() -> QuantMode {
        static ACTIVE: OnceLock<QuantMode> = OnceLock::new();
        *ACTIVE.get_or_init(|| parse_quant_mode(std::env::var("NEURAL_QUANT").ok().as_deref()))
    }
}

/// `NEURAL_QUANT` parsing, factored out for tests.
fn parse_quant_mode(value: Option<&str>) -> QuantMode {
    match value {
        Some(v) if v.eq_ignore_ascii_case("int8") => QuantMode::Int8,
        _ => QuantMode::Off,
    }
}

/// How one activation row quantizes: either it degrades to an exact
/// constant representation (zeroed codes) or it encodes on an affine
/// grid. Shared by every quantizing entry point — the resident-state
/// store, the matvec and each GEMM row — so all of them land on the
/// identical grid for the identical row (the bitwise
/// streaming == batch invariant).
#[derive(Debug, Clone, Copy)]
enum ActPlan {
    /// Zero every code; the row dequantizes to exactly `min`.
    Degenerate(ActQuant),
    /// Encode with `code = clamp(trunc((v − min)·inv + 0.5), 0, 127)`.
    Encode { min: f32, inv: f32, scale: f32 },
}

/// Outlier-aware upper calibration bound: if a small tail (> the 63/64
/// quantile) of the row sits far above the rest, return a clipped upper
/// bound just above the body so the 7-bit grid resolves the body instead
/// of stretching over the outliers (which saturate to code 127 via the
/// encoder's cap — the same clamp that already guards rounding at the
/// true maximum). Returns `max` unchanged when the row has no such gap,
/// so benign data keeps the exact empirical range.
///
/// One 128-bin histogram over `[min, max]`: walk bins top-down
/// accumulating the tail; the cut lands on the lowest bin whose dropped
/// tail stays within 1/64 of the row. The clip only engages when it
/// shaves at least a quarter of the span — a genuine body/outlier gap —
/// which keeps dense-extreme rows (sine-shaped test data, uniform ramps)
/// bit-identical to the unclipped scheme.
fn clip_upper(x: &[f32], min: f32, max: f32) -> f32 {
    let width = max - min;
    if width <= 0.0 || !width.is_finite() {
        return max;
    }
    let inv = CLIP_BINS as f32 / width;

    // Branchless pre-gate, one auto-vectorizable pass: the clip can only
    // engage when the cut lands at or below bin 3/4·BINS (the ≥25%-span
    // gap gate), which bounds the population of bins [3/4·BINS, BINS) by
    // the tail allowance. Count that population with the *identical* bin
    // arithmetic the histogram uses (`(v−min)·inv`, so the boundary
    // rounds the same way) and skip the scalar histogram pass — the
    // expensive part of calibration — whenever the bound already fails.
    // Dense rows (all benign traffic, in practice) exit here, which is
    // what keeps calibration off the int8 hot path's critical ~20%;
    // only genuinely gappy rows pay for the full quantile scan.
    let gate_bin = (CLIP_BINS - CLIP_BINS / 4) as f32;
    let mut n = 0u32;
    let mut top = 0u32;
    for &v in x {
        let finite = v.is_finite();
        n += u32::from(finite);
        top += u32::from(finite && (v - min) * inv >= gate_bin);
    }
    let allow = (n / 64).max(1);
    if top > allow {
        return max;
    }

    let mut hist = [0u32; CLIP_BINS];
    for &v in x {
        if v.is_finite() {
            let b = ((v - min) * inv) as usize;
            hist[b.min(CLIP_BINS - 1)] += 1;
        }
    }
    let mut tail = 0u32;
    let mut cut = CLIP_BINS;
    for b in (0..CLIP_BINS).rev() {
        tail += hist[b];
        if tail > allow {
            break;
        }
        cut = b;
    }
    if cut >= CLIP_BINS {
        return max;
    }
    let hi = min + cut as f32 * (width / CLIP_BINS as f32);
    // Gap gate: only clip when the tail sits well above the body.
    if hi > min && (max - hi) >= 0.25 * width {
        hi
    } else {
        max
    }
}

/// The shared first half of activation quantization: range scan (with
/// the non-finite filtering rescan), outlier-aware calibration, and the
/// degenerate/overflow checks. Every kernel set computes the identical
/// plan for the identical row.
fn act_plan(ks: &KernelSet, x: &[f32]) -> ActPlan {
    // Vectorized range scan; a non-finite bound (a NaN/±inf element
    // reached a lane) reroutes to the filtering rescan, so every kernel
    // set lands on the same finite `[min, max]` for the same row.
    let (mut min, mut max) = ks.act_range(x);
    if !min.is_finite() || !max.is_finite() {
        min = f32::INFINITY;
        max = f32::NEG_INFINITY;
        for &v in x {
            if v.is_finite() {
                min = min.min(v);
                max = max.max(v);
            }
        }
    }
    // `Greater` fails for a constant row, an empty/all-non-finite row
    // (inverted infinities) and any NaN that slipped through — all of
    // which degrade to the exact constant representation below.
    if max.partial_cmp(&min) != Some(std::cmp::Ordering::Greater) {
        let m = if min.is_finite() { min } else { 0.0 };
        return ActPlan::Degenerate(ActQuant { scale: 0.0, min: m });
    }
    if x.len() >= CLIP_MIN_LEN {
        max = clip_upper(x, min, max);
    }
    let scale = (max - min) / ACT_LEVELS;
    if !scale.is_finite() {
        // A row straddling ±f32::MAX: the span overflows f32, so no f32
        // grid (nor the dequantizing epilogue, which would overflow the
        // same way) can represent it. Such a row is garbage input, not
        // traffic; degrade it to the exact zero row — deterministic and
        // finite — rather than letting ±inf/NaN leak into scores.
        return ActPlan::Degenerate(ActQuant {
            scale: 0.0,
            min: 0.0,
        });
    }
    let inv = ACT_LEVELS / (max - min);
    ActPlan::Encode { min, inv, scale }
}

/// Quantizes one f32 activation row into the caller's u8 buffer and
/// returns the affine parameters (see the module docs for the scheme). A
/// constant or empty row — including all-zero — gets scale `0.0` and
/// all-zero codes, dequantizing to exactly `min` everywhere; non-finite
/// values are excluded from the range and clamp to its nearest edge.
/// Rows of [`CLIP_MIN_LEN`] or more elements get outlier-aware
/// calibration: an isolated high tail saturates to code 127 instead of
/// stretching the grid (see [`clip_upper`]).
pub fn quantize_activations(x: &[f32], qa: &mut Vec<u8>) -> ActQuant {
    let ks = KernelSet::active();
    match act_plan(ks, x) {
        ActPlan::Degenerate(act) => {
            qa.clear();
            qa.resize(x.len(), 0);
            act
        }
        ActPlan::Encode { min, inv, scale } => {
            qa.resize(x.len(), 0);
            ks.act_encode(x, min, inv, qa);
            ActQuant { scale, min }
        }
    }
}

/// Decodes a row quantized by [`quantize_activations`] back to f32:
/// `out[k] = min + scale · codes[k]`. This is the read path for *resident*
/// quantized state — per-flow vectors a streaming engine keeps in int8
/// form between packets (quantize on store, dequantize on use). Plain
/// scalar arithmetic, so the decoded values are identical on every kernel
/// tier.
pub fn dequantize_activations_into(codes: &[u8], q: ActQuant, out: &mut [f32]) {
    debug_assert_eq!(codes.len(), out.len());
    for (o, &c) in out.iter_mut().zip(codes) {
        *o = q.scale.mul_add(f32::from(c), q.min);
    }
}

/// Dequantizes one i32 accumulator: the activation offset re-enters
/// through the precomputed weight-row sum (`Σ w ≈ s_r · R_r`), then the
/// combined scales apply.
#[inline]
fn dequantize(acc: i32, row_sum: i32, act: ActQuant, row_scale: f32) -> f32 {
    row_scale * (act.scale * acc as f32 + act.min * row_sum as f32)
}

/// A row-major matrix quantized to int8 with per-output-row symmetric
/// scales — the weight format of the int8 inference engine. Built once
/// per scorer from a trained f32 [`Matrix`]; the f32 model stays the
/// source of truth (quantized weights are never serialized).
#[derive(Debug, Clone)]
pub struct QuantMatrix {
    pub rows: usize,
    pub cols: usize,
    q: Vec<i8>,
    scales: Vec<f32>,
    row_sums: Vec<i32>,
}

impl QuantMatrix {
    /// Per-row symmetric int8 quantization of `m`.
    pub fn quantize(m: &Matrix) -> QuantMatrix {
        let mut q = Vec::with_capacity(m.rows * m.cols);
        let mut scales = Vec::with_capacity(m.rows);
        let mut row_sums = Vec::with_capacity(m.rows);
        for r in 0..m.rows {
            let row = m.row(r);
            let mut max = 0.0f32;
            for &v in row {
                max = max.max(v.abs());
            }
            let (scale, inv) = if max == 0.0 || !max.is_finite() {
                (0.0, 0.0)
            } else {
                (max / WEIGHT_LEVELS, WEIGHT_LEVELS / max)
            };
            let mut sum = 0i32;
            for &v in row {
                let qv = ((v * inv).round() as i32).clamp(-127, 127);
                sum += qv;
                q.push(qv as i8);
            }
            scales.push(scale);
            row_sums.push(sum);
        }
        QuantMatrix {
            rows: m.rows,
            cols: m.cols,
            q,
            scales,
            row_sums,
        }
    }

    /// Int8 row view.
    #[inline]
    pub fn row(&self, r: usize) -> &[i8] {
        &self.q[r * self.cols..(r + 1) * self.cols]
    }

    /// The scale of row `r` (f32 weight ≈ `scale(r) · q[r][k]`).
    #[inline]
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// Reconstructs the f32 matrix the quantized weights represent —
    /// the oracle for quantization-error tests.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            self.scales[r] * f32::from(self.q[r * self.cols + c])
        })
    }

    /// `y = self · x`: quantizes `x` into `qa` and runs the int8 GEMM
    /// inner loops on the dispatched kernel set. The encode pass of the
    /// activation quantization is fused into the first 4-row dot quad
    /// (`encode_dot4_i8`) so the freshly encoded chunk is consumed while
    /// register-resident; remaining rows reuse the encoded `qa`. The
    /// range scan cannot fuse — the grid depends on the full row's
    /// min/max — and the fusion is bitwise-neutral (pinned by the kernel
    /// tests), so results are identical to the unfused composition.
    pub fn matvec_into(&self, x: &[f32], qa: &mut Vec<u8>, y: &mut [f32]) {
        self.score_row(KernelSet::active(), x, qa, y)
    }

    /// `C = A · selfᵀ`, quantizing each row of `A` independently through
    /// the very same per-row path as [`matvec_into`](Self::matvec_into) —
    /// which makes every row of the GEMM bitwise identical to its matvec,
    /// the invariant behind int8 streaming == int8 batch (and micro-batched
    /// == per-packet streaming). A weight-blocked loop nest (outer over
    /// weight quads, inner over activation rows) was measured here and
    /// *lost* ~15% on the ci-preset models: their weight matrices fit in
    /// L2, so the per-row pass already streams them cache-resident, and
    /// blocking only bought strided writes into `C`.
    pub fn matmul_nt_into(&self, a: &Matrix, qa: &mut Vec<u8>, c: &mut Matrix) {
        assert_eq!(a.cols, self.cols, "quant nt shape mismatch");
        c.resize(a.rows, self.rows);
        let ks = KernelSet::active();
        for i in 0..a.rows {
            self.score_row(ks, a.row(i), qa, c.row_mut(i));
        }
    }

    /// Quantize one activation row and produce one output row — the
    /// shared body of [`matvec_into`](Self::matvec_into) and each
    /// [`matmul_nt_into`](Self::matmul_nt_into) row.
    fn score_row(&self, ks: &KernelSet, x: &[f32], qa: &mut Vec<u8>, y: &mut [f32]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        match act_plan(ks, x) {
            ActPlan::Degenerate(act) => {
                qa.clear();
                qa.resize(x.len(), 0);
                self.qnt_rows_from(ks, qa, act, y, 0);
            }
            ActPlan::Encode { min, inv, scale } => {
                let act = ActQuant { scale, min };
                qa.resize(x.len(), 0);
                if self.rows >= 4 {
                    let acc = ks.encode_dot4_i8(
                        x,
                        min,
                        inv,
                        qa,
                        self.row(0),
                        self.row(1),
                        self.row(2),
                        self.row(3),
                    );
                    for (k, &a) in acc.iter().enumerate() {
                        y[k] = dequantize(a, self.row_sums[k], act, self.scales[k]);
                    }
                    self.qnt_rows_from(ks, qa, act, y, 4);
                } else {
                    ks.act_encode(x, min, inv, qa);
                    self.qnt_rows_from(ks, qa, act, y, 0);
                }
            }
        }
    }

    /// Output rows `start..` of the int8 GEMM over an already-encoded
    /// activation row: 4-way register-blocked int8 dots, then the
    /// dequantizing epilogue.
    fn qnt_rows_from(
        &self,
        ks: &KernelSet,
        qa: &[u8],
        act: ActQuant,
        crow: &mut [f32],
        start: usize,
    ) {
        let mut j = start;
        while j + 4 <= self.rows {
            let acc = ks.dot4_i8(
                qa,
                self.row(j),
                self.row(j + 1),
                self.row(j + 2),
                self.row(j + 3),
            );
            for (k, &a) in acc.iter().enumerate() {
                crow[j + k] = dequantize(a, self.row_sums[j + k], act, self.scales[j + k]);
            }
            j += 4;
        }
        let done = j;
        for (j, cv) in crow.iter_mut().enumerate().skip(done) {
            *cv = dequantize(
                ks.dot_i8(qa, self.row(j)),
                self.row_sums[j],
                act,
                self.scales[j],
            );
        }
    }
}

/// Int8 counterpart of [`Dense`]: quantized weights, f32 bias and the
/// shared bias+activation epilogue kernel.
#[derive(Debug, Clone)]
pub struct QuantDense {
    pub w: QuantMatrix,
    pub b: Vec<f32>,
    pub activation: Activation,
}

impl QuantDense {
    pub fn quantize(d: &Dense) -> QuantDense {
        QuantDense {
            w: QuantMatrix::quantize(&d.w),
            b: d.b.clone(),
            activation: d.activation,
        }
    }

    /// Batched forward pass into a caller-owned matrix, mirroring
    /// [`Dense::forward_into`] with the int8 GEMM.
    pub fn forward_into(&self, x: &Matrix, qa: &mut Vec<u8>, y: &mut Matrix) {
        self.w.matmul_nt_into(x, qa, y);
        let ks = KernelSet::active();
        for r in 0..y.rows {
            ks.bias_act(y.row_mut(r), &self.b, self.activation);
        }
    }
}

/// Int8 counterpart of [`Autoencoder`]: every layer's weights quantized
/// per output row, activations re-quantized between layers (each layer's
/// f32 output row gets its own scale, so depth does not compound the
/// activation grid error).
#[derive(Debug, Clone)]
pub struct QuantAutoencoder {
    layers: Vec<QuantDense>,
}

impl QuantAutoencoder {
    pub fn quantize(ae: &Autoencoder) -> QuantAutoencoder {
        QuantAutoencoder {
            layers: ae.layers.iter().map(QuantDense::quantize).collect(),
        }
    }

    pub fn input_size(&self) -> usize {
        self.layers[0].w.cols
    }

    /// Batched reconstruction through the same ping-ponged [`AeWorkspace`]
    /// as the f32 engine (plus its quantized-activation scratch row).
    pub fn forward_into<'w>(&self, x: &Matrix, ws: &'w mut AeWorkspace) -> &'w Matrix {
        debug_assert!(!self.layers.is_empty());
        let AeWorkspace { bufs: [a, b], qa } = ws;
        self.layers[0].forward_into(x, qa, a);
        let mut flip = false; // output currently in `a`
        for layer in &self.layers[1..] {
            let (src, dst) = if flip { (&*b, &mut *a) } else { (&*a, &mut *b) };
            layer.forward_into(src, qa, dst);
            flip = !flip;
        }
        if flip {
            &ws.bufs[1]
        } else {
            &ws.bufs[0]
        }
    }

    /// Mean absolute reconstruction error per row of `x`, appended to
    /// `out` — the int8 twin of
    /// [`Autoencoder::reconstruction_errors_into`]. The input comparison
    /// and L1 reduction stay f32 (the error is measured against the real
    /// input, not its quantized image).
    pub fn reconstruction_errors_into(&self, x: &Matrix, ws: &mut AeWorkspace, out: &mut Vec<f32>) {
        let y = self.forward_into(x, ws);
        let ks = KernelSet::active();
        out.reserve(x.rows);
        for r in 0..x.rows {
            let err = ks.sum_abs_diff(x.row(r), y.row(r));
            out.push(err / x.cols as f32);
        }
    }
}

/// Int8 counterpart of [`PackedGru`]: the `3H×I` input and `3H×H`
/// recurrent projections run on the int8 GEMM; biases, gate sigmoids and
/// the hidden-state update stay on the f32 gate kernel. Feeding packets
/// one at a time through [`step`](Self::step) is bitwise identical to one
/// [`run`](Self::run) over the whole sequence, exactly like the f32
/// engine (both quantize each activation row independently and share the
/// dot kernels).
#[derive(Debug, Clone)]
pub struct QuantPackedGru {
    w: QuantMatrix,
    u: QuantMatrix,
    b: Vec<f32>,
    hidden: usize,
}

impl QuantPackedGru {
    /// Quantizes a gate-packed cell's projection matrices.
    pub fn quantize(p: &PackedGru) -> QuantPackedGru {
        QuantPackedGru {
            w: QuantMatrix::quantize(&p.w),
            u: QuantMatrix::quantize(&p.u),
            b: p.b.clone(),
            hidden: p.hidden,
        }
    }

    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    pub fn input_size(&self) -> usize {
        self.w.cols
    }

    /// Int8 twin of [`PackedGru::run`] over the same [`GruWorkspace`].
    pub fn run(&self, xs: &Matrix, ws: &mut GruWorkspace) {
        let hidden = self.hidden;
        let steps = xs.rows;
        debug_assert_eq!(xs.cols, self.input_size());

        self.w.matmul_nt_into(xs, &mut ws.qa, &mut ws.xp);
        for r in 0..steps {
            let row = ws.xp.row_mut(r);
            for (v, &bv) in row.iter_mut().zip(&self.b) {
                *v += bv;
            }
        }

        ws.hs.resize(steps, hidden);
        ws.zs.resize(steps, hidden);
        ws.rs.resize(steps, hidden);
        ws.up.resize(3 * hidden, 0.0);
        ws.h.clear();
        ws.h.resize(hidden, 0.0);

        let ks = KernelSet::active();
        for t in 0..steps {
            self.u.matvec_into(&ws.h, &mut ws.qa, &mut ws.up);
            ks.gru_gates(
                ws.xp.row(t),
                &ws.up,
                &mut ws.h,
                ws.zs.row_mut(t),
                ws.rs.row_mut(t),
            );
            ws.hs.row_mut(t).copy_from_slice(&ws.h);
        }
    }

    /// Int8 twin of [`PackedGru::step`] over the same [`GruStepScratch`].
    pub fn step(
        &self,
        x: &[f32],
        h: &mut [f32],
        scratch: &mut GruStepScratch,
        z: &mut [f32],
        r: &mut [f32],
    ) {
        let hidden = self.hidden;
        debug_assert_eq!(x.len(), self.input_size());
        debug_assert_eq!(h.len(), hidden);
        scratch.xp.resize(3 * hidden, 0.0);
        scratch.up.resize(3 * hidden, 0.0);

        self.w.matvec_into(x, &mut scratch.qa, &mut scratch.xp);
        for (v, &bv) in scratch.xp.iter_mut().zip(&self.b) {
            *v += bv;
        }
        self.u.matvec_into(h, &mut scratch.qa, &mut scratch.up);
        KernelSet::active().gru_gates(&scratch.xp, &scratch.up, h, z, r);
    }

    /// Int8 twin of [`PackedGru::step_batch`]: one GRU step for `B`
    /// independent flows at once. Because the int8 GEMM quantizes each
    /// activation row independently and scores it through the exact
    /// per-row path of [`QuantMatrix::matvec_into`], every row of the
    /// batch is bitwise identical to a separate [`step`](Self::step)
    /// call with that flow's `x`/`h` — the invariant the micro-batched
    /// streaming path relies on.
    pub fn step_batch(
        &self,
        xs: &Matrix,
        hs: &mut Matrix,
        scratch: &mut GruBatchScratch,
        zs: &mut Matrix,
        rs: &mut Matrix,
    ) {
        let hidden = self.hidden;
        let b = xs.rows;
        debug_assert_eq!(xs.cols, self.input_size());
        debug_assert_eq!(hs.rows, b);
        debug_assert_eq!(hs.cols, hidden);

        self.w.matmul_nt_into(xs, &mut scratch.qa, &mut scratch.xp);
        for i in 0..b {
            let row = scratch.xp.row_mut(i);
            for (v, &bv) in row.iter_mut().zip(&self.b) {
                *v += bv;
            }
        }
        self.u.matmul_nt_into(hs, &mut scratch.qa, &mut scratch.up);

        zs.resize(b, hidden);
        rs.resize(b, hidden);
        let ks = KernelSet::active();
        for i in 0..b {
            ks.gru_gates(
                scratch.xp.row(i),
                scratch.up.row(i),
                hs.row_mut(i),
                zs.row_mut(i),
                rs.row_mut(i),
            );
        }
    }
}

/// A GRU inference engine at either precision, so the scoring paths hold
/// one value and stay agnostic of the mode. Both variants share
/// [`GruWorkspace`]/[`GruStepScratch`] and the step == run bitwise
/// guarantee.
#[derive(Debug, Clone)]
pub enum GruEngine {
    F32(PackedGru),
    Int8(QuantPackedGru),
}

impl GruEngine {
    /// Wraps packed weights at the requested precision (quantizing for
    /// [`QuantMode::Int8`]).
    pub fn from_packed(packed: PackedGru, mode: QuantMode) -> GruEngine {
        match mode {
            QuantMode::Off => GruEngine::F32(packed),
            QuantMode::Int8 => GruEngine::Int8(QuantPackedGru::quantize(&packed)),
        }
    }

    pub fn mode(&self) -> QuantMode {
        match self {
            GruEngine::F32(_) => QuantMode::Off,
            GruEngine::Int8(_) => QuantMode::Int8,
        }
    }

    pub fn hidden_size(&self) -> usize {
        match self {
            GruEngine::F32(p) => p.hidden_size(),
            GruEngine::Int8(q) => q.hidden_size(),
        }
    }

    pub fn input_size(&self) -> usize {
        match self {
            GruEngine::F32(p) => p.input_size(),
            GruEngine::Int8(q) => q.input_size(),
        }
    }

    pub fn run(&self, xs: &Matrix, ws: &mut GruWorkspace) {
        match self {
            GruEngine::F32(p) => p.run(xs, ws),
            GruEngine::Int8(q) => q.run(xs, ws),
        }
    }

    pub fn step(
        &self,
        x: &[f32],
        h: &mut [f32],
        scratch: &mut GruStepScratch,
        z: &mut [f32],
        r: &mut [f32],
    ) {
        match self {
            GruEngine::F32(p) => p.step(x, h, scratch, z, r),
            GruEngine::Int8(q) => q.step(x, h, scratch, z, r),
        }
    }

    /// One GRU step for `B` independent flows at once (row `i` of
    /// `xs`/`hs`/`zs`/`rs` belongs to flow `i`). At both precisions each
    /// row is bitwise identical to a separate [`step`](Self::step) call.
    pub fn step_batch(
        &self,
        xs: &Matrix,
        hs: &mut Matrix,
        scratch: &mut GruBatchScratch,
        zs: &mut Matrix,
        rs: &mut Matrix,
    ) {
        match self {
            GruEngine::F32(p) => p.step_batch(xs, hs, scratch, zs, rs),
            GruEngine::Int8(q) => q.step_batch(xs, hs, scratch, zs, rs),
        }
    }
}

/// An autoencoder inference engine at either precision. The f32 variant
/// borrows the trained model (it is the source of truth); the int8
/// variant owns its quantized copy.
#[derive(Debug, Clone)]
pub enum AeEngine<'a> {
    F32(&'a Autoencoder),
    Int8(QuantAutoencoder),
}

impl<'a> AeEngine<'a> {
    /// Wraps the trained autoencoder at the requested precision.
    pub fn from_model(ae: &'a Autoencoder, mode: QuantMode) -> AeEngine<'a> {
        match mode {
            QuantMode::Off => AeEngine::F32(ae),
            QuantMode::Int8 => AeEngine::Int8(QuantAutoencoder::quantize(ae)),
        }
    }

    pub fn mode(&self) -> QuantMode {
        match self {
            AeEngine::F32(_) => QuantMode::Off,
            AeEngine::Int8(_) => QuantMode::Int8,
        }
    }

    /// Per-row mean absolute reconstruction error, appended to `out`.
    pub fn reconstruction_errors_into(&self, x: &Matrix, ws: &mut AeWorkspace, out: &mut Vec<f32>) {
        match self {
            AeEngine::F32(ae) => ae.reconstruction_errors_into(x, ws, out),
            AeEngine::Int8(q) => q.reconstruction_errors_into(x, ws, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gru::GruCell;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quant_mode_env_parsing() {
        assert_eq!(parse_quant_mode(None), QuantMode::Off);
        assert_eq!(parse_quant_mode(Some("")), QuantMode::Off);
        assert_eq!(parse_quant_mode(Some("off")), QuantMode::Off);
        assert_eq!(parse_quant_mode(Some("f32")), QuantMode::Off);
        assert_eq!(parse_quant_mode(Some("int8")), QuantMode::Int8);
        assert_eq!(parse_quant_mode(Some("INT8")), QuantMode::Int8);
    }

    #[test]
    fn activation_quantization_round_trips_within_half_step() {
        // Two-sided and one-sided rows; one-sided data must use the full
        // 7-bit range (that is the point of the asymmetric grid).
        for x in [
            (0..37)
                .map(|i| ((i as f32) * 0.71).sin() * 2.5)
                .collect::<Vec<f32>>(),
            (0..37).map(|i| (i as f32) / 36.0).collect(),
        ] {
            let mut qa = Vec::new();
            let act = quantize_activations(&x, &mut qa);
            assert!(act.scale > 0.0);
            assert_eq!(*qa.iter().min().unwrap(), 0, "min maps to code 0");
            assert_eq!(*qa.iter().max().unwrap(), 127, "max maps to code 127");
            for (&v, &q) in x.iter().zip(&qa) {
                let back = act.min + f32::from(q) * act.scale;
                assert!(
                    (back - v).abs() <= act.scale * 0.5 + 1e-6,
                    "{v} -> {q} -> {back} (scale {})",
                    act.scale
                );
            }
        }
    }

    #[test]
    fn degenerate_rows_quantize_exactly() {
        let mut qa = Vec::new();
        // All-zero: scale 0, min 0 → dequantizes to exact zeros.
        let act = quantize_activations(&[0.0; 9], &mut qa);
        assert_eq!((act.scale, act.min), (0.0, 0.0));
        assert!(qa.iter().all(|&q| q == 0));
        // Constant row: represented exactly through `min`.
        let act = quantize_activations(&[0.75; 5], &mut qa);
        assert_eq!((act.scale, act.min), (0.0, 0.75));
        // A NaN among normal values clamps into the finite range; an
        // all-NaN row degrades to zeros.
        let act = quantize_activations(&[1.0, f32::NAN, -1.0], &mut qa);
        assert!(act.scale > 0.0);
        assert!(qa[1] <= 127);
        let act = quantize_activations(&[f32::NAN; 4], &mut qa);
        assert_eq!((act.scale, act.min), (0.0, 0.0));
    }

    /// A row straddling ±f32::MAX has a span that overflows f32: no f32
    /// grid can represent it (and the dequantizing epilogue would
    /// overflow the same way), so it degrades to the exact zero row —
    /// outputs stay finite instead of leaking ±inf/NaN into scores.
    #[test]
    fn huge_span_rows_stay_finite() {
        let x = [f32::MAX, -f32::MAX, 0.0, 1.0];
        let mut qa = Vec::new();
        let act = quantize_activations(&x, &mut qa);
        assert_eq!((act.scale, act.min), (0.0, 0.0));
        assert!(qa.iter().all(|&q| q == 0));
        let m = Matrix::from_fn(3, 4, |r, c| ((r * 4 + c) as f32 * 0.3).sin());
        let q = QuantMatrix::quantize(&m);
        let mut y = vec![f32::NAN; 3];
        q.matvec_into(&x, &mut qa, &mut y);
        assert_eq!(y, vec![0.0; 3], "degenerate row contributes exact zeros");
    }

    #[test]
    fn weight_quantization_round_trips_within_half_step() {
        let m = Matrix::from_fn(7, 13, |r, c| ((r * 13 + c) as f32 * 0.37).sin() * 1.7);
        let q = QuantMatrix::quantize(&m);
        let back = q.dequantize();
        for r in 0..m.rows {
            let step = q.scale(r);
            for c in 0..m.cols {
                assert!(
                    (back.get(r, c) - m.get(r, c)).abs() <= step * 0.5 + 1e-6,
                    "({r},{c}): {} vs {}",
                    back.get(r, c),
                    m.get(r, c)
                );
            }
        }
    }

    #[test]
    fn zero_weight_rows_produce_zero_outputs() {
        let mut m = Matrix::from_fn(4, 8, |r, c| (r * 8 + c) as f32 * 0.1);
        m.row_mut(2).fill(0.0);
        let q = QuantMatrix::quantize(&m);
        let x: Vec<f32> = (0..8).map(|i| i as f32 * 0.3 - 1.0).collect();
        let mut qa = Vec::new();
        let mut y = vec![f32::NAN; 4];
        q.matvec_into(&x, &mut qa, &mut y);
        assert_eq!(y[2], 0.0);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    /// The quantized matvec equals the *exact* f32 product of the
    /// dequantized weights with the dequantized activations — i.e. the
    /// int8 path's only error is the quantization grid, not the kernels.
    #[test]
    fn quant_matvec_equals_dequantized_product() {
        let m = Matrix::from_fn(9, 21, |r, c| ((r * 21 + c) as f32 * 0.17).cos() * 0.8);
        let q = QuantMatrix::quantize(&m);
        let x: Vec<f32> = (0..21).map(|i| ((i as f32) * 0.43).sin() * 1.3).collect();
        let mut qa = Vec::new();
        let mut y = vec![0.0f32; 9];
        q.matvec_into(&x, &mut qa, &mut y);

        let act = quantize_activations(&x, &mut qa);
        for (r, &yr) in y.iter().enumerate() {
            let mut exact = 0.0f64;
            for (k, &code) in qa.iter().enumerate() {
                let xa = f64::from(act.min) + f64::from(code) * f64::from(act.scale);
                let w = f64::from(q.scale(r)) * f64::from(q.row(r)[k]);
                exact += xa * w;
            }
            assert!(
                (f64::from(yr) - exact).abs() < 1e-3,
                "row {r}: {} vs {exact}",
                yr
            );
        }
    }

    #[test]
    fn quant_one_row_gemm_is_bitwise_matvec() {
        let m = Matrix::from_fn(10, 33, |r, c| ((r + 3 * c) as f32 * 0.29).sin());
        let q = QuantMatrix::quantize(&m);
        let x = Matrix::from_fn(1, 33, |_, c| ((c as f32) * 0.61).cos());
        let mut qa = Vec::new();
        let mut c = Matrix::default();
        q.matmul_nt_into(&x, &mut qa, &mut c);
        let mut y = vec![0.0f32; 10];
        q.matvec_into(x.row(0), &mut qa, &mut y);
        assert_eq!(c.row(0), y.as_slice());
    }

    #[test]
    fn quant_gru_step_matches_run_bitwise() {
        let mut rng = StdRng::seed_from_u64(41);
        let cell = GruCell::new(6, 10, &mut rng);
        let packed = PackedGru::pack(&cell);
        let q = QuantPackedGru::quantize(&packed);
        let mut ws = GruWorkspace::new();
        let mut scratch = GruStepScratch::new();
        for seq in [1usize, 3, 9, 40] {
            let mut xs = Matrix::zeros(seq, 6);
            for t in 0..seq {
                for i in 0..6 {
                    xs.set(t, i, ((t * 6 + i) as f32 * 0.37).sin() * 0.5);
                }
            }
            q.run(&xs, &mut ws);
            let mut h = vec![0.0f32; 10];
            let mut z = vec![0.0f32; 10];
            let mut r = vec![0.0f32; 10];
            for t in 0..seq {
                q.step(xs.row(t), &mut h, &mut scratch, &mut z, &mut r);
                assert_eq!(h.as_slice(), ws.hs.row(t), "h diverged at t={t}");
                assert_eq!(z.as_slice(), ws.zs.row(t), "z diverged at t={t}");
                assert_eq!(r.as_slice(), ws.rs.row(t), "r diverged at t={t}");
            }
        }
    }

    #[test]
    fn quant_ae_single_rows_match_batch_bitwise() {
        let ae = Autoencoder::new(&[12, 7, 4, 7, 12], 3);
        let q = QuantAutoencoder::quantize(&ae);
        let x = Matrix::from_fn(5, 12, |r, c| ((r * 12 + c) as f32 * 0.23).sin());
        let mut ws = AeWorkspace::new();
        let mut batch = Vec::new();
        q.reconstruction_errors_into(&x, &mut ws, &mut batch);
        assert_eq!(batch.len(), 5);
        for (r, &expected) in batch.iter().enumerate() {
            let row = Matrix::from_vec(1, 12, x.row(r).to_vec());
            let mut single = Vec::new();
            q.reconstruction_errors_into(&row, &mut ws, &mut single);
            assert_eq!(single[0], expected, "row {r}: 1-row pass != batched");
        }
    }

    #[test]
    fn quant_ae_tracks_f32_reconstruction() {
        // A trained-ish AE is not needed: any fixed network must
        // reconstruct *similarly* at int8 — the drift is quantization
        // noise, not a different function.
        let ae = Autoencoder::new(&[16, 8, 16], 7);
        let q = QuantAutoencoder::quantize(&ae);
        let x = Matrix::from_fn(6, 16, |r, c| ((r * 16 + c) as f32 * 0.31).cos() * 0.9);
        let f = ae.reconstruction_errors(&x);
        let mut ws = AeWorkspace::new();
        let mut qe = Vec::new();
        q.reconstruction_errors_into(&x, &mut ws, &mut qe);
        for (a, b) in f.iter().zip(&qe) {
            assert!((a - b).abs() < 0.02, "drift too large: f32 {a} vs int8 {b}");
        }
    }

    /// One adversarially-inflated element in a long row must not stretch
    /// the activation grid: the clip planner saturates the spike to code
    /// 127 and keeps near-full resolution for the honest body.
    #[test]
    fn outlier_clip_engages_on_isolated_spike() {
        let mut x: Vec<f32> = (0..96).map(|i| ((i as f32) * 0.37).sin().abs()).collect();
        x[40] = 50.0;
        let mut qa = Vec::new();
        let act = quantize_activations(&x, &mut qa);
        assert_eq!(qa[40], 127, "the spike saturates to the top code");
        let unclipped = (50.0 - 0.0) / ACT_LEVELS;
        assert!(
            act.scale < unclipped * 0.1,
            "grid step {} should be far below the unclipped {}",
            act.scale,
            unclipped
        );
        for (i, (&v, &q)) in x.iter().zip(&qa).enumerate() {
            if i == 40 {
                continue;
            }
            let back = act.min + f32::from(q) * act.scale;
            assert!(
                (back - v).abs() <= act.scale * 0.5 + 1e-6,
                "body element {i}: {v} -> {q} -> {back} (scale {})",
                act.scale
            );
        }
    }

    /// A dense ramp has no outlier gap: the clip gate must leave the raw
    /// `[min, max]` grid untouched (bitwise — same scale computation).
    #[test]
    fn outlier_clip_skips_dense_rows() {
        let x: Vec<f32> = (0..96).map(|i| i as f32 / 95.0).collect();
        let mut qa = Vec::new();
        let act = quantize_activations(&x, &mut qa);
        assert_eq!(act.scale, (1.0 - 0.0) / ACT_LEVELS);
        assert_eq!(qa[95], 127);
        // Short rows never clip, whatever their shape.
        let mut short: Vec<f32> = (0..37).map(|i| ((i as f32) * 0.37).sin().abs()).collect();
        short[20] = 50.0;
        let act = quantize_activations(&short, &mut qa);
        let min = short.iter().cloned().fold(f32::MAX, f32::min);
        assert_eq!(act.scale, (50.0 - min) / ACT_LEVELS);
    }

    /// Int8 twin of the f32 `step_batch` pin: batching B live flows
    /// through one GEMM must be bitwise identical to stepping each flow
    /// on its own.
    #[test]
    fn quant_step_batch_matches_per_flow_step_bitwise() {
        let mut rng = StdRng::seed_from_u64(23);
        let cell = GruCell::new(6, 10, &mut rng);
        let q = QuantPackedGru::quantize(&PackedGru::pack(&cell));
        let mut scratch = GruStepScratch::new();
        let mut batch_scratch = GruBatchScratch::new();
        for b in [0usize, 1, 3, 4, 7, 16] {
            // Per-flow reference: distinct mid-flow hidden states.
            let mut xs = Matrix::zeros(b, 6);
            let mut hs = Matrix::zeros(b, 10);
            for f in 0..b {
                for i in 0..6 {
                    xs.set(f, i, ((f * 6 + i) as f32 * 0.29).cos());
                }
                for i in 0..10 {
                    hs.set(f, i, ((f * 10 + i) as f32 * 0.13).sin() * 0.8);
                }
            }
            let mut want_h = Vec::new();
            let mut want_z = Vec::new();
            let mut want_r = Vec::new();
            for f in 0..b {
                let mut h = hs.row(f).to_vec();
                let mut z = vec![0.0f32; 10];
                let mut r = vec![0.0f32; 10];
                q.step(xs.row(f), &mut h, &mut scratch, &mut z, &mut r);
                want_h.push(h);
                want_z.push(z);
                want_r.push(r);
            }
            let mut zs = Matrix::default();
            let mut rs = Matrix::default();
            q.step_batch(&xs, &mut hs, &mut batch_scratch, &mut zs, &mut rs);
            for f in 0..b {
                assert_eq!(hs.row(f), want_h[f].as_slice(), "h row {f} (b={b})");
                assert_eq!(zs.row(f), want_z[f].as_slice(), "z row {f} (b={b})");
                assert_eq!(rs.row(f), want_r[f].as_slice(), "r row {f} (b={b})");
            }
        }
    }

    #[test]
    fn engines_report_their_mode() {
        let mut rng = StdRng::seed_from_u64(5);
        let cell = GruCell::new(3, 4, &mut rng);
        let packed = PackedGru::pack(&cell);
        assert_eq!(
            GruEngine::from_packed(packed.clone(), QuantMode::Off).mode(),
            QuantMode::Off
        );
        let int8 = GruEngine::from_packed(packed, QuantMode::Int8);
        assert_eq!(int8.mode(), QuantMode::Int8);
        assert_eq!(int8.hidden_size(), 4);
        assert_eq!(int8.input_size(), 3);
        let ae = Autoencoder::new(&[4, 2, 4], 1);
        assert_eq!(
            AeEngine::from_model(&ae, QuantMode::Off).mode(),
            QuantMode::Off
        );
        assert_eq!(
            AeEngine::from_model(&ae, QuantMode::Int8).mode(),
            QuantMode::Int8
        );
    }
}
