//! GRU sequence classifier: per-timestep state prediction (paper §3.3(a)).
//!
//! The classifier is trained to predict, for every packet in a connection,
//! the reference TCP state label (22 classes). The classification output is
//! only a *training vehicle* — what CLAP actually consumes downstream are
//! the gate activations in the [`GruTrace`].

use crate::gru::{GruWorkspace, PackedGru};
use crate::matrix::vecops;
use crate::{softmax_cross_entropy, softmax_inplace, Adam, GruCell, GruTrace, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for training the state-prediction RNN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruClassifierConfig {
    pub input: usize,
    pub hidden: usize,
    pub classes: usize,
    pub epochs: usize,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    pub learning_rate: f32,
    pub seed: u64,
}

impl GruClassifierConfig {
    /// The paper's RNN shape (Table 6): input 32, hidden (= gate size) 32,
    /// one layer.
    pub fn clap_paper(classes: usize) -> Self {
        GruClassifierConfig {
            input: 32,
            hidden: 32,
            classes,
            epochs: 30,
            batch_size: 16,
            learning_rate: 3e-3,
            seed: 0x6e0,
        }
    }
}

/// Per-epoch training metrics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainReport {
    pub epoch_loss: Vec<f32>,
    pub epoch_accuracy: Vec<f32>,
}

/// GRU + linear softmax head over every timestep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruClassifier {
    pub cell: GruCell,
    /// Output head weights, `classes × hidden`.
    pub wo: Matrix,
    pub bo: Vec<f32>,
}

/// One training sequence: inputs per timestep and a class label per
/// timestep.
pub type LabeledSequence = (Vec<Vec<f32>>, Vec<usize>);

impl GruClassifier {
    pub fn new(cfg: &GruClassifierConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        GruClassifier {
            cell: GruCell::new(cfg.input, cfg.hidden, &mut rng),
            wo: Matrix::xavier(cfg.classes, cfg.hidden, &mut rng),
            bo: vec![0.0; cfg.classes],
        }
    }

    pub fn hidden_size(&self) -> usize {
        self.cell.hidden_size()
    }

    pub fn num_classes(&self) -> usize {
        self.wo.rows
    }

    /// Runs the GRU over a sequence; the trace carries the gate activations
    /// CLAP fuses into context profiles. Borrows the rows — no cloning of
    /// caller feature storage is required.
    pub fn trace<S: AsRef<[f32]>>(&self, xs: &[S]) -> GruTrace {
        self.cell.forward(xs)
    }

    /// Gate-packed copy of the recurrent weights for the fused inference
    /// path; build once per scoring session and reuse.
    pub fn packed(&self) -> PackedGru {
        PackedGru::pack(&self.cell)
    }

    /// Seed-era trace on the frozen naive kernels (pre-fusion baseline).
    pub fn trace_unfused<S: AsRef<[f32]>>(&self, xs: &[S]) -> GruTrace {
        self.cell.forward_unfused(xs)
    }

    /// Class logits for one hidden state.
    pub fn logits(&self, h: &[f32]) -> Vec<f32> {
        let mut out = self.wo.matvec(h);
        vecops::add_assign(&mut out, &self.bo);
        out
    }

    /// Predicted class per timestep.
    pub fn predict<S: AsRef<[f32]>>(&self, xs: &[S]) -> Vec<usize> {
        let trace = self.trace(xs);
        trace
            .hs
            .iter()
            .map(|h| {
                let mut l = self.logits(h);
                softmax_inplace(&mut l);
                argmax(&l)
            })
            .collect()
    }

    /// Fused, allocation-free prediction: runs the packed engine over a
    /// `T×I` input matrix (reusing `ws`) and writes one class per timestep
    /// into `out`. `logits` is a `classes`-wide scratch slice.
    pub fn predict_packed_into(
        &self,
        packed: &PackedGru,
        xs: &Matrix,
        ws: &mut GruWorkspace,
        logits: &mut [f32],
        out: &mut Vec<usize>,
    ) {
        debug_assert_eq!(logits.len(), self.num_classes());
        packed.run(xs, ws);
        out.clear();
        for t in 0..ws.len() {
            self.wo.matvec_into(ws.hs.row(t), logits);
            vecops::add_assign(logits, &self.bo);
            // Softmax is monotone; argmax over logits is the prediction.
            out.push(argmax(logits));
        }
    }

    /// Mean loss + gradient contribution of one sequence.
    fn sequence_grads<S: AsRef<[f32]>>(
        &self,
        xs: &[S],
        labels: &[usize],
    ) -> (f32, usize, crate::gru::GruGrads, Matrix, Vec<f32>) {
        debug_assert_eq!(xs.len(), labels.len());
        let trace = self.trace(xs);
        let hidden = self.hidden_size();
        let mut dwo = Matrix::zeros(self.wo.rows, self.wo.cols);
        let mut dbo = vec![0.0f32; self.bo.len()];
        let mut dhs = vec![vec![0.0f32; hidden]; trace.len()];
        let mut loss = 0.0f32;
        let mut correct = 0usize;
        for t in 0..trace.len() {
            let logits = self.logits(&trace.hs[t]);
            if argmax(&logits) == labels[t] {
                correct += 1;
            }
            let (l, dlogits) = softmax_cross_entropy(&logits, labels[t]);
            loss += l;
            dwo.add_outer(&dlogits, &trace.hs[t], 1.0);
            vecops::add_assign(&mut dbo, &dlogits);
            dhs[t] = self.wo.matvec_t(&dlogits);
        }
        let (grads, _) = self.cell.backward(&trace, &dhs);
        (loss, correct, grads, dwo, dbo)
    }

    /// Trains on labelled sequences; parallelizes gradient computation
    /// across the sequences of each mini-batch with rayon. Sequences may
    /// borrow their rows (`Vec<&[f32]>`) — feature storage is not cloned.
    pub fn train<S: AsRef<[f32]> + Sync>(
        &mut self,
        data: &[(Vec<S>, Vec<usize>)],
        cfg: &GruClassifierConfig,
    ) -> TrainReport {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0054_8111);
        let mut report = TrainReport::default();

        let mut cell_opts: Vec<Adam> = {
            let dummy = crate::gru::GruGrads::zeros(cfg.input, cfg.hidden);
            let sizes = [
                dummy.dwz.data.len(),
                dummy.duz.data.len(),
                dummy.dbz.len(),
                dummy.dwr.data.len(),
                dummy.dur.data.len(),
                dummy.dbr.len(),
                dummy.dwn.data.len(),
                dummy.dun.data.len(),
                dummy.dbn.len(),
            ];
            sizes
                .iter()
                .map(|&s| Adam::new(s, cfg.learning_rate))
                .collect()
        };
        let mut wo_opt = Adam::new(self.wo.data.len(), cfg.learning_rate);
        let mut bo_opt = Adam::new(self.bo.len(), cfg.learning_rate);

        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut epoch_steps = 0usize;
            let mut epoch_correct = 0usize;

            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let results: Vec<_> = chunk
                    .par_iter()
                    .filter(|&&i| !data[i].0.is_empty())
                    .map(|&i| self.sequence_grads(&data[i].0, &data[i].1))
                    .collect();
                if results.is_empty() {
                    continue;
                }
                let mut acc = crate::gru::GruGrads::zeros(cfg.input, cfg.hidden);
                let mut dwo = Matrix::zeros(self.wo.rows, self.wo.cols);
                let mut dbo = vec![0.0f32; self.bo.len()];
                let mut steps = 0usize;
                for (l, c, g, dw, db) in results {
                    epoch_loss += l as f64;
                    epoch_correct += c;
                    acc.add_assign(&g);
                    dwo.add_assign(&dw);
                    vecops::add_assign(&mut dbo, &db);
                    steps += 1;
                }
                // Normalize by the number of sequences in the batch.
                let scale = 1.0 / steps as f32;
                acc.scale(scale);
                dwo.scale(scale);
                dbo.iter_mut().for_each(|v| *v *= scale);
                epoch_steps += chunk.iter().map(|&i| data[i].0.len()).sum::<usize>();

                for (opt, (param, grad)) in
                    cell_opts.iter_mut().zip(self.cell.param_grad_pairs(&acc))
                {
                    opt.step(param, grad);
                }
                wo_opt.step(&mut self.wo.data, &dwo.data);
                bo_opt.step(&mut self.bo, &dbo);
            }

            report
                .epoch_loss
                .push((epoch_loss / epoch_steps.max(1) as f64) as f32);
            report
                .epoch_accuracy
                .push(epoch_correct as f32 / epoch_steps.max(1) as f32);
        }
        report
    }

    /// Per-timestep accuracy over a labelled evaluation set.
    pub fn accuracy<S: AsRef<[f32]> + Sync>(&self, data: &[(Vec<S>, Vec<usize>)]) -> f32 {
        let (correct, total) = data
            .par_iter()
            .map(|(xs, labels)| {
                let preds = self.predict(xs);
                let c = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
                (c, labels.len())
            })
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        if total == 0 {
            0.0
        } else {
            correct as f32 / total as f32
        }
    }
}

/// Index of the largest element.
pub fn argmax(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy sequence task with genuine temporal structure: the label of
    /// step t is the parity of the count of "high" inputs seen so far —
    /// unlearnable without memory.
    fn parity_dataset(n: usize, seq_len: usize, seed: u64) -> Vec<LabeledSequence> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut parity = 0usize;
                let mut xs = Vec::with_capacity(seq_len);
                let mut ys = Vec::with_capacity(seq_len);
                for _ in 0..seq_len {
                    let high = rng.gen_bool(0.5);
                    parity = (parity + usize::from(high)) % 2;
                    xs.push(vec![if high { 1.0 } else { -1.0 }, 1.0]);
                    ys.push(parity);
                }
                (xs, ys)
            })
            .collect()
    }

    #[test]
    fn learns_parity_task() {
        let cfg = GruClassifierConfig {
            input: 2,
            hidden: 12,
            classes: 2,
            epochs: 60,
            batch_size: 16,
            learning_rate: 5e-3,
            seed: 2,
        };
        let train = parity_dataset(120, 12, 1);
        let test = parity_dataset(40, 12, 99);
        let mut clf = GruClassifier::new(&cfg);
        let before = clf.accuracy(&test);
        let report = clf.train(&train, &cfg);
        let after = clf.accuracy(&test);
        assert!(
            after > 0.9,
            "accuracy before {before:.2} after {after:.2}, losses {:?}",
            &report.epoch_loss[..3.min(report.epoch_loss.len())]
        );
        assert!(report.epoch_loss.last().unwrap() < &report.epoch_loss[0]);
    }

    #[test]
    fn predict_shapes() {
        let cfg = GruClassifierConfig {
            input: 3,
            hidden: 4,
            classes: 5,
            epochs: 1,
            batch_size: 4,
            learning_rate: 1e-3,
            seed: 3,
        };
        let clf = GruClassifier::new(&cfg);
        let xs = vec![vec![0.0; 3]; 7];
        assert_eq!(clf.predict(&xs).len(), 7);
        assert!(clf.predict(&xs).iter().all(|&c| c < 5));
        assert_eq!(clf.predict::<Vec<f32>>(&[]).len(), 0);
    }

    #[test]
    fn argmax_edge_cases() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[]), 0);
        assert_eq!(argmax(&[f32::NAN, 1.0]), 1);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = GruClassifierConfig {
            input: 2,
            hidden: 3,
            classes: 2,
            epochs: 1,
            batch_size: 2,
            learning_rate: 1e-3,
            seed: 8,
        };
        let clf = GruClassifier::new(&cfg);
        let json = serde_json::to_string(&clf).unwrap();
        let back: GruClassifier = serde_json::from_str(&json).unwrap();
        let xs = vec![vec![0.5, -0.5]; 4];
        assert_eq!(clf.predict(&xs), back.predict(&xs));
    }
}
