//! Runtime-dispatched SIMD kernels for the inference hot path.
//!
//! Every dense kernel the scoring engine runs on — the dot products behind
//! [`Matrix::matvec_into`]/[`Matrix::matmul_nt_into`], the axpy update
//! behind the training GEMMs, the fused GRU gate block of
//! [`PackedGru::run`]/[`PackedGru::step`], the dense layer's bias +
//! activation epilogue and the autoencoder's L1 error reduction — is a
//! function pointer in a [`KernelSet`]. Three sets exist:
//!
//! * **scalar** — safe reference implementations written with plain
//!   multiply/add (no `mul_add`, so they never lower to a slow `fmaf` libm
//!   call on builds without FMA codegen) and `std` `exp`/`tanh`. This is
//!   the ground truth the SIMD sets are property-tested against.
//! * **avx2** — explicit `std::arch::x86_64` AVX2+FMA intrinsics: 8-lane
//!   FMA dot kernels with register blocking, and a polynomial `exp`
//!   (Cephes `expf` constants, ≈2 ulp) powering vectorized
//!   sigmoid/tanh for the gate block and dense activations.
//! * **avx512** — the same kernels widened to 16 lanes with masked tails,
//!   used where AVX-512F is available.
//!
//! Two int8-oriented tiers ride on top: **avxvnni** (256-bit `vpdpbusd`
//! int8 dots over the avx2 f32 kernels, for AVX2-class CPUs without
//! AVX-512) and **avx512vnni** (512-bit `vpdpbusd` over the avx512 f32
//! kernels).
//!
//! Selection happens **once per process** via
//! [`is_x86_feature_detected!`]: [`KernelSet::active`] picks the widest
//! supported set (avx512vnni → avx512 → avxvnni → avx2 → scalar) and
//! caches it. Setting the
//! environment variable `NEURAL_FORCE_SCALAR` (to anything but `0`, the
//! empty string, or `false`) pins the scalar set — CI runs the whole test
//! suite that way to keep the reference path exercised — and
//! `NEURAL_KERNELS=scalar|avx2|avxvnni|avx512|avx512vnni` requests a
//! specific set, falling
//! back to the ladder when the CPU lacks it. Tests can also grab a
//! specific set directly ([`KernelSet::scalar`], [`KernelSet::avx2`],
//! [`KernelSet::avx512`]) without touching the process-wide choice.
//!
//! SIMD results differ from scalar only by float reassociation and the
//! polynomial `exp` (both bounded to 1e-6 by the property tests); within
//! one set the kernels are deterministic, which is what keeps
//! step-by-step streaming bitwise identical to batched runs.
//!
//! [`Matrix::matvec_into`]: crate::Matrix::matvec_into
//! [`Matrix::matmul_nt_into`]: crate::Matrix::matmul_nt_into
//! [`PackedGru::run`]: crate::PackedGru::run
//! [`PackedGru::step`]: crate::PackedGru::step

use crate::dense::Activation;
use std::sync::OnceLock;

/// `dot4(a, b0, b1, b2, b3)` — four dot products sharing one `a`.
type Dot4Fn = fn(&[f32], &[f32], &[f32], &[f32], &[f32]) -> [f32; 4];
/// `gru_gates(xp, up, h, z, r)` — the fused gate block over a 3H slab.
type GruGatesFn = fn(&[f32], &[f32], &mut [f32], &mut [f32], &mut [f32]);
/// `dot4_i8(a, b0, b1, b2, b3)` — four int8 dot products sharing one
/// quantized activation row `a`.
type Dot4I8Fn = fn(&[u8], &[i8], &[i8], &[i8], &[i8]) -> [i32; 4];
/// `encode_dot4_i8(x, min, inv, qa, b0, b1, b2, b3)` — encodes one
/// activation row to 7-bit codes while accumulating four int8 dots.
type EncodeDot4I8Fn = fn(&[f32], f32, f32, &mut [u8], &[i8], &[i8], &[i8], &[i8]) -> [i32; 4];

/// A coherent set of hot-path kernels, selected once at startup. All
/// function pointers are plain safe `fn`s; the SIMD variants wrap their
/// `unsafe` intrinsic bodies and are only ever placed in sets whose
/// constructor verified the required CPU features.
#[derive(Clone, Copy)]
pub struct KernelSet {
    /// Kernel family name: `"scalar"`, `"avx2"`, `"avxvnni"`, `"avx512"`
    /// or `"avx512vnni"`.
    pub name: &'static str,
    dot: fn(&[f32], &[f32]) -> f32,
    dot4: Dot4Fn,
    axpy: fn(&mut [f32], &[f32], f32),
    bias_act: fn(&mut [f32], &[f32], Activation),
    gru_gates: GruGatesFn,
    sum_abs_diff: fn(&[f32], &[f32]) -> f32,
    dot_i8: fn(&[u8], &[i8]) -> i32,
    dot4_i8: Dot4I8Fn,
    act_range: fn(&[f32]) -> (f32, f32),
    act_encode: fn(&[f32], f32, f32, &mut [u8]),
    encode_dot4_i8: EncodeDot4I8Fn,
}

impl std::fmt::Debug for KernelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelSet")
            .field("name", &self.name)
            .finish()
    }
}

impl KernelSet {
    /// Dense dot product `a·b`. Lengths must match — checked here (not
    /// per-set) because the SIMD bodies do raw-pointer loads sized by
    /// `a.len()`; one compare is noise next to the kernel itself.
    #[inline]
    pub fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot length mismatch");
        (self.dot)(a, b)
    }

    /// Four simultaneous dot products of `a` against `b0..b3` — the
    /// register-blocked GEMM inner loop (each loaded chunk of `a` is
    /// reused four times). All five slices must share one length.
    #[inline]
    pub fn dot4(&self, a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
        let n = a.len();
        assert!(
            b0.len() == n && b1.len() == n && b2.len() == n && b3.len() == n,
            "dot4 length mismatch"
        );
        (self.dot4)(a, b0, b1, b2, b3)
    }

    /// `dst += alpha · src` (the rank-1 / nn-GEMM inner loop).
    #[inline]
    pub fn axpy(&self, dst: &mut [f32], src: &[f32], alpha: f32) {
        assert_eq!(dst.len(), src.len(), "axpy length mismatch");
        (self.axpy)(dst, src, alpha)
    }

    /// Fused bias add + activation over one output row:
    /// `row[i] = act(row[i] + bias[i])`.
    #[inline]
    pub fn bias_act(&self, row: &mut [f32], bias: &[f32], act: Activation) {
        assert_eq!(row.len(), bias.len(), "bias_act length mismatch");
        (self.bias_act)(row, bias, act)
    }

    /// The fused GRU gate block over the packed `3H` pre-activation slab:
    ///
    /// ```text
    /// z[i] = σ(xp[i]      + up[i])
    /// r[i] = σ(xp[H + i]  + up[H + i])
    /// n    = tanh(xp[2H+i] + r[i]·up[2H+i])
    /// h[i] = (1 − z[i])·n + z[i]·h[i]
    /// ```
    ///
    /// `h` is updated in place; `z`/`r` receive the gate activations
    /// (they may alias rows of a caller's profile matrix).
    #[inline]
    pub fn gru_gates(&self, xp: &[f32], up: &[f32], h: &mut [f32], z: &mut [f32], r: &mut [f32]) {
        let hidden = h.len();
        assert!(
            xp.len() == 3 * hidden
                && up.len() == 3 * hidden
                && z.len() == hidden
                && r.len() == hidden,
            "gru_gates shape mismatch"
        );
        (self.gru_gates)(xp, up, h, z, r)
    }

    /// `Σ |a[i] − b[i]|` — the autoencoder's L1 reconstruction-error
    /// reduction.
    #[inline]
    pub fn sum_abs_diff(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "sum_abs_diff length mismatch");
        (self.sum_abs_diff)(a, b)
    }

    /// Int8 dot product `Σ a[k]·b[k]` with exact i32 accumulation — the
    /// inner loop of the quantized GEMM ([`crate::quant::QuantMatrix`]).
    ///
    /// `a` holds quantized activations, which the quantizer confines to
    /// the 7-bit unsigned range `0..=127`; `b` holds int8 weights in
    /// `-127..=127`. Under that contract every pair product
    /// fits the AVX2 `maddubs` i16 pair-sum without saturation, so all
    /// kernel sets return the **bit-identical** i32 (integer addition is
    /// associative — no SIMD reassociation drift exists on this path).
    #[inline]
    pub fn dot_i8(&self, a: &[u8], b: &[i8]) -> i32 {
        assert_eq!(a.len(), b.len(), "dot_i8 length mismatch");
        debug_assert!(
            a.iter().all(|&x| x <= 127),
            "quantized activations exceed the 7-bit contract"
        );
        (self.dot_i8)(a, b)
    }

    /// Four simultaneous int8 dot products of `a` against `b0..b3` — the
    /// register-blocked quantized GEMM inner loop. Same contract and
    /// exactness guarantee as [`dot_i8`](Self::dot_i8).
    #[inline]
    pub fn dot4_i8(&self, a: &[u8], b0: &[i8], b1: &[i8], b2: &[i8], b3: &[i8]) -> [i32; 4] {
        let n = a.len();
        assert!(
            b0.len() == n && b1.len() == n && b2.len() == n && b3.len() == n,
            "dot4_i8 length mismatch"
        );
        debug_assert!(
            a.iter().all(|&x| x <= 127),
            "quantized activations exceed the 7-bit contract"
        );
        (self.dot4_i8)(a, b0, b1, b2, b3)
    }

    /// `(min, max)` of an activation row — the range scan behind
    /// on-the-fly quantization. Pure lane-parallel float min/max, so every
    /// set returns identical values for finite rows; a row containing
    /// NaN/±inf may return a non-finite bound (the quantizer detects that
    /// and falls back to a shared filtering rescan, keeping the final
    /// quantization identical across sets).
    #[inline]
    pub fn act_range(&self, x: &[f32]) -> (f32, f32) {
        (self.act_range)(x)
    }

    /// Encodes one activation row to 7-bit unsigned codes:
    /// `out[k] = clamp(trunc((x[k] − min) · inv + 0.5), 0, 127)`, with
    /// NaN mapping to code 0. Per-element arithmetic only (sub, mul, add,
    /// compare, truncate — never an FMA), so all sets produce the
    /// bit-identical codes.
    #[inline]
    pub fn act_encode(&self, x: &[f32], min: f32, inv: f32, out: &mut [u8]) {
        assert_eq!(x.len(), out.len(), "act_encode length mismatch");
        (self.act_encode)(x, min, inv, out)
    }

    /// Fused quantize-encode + four int8 dot products: writes the 7-bit
    /// codes of `x` into `qa` (bit-identical to
    /// [`act_encode`](Self::act_encode)) while accumulating `qa·b0..qa·b3`
    /// in the same pass, so each encoded activation chunk is consumed by
    /// the GEMM inner loop while still register-resident instead of making
    /// a separate encode round trip through memory. Because the dots are
    /// exact integer arithmetic, the result is **bit-identical** to
    /// `act_encode` followed by [`dot4_i8`](Self::dot4_i8) on every set.
    ///
    /// This is the inner kernel of the recurrent int8 matvec's per-step
    /// activation re-quantization (the range scan cannot fuse — the encode
    /// scale depends on the full row's min/max — but the encode pass can).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn encode_dot4_i8(
        &self,
        x: &[f32],
        min: f32,
        inv: f32,
        qa: &mut [u8],
        b0: &[i8],
        b1: &[i8],
        b2: &[i8],
        b3: &[i8],
    ) -> [i32; 4] {
        let n = x.len();
        assert!(
            qa.len() == n && b0.len() == n && b1.len() == n && b2.len() == n && b3.len() == n,
            "encode_dot4_i8 length mismatch"
        );
        (self.encode_dot4_i8)(x, min, inv, qa, b0, b1, b2, b3)
    }

    /// The safe scalar reference set. Always available; forced
    /// process-wide by `NEURAL_FORCE_SCALAR`.
    pub fn scalar() -> &'static KernelSet {
        &SCALAR
    }

    /// The AVX2+FMA set, if this CPU supports it.
    pub fn avx2() -> Option<&'static KernelSet> {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                return Some(&x86::AVX2);
            }
        }
        None
    }

    /// The 256-bit AVX-VNNI set, if this CPU supports it: f32 kernels
    /// identical to [`avx2`](Self::avx2), plus `vpdpbusd` int8 dot kernels
    /// on 256-bit vectors (u8×i8 quads accumulated straight into i32
    /// lanes, no `maddubs` i16 stage). This is the fast int8 tier for
    /// AVX2-class CPUs without AVX-512 (Alder Lake and newer client
    /// parts). Requires AVX2+FMA+AVX-VNNI.
    pub fn avxvnni() -> Option<&'static KernelSet> {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2")
                && is_x86_feature_detected!("fma")
                && is_x86_feature_detected!("avxvnni")
            {
                return Some(&x86::AVXVNNI);
            }
        }
        None
    }

    /// The AVX-512F set, if this CPU supports it. Also requires AVX2+FMA
    /// (true of every AVX-512 CPU shipped): the set's int8 kernels are the
    /// 256-bit `maddubs` path — AVX-512F alone has no byte-granular
    /// multiply, that needs the VNNI set below.
    pub fn avx512() -> Option<&'static KernelSet> {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f")
                && is_x86_feature_detected!("avx2")
                && is_x86_feature_detected!("fma")
            {
                return Some(&x86::AVX512);
            }
        }
        None
    }

    /// The AVX-512 VNNI set, if this CPU supports it: identical f32
    /// kernels to [`avx512`](Self::avx512), plus `vpdpbusd` int8 dot
    /// kernels (u8×i8 quads accumulated straight into i32 lanes, no
    /// intermediate i16 stage). Requires AVX-512F+BW+VNNI.
    pub fn avx512vnni() -> Option<&'static KernelSet> {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f")
                && is_x86_feature_detected!("avx512bw")
                && is_x86_feature_detected!("avx512vnni")
            {
                return Some(&x86::AVX512VNNI);
            }
        }
        None
    }

    /// Every set this CPU can run — scalar plus whatever was detected.
    /// Equivalence tests iterate this so they exercise exactly the kernels
    /// the host can dispatch.
    pub fn available() -> Vec<&'static KernelSet> {
        let mut sets = vec![Self::scalar()];
        sets.extend(Self::avx2());
        sets.extend(Self::avxvnni());
        sets.extend(Self::avx512());
        sets.extend(Self::avx512vnni());
        sets
    }

    /// The process-wide dispatched set: the widest ISA the CPU supports,
    /// unless `NEURAL_FORCE_SCALAR` pins the scalar reference or
    /// `NEURAL_KERNELS=scalar|avx2|avxvnni|avx512|avx512vnni` requests a
    /// specific set (best
    /// effort — an unsupported or unknown request falls back to the
    /// normal ladder, so `NEURAL_KERNELS=avx2` on an AVX-512 machine
    /// reproduces what an AVX2-only host would dispatch, e.g. to record a
    /// comparable benchmark reference). Selected on first call, cached
    /// forever.
    pub fn active() -> &'static KernelSet {
        static ACTIVE: OnceLock<&'static KernelSet> = OnceLock::new();
        ACTIVE.get_or_init(|| {
            select(
                env_forces_scalar(std::env::var("NEURAL_FORCE_SCALAR").ok().as_deref()),
                std::env::var("NEURAL_KERNELS").ok().as_deref(),
            )
        })
    }
}

/// Whether a `NEURAL_FORCE_SCALAR` value requests the scalar override.
/// Unset, empty, `0` and `false` mean "no"; anything else means "yes".
fn env_forces_scalar(value: Option<&str>) -> bool {
    match value {
        None => false,
        Some(v) => !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"),
    }
}

/// The dispatch policy, factored out of [`KernelSet::active`] so it can be
/// unit-tested without mutating process environment. `requested` is the
/// `NEURAL_KERNELS` value: a supported set name pins that set; anything
/// unsupported or unrecognized falls through to the widest-ISA ladder.
fn select(force_scalar: bool, requested: Option<&str>) -> &'static KernelSet {
    if force_scalar {
        return KernelSet::scalar();
    }
    match requested {
        Some("scalar") => return KernelSet::scalar(),
        Some("avx2") => {
            if let Some(ks) = KernelSet::avx2() {
                return ks;
            }
        }
        Some("avxvnni") => {
            if let Some(ks) = KernelSet::avxvnni() {
                return ks;
            }
        }
        Some("avx512") => {
            if let Some(ks) = KernelSet::avx512() {
                return ks;
            }
        }
        Some("avx512vnni") => {
            if let Some(ks) = KernelSet::avx512vnni() {
                return ks;
            }
        }
        _ => {}
    }
    KernelSet::avx512vnni()
        .or_else(KernelSet::avx512)
        .or_else(KernelSet::avxvnni)
        .or_else(KernelSet::avx2)
        .unwrap_or_else(KernelSet::scalar)
}

// ---------------------------------------------------------------------------
// Scalar reference kernels
// ---------------------------------------------------------------------------

/// Lane width of the scalar accumulator blocks; matches one AVX2 register
/// of `f32`s and autovectorizes cleanly on narrower ISAs (SSE2 baseline).
const LANES: usize = 8;

static SCALAR: KernelSet = KernelSet {
    name: "scalar",
    dot: dot_scalar,
    dot4: dot4_scalar,
    axpy: axpy_scalar,
    bias_act: bias_act_scalar,
    gru_gates: gru_gates_scalar,
    sum_abs_diff: sum_abs_diff_scalar,
    dot_i8: dot_i8_scalar,
    dot4_i8: dot4_i8_scalar,
    act_range: act_range_scalar,
    act_encode: act_encode_scalar,
    encode_dot4_i8: encode_dot4_i8_scalar,
};

/// Reference fused encode+dot: the unfused composition *is* the spec —
/// encode the whole row, then take the four integer dots. The SIMD
/// variants interleave the two per 32-element chunk but compute the exact
/// same codes and (associative) integer sums, so they stay bit-identical.
#[allow(clippy::too_many_arguments)]
fn encode_dot4_i8_scalar(
    x: &[f32],
    min: f32,
    inv: f32,
    qa: &mut [u8],
    b0: &[i8],
    b1: &[i8],
    b2: &[i8],
    b3: &[i8],
) -> [i32; 4] {
    act_encode_scalar(x, min, inv, qa);
    dot4_i8_scalar(qa, b0, b1, b2, b3)
}

fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let ca = a.chunks_exact(LANES);
    let cb = b.chunks_exact(LANES);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for i in 0..LANES {
            lanes[i] += xa[i] * xb[i];
        }
    }
    let mut acc = 0.0;
    for lane in lanes {
        acc += lane;
    }
    for (x, y) in ra.iter().zip(rb) {
        acc += x * y;
    }
    acc
}

fn dot4_scalar(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    let mut l0 = [0.0f32; LANES];
    let mut l1 = [0.0f32; LANES];
    let mut l2 = [0.0f32; LANES];
    let mut l3 = [0.0f32; LANES];
    let n = a.len() / LANES * LANES;
    let mut k = 0;
    while k < n {
        let xa = &a[k..k + LANES];
        let x0 = &b0[k..k + LANES];
        let x1 = &b1[k..k + LANES];
        let x2 = &b2[k..k + LANES];
        let x3 = &b3[k..k + LANES];
        for i in 0..LANES {
            l0[i] += xa[i] * x0[i];
            l1[i] += xa[i] * x1[i];
            l2[i] += xa[i] * x2[i];
            l3[i] += xa[i] * x3[i];
        }
        k += LANES;
    }
    let mut out = [0.0f32; 4];
    for (o, lanes) in out.iter_mut().zip([&l0, &l1, &l2, &l3]) {
        for lane in lanes.iter() {
            *o += lane;
        }
    }
    for k in n..a.len() {
        out[0] += a[k] * b0[k];
        out[1] += a[k] * b1[k];
        out[2] += a[k] * b2[k];
        out[3] += a[k] * b3[k];
    }
    out
}

fn axpy_scalar(dst: &mut [f32], src: &[f32], alpha: f32) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += alpha * s;
    }
}

fn bias_act_scalar(row: &mut [f32], bias: &[f32], act: Activation) {
    debug_assert_eq!(row.len(), bias.len());
    for (v, &b) in row.iter_mut().zip(bias) {
        *v = act.apply(*v + b);
    }
}

fn gru_gates_scalar(xp: &[f32], up: &[f32], h: &mut [f32], z: &mut [f32], r: &mut [f32]) {
    let hidden = h.len();
    for i in 0..hidden {
        z[i] = crate::sigmoid(xp[i] + up[i]);
    }
    for i in 0..hidden {
        r[i] = crate::sigmoid(xp[hidden + i] + up[hidden + i]);
    }
    for i in 0..hidden {
        let n = (xp[2 * hidden + i] + r[i] * up[2 * hidden + i]).tanh();
        h[i] = (1.0 - z[i]) * n + z[i] * h[i];
    }
}

/// Reference int8 dot. Integer accumulation is exact and associative, so
/// this is not merely "close to" the SIMD kernels — it is bit-identical,
/// which is what lets the proptests pin `==` instead of a tolerance.
fn dot_i8_scalar(a: &[u8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        acc += i32::from(x) * i32::from(y);
    }
    acc
}

fn dot4_i8_scalar(a: &[u8], b0: &[i8], b1: &[i8], b2: &[i8], b3: &[i8]) -> [i32; 4] {
    [
        dot_i8_scalar(a, b0),
        dot_i8_scalar(a, b1),
        dot_i8_scalar(a, b2),
        dot_i8_scalar(a, b3),
    ]
}

/// Lane-blocked select-form min/max scan. A NaN comparison is false, so a
/// NaN element never replaces a lane bound; ±inf propagates into the
/// result, where the quantizer's finiteness check catches it.
fn act_range_scalar(x: &[f32]) -> (f32, f32) {
    let mut lo = [f32::INFINITY; LANES];
    let mut hi = [f32::NEG_INFINITY; LANES];
    let chunks = x.chunks_exact(LANES);
    let tail = chunks.remainder();
    for c in chunks {
        for i in 0..LANES {
            lo[i] = if c[i] < lo[i] { c[i] } else { lo[i] };
            hi[i] = if c[i] > hi[i] { c[i] } else { hi[i] };
        }
    }
    let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
    for i in 0..LANES {
        min = if lo[i] < min { lo[i] } else { min };
        max = if hi[i] > max { hi[i] } else { max };
    }
    for &v in tail {
        min = if v < min { v } else { min };
        max = if v > max { v } else { max };
    }
    (min, max)
}

/// Reference encode: `(v − min)·inv` is non-negative for every finite `v`
/// of the row, so adding 0.5 and truncating rounds to nearest (half-up)
/// without `f32::round` (a libm call on the SSE2 baseline). The `t > 127`
/// select keeps NaN (comparison false), which the saturating `as u8` cast
/// then sends to code 0.
fn act_encode_scalar(x: &[f32], min: f32, inv: f32, out: &mut [u8]) {
    debug_assert_eq!(x.len(), out.len());
    for (q, &v) in out.iter_mut().zip(x) {
        let t = (v - min) * inv + 0.5;
        *q = if t > 127.0 { 127.0 } else { t } as u8;
    }
}

fn sum_abs_diff_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let ca = a.chunks_exact(LANES);
    let cb = b.chunks_exact(LANES);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for i in 0..LANES {
            lanes[i] += (xa[i] - xb[i]).abs();
        }
    }
    let mut acc = 0.0;
    for lane in lanes {
        acc += lane;
    }
    for (x, y) in ra.iter().zip(rb) {
        acc += (x - y).abs();
    }
    acc
}

// ---------------------------------------------------------------------------
// x86-64 SIMD kernels (AVX2+FMA and AVX-512F)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{Activation, KernelSet};
    use std::arch::x86_64::*;

    pub(super) static AVX2: KernelSet = KernelSet {
        name: "avx2",
        dot: dot_avx2,
        dot4: dot4_avx2,
        axpy: axpy_avx2,
        bias_act: bias_act_avx2,
        gru_gates: gru_gates_avx2,
        sum_abs_diff: sum_abs_diff_avx2,
        dot_i8: dot_i8_avx2,
        dot4_i8: dot4_i8_avx2,
        act_range: act_range_avx2,
        act_encode: act_encode_avx2,
        encode_dot4_i8: encode_dot4_i8_avx2,
    };

    /// The 256-bit AVX-VNNI tier: f32 kernels identical to [`AVX2`], int8
    /// kernels on the VEX-encoded `vpdpbusd` (`_mm256_dpbusd_avx_epi32`)
    /// — same 256-bit shape as the maddubs kernels but one µop per 32
    /// products and no i16 stage. For AVX2-class CPUs without AVX-512.
    pub(super) static AVXVNNI: KernelSet = KernelSet {
        name: "avxvnni",
        dot: dot_avx2,
        dot4: dot4_avx2,
        axpy: axpy_avx2,
        bias_act: bias_act_avx2,
        gru_gates: gru_gates_avx2,
        sum_abs_diff: sum_abs_diff_avx2,
        dot_i8: dot_i8_avxvnni,
        dot4_i8: dot4_i8_avxvnni,
        act_range: act_range_avx2,
        act_encode: act_encode_avx2,
        encode_dot4_i8: encode_dot4_i8_avxvnni,
    };

    pub(super) static AVX512: KernelSet = KernelSet {
        name: "avx512",
        dot: dot_avx512,
        dot4: dot4_avx512,
        axpy: axpy_avx512,
        bias_act: bias_act_avx512,
        gru_gates: gru_gates_avx512,
        sum_abs_diff: sum_abs_diff_avx512,
        // AVX-512F has no byte-granular multiply; without VNNI the best
        // int8 path on these CPUs is the 256-bit maddubs kernel (the set's
        // constructor also verifies AVX2).
        dot_i8: dot_i8_avx2,
        dot4_i8: dot4_i8_avx2,
        act_range: act_range_avx2,
        act_encode: act_encode_avx2,
        encode_dot4_i8: encode_dot4_i8_avx2,
    };

    /// The VNNI tier: f32 kernels identical to [`AVX512`], int8 kernels on
    /// `vpdpbusd` (u8×i8 quads accumulated directly into i32 lanes). The
    /// fused encode+dot stays on the 256-bit maddubs body (its encode
    /// stage is 256-bit; it only runs on one row-quad per matvec).
    pub(super) static AVX512VNNI: KernelSet = KernelSet {
        name: "avx512vnni",
        dot: dot_avx512,
        dot4: dot4_avx512,
        axpy: axpy_avx512,
        bias_act: bias_act_avx512,
        gru_gates: gru_gates_avx512,
        sum_abs_diff: sum_abs_diff_avx512,
        dot_i8: dot_i8_vnni,
        dot4_i8: dot4_i8_vnni,
        act_range: act_range_avx2,
        act_encode: act_encode_avx2,
        encode_dot4_i8: encode_dot4_i8_avx2,
    };

    // Cephes-style polynomial `expf` constants (same as avx_mathfun /
    // SLEEF's fast path): Cody–Waite range reduction against ln 2 split
    // into a high and a low part, then a degree-5 minimax polynomial on
    // the reduced interval. Max relative error ≈ 2 ulp, which keeps the
    // derived sigmoid/tanh within ~2e-7 of `std` — well inside the 1e-6
    // equivalence budget the engine tests pin.
    const EXP_HI: f32 = 88.376_26;
    const EXP_LO: f32 = -88.376_26;
    const LOG2EF: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    const EXP_P0: f32 = 1.987_569_1e-4;
    const EXP_P1: f32 = 1.398_199_9e-3;
    const EXP_P2: f32 = 8.333_452e-3;
    const EXP_P3: f32 = 4.166_579_6e-2;
    const EXP_P4: f32 = 1.666_666_5e-1;
    const EXP_P5: f32 = 5.000_000_3e-1;

    // ---------------- AVX2 ----------------

    /// # Safety
    /// Requires AVX2+FMA (guaranteed by `KernelSet::avx2` detection).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn exp256(x: __m256) -> __m256 {
        let x = _mm256_min_ps(x, _mm256_set1_ps(EXP_HI));
        let x = _mm256_max_ps(x, _mm256_set1_ps(EXP_LO));
        // n = round(x / ln 2)
        let n = _mm256_round_ps(
            _mm256_mul_ps(x, _mm256_set1_ps(LOG2EF)),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC,
        );
        // Reduced argument r = x − n·ln2 (two-step for precision).
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(LN2_HI), x);
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(LN2_LO), r);
        // Polynomial e^r ≈ 1 + r + r²·p(r).
        let mut p = _mm256_set1_ps(EXP_P0);
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(EXP_P1));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(EXP_P2));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(EXP_P3));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(EXP_P4));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(EXP_P5));
        let r2 = _mm256_mul_ps(r, r);
        let y = _mm256_add_ps(_mm256_fmadd_ps(p, r2, r), _mm256_set1_ps(1.0));
        // Scale by 2ⁿ through the exponent bits.
        let pow2n = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            _mm256_cvtps_epi32(n),
            _mm256_set1_epi32(127),
        )));
        _mm256_mul_ps(y, pow2n)
    }

    /// # Safety
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn sigmoid256(x: __m256) -> __m256 {
        // 1 / (1 + e^(−x)); the clamp inside exp256 handles saturation.
        let e = exp256(_mm256_sub_ps(_mm256_setzero_ps(), x));
        _mm256_div_ps(_mm256_set1_ps(1.0), _mm256_add_ps(_mm256_set1_ps(1.0), e))
    }

    /// # Safety
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tanh256(x: __m256) -> __m256 {
        // tanh(x) = (e^{2x} − 1) / (e^{2x} + 1).
        let e = exp256(_mm256_add_ps(x, x));
        let one = _mm256_set1_ps(1.0);
        _mm256_div_ps(_mm256_sub_ps(e, one), _mm256_add_ps(e, one))
    }

    /// Sums the 8 lanes of a register.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum256(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_movehdup_ps(s));
        _mm_cvtss_f32(s)
    }

    /// # Safety
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot_avx2_impl(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 32 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 8)),
                _mm256_loadu_ps(pb.add(i + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 16)),
                _mm256_loadu_ps(pb.add(i + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 24)),
                _mm256_loadu_ps(pb.add(i + 24)),
                acc3,
            );
            i += 32;
        }
        while i + 8 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            i += 8;
        }
        let acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        let mut sum = hsum256(acc);
        while i < n {
            sum = a[i].mul_add(b[i], sum);
            i += 1;
        }
        sum
    }

    fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: this fn is only reachable through the AVX2 KernelSet,
        // which is handed out exclusively after feature detection.
        unsafe { dot_avx2_impl(a, b) }
    }

    /// # Safety
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot4_avx2_impl(
        a: &[f32],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) -> [f32; 4] {
        let n = a.len();
        let pa = a.as_ptr();
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        // Two accumulators per row: enough independent FMA chains to cover
        // the FMA latency while still reusing each loaded chunk of `a`
        // across all four rows.
        let mut a00 = _mm256_setzero_ps();
        let mut a01 = _mm256_setzero_ps();
        let mut a10 = _mm256_setzero_ps();
        let mut a11 = _mm256_setzero_ps();
        let mut a20 = _mm256_setzero_ps();
        let mut a21 = _mm256_setzero_ps();
        let mut a30 = _mm256_setzero_ps();
        let mut a31 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            let va0 = _mm256_loadu_ps(pa.add(i));
            let va1 = _mm256_loadu_ps(pa.add(i + 8));
            a00 = _mm256_fmadd_ps(va0, _mm256_loadu_ps(p0.add(i)), a00);
            a01 = _mm256_fmadd_ps(va1, _mm256_loadu_ps(p0.add(i + 8)), a01);
            a10 = _mm256_fmadd_ps(va0, _mm256_loadu_ps(p1.add(i)), a10);
            a11 = _mm256_fmadd_ps(va1, _mm256_loadu_ps(p1.add(i + 8)), a11);
            a20 = _mm256_fmadd_ps(va0, _mm256_loadu_ps(p2.add(i)), a20);
            a21 = _mm256_fmadd_ps(va1, _mm256_loadu_ps(p2.add(i + 8)), a21);
            a30 = _mm256_fmadd_ps(va0, _mm256_loadu_ps(p3.add(i)), a30);
            a31 = _mm256_fmadd_ps(va1, _mm256_loadu_ps(p3.add(i + 8)), a31);
            i += 16;
        }
        if i + 8 <= n {
            let va = _mm256_loadu_ps(pa.add(i));
            a00 = _mm256_fmadd_ps(va, _mm256_loadu_ps(p0.add(i)), a00);
            a10 = _mm256_fmadd_ps(va, _mm256_loadu_ps(p1.add(i)), a10);
            a20 = _mm256_fmadd_ps(va, _mm256_loadu_ps(p2.add(i)), a20);
            a30 = _mm256_fmadd_ps(va, _mm256_loadu_ps(p3.add(i)), a30);
            i += 8;
        }
        let mut out = [
            hsum256(_mm256_add_ps(a00, a01)),
            hsum256(_mm256_add_ps(a10, a11)),
            hsum256(_mm256_add_ps(a20, a21)),
            hsum256(_mm256_add_ps(a30, a31)),
        ];
        while i < n {
            out[0] = a[i].mul_add(b0[i], out[0]);
            out[1] = a[i].mul_add(b1[i], out[1]);
            out[2] = a[i].mul_add(b2[i], out[2]);
            out[3] = a[i].mul_add(b3[i], out[3]);
            i += 1;
        }
        out
    }

    fn dot4_avx2(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
        // SAFETY: reachable only through the detected AVX2 KernelSet.
        unsafe { dot4_avx2_impl(a, b0, b1, b2, b3) }
    }

    /// # Safety
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn axpy_avx2_impl(dst: &mut [f32], src: &[f32], alpha: f32) {
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len();
        let va = _mm256_set1_ps(alpha);
        let (pd, ps) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i + 8 <= n {
            let d = _mm256_fmadd_ps(va, _mm256_loadu_ps(ps.add(i)), _mm256_loadu_ps(pd.add(i)));
            _mm256_storeu_ps(pd.add(i), d);
            i += 8;
        }
        while i < n {
            dst[i] = alpha.mul_add(src[i], dst[i]);
            i += 1;
        }
    }

    fn axpy_avx2(dst: &mut [f32], src: &[f32], alpha: f32) {
        // SAFETY: reachable only through the detected AVX2 KernelSet.
        unsafe { axpy_avx2_impl(dst, src, alpha) }
    }

    /// # Safety
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn bias_act_avx2_impl(row: &mut [f32], bias: &[f32], act: Activation) {
        debug_assert_eq!(row.len(), bias.len());
        let n = row.len();
        let (pr, pb) = (row.as_mut_ptr(), bias.as_ptr());
        let mut i = 0;
        match act {
            Activation::Linear => {
                while i + 8 <= n {
                    let v = _mm256_add_ps(_mm256_loadu_ps(pr.add(i)), _mm256_loadu_ps(pb.add(i)));
                    _mm256_storeu_ps(pr.add(i), v);
                    i += 8;
                }
            }
            Activation::Relu => {
                let zero = _mm256_setzero_ps();
                while i + 8 <= n {
                    let v = _mm256_add_ps(_mm256_loadu_ps(pr.add(i)), _mm256_loadu_ps(pb.add(i)));
                    _mm256_storeu_ps(pr.add(i), _mm256_max_ps(v, zero));
                    i += 8;
                }
            }
            Activation::Tanh => {
                while i + 8 <= n {
                    let v = _mm256_add_ps(_mm256_loadu_ps(pr.add(i)), _mm256_loadu_ps(pb.add(i)));
                    _mm256_storeu_ps(pr.add(i), tanh256(v));
                    i += 8;
                }
            }
            Activation::Sigmoid => {
                while i + 8 <= n {
                    let v = _mm256_add_ps(_mm256_loadu_ps(pr.add(i)), _mm256_loadu_ps(pb.add(i)));
                    _mm256_storeu_ps(pr.add(i), sigmoid256(v));
                    i += 8;
                }
            }
        }
        while i < n {
            row[i] = act.apply(row[i] + bias[i]);
            i += 1;
        }
    }

    fn bias_act_avx2(row: &mut [f32], bias: &[f32], act: Activation) {
        // SAFETY: reachable only through the detected AVX2 KernelSet.
        unsafe { bias_act_avx2_impl(row, bias, act) }
    }

    /// # Safety
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn gru_gates_avx2_impl(
        xp: &[f32],
        up: &[f32],
        h: &mut [f32],
        z: &mut [f32],
        r: &mut [f32],
    ) {
        let hidden = h.len();
        let (pxp, pup) = (xp.as_ptr(), up.as_ptr());
        let mut i = 0;
        while i + 8 <= hidden {
            let vz = sigmoid256(_mm256_add_ps(
                _mm256_loadu_ps(pxp.add(i)),
                _mm256_loadu_ps(pup.add(i)),
            ));
            let vr = sigmoid256(_mm256_add_ps(
                _mm256_loadu_ps(pxp.add(hidden + i)),
                _mm256_loadu_ps(pup.add(hidden + i)),
            ));
            let vn = tanh256(_mm256_fmadd_ps(
                vr,
                _mm256_loadu_ps(pup.add(2 * hidden + i)),
                _mm256_loadu_ps(pxp.add(2 * hidden + i)),
            ));
            let vh = _mm256_loadu_ps(h.as_ptr().add(i));
            // (1 − z)·n + z·h = n + z·(h − n)
            let vh_new = _mm256_fmadd_ps(vz, _mm256_sub_ps(vh, vn), vn);
            _mm256_storeu_ps(z.as_mut_ptr().add(i), vz);
            _mm256_storeu_ps(r.as_mut_ptr().add(i), vr);
            _mm256_storeu_ps(h.as_mut_ptr().add(i), vh_new);
            i += 8;
        }
        while i < hidden {
            z[i] = crate::sigmoid(xp[i] + up[i]);
            r[i] = crate::sigmoid(xp[hidden + i] + up[hidden + i]);
            let n = (xp[2 * hidden + i] + r[i] * up[2 * hidden + i]).tanh();
            h[i] = n + z[i] * (h[i] - n);
            i += 1;
        }
    }

    fn gru_gates_avx2(xp: &[f32], up: &[f32], h: &mut [f32], z: &mut [f32], r: &mut [f32]) {
        // SAFETY: reachable only through the detected AVX2 KernelSet.
        unsafe { gru_gates_avx2_impl(xp, up, h, z, r) }
    }

    /// # Safety
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn sum_abs_diff_avx2_impl(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        // abs via clearing the sign bit.
        let mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            let d1 = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(i + 8)),
                _mm256_loadu_ps(pb.add(i + 8)),
            );
            acc0 = _mm256_add_ps(acc0, _mm256_and_ps(d0, mask));
            acc1 = _mm256_add_ps(acc1, _mm256_and_ps(d1, mask));
            i += 16;
        }
        if i + 8 <= n {
            let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            acc0 = _mm256_add_ps(acc0, _mm256_and_ps(d, mask));
            i += 8;
        }
        let mut sum = hsum256(_mm256_add_ps(acc0, acc1));
        while i < n {
            sum += (a[i] - b[i]).abs();
            i += 1;
        }
        sum
    }

    fn sum_abs_diff_avx2(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: reachable only through the detected AVX2 KernelSet.
        unsafe { sum_abs_diff_avx2_impl(a, b) }
    }

    // ---------------- AVX-512F ----------------

    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    unsafe fn exp512(x: __m512) -> __m512 {
        let x = _mm512_min_ps(x, _mm512_set1_ps(EXP_HI));
        let x = _mm512_max_ps(x, _mm512_set1_ps(EXP_LO));
        let n = _mm512_roundscale_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
            _mm512_mul_ps(x, _mm512_set1_ps(LOG2EF)),
        );
        let r = _mm512_fnmadd_ps(n, _mm512_set1_ps(LN2_HI), x);
        let r = _mm512_fnmadd_ps(n, _mm512_set1_ps(LN2_LO), r);
        let mut p = _mm512_set1_ps(EXP_P0);
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(EXP_P1));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(EXP_P2));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(EXP_P3));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(EXP_P4));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(EXP_P5));
        let r2 = _mm512_mul_ps(r, r);
        let y = _mm512_add_ps(_mm512_fmadd_ps(p, r2, r), _mm512_set1_ps(1.0));
        let pow2n = _mm512_castsi512_ps(_mm512_slli_epi32::<23>(_mm512_add_epi32(
            _mm512_cvtps_epi32(n),
            _mm512_set1_epi32(127),
        )));
        _mm512_mul_ps(y, pow2n)
    }

    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    unsafe fn sigmoid512(x: __m512) -> __m512 {
        let e = exp512(_mm512_sub_ps(_mm512_setzero_ps(), x));
        _mm512_div_ps(_mm512_set1_ps(1.0), _mm512_add_ps(_mm512_set1_ps(1.0), e))
    }

    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    unsafe fn tanh512(x: __m512) -> __m512 {
        let e = exp512(_mm512_add_ps(x, x));
        let one = _mm512_set1_ps(1.0);
        _mm512_div_ps(_mm512_sub_ps(e, one), _mm512_add_ps(e, one))
    }

    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    unsafe fn dot_avx512_impl(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm512_setzero_ps();
        let mut acc1 = _mm512_setzero_ps();
        let mut acc2 = _mm512_setzero_ps();
        let mut acc3 = _mm512_setzero_ps();
        let mut i = 0;
        while i + 64 <= n {
            acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(pa.add(i)), _mm512_loadu_ps(pb.add(i)), acc0);
            acc1 = _mm512_fmadd_ps(
                _mm512_loadu_ps(pa.add(i + 16)),
                _mm512_loadu_ps(pb.add(i + 16)),
                acc1,
            );
            acc2 = _mm512_fmadd_ps(
                _mm512_loadu_ps(pa.add(i + 32)),
                _mm512_loadu_ps(pb.add(i + 32)),
                acc2,
            );
            acc3 = _mm512_fmadd_ps(
                _mm512_loadu_ps(pa.add(i + 48)),
                _mm512_loadu_ps(pb.add(i + 48)),
                acc3,
            );
            i += 64;
        }
        while i + 16 <= n {
            acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(pa.add(i)), _mm512_loadu_ps(pb.add(i)), acc0);
            i += 16;
        }
        if i < n {
            let m: __mmask16 = (1u16 << (n - i)) - 1;
            acc1 = _mm512_fmadd_ps(
                _mm512_maskz_loadu_ps(m, pa.add(i)),
                _mm512_maskz_loadu_ps(m, pb.add(i)),
                acc1,
            );
        }
        let acc = _mm512_add_ps(_mm512_add_ps(acc0, acc1), _mm512_add_ps(acc2, acc3));
        _mm512_reduce_add_ps(acc)
    }

    fn dot_avx512(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: reachable only through the detected AVX-512 KernelSet.
        unsafe { dot_avx512_impl(a, b) }
    }

    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    unsafe fn dot4_avx512_impl(
        a: &[f32],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) -> [f32; 4] {
        let n = a.len();
        let pa = a.as_ptr();
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let mut a00 = _mm512_setzero_ps();
        let mut a01 = _mm512_setzero_ps();
        let mut a10 = _mm512_setzero_ps();
        let mut a11 = _mm512_setzero_ps();
        let mut a20 = _mm512_setzero_ps();
        let mut a21 = _mm512_setzero_ps();
        let mut a30 = _mm512_setzero_ps();
        let mut a31 = _mm512_setzero_ps();
        let mut i = 0;
        while i + 32 <= n {
            let va0 = _mm512_loadu_ps(pa.add(i));
            let va1 = _mm512_loadu_ps(pa.add(i + 16));
            a00 = _mm512_fmadd_ps(va0, _mm512_loadu_ps(p0.add(i)), a00);
            a01 = _mm512_fmadd_ps(va1, _mm512_loadu_ps(p0.add(i + 16)), a01);
            a10 = _mm512_fmadd_ps(va0, _mm512_loadu_ps(p1.add(i)), a10);
            a11 = _mm512_fmadd_ps(va1, _mm512_loadu_ps(p1.add(i + 16)), a11);
            a20 = _mm512_fmadd_ps(va0, _mm512_loadu_ps(p2.add(i)), a20);
            a21 = _mm512_fmadd_ps(va1, _mm512_loadu_ps(p2.add(i + 16)), a21);
            a30 = _mm512_fmadd_ps(va0, _mm512_loadu_ps(p3.add(i)), a30);
            a31 = _mm512_fmadd_ps(va1, _mm512_loadu_ps(p3.add(i + 16)), a31);
            i += 32;
        }
        if i + 16 <= n {
            let va = _mm512_loadu_ps(pa.add(i));
            a00 = _mm512_fmadd_ps(va, _mm512_loadu_ps(p0.add(i)), a00);
            a10 = _mm512_fmadd_ps(va, _mm512_loadu_ps(p1.add(i)), a10);
            a20 = _mm512_fmadd_ps(va, _mm512_loadu_ps(p2.add(i)), a20);
            a30 = _mm512_fmadd_ps(va, _mm512_loadu_ps(p3.add(i)), a30);
            i += 16;
        }
        if i < n {
            let m: __mmask16 = (1u16 << (n - i)) - 1;
            let va = _mm512_maskz_loadu_ps(m, pa.add(i));
            a01 = _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, p0.add(i)), a01);
            a11 = _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, p1.add(i)), a11);
            a21 = _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, p2.add(i)), a21);
            a31 = _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, p3.add(i)), a31);
        }
        [
            _mm512_reduce_add_ps(_mm512_add_ps(a00, a01)),
            _mm512_reduce_add_ps(_mm512_add_ps(a10, a11)),
            _mm512_reduce_add_ps(_mm512_add_ps(a20, a21)),
            _mm512_reduce_add_ps(_mm512_add_ps(a30, a31)),
        ]
    }

    fn dot4_avx512(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
        // SAFETY: reachable only through the detected AVX-512 KernelSet.
        unsafe { dot4_avx512_impl(a, b0, b1, b2, b3) }
    }

    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    unsafe fn axpy_avx512_impl(dst: &mut [f32], src: &[f32], alpha: f32) {
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len();
        let va = _mm512_set1_ps(alpha);
        let (pd, ps) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i + 16 <= n {
            let d = _mm512_fmadd_ps(va, _mm512_loadu_ps(ps.add(i)), _mm512_loadu_ps(pd.add(i)));
            _mm512_storeu_ps(pd.add(i), d);
            i += 16;
        }
        if i < n {
            let m: __mmask16 = (1u16 << (n - i)) - 1;
            let d = _mm512_fmadd_ps(
                va,
                _mm512_maskz_loadu_ps(m, ps.add(i)),
                _mm512_maskz_loadu_ps(m, pd.add(i)),
            );
            _mm512_mask_storeu_ps(pd.add(i), m, d);
        }
    }

    fn axpy_avx512(dst: &mut [f32], src: &[f32], alpha: f32) {
        // SAFETY: reachable only through the detected AVX-512 KernelSet.
        unsafe { axpy_avx512_impl(dst, src, alpha) }
    }

    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    unsafe fn bias_act_avx512_impl(row: &mut [f32], bias: &[f32], act: Activation) {
        debug_assert_eq!(row.len(), bias.len());
        let n = row.len();
        let (pr, pb) = (row.as_mut_ptr(), bias.as_ptr());
        let mut i = 0;
        match act {
            Activation::Linear => {
                while i + 16 <= n {
                    let v = _mm512_add_ps(_mm512_loadu_ps(pr.add(i)), _mm512_loadu_ps(pb.add(i)));
                    _mm512_storeu_ps(pr.add(i), v);
                    i += 16;
                }
            }
            Activation::Relu => {
                let zero = _mm512_setzero_ps();
                while i + 16 <= n {
                    let v = _mm512_add_ps(_mm512_loadu_ps(pr.add(i)), _mm512_loadu_ps(pb.add(i)));
                    _mm512_storeu_ps(pr.add(i), _mm512_max_ps(v, zero));
                    i += 16;
                }
            }
            Activation::Tanh => {
                while i + 16 <= n {
                    let v = _mm512_add_ps(_mm512_loadu_ps(pr.add(i)), _mm512_loadu_ps(pb.add(i)));
                    _mm512_storeu_ps(pr.add(i), tanh512(v));
                    i += 16;
                }
            }
            Activation::Sigmoid => {
                while i + 16 <= n {
                    let v = _mm512_add_ps(_mm512_loadu_ps(pr.add(i)), _mm512_loadu_ps(pb.add(i)));
                    _mm512_storeu_ps(pr.add(i), sigmoid512(v));
                    i += 16;
                }
            }
        }
        while i < n {
            row[i] = act.apply(row[i] + bias[i]);
            i += 1;
        }
    }

    fn bias_act_avx512(row: &mut [f32], bias: &[f32], act: Activation) {
        // SAFETY: reachable only through the detected AVX-512 KernelSet.
        unsafe { bias_act_avx512_impl(row, bias, act) }
    }

    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    unsafe fn gru_gates_avx512_impl(
        xp: &[f32],
        up: &[f32],
        h: &mut [f32],
        z: &mut [f32],
        r: &mut [f32],
    ) {
        let hidden = h.len();
        let (pxp, pup) = (xp.as_ptr(), up.as_ptr());
        let mut i = 0;
        while i + 16 <= hidden {
            let vz = sigmoid512(_mm512_add_ps(
                _mm512_loadu_ps(pxp.add(i)),
                _mm512_loadu_ps(pup.add(i)),
            ));
            let vr = sigmoid512(_mm512_add_ps(
                _mm512_loadu_ps(pxp.add(hidden + i)),
                _mm512_loadu_ps(pup.add(hidden + i)),
            ));
            let vn = tanh512(_mm512_fmadd_ps(
                vr,
                _mm512_loadu_ps(pup.add(2 * hidden + i)),
                _mm512_loadu_ps(pxp.add(2 * hidden + i)),
            ));
            let vh = _mm512_loadu_ps(h.as_ptr().add(i));
            let vh_new = _mm512_fmadd_ps(vz, _mm512_sub_ps(vh, vn), vn);
            _mm512_storeu_ps(z.as_mut_ptr().add(i), vz);
            _mm512_storeu_ps(r.as_mut_ptr().add(i), vr);
            _mm512_storeu_ps(h.as_mut_ptr().add(i), vh_new);
            i += 16;
        }
        while i < hidden {
            z[i] = crate::sigmoid(xp[i] + up[i]);
            r[i] = crate::sigmoid(xp[hidden + i] + up[hidden + i]);
            let n = (xp[2 * hidden + i] + r[i] * up[2 * hidden + i]).tanh();
            h[i] = n + z[i] * (h[i] - n);
            i += 1;
        }
    }

    fn gru_gates_avx512(xp: &[f32], up: &[f32], h: &mut [f32], z: &mut [f32], r: &mut [f32]) {
        // SAFETY: reachable only through the detected AVX-512 KernelSet.
        unsafe { gru_gates_avx512_impl(xp, up, h, z, r) }
    }

    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    unsafe fn sum_abs_diff_avx512_impl(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm512_setzero_ps();
        let mut acc1 = _mm512_setzero_ps();
        let mut i = 0;
        while i + 32 <= n {
            let d0 = _mm512_sub_ps(_mm512_loadu_ps(pa.add(i)), _mm512_loadu_ps(pb.add(i)));
            let d1 = _mm512_sub_ps(
                _mm512_loadu_ps(pa.add(i + 16)),
                _mm512_loadu_ps(pb.add(i + 16)),
            );
            acc0 = _mm512_add_ps(acc0, _mm512_abs_ps(d0));
            acc1 = _mm512_add_ps(acc1, _mm512_abs_ps(d1));
            i += 32;
        }
        if i + 16 <= n {
            let d = _mm512_sub_ps(_mm512_loadu_ps(pa.add(i)), _mm512_loadu_ps(pb.add(i)));
            acc0 = _mm512_add_ps(acc0, _mm512_abs_ps(d));
            i += 16;
        }
        if i < n {
            let m: __mmask16 = (1u16 << (n - i)) - 1;
            let d = _mm512_sub_ps(
                _mm512_maskz_loadu_ps(m, pa.add(i)),
                _mm512_maskz_loadu_ps(m, pb.add(i)),
            );
            acc1 = _mm512_add_ps(acc1, _mm512_abs_ps(d));
        }
        _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1))
    }

    fn sum_abs_diff_avx512(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: reachable only through the detected AVX-512 KernelSet.
        unsafe { sum_abs_diff_avx512_impl(a, b) }
    }

    // ---------------- int8 (AVX2 maddubs + AVX-512 VNNI) ----------------
    //
    // All int8 kernels compute Σ a[k]·b[k] with a: u8 (quantized
    // activations, ≤127 by the quantizer's contract) and b: i8 weights,
    // exactly, in i32. `vpmaddubsw` forms pairwise u8×i8 products and
    // saturates their i16 sum — with a ≤ 127 the pair sum is bounded by
    // 2·127·127 = 32258 < 32767, so saturation is unreachable and the
    // result is the exact integer the scalar reference computes.
    // `vpdpbusd` accumulates u8×i8 quads straight into i32 lanes
    // (no i16 stage at all; VPDPBUSD does not saturate — only the
    // explicit VPDPBUSDS variant does). Integer addition is associative,
    // so every lane split/reorder below preserves bit-exact equality.

    /// Sums the 8 i32 lanes of a 256-bit register.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn hsum256_epi32(v: __m256i) -> i32 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256::<1>(v);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0x4e>(s));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0xb1>(s));
        _mm_cvtsi128_si32(s)
    }

    /// One 32-byte maddubs+madd step: Σ of 32 u8×i8 products as 8 i32s.
    ///
    /// # Safety
    /// Requires AVX2; 32 readable bytes at both pointers.
    #[target_feature(enable = "avx2")]
    unsafe fn madd32(pa: *const u8, pb: *const i8) -> __m256i {
        let m = _mm256_maddubs_epi16(
            _mm256_loadu_si256(pa as *const __m256i),
            _mm256_loadu_si256(pb as *const __m256i),
        );
        _mm256_madd_epi16(m, _mm256_set1_epi16(1))
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn dot_i8_avx2_impl(a: &[u8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut i = 0;
        while i + 64 <= n {
            acc0 = _mm256_add_epi32(acc0, madd32(pa.add(i), pb.add(i)));
            acc1 = _mm256_add_epi32(acc1, madd32(pa.add(i + 32), pb.add(i + 32)));
            i += 64;
        }
        if i + 32 <= n {
            acc0 = _mm256_add_epi32(acc0, madd32(pa.add(i), pb.add(i)));
            i += 32;
        }
        let mut sum = hsum256_epi32(_mm256_add_epi32(acc0, acc1));
        while i < n {
            sum += i32::from(a[i]) * i32::from(b[i]);
            i += 1;
        }
        sum
    }

    fn dot_i8_avx2(a: &[u8], b: &[i8]) -> i32 {
        // SAFETY: reachable only through KernelSets whose constructors
        // verified AVX2 (the avx2 and avx512 sets).
        unsafe { dot_i8_avx2_impl(a, b) }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn dot4_i8_avx2_impl(a: &[u8], b0: &[i8], b1: &[i8], b2: &[i8], b3: &[i8]) -> [i32; 4] {
        let n = a.len();
        let pa = a.as_ptr();
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let ones = _mm256_set1_epi16(1);
        let mut a0 = _mm256_setzero_si256();
        let mut a1 = _mm256_setzero_si256();
        let mut a2 = _mm256_setzero_si256();
        let mut a3 = _mm256_setzero_si256();
        let mut i = 0;
        while i + 32 <= n {
            // Each loaded activation chunk is reused against four weight
            // rows — the register-blocked GEMM inner loop.
            let va = _mm256_loadu_si256(pa.add(i) as *const __m256i);
            let m0 = _mm256_maddubs_epi16(va, _mm256_loadu_si256(p0.add(i) as *const __m256i));
            let m1 = _mm256_maddubs_epi16(va, _mm256_loadu_si256(p1.add(i) as *const __m256i));
            let m2 = _mm256_maddubs_epi16(va, _mm256_loadu_si256(p2.add(i) as *const __m256i));
            let m3 = _mm256_maddubs_epi16(va, _mm256_loadu_si256(p3.add(i) as *const __m256i));
            a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(m0, ones));
            a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(m1, ones));
            a2 = _mm256_add_epi32(a2, _mm256_madd_epi16(m2, ones));
            a3 = _mm256_add_epi32(a3, _mm256_madd_epi16(m3, ones));
            i += 32;
        }
        let mut out = [
            hsum256_epi32(a0),
            hsum256_epi32(a1),
            hsum256_epi32(a2),
            hsum256_epi32(a3),
        ];
        while i < n {
            let av = i32::from(a[i]);
            out[0] += av * i32::from(b0[i]);
            out[1] += av * i32::from(b1[i]);
            out[2] += av * i32::from(b2[i]);
            out[3] += av * i32::from(b3[i]);
            i += 1;
        }
        out
    }

    fn dot4_i8_avx2(a: &[u8], b0: &[i8], b1: &[i8], b2: &[i8], b3: &[i8]) -> [i32; 4] {
        // SAFETY: reachable only through KernelSets whose constructors
        // verified AVX2 (the avx2 and avx512 sets).
        unsafe { dot4_i8_avx2_impl(a, b0, b1, b2, b3) }
    }

    /// # Safety
    /// Requires AVX-512F+BW+VNNI.
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    unsafe fn dot_i8_vnni_impl(a: &[u8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm512_setzero_si512();
        let mut acc1 = _mm512_setzero_si512();
        let mut i = 0;
        while i + 128 <= n {
            acc0 = _mm512_dpbusd_epi32(
                acc0,
                _mm512_loadu_si512(pa.add(i) as *const _),
                _mm512_loadu_si512(pb.add(i) as *const _),
            );
            acc1 = _mm512_dpbusd_epi32(
                acc1,
                _mm512_loadu_si512(pa.add(i + 64) as *const _),
                _mm512_loadu_si512(pb.add(i + 64) as *const _),
            );
            i += 128;
        }
        if i + 64 <= n {
            acc0 = _mm512_dpbusd_epi32(
                acc0,
                _mm512_loadu_si512(pa.add(i) as *const _),
                _mm512_loadu_si512(pb.add(i) as *const _),
            );
            i += 64;
        }
        if i < n {
            let m: __mmask64 = (1u64 << (n - i)) - 1;
            acc1 = _mm512_dpbusd_epi32(
                acc1,
                _mm512_maskz_loadu_epi8(m, pa.add(i) as *const i8),
                _mm512_maskz_loadu_epi8(m, pb.add(i)),
            );
        }
        _mm512_reduce_add_epi32(_mm512_add_epi32(acc0, acc1))
    }

    fn dot_i8_vnni(a: &[u8], b: &[i8]) -> i32 {
        // SAFETY: reachable only through the detected AVX-512 VNNI set.
        unsafe { dot_i8_vnni_impl(a, b) }
    }

    /// # Safety
    /// Requires AVX-512F+BW+VNNI.
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    unsafe fn dot4_i8_vnni_impl(a: &[u8], b0: &[i8], b1: &[i8], b2: &[i8], b3: &[i8]) -> [i32; 4] {
        let n = a.len();
        let pa = a.as_ptr();
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let mut a0 = _mm512_setzero_si512();
        let mut a1 = _mm512_setzero_si512();
        let mut a2 = _mm512_setzero_si512();
        let mut a3 = _mm512_setzero_si512();
        let mut i = 0;
        while i + 64 <= n {
            let va = _mm512_loadu_si512(pa.add(i) as *const _);
            a0 = _mm512_dpbusd_epi32(a0, va, _mm512_loadu_si512(p0.add(i) as *const _));
            a1 = _mm512_dpbusd_epi32(a1, va, _mm512_loadu_si512(p1.add(i) as *const _));
            a2 = _mm512_dpbusd_epi32(a2, va, _mm512_loadu_si512(p2.add(i) as *const _));
            a3 = _mm512_dpbusd_epi32(a3, va, _mm512_loadu_si512(p3.add(i) as *const _));
            i += 64;
        }
        if i < n {
            let m: __mmask64 = (1u64 << (n - i)) - 1;
            let va = _mm512_maskz_loadu_epi8(m, pa.add(i) as *const i8);
            a0 = _mm512_dpbusd_epi32(a0, va, _mm512_maskz_loadu_epi8(m, p0.add(i)));
            a1 = _mm512_dpbusd_epi32(a1, va, _mm512_maskz_loadu_epi8(m, p1.add(i)));
            a2 = _mm512_dpbusd_epi32(a2, va, _mm512_maskz_loadu_epi8(m, p2.add(i)));
            a3 = _mm512_dpbusd_epi32(a3, va, _mm512_maskz_loadu_epi8(m, p3.add(i)));
        }
        [
            _mm512_reduce_add_epi32(a0),
            _mm512_reduce_add_epi32(a1),
            _mm512_reduce_add_epi32(a2),
            _mm512_reduce_add_epi32(a3),
        ]
    }

    fn dot4_i8_vnni(a: &[u8], b0: &[i8], b1: &[i8], b2: &[i8], b3: &[i8]) -> [i32; 4] {
        // SAFETY: reachable only through the detected AVX-512 VNNI set.
        unsafe { dot4_i8_vnni_impl(a, b0, b1, b2, b3) }
    }

    // ---------------- activation quantization ----------------

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn act_range_avx2_impl(x: &[f32]) -> (f32, f32) {
        let n = x.len();
        let p = x.as_ptr();
        let mut vmin = _mm256_set1_ps(f32::INFINITY);
        let mut vmax = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(p.add(i));
            // Operand order matters: vminps/vmaxps return the *second*
            // operand when either input is NaN, so with the data first a
            // NaN element yields the accumulated bound — NaN never enters
            // a lane, exactly the scalar kernel's select semantics.
            // (The reversed order would let a NaN overwrite the lane and
            // then be silently replaced by the next finite chunk, losing
            // real bounds.) ±inf still propagates into the result, where
            // the quantizer's finiteness check catches it.
            vmin = _mm256_min_ps(v, vmin);
            vmax = _mm256_max_ps(v, vmax);
            i += 8;
        }
        let mut lo = [0.0f32; 8];
        let mut hi = [0.0f32; 8];
        _mm256_storeu_ps(lo.as_mut_ptr(), vmin);
        _mm256_storeu_ps(hi.as_mut_ptr(), vmax);
        let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
        for k in 0..8 {
            min = if lo[k] < min { lo[k] } else { min };
            max = if hi[k] > max { hi[k] } else { max };
        }
        while i < n {
            let v = x[i];
            min = if v < min { v } else { min };
            max = if v > max { v } else { max };
            i += 1;
        }
        (min, max)
    }

    fn act_range_avx2(x: &[f32]) -> (f32, f32) {
        // SAFETY: reachable only through AVX2-verified KernelSets.
        unsafe { act_range_avx2_impl(x) }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn act_encode_avx2_impl(x: &[f32], min: f32, inv: f32, out: &mut [u8]) {
        debug_assert_eq!(x.len(), out.len());
        let n = x.len();
        let p = x.as_ptr();
        let po = out.as_mut_ptr();
        let vmin = _mm256_set1_ps(min);
        let vinv = _mm256_set1_ps(inv);
        let half = _mm256_set1_ps(0.5);
        let cap = _mm256_set1_ps(127.0);
        let mut i = 0;
        while i + 16 <= n {
            // Same op sequence as the scalar kernel — sub, mul, add (no
            // FMA), ordered > compare keeping NaN — so codes are bitwise
            // identical.
            let mut t0 = _mm256_add_ps(
                _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(p.add(i)), vmin), vinv),
                half,
            );
            let mut t1 = _mm256_add_ps(
                _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(p.add(i + 8)), vmin), vinv),
                half,
            );
            let m0 = _mm256_cmp_ps::<_CMP_GT_OQ>(t0, cap);
            let m1 = _mm256_cmp_ps::<_CMP_GT_OQ>(t1, cap);
            t0 = _mm256_blendv_ps(t0, cap, m0);
            t1 = _mm256_blendv_ps(t1, cap, m1);
            // Truncate; NaN becomes 0x8000_0000, which the saturating
            // packs (i32→i16: → −32768) then packus (i16→u8: → 0) send to
            // code 0, matching the scalar cast.
            let i0 = _mm256_cvttps_epi32(t0);
            let i1 = _mm256_cvttps_epi32(t1);
            let packed16 = _mm256_permute4x64_epi64::<0b11011000>(_mm256_packs_epi32(i0, i1));
            let packed8 = _mm256_packus_epi16(packed16, packed16);
            let lo = _mm256_castsi256_si128(packed8);
            let hi = _mm256_extracti128_si256::<1>(packed8);
            _mm_storel_epi64(po.add(i) as *mut __m128i, lo);
            _mm_storel_epi64(po.add(i + 8) as *mut __m128i, hi);
            i += 16;
        }
        while i < n {
            let t = (x[i] - min) * inv + 0.5;
            out[i] = if t > 127.0 { 127.0 } else { t } as u8;
            i += 1;
        }
    }

    fn act_encode_avx2(x: &[f32], min: f32, inv: f32, out: &mut [u8]) {
        // SAFETY: reachable only through AVX2-verified KernelSets.
        unsafe { act_encode_avx2_impl(x, min, inv, out) }
    }

    // ---------------- 256-bit AVX-VNNI int8 dots ----------------

    /// # Safety
    /// Requires AVX2+AVX-VNNI.
    #[target_feature(enable = "avx2,avxvnni")]
    unsafe fn dot_i8_avxvnni_impl(a: &[u8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut i = 0;
        while i + 64 <= n {
            acc0 = _mm256_dpbusd_avx_epi32(
                acc0,
                _mm256_loadu_si256(pa.add(i) as *const __m256i),
                _mm256_loadu_si256(pb.add(i) as *const __m256i),
            );
            acc1 = _mm256_dpbusd_avx_epi32(
                acc1,
                _mm256_loadu_si256(pa.add(i + 32) as *const __m256i),
                _mm256_loadu_si256(pb.add(i + 32) as *const __m256i),
            );
            i += 64;
        }
        if i + 32 <= n {
            acc0 = _mm256_dpbusd_avx_epi32(
                acc0,
                _mm256_loadu_si256(pa.add(i) as *const __m256i),
                _mm256_loadu_si256(pb.add(i) as *const __m256i),
            );
            i += 32;
        }
        let mut sum = hsum256_epi32(_mm256_add_epi32(acc0, acc1));
        while i < n {
            sum += i32::from(a[i]) * i32::from(b[i]);
            i += 1;
        }
        sum
    }

    fn dot_i8_avxvnni(a: &[u8], b: &[i8]) -> i32 {
        // SAFETY: reachable only through the detected AVX-VNNI set.
        unsafe { dot_i8_avxvnni_impl(a, b) }
    }

    /// # Safety
    /// Requires AVX2+AVX-VNNI.
    #[target_feature(enable = "avx2,avxvnni")]
    unsafe fn dot4_i8_avxvnni_impl(
        a: &[u8],
        b0: &[i8],
        b1: &[i8],
        b2: &[i8],
        b3: &[i8],
    ) -> [i32; 4] {
        let n = a.len();
        let pa = a.as_ptr();
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let mut a0 = _mm256_setzero_si256();
        let mut a1 = _mm256_setzero_si256();
        let mut a2 = _mm256_setzero_si256();
        let mut a3 = _mm256_setzero_si256();
        let mut i = 0;
        while i + 32 <= n {
            let va = _mm256_loadu_si256(pa.add(i) as *const __m256i);
            a0 = _mm256_dpbusd_avx_epi32(a0, va, _mm256_loadu_si256(p0.add(i) as *const __m256i));
            a1 = _mm256_dpbusd_avx_epi32(a1, va, _mm256_loadu_si256(p1.add(i) as *const __m256i));
            a2 = _mm256_dpbusd_avx_epi32(a2, va, _mm256_loadu_si256(p2.add(i) as *const __m256i));
            a3 = _mm256_dpbusd_avx_epi32(a3, va, _mm256_loadu_si256(p3.add(i) as *const __m256i));
            i += 32;
        }
        let mut out = [
            hsum256_epi32(a0),
            hsum256_epi32(a1),
            hsum256_epi32(a2),
            hsum256_epi32(a3),
        ];
        while i < n {
            let av = i32::from(a[i]);
            out[0] += av * i32::from(b0[i]);
            out[1] += av * i32::from(b1[i]);
            out[2] += av * i32::from(b2[i]);
            out[3] += av * i32::from(b3[i]);
            i += 1;
        }
        out
    }

    fn dot4_i8_avxvnni(a: &[u8], b0: &[i8], b1: &[i8], b2: &[i8], b3: &[i8]) -> [i32; 4] {
        // SAFETY: reachable only through the detected AVX-VNNI set.
        unsafe { dot4_i8_avxvnni_impl(a, b0, b1, b2, b3) }
    }

    // ---------------- fused encode + dot4 ----------------

    /// Encodes 16 floats at `p` to 16 contiguous u8 codes in one __m128i.
    /// Exactly the op sequence of `act_encode_avx2_impl` (sub, mul, add —
    /// no FMA; ordered `>` keeps NaN; truncating cvt; saturating packs
    /// send NaN's 0x8000_0000 to code 0), so codes are bit-identical to
    /// every other encode path.
    ///
    /// # Safety
    /// Requires AVX2; 16 readable floats at `p`.
    #[target_feature(enable = "avx2")]
    unsafe fn encode16(
        p: *const f32,
        vmin: __m256,
        vinv: __m256,
        half: __m256,
        cap: __m256,
    ) -> __m128i {
        let mut t0 = _mm256_add_ps(
            _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(p), vmin), vinv),
            half,
        );
        let mut t1 = _mm256_add_ps(
            _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(p.add(8)), vmin), vinv),
            half,
        );
        let m0 = _mm256_cmp_ps::<_CMP_GT_OQ>(t0, cap);
        let m1 = _mm256_cmp_ps::<_CMP_GT_OQ>(t1, cap);
        t0 = _mm256_blendv_ps(t0, cap, m0);
        t1 = _mm256_blendv_ps(t1, cap, m1);
        let i0 = _mm256_cvttps_epi32(t0);
        let i1 = _mm256_cvttps_epi32(t1);
        let packed16 = _mm256_permute4x64_epi64::<0b11011000>(_mm256_packs_epi32(i0, i1));
        let packed8 = _mm256_packus_epi16(packed16, packed16);
        _mm_unpacklo_epi64(
            _mm256_castsi256_si128(packed8),
            _mm256_extracti128_si256::<1>(packed8),
        )
    }

    /// Shared scalar tail of the fused kernels: encode + accumulate one
    /// element at a time from `i`.
    #[allow(clippy::too_many_arguments)]
    fn encode_dot4_tail(
        i: usize,
        x: &[f32],
        min: f32,
        inv: f32,
        qa: &mut [u8],
        b0: &[i8],
        b1: &[i8],
        b2: &[i8],
        b3: &[i8],
        out: &mut [i32; 4],
    ) {
        for k in i..x.len() {
            let t = (x[k] - min) * inv + 0.5;
            let q = if t > 127.0 { 127.0 } else { t } as u8;
            qa[k] = q;
            let av = i32::from(q);
            out[0] += av * i32::from(b0[k]);
            out[1] += av * i32::from(b1[k]);
            out[2] += av * i32::from(b2[k]);
            out[3] += av * i32::from(b3[k]);
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn encode_dot4_i8_avx2_impl(
        x: &[f32],
        min: f32,
        inv: f32,
        qa: &mut [u8],
        b0: &[i8],
        b1: &[i8],
        b2: &[i8],
        b3: &[i8],
    ) -> [i32; 4] {
        let n = x.len();
        let p = x.as_ptr();
        let pq = qa.as_mut_ptr();
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let vmin = _mm256_set1_ps(min);
        let vinv = _mm256_set1_ps(inv);
        let half = _mm256_set1_ps(0.5);
        let cap = _mm256_set1_ps(127.0);
        let ones = _mm256_set1_epi16(1);
        let mut a0 = _mm256_setzero_si256();
        let mut a1 = _mm256_setzero_si256();
        let mut a2 = _mm256_setzero_si256();
        let mut a3 = _mm256_setzero_si256();
        let mut i = 0;
        while i + 32 <= n {
            let c0 = encode16(p.add(i), vmin, vinv, half, cap);
            let c1 = encode16(p.add(i + 16), vmin, vinv, half, cap);
            let va = _mm256_set_m128i(c1, c0);
            _mm256_storeu_si256(pq.add(i) as *mut __m256i, va);
            let m0 = _mm256_maddubs_epi16(va, _mm256_loadu_si256(p0.add(i) as *const __m256i));
            let m1 = _mm256_maddubs_epi16(va, _mm256_loadu_si256(p1.add(i) as *const __m256i));
            let m2 = _mm256_maddubs_epi16(va, _mm256_loadu_si256(p2.add(i) as *const __m256i));
            let m3 = _mm256_maddubs_epi16(va, _mm256_loadu_si256(p3.add(i) as *const __m256i));
            a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(m0, ones));
            a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(m1, ones));
            a2 = _mm256_add_epi32(a2, _mm256_madd_epi16(m2, ones));
            a3 = _mm256_add_epi32(a3, _mm256_madd_epi16(m3, ones));
            i += 32;
        }
        let mut out = [
            hsum256_epi32(a0),
            hsum256_epi32(a1),
            hsum256_epi32(a2),
            hsum256_epi32(a3),
        ];
        encode_dot4_tail(i, x, min, inv, qa, b0, b1, b2, b3, &mut out);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn encode_dot4_i8_avx2(
        x: &[f32],
        min: f32,
        inv: f32,
        qa: &mut [u8],
        b0: &[i8],
        b1: &[i8],
        b2: &[i8],
        b3: &[i8],
    ) -> [i32; 4] {
        // SAFETY: reachable only through AVX2-verified KernelSets.
        unsafe { encode_dot4_i8_avx2_impl(x, min, inv, qa, b0, b1, b2, b3) }
    }

    /// # Safety
    /// Requires AVX2+AVX-VNNI.
    #[target_feature(enable = "avx2,avxvnni")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn encode_dot4_i8_avxvnni_impl(
        x: &[f32],
        min: f32,
        inv: f32,
        qa: &mut [u8],
        b0: &[i8],
        b1: &[i8],
        b2: &[i8],
        b3: &[i8],
    ) -> [i32; 4] {
        let n = x.len();
        let p = x.as_ptr();
        let pq = qa.as_mut_ptr();
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let vmin = _mm256_set1_ps(min);
        let vinv = _mm256_set1_ps(inv);
        let half = _mm256_set1_ps(0.5);
        let cap = _mm256_set1_ps(127.0);
        let mut a0 = _mm256_setzero_si256();
        let mut a1 = _mm256_setzero_si256();
        let mut a2 = _mm256_setzero_si256();
        let mut a3 = _mm256_setzero_si256();
        let mut i = 0;
        while i + 32 <= n {
            let c0 = encode16(p.add(i), vmin, vinv, half, cap);
            let c1 = encode16(p.add(i + 16), vmin, vinv, half, cap);
            let va = _mm256_set_m128i(c1, c0);
            _mm256_storeu_si256(pq.add(i) as *mut __m256i, va);
            a0 = _mm256_dpbusd_avx_epi32(a0, va, _mm256_loadu_si256(p0.add(i) as *const __m256i));
            a1 = _mm256_dpbusd_avx_epi32(a1, va, _mm256_loadu_si256(p1.add(i) as *const __m256i));
            a2 = _mm256_dpbusd_avx_epi32(a2, va, _mm256_loadu_si256(p2.add(i) as *const __m256i));
            a3 = _mm256_dpbusd_avx_epi32(a3, va, _mm256_loadu_si256(p3.add(i) as *const __m256i));
            i += 32;
        }
        let mut out = [
            hsum256_epi32(a0),
            hsum256_epi32(a1),
            hsum256_epi32(a2),
            hsum256_epi32(a3),
        ];
        encode_dot4_tail(i, x, min, inv, qa, b0, b1, b2, b3, &mut out);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn encode_dot4_i8_avxvnni(
        x: &[f32],
        min: f32,
        inv: f32,
        qa: &mut [u8],
        b0: &[i8],
        b1: &[i8],
        b2: &[i8],
        b3: &[i8],
    ) -> [i32; 4] {
        // SAFETY: reachable only through the detected AVX-VNNI set.
        unsafe { encode_dot4_i8_avxvnni_impl(x, min, inv, qa, b0, b1, b2, b3) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_set_is_the_reference_path() {
        let ks = KernelSet::scalar();
        assert_eq!(ks.name, "scalar");
        // The scalar dot is bitwise the documented lane-blocked reference.
        let a: Vec<f32> = (0..37).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32 * 0.91).cos()).collect();
        let mut lanes = [0.0f32; LANES];
        for (xa, xb) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)) {
            for i in 0..LANES {
                lanes[i] += xa[i] * xb[i];
            }
        }
        let mut expect: f32 = lanes.iter().sum();
        for i in (a.len() / LANES * LANES)..a.len() {
            expect += a[i] * b[i];
        }
        assert_eq!(ks.dot(&a, &b), expect);
    }

    #[test]
    fn force_scalar_env_parsing() {
        assert!(!env_forces_scalar(None));
        assert!(!env_forces_scalar(Some("")));
        assert!(!env_forces_scalar(Some("0")));
        assert!(!env_forces_scalar(Some("false")));
        assert!(!env_forces_scalar(Some("FALSE")));
        assert!(env_forces_scalar(Some("1")));
        assert!(env_forces_scalar(Some("true")));
        assert!(env_forces_scalar(Some("yes")));
    }

    #[test]
    fn selection_honors_scalar_override() {
        assert_eq!(
            select(true, None).name,
            "scalar",
            "override must force scalar"
        );
        assert_eq!(select(true, Some("avx512")).name, "scalar");
        let best = select(false, None);
        if KernelSet::avx512vnni().is_some() {
            assert_eq!(best.name, "avx512vnni");
        } else if KernelSet::avx512().is_some() {
            assert_eq!(best.name, "avx512");
        } else if KernelSet::avxvnni().is_some() {
            assert_eq!(best.name, "avxvnni");
        } else if KernelSet::avx2().is_some() {
            assert_eq!(best.name, "avx2");
        } else {
            assert_eq!(best.name, "scalar");
        }
    }

    #[test]
    fn selection_honors_requested_set() {
        assert_eq!(select(false, Some("scalar")).name, "scalar");
        if let Some(avx2) = KernelSet::avx2() {
            assert_eq!(select(false, Some("avx2")).name, avx2.name);
        }
        if let Some(avxvnni) = KernelSet::avxvnni() {
            assert_eq!(select(false, Some("avxvnni")).name, avxvnni.name);
        }
        if let Some(avx512) = KernelSet::avx512() {
            assert_eq!(select(false, Some("avx512")).name, avx512.name);
        }
        if let Some(vnni) = KernelSet::avx512vnni() {
            assert_eq!(select(false, Some("avx512vnni")).name, vnni.name);
        }
        // Unknown requests fall back to the normal ladder, never crash.
        let fallback = select(false, Some("neon"));
        assert_eq!(fallback.name, select(false, None).name);
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn mismatched_dot_lengths_panic_not_ub() {
        // The SIMD bodies size raw-pointer loads by `a.len()`; the public
        // wrapper must reject mismatches in release builds too.
        let _ = KernelSet::active().dot(&[1.0; 16], &[1.0; 8]);
    }

    #[test]
    #[should_panic(expected = "gru_gates shape mismatch")]
    fn mismatched_gate_shapes_panic_not_ub() {
        let (mut h, mut z, mut r) = (vec![0.0f32; 8], vec![0.0f32; 4], vec![0.0f32; 8]);
        KernelSet::active().gru_gates(&[0.0; 24], &[0.0; 24], &mut h, &mut z, &mut r);
    }

    #[test]
    fn available_always_includes_scalar() {
        let sets = KernelSet::available();
        assert_eq!(sets[0].name, "scalar");
        assert!(sets.len() <= 5);
    }

    /// Int8 dots are exact integer arithmetic, so every available set must
    /// agree with the scalar reference **bit for bit** — including the
    /// extremes of the quantization contract (a = 127, b = ±127) where a
    /// saturating maddubs implementation would diverge.
    #[test]
    fn int8_kernels_are_exact_at_contract_extremes() {
        for n in [0usize, 1, 7, 31, 32, 33, 63, 64, 65, 127, 128, 130] {
            let a: Vec<u8> = (0..n)
                .map(|i| if i % 3 == 0 { 127 } else { (i % 128) as u8 })
                .collect();
            let mk = |s: usize| -> Vec<i8> {
                (0..n)
                    .map(|i| match (i + s) % 4 {
                        0 => 127,
                        1 => -127,
                        2 => ((i * 37 + s) % 255) as i8,
                        _ => -(((i * 13 + s) % 128) as i8),
                    })
                    .collect()
            };
            let (b0, b1, b2, b3) = (mk(0), mk(1), mk(2), mk(3));
            let scalar = KernelSet::scalar();
            let want = scalar.dot_i8(&a, &b0);
            let want4 = scalar.dot4_i8(&a, &b0, &b1, &b2, &b3);
            for ks in KernelSet::available() {
                assert_eq!(ks.dot_i8(&a, &b0), want, "{} dot_i8 n={n}", ks.name);
                assert_eq!(
                    ks.dot4_i8(&a, &b0, &b1, &b2, &b3),
                    want4,
                    "{} dot4_i8 n={n}",
                    ks.name
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "dot_i8 length mismatch")]
    fn mismatched_i8_lengths_panic_not_ub() {
        let _ = KernelSet::active().dot_i8(&[1u8; 16], &[1i8; 8]);
    }

    /// The fused encode+dot kernel must be bit-identical to its unfused
    /// composition (`act_encode` then `dot4_i8`) on every set — codes and
    /// dots both — including NaN elements (code 0), values past the cap
    /// (code 127) and every tail length.
    #[test]
    fn fused_encode_dot4_matches_unfused_composition() {
        for n in [0usize, 1, 5, 16, 31, 32, 33, 37, 63, 64, 65, 96, 130] {
            let mut x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() * 2.0).collect();
            if n > 5 {
                x[5] = f32::NAN;
            }
            if n > 7 {
                x[7] = 10.0; // past the cap once scaled
            }
            let mk = |s: usize| -> Vec<i8> {
                (0..n)
                    .map(|i| (((i * 37 + s * 13) % 255) as i16 - 127) as i8)
                    .collect()
            };
            let (b0, b1, b2, b3) = (mk(0), mk(1), mk(2), mk(3));
            let (min, inv) = (-1.0f32, 50.0f32);
            let mut want_qa = vec![0u8; n];
            KernelSet::scalar().act_encode(&x, min, inv, &mut want_qa);
            let want = KernelSet::scalar().dot4_i8(&want_qa, &b0, &b1, &b2, &b3);
            for ks in KernelSet::available() {
                let mut qa = vec![0xffu8; n];
                let got = ks.encode_dot4_i8(&x, min, inv, &mut qa, &b0, &b1, &b2, &b3);
                assert_eq!(qa, want_qa, "{} codes n={n}", ks.name);
                assert_eq!(got, want, "{} dots n={n}", ks.name);
            }
        }
    }

    /// Every set's range scan must agree with scalar — including rows
    /// where a NaN sits mid-lane between the real extrema. Regression
    /// test: `vminps(vmin, v)` (accumulator first) lets a NaN overwrite a
    /// lane's bound and the next finite chunk then hides the NaN, losing
    /// real extrema; the data-first operand order keeps NaN out entirely.
    #[test]
    fn act_range_ignores_nan_without_losing_bounds() {
        let mut x = vec![1.0f32; 24];
        x[0] = 3.0; // real max, lane 0, first chunk
        x[8] = f32::NAN; // same lane, second chunk
        x[16] = 0.5; // same lane, third chunk — real min
        for ks in KernelSet::available() {
            assert_eq!(ks.act_range(&x), (0.5, 3.0), "{}", ks.name);
        }
        // All-NaN and ±inf rows must surface non-finite bounds so the
        // quantizer takes its filtering fallback.
        let nan_row = [f32::NAN; 9];
        let inf_row = [1.0, f32::INFINITY, 2.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        for ks in KernelSet::available() {
            let (lo, hi) = ks.act_range(&nan_row);
            assert!(!lo.is_finite() && !hi.is_finite(), "{}", ks.name);
            let (_, hi) = ks.act_range(&inf_row);
            assert!(!hi.is_finite(), "{}", ks.name);
        }
    }

    /// Every set's encode must emit bit-identical codes, NaN handling
    /// included (NaN → code 0).
    #[test]
    fn act_encode_is_bit_identical_across_sets() {
        let mut x: Vec<f32> = (0..37).map(|i| (i as f32 * 0.37).sin()).collect();
        x[5] = f32::NAN;
        let (min, inv) = (-1.0f32, 50.0f32);
        let mut want = vec![0u8; x.len()];
        KernelSet::scalar().act_encode(&x, min, inv, &mut want);
        assert_eq!(want[5], 0, "NaN must encode to code 0");
        for ks in KernelSet::available() {
            let mut got = vec![0xffu8; x.len()];
            ks.act_encode(&x, min, inv, &mut got);
            assert_eq!(got, want, "{}", ks.name);
        }
    }

    /// Saturation and extreme inputs through every available gate kernel:
    /// huge pre-activations must produce exactly-saturated gates, never
    /// NaN/inf (the vector exp clamps instead of overflowing).
    #[test]
    fn gate_kernels_saturate_cleanly() {
        for ks in KernelSet::available() {
            for &v in &[-1e4f32, -100.0, -20.0, 0.0, 20.0, 100.0, 1e4] {
                let hidden = 16;
                let xp = vec![v; 3 * hidden];
                let up = vec![0.0f32; 3 * hidden];
                let mut h = vec![0.25f32; hidden];
                let mut z = vec![0.0f32; hidden];
                let mut r = vec![0.0f32; hidden];
                ks.gru_gates(&xp, &up, &mut h, &mut z, &mut r);
                for i in 0..hidden {
                    assert!(
                        z[i].is_finite() && (0.0..=1.0).contains(&z[i]),
                        "{} z {v}",
                        ks.name
                    );
                    assert!(
                        r[i].is_finite() && (0.0..=1.0).contains(&r[i]),
                        "{} r {v}",
                        ks.name
                    );
                    assert!(
                        h[i].is_finite() && h[i].abs() <= 1.0 + 1e-6,
                        "{} h {v}",
                        ks.name
                    );
                    let want_z = crate::sigmoid(v);
                    assert!(
                        (z[i] - want_z).abs() < 1e-6,
                        "{} z {v}: {} vs {want_z}",
                        ks.name,
                        z[i]
                    );
                }
            }
        }
    }
}
