//! Dense autoencoder trained with L1 reconstruction loss (paper Eq. 3).

use crate::dense::{Activation, Dense, DenseGrads, DenseTrace};
use crate::{Adam, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoencoderConfig {
    /// Neuron counts per layer, input first, output last. The paper's CLAP
    /// autoencoder is 7 layers with a 345-wide input and a 40-wide
    /// bottleneck; [`AutoencoderConfig::clap_paper`] builds exactly that.
    pub layer_sizes: Vec<usize>,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    pub seed: u64,
}

impl AutoencoderConfig {
    /// The paper's CLAP autoencoder shape (Table 6): 7 layers, input 345,
    /// bottleneck 40.
    pub fn clap_paper(input: usize) -> Self {
        AutoencoderConfig {
            layer_sizes: vec![input, 192, 96, 40, 96, 192, input],
            epochs: 60,
            batch_size: 64,
            learning_rate: 1e-3,
            seed: 0xae,
        }
    }

    /// Baseline #1's smaller shape (Table 6): 3 layers, bottleneck 5.
    pub fn baseline1(input: usize) -> Self {
        AutoencoderConfig {
            layer_sizes: vec![input, 5, input],
            epochs: 300,
            batch_size: 64,
            learning_rate: 3e-3,
            seed: 0xb1,
        }
    }
}

/// A stack of dense layers trained to reproduce its input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Autoencoder {
    pub(crate) layers: Vec<Dense>,
}

/// Ping-pong activation buffers for [`Autoencoder::forward_into`]. Reuse
/// one per scoring session; buffers grow to the largest batch seen. The
/// same workspace also serves the int8 engine
/// ([`crate::quant::QuantAutoencoder`]), which additionally uses the
/// quantized-activation scratch row.
#[derive(Debug, Clone, Default)]
pub struct AeWorkspace {
    pub(crate) bufs: [Matrix; 2],
    /// Quantized-activation scratch for the int8 engine; unused on f32.
    pub(crate) qa: Vec<u8>,
}

impl AeWorkspace {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Autoencoder {
    /// Builds the network: tanh on hidden layers, linear output.
    pub fn new(layer_sizes: &[usize], seed: u64) -> Self {
        assert!(
            layer_sizes.len() >= 3,
            "need at least input/bottleneck/output"
        );
        assert_eq!(
            layer_sizes.first(),
            layer_sizes.last(),
            "autoencoder output must match input"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = layer_sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == layer_sizes.len() {
                    Activation::Linear
                } else {
                    Activation::Tanh
                };
                Dense::new(w[0], w[1], act, &mut rng)
            })
            .collect();
        Autoencoder { layers }
    }

    /// Input dimensionality.
    pub fn input_size(&self) -> usize {
        self.layers[0].input_size()
    }

    /// Reconstruction for a batch (rows = samples).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut ws = AeWorkspace::new();
        self.forward_into(x, &mut ws).clone()
    }

    /// Batched reconstruction through ping-ponged workspace buffers: the
    /// whole GEMM chain runs with zero allocation once `ws` has grown.
    /// Returns the output buffer (valid until the next call with `ws`).
    pub fn forward_into<'w>(&self, x: &Matrix, ws: &'w mut AeWorkspace) -> &'w Matrix {
        debug_assert!(!self.layers.is_empty());
        let [a, b] = &mut ws.bufs;
        self.layers[0].forward_into(x, a);
        let mut flip = false; // output currently in `a`
        for layer in &self.layers[1..] {
            let (src, dst) = if flip { (&*b, &mut *a) } else { (&*a, &mut *b) };
            layer.forward_into(src, dst);
            flip = !flip;
        }
        if flip {
            &ws.bufs[1]
        } else {
            &ws.bufs[0]
        }
    }

    /// Mean absolute reconstruction error per row — CLAP's anomaly signal.
    pub fn reconstruction_errors(&self, x: &Matrix) -> Vec<f32> {
        let mut ws = AeWorkspace::new();
        let mut out = Vec::new();
        self.reconstruction_errors_into(x, &mut ws, &mut out);
        out
    }

    /// Allocation-free batched variant of
    /// [`reconstruction_errors`](Self::reconstruction_errors): appends one
    /// error per row of `x` to `out`.
    pub fn reconstruction_errors_into(&self, x: &Matrix, ws: &mut AeWorkspace, out: &mut Vec<f32>) {
        let y = self.forward_into(x, ws);
        let ks = crate::simd::KernelSet::active();
        out.reserve(x.rows);
        for r in 0..x.rows {
            let err = ks.sum_abs_diff(x.row(r), y.row(r));
            out.push(err / x.cols as f32);
        }
    }

    /// Reconstruction error for a single vector.
    pub fn reconstruction_error(&self, x: &[f32]) -> f32 {
        let m = Matrix::from_vec(1, x.len(), x.to_vec());
        self.reconstruction_errors(&m)[0]
    }

    /// Seed-era reconstruction path, frozen on the naive GEMM kernel with
    /// one fresh matrix per layer — the pre-fusion baseline for
    /// equivalence tests and before/after benchmarking.
    pub fn reconstruction_errors_unfused(&self, x: &Matrix) -> Vec<f32> {
        use crate::matrix::naive;
        let mut cur = x.clone();
        for layer in &self.layers {
            let mut y = naive::matmul_nt(&cur, &layer.w);
            for r in 0..y.rows {
                let row = y.row_mut(r);
                for (v, &bias) in row.iter_mut().zip(&layer.b) {
                    *v = layer.activation.apply(*v + bias);
                }
            }
            cur = y;
        }
        (0..x.rows)
            .map(|r| {
                let xr = x.row(r);
                let yr = cur.row(r);
                xr.iter().zip(yr).map(|(a, b)| (a - b).abs()).sum::<f32>() / x.cols as f32
            })
            .collect()
    }

    /// Trains on `data` (rows = samples); returns the mean L1 loss per
    /// epoch.
    pub fn train(&mut self, data: &Matrix, cfg: &AutoencoderConfig) -> Vec<f32> {
        assert_eq!(data.cols, self.input_size(), "training data width mismatch");
        // Shuffling RNG decorrelated from weight-init RNG, still deterministic.
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7321_9afe_11d3_0042);
        let mut opts: Vec<(Adam, Adam)> = self
            .layers
            .iter()
            .map(|l| {
                (
                    Adam::new(l.w.data.len(), cfg.learning_rate),
                    Adam::new(l.b.len(), cfg.learning_rate),
                )
            })
            .collect();

        let n = data.rows;
        let mut order: Vec<usize> = (0..n).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);

        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut total_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let batch = gather_rows(data, chunk);
                let (loss, grads) = self.batch_grads(&batch);
                total_loss += loss as f64;
                batches += 1;
                for ((layer, (ow, ob)), g) in
                    self.layers.iter_mut().zip(opts.iter_mut()).zip(&grads)
                {
                    let (wp, bp) = layer.params_mut();
                    ow.step(wp, &g.dw.data);
                    ob.step(bp, &g.db);
                }
            }
            epoch_losses.push((total_loss / batches.max(1) as f64) as f32);
        }
        epoch_losses
    }

    /// Forward + backward for one batch under L1 loss; returns the mean
    /// loss and per-layer gradients.
    fn batch_grads(&self, batch: &Matrix) -> (f32, Vec<DenseGrads>) {
        let mut traces: Vec<DenseTrace> = Vec::with_capacity(self.layers.len());
        let mut cur = batch.clone();
        for layer in &self.layers {
            let tr = layer.forward_trace(&cur);
            cur = tr.output.clone();
            traces.push(tr);
        }
        // L1 loss: mean |out - in|; gradient = sign / (rows * cols).
        let out = &traces.last().unwrap().output;
        let scale = 1.0 / (batch.rows * batch.cols) as f32;
        let mut loss = 0.0f32;
        let mut dy = Matrix::zeros(out.rows, out.cols);
        for i in 0..out.data.len() {
            let diff = out.data[i] - batch.data[i];
            loss += diff.abs();
            dy.data[i] = diff.signum() * scale;
        }
        loss *= scale;

        let mut grads = vec![None; self.layers.len()];
        let mut grad_in = dy;
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let (dx, g) = layer.backward(&traces[i], grad_in);
            grads[i] = Some(g);
            grad_in = dx;
        }
        (loss, grads.into_iter().map(Option::unwrap).collect())
    }
}

/// Collects the given rows of `data` into a new matrix.
pub fn gather_rows(data: &Matrix, rows: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(rows.len(), data.cols);
    for (i, &r) in rows.iter().enumerate() {
        out.row_mut(i).copy_from_slice(data.row(r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic data living on a 2-D manifold inside 8-D space.
    fn manifold_data(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, 8);
        for i in 0..n {
            let a = (i as f32 * 0.7).sin();
            let b = (i as f32 * 0.3).cos();
            let row = m.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v = match j % 4 {
                    0 => a,
                    1 => b,
                    2 => a * b,
                    _ => 0.5 * a - 0.25 * b,
                };
            }
        }
        m
    }

    #[test]
    fn training_reduces_loss() {
        let data = manifold_data(256);
        let cfg = AutoencoderConfig {
            layer_sizes: vec![8, 6, 3, 6, 8],
            epochs: 40,
            batch_size: 32,
            learning_rate: 3e-3,
            seed: 5,
        };
        let mut ae = Autoencoder::new(&cfg.layer_sizes, cfg.seed);
        let losses = ae.train(&data, &cfg);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss did not halve: {:?} -> {:?}",
            losses[0],
            losses.last().unwrap()
        );
    }

    #[test]
    fn anomalies_score_higher_than_inliers() {
        let data = manifold_data(512);
        let cfg = AutoencoderConfig {
            layer_sizes: vec![8, 6, 2, 6, 8],
            epochs: 60,
            batch_size: 32,
            learning_rate: 3e-3,
            seed: 6,
        };
        let mut ae = Autoencoder::new(&cfg.layer_sizes, cfg.seed);
        ae.train(&data, &cfg);
        let inlier_err: f32 =
            ae.reconstruction_errors(&data).iter().sum::<f32>() / data.rows as f32;
        // Off-manifold point: break the j%4 structure.
        let anomaly = vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let anom_err = ae.reconstruction_error(&anomaly);
        assert!(
            anom_err > inlier_err * 2.0,
            "anomaly {anom_err} vs inlier {inlier_err}"
        );
    }

    #[test]
    fn reconstruction_error_nonnegative_and_finite() {
        let ae = Autoencoder::new(&[4, 3, 4], 1);
        let e = ae.reconstruction_error(&[0.1, 0.2, 0.3, 0.4]);
        assert!(e.is_finite() && e >= 0.0);
    }

    #[test]
    fn serde_round_trip_preserves_behaviour() {
        let data = manifold_data(64);
        let cfg = AutoencoderConfig {
            layer_sizes: vec![8, 4, 8],
            epochs: 5,
            batch_size: 16,
            learning_rate: 1e-3,
            seed: 9,
        };
        let mut ae = Autoencoder::new(&cfg.layer_sizes, cfg.seed);
        ae.train(&data, &cfg);
        let json = serde_json::to_string(&ae).unwrap();
        let back: Autoencoder = serde_json::from_str(&json).unwrap();
        let x = vec![0.3f32; 8];
        assert_eq!(ae.reconstruction_error(&x), back.reconstruction_error(&x));
    }

    #[test]
    #[should_panic(expected = "output must match input")]
    fn mismatched_shape_rejected() {
        let _ = Autoencoder::new(&[8, 4, 7], 0);
    }
}
