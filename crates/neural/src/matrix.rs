//! Row-major `f32` matrices with the GEMM variants backprop needs, plus
//! the allocation-free `*_into` kernels the inference engine runs on.
//!
//! The hot inner loops (the dot products behind [`Matrix::matvec_into`] /
//! [`Matrix::matmul_nt_into`], the axpy updates behind the nn/tn GEMMs)
//! all route through the runtime-dispatched [`KernelSet`]: explicit
//! AVX2+FMA / AVX-512 intrinsic kernels where the CPU supports them, a
//! safe scalar reference otherwise — no `-C target-cpu=native` required.
//! The 4-row register block in the nt-GEMM reuses each loaded slice of
//! `A` against four rows of `B`.

use crate::simd::KernelSet;
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Minimum number of output elements before a GEMM is worth parallelizing.
/// A sub-millisecond kernel call cannot amortize fan-out (the stand-in
/// pool spawns scoped threads per call, and even a real pool allocates
/// job state), and the streaming scorer's micro-batch flushes — tens of
/// rows against the CLAP layer widths, a few thousand output elements —
/// must stay on the serial path to keep the flush allocation-free at
/// steady state (pinned by `clap-core/tests/alloc.rs`). Training and
/// full-capture batch scoring run thousands of rows and clear this
/// threshold by orders of magnitude.
const PAR_THRESHOLD: usize = 256 * 256;

/// Bytes of `B` one nt-GEMM tile targets. Half a typical 256 KiB L2, so
/// the tile plus the streamed rows of `A` and written rows of `C` stay
/// resident while every row of the `A` block re-reads it.
const NT_TILE_BYTES: usize = 128 * 1024;

/// Rows of `A` (and `C`) one nt-GEMM task owns. Small enough that the
/// block's `A` rows stay cached alongside the `B` tile; large enough that
/// each `B` tile loaded from memory is reused many times.
const NT_ROW_BLOCK: usize = 16;

/// Rows of `B` per L2 tile for a given row width. Always a multiple of 4:
/// the dot4 register blocking then groups exactly the same row quadruples
/// as an untiled pass, which keeps the tiled GEMM **bitwise identical** to
/// the untiled one (and therefore to row-by-row [`Matrix::matvec_into`]).
fn nt_tile_rows(cols: usize) -> usize {
    let rows = NT_TILE_BYTES / (cols.max(1) * std::mem::size_of::<f32>());
    (rows & !3).max(4)
}

/// Dense dot product (`a·b`) through the dispatched kernel set.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    KernelSet::active().dot(a, b)
}

/// One output row of `C = A · Bᵀ`: `crow[j] = arow · b.row(j)`, blocked
/// four rows of `B` at a time. Shared by [`Matrix::matvec_into`] and
/// [`Matrix::matmul_nt_into`] so a one-row GEMM is bitwise identical to a
/// matvec — the invariant that keeps streaming (step-at-a-time) scoring
/// exactly equal to batched runs.
#[inline]
fn nt_row(ks: &KernelSet, arow: &[f32], b: &Matrix, crow: &mut [f32]) {
    nt_row_span(ks, arow, b, 0, crow);
}

/// The `B`-rows `[j0, j0 + cseg.len())` slice of one output row:
/// `cseg[j - j0] = arow · b.row(j)`. `j0` must be a multiple of 4 so the
/// dot4 quadruples line up with the untiled grouping (see
/// [`nt_tile_rows`]); [`nt_row`] is the `j0 = 0`, full-width case.
#[inline]
fn nt_row_span(ks: &KernelSet, arow: &[f32], b: &Matrix, j0: usize, cseg: &mut [f32]) {
    debug_assert_eq!(j0 % 4, 0);
    let len = cseg.len();
    let mut j = 0;
    while j + 4 <= len {
        let out = ks.dot4(
            arow,
            b.row(j0 + j),
            b.row(j0 + j + 1),
            b.row(j0 + j + 2),
            b.row(j0 + j + 3),
        );
        cseg[j..j + 4].copy_from_slice(&out);
        j += 4;
    }
    let done = j;
    for (j, cv) in cseg.iter_mut().enumerate().skip(done) {
        *cv = ks.dot(arow, b.row(j0 + j));
    }
}

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Default for Matrix {
    /// An empty (0×0) matrix; workspaces start here and grow on first use.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a closure over (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing buffer (must have `rows * cols` elements).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization for a layer mapping `cols`
    /// inputs to `rows` outputs.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..bound))
    }

    /// Immutable row view.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row view.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor (row, col).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter (row, col).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Reshapes in place, reusing the existing allocation. Contents are
    /// unspecified afterwards (callers overwrite); grows the buffer only
    /// when the new shape needs more room than any previous one.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix–vector product `y = self · x` (self: m×n, x: n).
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// In-place matrix–vector product `y = self · x` (self: m×n, x: n,
    /// y: m). The inference engine's workhorse: no allocation.
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        nt_row(KernelSet::active(), x, self, y);
    }

    /// Transposed matrix–vector product `y = selfᵀ · x` (self: m×n, x: m).
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        debug_assert_eq!(x.len(), self.rows);
        let ks = KernelSet::active();
        let mut y = vec![0.0; self.cols];
        for (r, &xv) in x.iter().enumerate() {
            if xv != 0.0 {
                ks.axpy(&mut y, self.row(r), xv);
            }
        }
        y
    }

    /// Rank-1 update `self += alpha · u · vᵀ` (u: rows, v: cols).
    pub fn add_outer(&mut self, u: &[f32], v: &[f32], alpha: f32) {
        debug_assert_eq!(u.len(), self.rows);
        debug_assert_eq!(v.len(), self.cols);
        let ks = KernelSet::active();
        for (r, &uv) in u.iter().enumerate() {
            let s = alpha * uv;
            if s != 0.0 {
                ks.axpy(self.row_mut(r), v, s);
            }
        }
    }

    /// `C = A · B` (A: m×k, B: k×n).
    pub fn matmul_nn(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows, b.cols);
        Matrix::matmul_nn_into(a, b, &mut c);
        c
    }

    /// In-place `C = A · B`, reusing `c`'s allocation.
    pub fn matmul_nn_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
        assert_eq!(a.cols, b.rows, "nn shape mismatch");
        c.resize(a.rows, b.cols);
        let ks = KernelSet::active();
        let kernel = |(i, crow): (usize, &mut [f32])| {
            crow.fill(0.0);
            for k in 0..a.cols {
                let aik = a.get(i, k);
                if aik != 0.0 {
                    ks.axpy(crow, b.row(k), aik);
                }
            }
        };
        if c.data.len() >= PAR_THRESHOLD {
            c.data
                .par_chunks_mut(b.cols.max(1))
                .enumerate()
                .for_each(kernel);
        } else {
            c.data
                .chunks_mut(b.cols.max(1))
                .enumerate()
                .for_each(kernel);
        }
    }

    /// `C = A · Bᵀ` (A: m×k, B: n×k) — the forward pass `X · Wᵀ`.
    pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows, b.rows);
        Matrix::matmul_nt_into(a, b, &mut c);
        c
    }

    /// In-place `C = A · Bᵀ`, reusing `c`'s allocation. Register-blocked
    /// (each loaded slice of `A` feeds four rows of `B`) and **L2-tiled**:
    /// `B` is walked in [`nt_tile_rows`]-row tiles with all rows of an
    /// [`NT_ROW_BLOCK`]-row `A` block driven through each tile before the
    /// next is touched, so a `B` larger than L2 is streamed from memory
    /// once per block instead of once per row of `A`. Tiles are multiples
    /// of 4 rows, which makes the tiled result bitwise identical to the
    /// untiled (per-row matvec) order — pinned by the matrix proptests.
    pub fn matmul_nt_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
        assert_eq!(a.cols, b.cols, "nt shape mismatch");
        c.resize(a.rows, b.rows);
        if c.data.is_empty() {
            return;
        }
        let ks = KernelSet::active();
        let tile = nt_tile_rows(b.cols);
        let kernel = |(block, cblock): (usize, &mut [f32])| {
            let a0 = block * NT_ROW_BLOCK;
            let mut j0 = 0;
            while j0 < b.rows {
                let j1 = (j0 + tile).min(b.rows);
                for (di, crow) in cblock.chunks_mut(b.rows).enumerate() {
                    nt_row_span(ks, a.row(a0 + di), b, j0, &mut crow[j0..j1]);
                }
                j0 = j1;
            }
        };
        let block_elems = (b.rows * NT_ROW_BLOCK).max(1);
        if c.data.len() >= PAR_THRESHOLD {
            c.data
                .par_chunks_mut(block_elems)
                .enumerate()
                .for_each(kernel);
        } else {
            c.data.chunks_mut(block_elems).enumerate().for_each(kernel);
        }
    }

    /// `C = Aᵀ · B` (A: k×m, B: k×n) — the weight gradient `dYᵀ · X`.
    pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows, b.rows, "tn shape mismatch");
        let ks = KernelSet::active();
        let mut c = Matrix::zeros(a.cols, b.cols);
        for k in 0..a.rows {
            let arow = a.row(k);
            let brow = b.row(k);
            for (i, &av) in arow.iter().enumerate() {
                if av != 0.0 {
                    ks.axpy(c.row_mut(i), brow, av);
                }
            }
        }
        c
    }

    /// Adds another matrix elementwise.
    pub fn add_assign(&mut self, other: &Matrix) {
        debug_assert_eq!(self.data.len(), other.data.len());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// The seed-era kernels, frozen verbatim. These are the **pre-fusion
/// baseline**: sequential-sum inner loops whose loop-carried dependency
/// blocks vectorization. They exist so equivalence tests have an
/// independent oracle and so `exp_throughput` can measure the fused
/// engine against exactly what this PR replaced. Not used in production.
pub mod naive {
    use super::Matrix;

    /// Seed implementation of `Matrix::matvec`.
    pub fn matvec(m: &Matrix, x: &[f32]) -> Vec<f32> {
        debug_assert_eq!(x.len(), m.cols);
        (0..m.rows)
            .map(|r| m.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Seed implementation of `Matrix::matmul_nt`.
    pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols, b.cols, "nt shape mismatch");
        let mut c = Matrix::zeros(a.rows, b.rows);
        for i in 0..a.rows {
            let arow = a.row(i);
            let crow = c.row_mut(i);
            for (j, cv) in crow.iter_mut().enumerate() {
                *cv = arow.iter().zip(b.row(j)).map(|(x, y)| x * y).sum();
            }
        }
        c
    }
}

/// Elementwise vector helpers used by the recurrent cells.
pub mod vecops {
    /// `a += b`.
    pub fn add_assign(a: &mut [f32], b: &[f32]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
    }

    /// Elementwise product into a new vector.
    pub fn hadamard(a: &[f32], b: &[f32]) -> Vec<f32> {
        a.iter().zip(b).map(|(x, y)| x * y).collect()
    }

    /// Dot product.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matvec_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn gemm_variants_agree_with_naive() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.5 - 2.0);
        let b = Matrix::from_fn(3, 5, |r, c| (r as f32 - c as f32) * 0.25);
        let c = Matrix::matmul_nn(&a, &b);
        for i in 0..4 {
            for j in 0..5 {
                let expect: f32 = (0..3).map(|k| a.get(i, k) * b.get(k, j)).sum();
                assert!((c.get(i, j) - expect).abs() < 1e-5);
            }
        }
        // nt: A (4x3) · Bt where B (5x3)
        let b2 = Matrix::from_fn(5, 3, |r, c| (r + 2 * c) as f32 * 0.1);
        let c2 = Matrix::matmul_nt(&a, &b2);
        for i in 0..4 {
            for j in 0..5 {
                let expect: f32 = (0..3).map(|k| a.get(i, k) * b2.get(j, k)).sum();
                assert!((c2.get(i, j) - expect).abs() < 1e-5);
            }
        }
        // tn: At (3x4) · B3 (4x2)
        let b3 = Matrix::from_fn(4, 2, |r, c| (r as f32 + 1.0) * (c as f32 - 0.5));
        let c3 = Matrix::matmul_tn(&a, &b3);
        for i in 0..3 {
            for j in 0..2 {
                let expect: f32 = (0..4).map(|k| a.get(k, i) * b3.get(k, j)).sum();
                assert!((c3.get(i, j) - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn large_gemm_parallel_path_matches_serial() {
        let a = Matrix::from_fn(80, 70, |r, c| ((r * 7 + c * 13) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(70, 90, |r, c| ((r * 3 + c * 5) % 7) as f32 - 3.0);
        let c = Matrix::matmul_nn(&a, &b); // hits the parallel path
        for &(i, j) in &[(0, 0), (79, 89), (40, 45), (13, 71)] {
            let expect: f32 = (0..70).map(|k| a.get(i, k) * b.get(k, j)).sum();
            assert!((c.get(i, j) - expect).abs() < 1e-3);
        }
    }

    #[test]
    fn outer_product_update() {
        let mut w = Matrix::zeros(2, 3);
        w.add_outer(&[1.0, 2.0], &[3.0, 4.0, 5.0], 0.5);
        assert_eq!(w.data, vec![1.5, 2.0, 2.5, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn xavier_within_bounds() {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let w = Matrix::xavier(10, 20, &mut rng);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(w.data.iter().all(|v| v.abs() <= bound));
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_size_checked() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn nt_tile_rows_is_a_multiple_of_four() {
        for cols in [1usize, 3, 32, 64, 345, 1024, 100_000] {
            let t = nt_tile_rows(cols);
            assert_eq!(t % 4, 0, "cols {cols}: tile {t}");
            assert!(t >= 4);
        }
        // Paper-scale AE widths produce tiles that genuinely subdivide B.
        assert!(nt_tile_rows(345) < 192 + 345);
    }

    /// The L2-tiled nt-GEMM must be **bitwise** identical to the per-row
    /// matvec order (the untiled formulation), on shapes whose `B` spans
    /// several tiles — that identity is what keeps streaming GRU steps
    /// equal to batched runs.
    #[test]
    fn tiled_nt_gemm_is_bitwise_per_row_matvec() {
        let cols = 345; // tile = 92 rows: a 210-row B crosses 3 tiles
        assert!(nt_tile_rows(cols) < 210);
        let a = Matrix::from_fn(NT_ROW_BLOCK + 3, cols, |r, c| {
            ((r * cols + c) as f32 * 0.137).sin()
        });
        let b = Matrix::from_fn(210, cols, |r, c| ((r * 31 + c * 7) as f32 * 0.071).cos());
        let mut c = Matrix::default();
        Matrix::matmul_nt_into(&a, &b, &mut c);
        let mut row = vec![0.0f32; b.rows];
        for i in 0..a.rows {
            b.matvec_into(a.row(i), &mut row);
            assert_eq!(c.row(i), row.as_slice(), "row {i} diverged from matvec");
        }
    }
}
