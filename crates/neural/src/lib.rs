//! A small, pure-Rust neural-network library for the CLAP reproduction.
//!
//! The paper's models are deliberately compact (Table 6): a single-layer
//! GRU with 32 hidden units for connection-state prediction, and a 7-layer
//! dense autoencoder (345 → 40 → 345) for context-profile density
//! estimation. This crate implements exactly the pieces those models need,
//! from scratch:
//!
//! * [`Matrix`] — row-major `f32` matrices with the three GEMM variants the
//!   backward passes require, parallelized with rayon where it pays;
//! * [`GruCell`] / [`GruClassifier`] — a gated recurrent unit with full
//!   backpropagation through time, exposing per-timestep **update and reset
//!   gate activations** (CLAP's inter-packet context features);
//! * [`Autoencoder`] — dense autoencoder trained with L1 reconstruction
//!   loss (paper Eq. 3);
//! * [`Adam`] — the Adam optimizer;
//! * losses ([`softmax_cross_entropy`]) and activations.
//!
//! Every gradient is verified against central finite differences in the
//! test suite. Models serialize with serde for the persistence arrows in
//! the paper's Figure 2/3 pipeline.

pub mod adam;
pub mod autoencoder;
pub mod classifier;
pub mod dense;
pub mod gru;
pub mod matrix;

pub use adam::Adam;
pub use autoencoder::{Autoencoder, AutoencoderConfig};
pub use classifier::{GruClassifier, GruClassifierConfig, TrainReport};
pub use dense::Dense;
pub use gru::{GruCell, GruTrace};
pub use matrix::Matrix;

/// Numerically-stable softmax over a slice, in place.
pub fn softmax_inplace(logits: &mut [f32]) {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in logits.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
    for v in logits.iter_mut() {
        *v *= inv;
    }
}

/// Softmax + cross-entropy against a one-hot target class.
///
/// Returns `(loss, dlogits)` where `dlogits = softmax(logits) - onehot`.
pub fn softmax_cross_entropy(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    let mut probs = logits.to_vec();
    softmax_inplace(&mut probs);
    let p = probs[target].max(1e-12);
    let loss = -p.ln();
    probs[target] -= 1.0;
    (loss, probs)
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0];
        softmax_inplace(&mut v);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut v = vec![1000.0, 1001.0];
        softmax_inplace(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_shape() {
        let (loss, grad) = softmax_cross_entropy(&[0.0, 0.0, 10.0], 2);
        assert!(loss < 0.01);
        assert!(grad[2] < 0.0); // pushes the target logit up
        assert!(grad[0] > 0.0 && grad[1] > 0.0);
        let sum: f32 = grad.iter().sum();
        assert!(sum.abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_wrong_prediction_is_costly() {
        let (loss, _) = softmax_cross_entropy(&[10.0, 0.0], 1);
        assert!(loss > 5.0);
    }

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(20.0) > 0.999);
        assert!(sigmoid(-20.0) < 0.001);
    }
}
